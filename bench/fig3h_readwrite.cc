// Reproduces Fig 3h: throughput as the fraction of read-only transactions
// grows. Samya reads fan out to all sites for a global snapshot (§5.8);
// MultiPaxSys reads are served at its single leader.
//
// Paper shape: MultiPaxSys overtakes Samya once reads exceed roughly 65% —
// not 50%, because Samya's decentralised writes are served locally in
// parallel while MultiPaxSys serialises everything at one leader.
//
// This experiment uses closed-loop (saturation) clients: with reads, the
// binding resource is per-request latency — Samya's global-snapshot read
// pays a fan-out to every site while MultiPaxSys reads only visit the
// leader, which is exactly the trade the paper measures.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("Fig 3h", "average throughput vs read-only transaction ratio");

  constexpr Duration kRun = Minutes(10);
  const double ratios[] = {0.0, 0.2, 0.4, 0.5, 0.65, 0.8, 0.9};
  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kSamyaAny,
                                SystemKind::kMultiPaxSys};

  std::vector<ExperimentOptions> sweep;
  for (double ratio : ratios) {
    for (SystemKind system : systems) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = kRun;
      opts.read_ratio = ratio;
      opts.closed_loop = true;
      opts.client_window = 4;
      sweep.push_back(opts);
    }
  }
  const auto results = RunSweep(std::move(sweep));

  std::printf("%-10s %16s %16s %16s\n", "read%", "Av[(n+1)/2] tps",
              "Av[*] tps", "MultiPaxSys tps");
  double crossover = -1;
  double prev_diff = 0;
  size_t idx = 0;
  for (double ratio : ratios) {
    double tps[3];
    for (int i = 0; i < 3; ++i) tps[i] = results[idx++].MeanTps(kRun);
    std::printf("%-10.0f %16.1f %16.1f %16.1f\n", ratio * 100, tps[0], tps[1],
                tps[2]);
    const double diff = tps[0] - tps[2];
    if (crossover < 0 && diff < 0 && prev_diff > 0) crossover = ratio;
    prev_diff = diff;
  }
  if (crossover > 0) {
    std::printf("\ncrossover: MultiPaxSys overtakes Samya near %.0f%% reads "
                "(paper: ~65%%)\n", crossover * 100);
  } else {
    std::printf("\ncrossover: %s within the sweep (paper: ~65%%)\n",
                prev_diff > 0 ? "not reached" : "below the sweep range");
  }
  return 0;
}
