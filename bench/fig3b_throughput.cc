// Reproduces Fig 3b: committed throughput of all five systems over one hour
// of highly contentious load, plus the redistribution counts the paper
// reports in §5.3 (208 for Avantan[(n+1)/2] vs 792 for Avantan[*]).
//
// Paper shape: Samya commits 16-18x more than MultiPaxSys/CockroachDB and
// ~1.3x more than Demarcation/Escrow; Avantan[(n+1)/2] edges Avantan[*]
// because the latter triggers many more redistributions.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("Fig 3b", "throughput over 1 hour, five systems");

  const SystemKind systems[] = {
      SystemKind::kSamyaMajority, SystemKind::kSamyaAny,
      SystemKind::kDemarcation, SystemKind::kMultiPaxSys,
      SystemKind::kCockroachLike};

  std::vector<ExperimentOptions> sweep;
  for (SystemKind system : systems) {
    ExperimentOptions opts;
    opts.system = system;
    opts.duration = kHour;
    sweep.push_back(opts);
  }
  const auto results = RunSweep(std::move(sweep));

  struct Row {
    SystemKind system;
    ExperimentResult result;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    rows.push_back({systems[i], results[i]});
    PrintSummaryRow(SystemName(systems[i]), rows.back().result, kHour);
  }

  const double samya = rows[0].result.MeanTps(kHour);
  const double samya_any = rows[1].result.MeanTps(kHour);
  const double dem = rows[2].result.MeanTps(kHour);
  const double mp = rows[3].result.MeanTps(kHour);
  const double crdb = rows[4].result.MeanTps(kHour);

  std::printf("\nratios (paper in parentheses):\n");
  std::printf("  Samya[(n+1)/2] / MultiPaxSys : %6.1fx  (16-18x)\n", samya / mp);
  std::printf("  Samya[(n+1)/2] / CockroachDB : %6.1fx  (16-18x)\n",
              samya / crdb);
  std::printf("  Samya[(n+1)/2] / Dem.Escrow  : %6.2fx  (~1.3x)\n", samya / dem);
  std::printf("  Dem.Escrow     / MultiPaxSys : %6.1fx  (~11x)\n", dem / mp);
  std::printf("  Samya[(n+1)/2] / Samya[*]    : %6.2fx  (>= 1x)\n",
              samya / samya_any);

  std::printf("\nredistributions over the hour (paper: 208 vs 792):\n");
  for (int i = 0; i < 2; ++i) {
    const auto& r = rows[static_cast<size_t>(i)].result;
    std::printf("  %-28s proactive=%llu reactive=%llu total=%llu aborted=%llu\n",
                SystemName(rows[static_cast<size_t>(i)].system),
                static_cast<unsigned long long>(r.proactive_redistributions),
                static_cast<unsigned long long>(r.reactive_redistributions),
                static_cast<unsigned long long>(r.proactive_redistributions +
                                                r.reactive_redistributions),
                static_cast<unsigned long long>(r.instances_aborted));
  }

  std::printf("\nper-5-minute committed tps (plot series):\nminute");
  for (const auto& row : rows) std::printf(",%s", SystemName(row.system));
  std::printf("\n");
  const auto series0 = rows[0].result.throughput.Resample(Minutes(5));
  for (size_t bin = 0; bin < series0.size(); ++bin) {
    std::printf("%zu", bin * 5);
    for (const auto& row : rows) {
      const auto s = row.result.throughput.Resample(Minutes(5));
      std::printf(",%.1f", bin < s.size() ? s[bin] : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
