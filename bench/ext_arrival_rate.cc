// Reproduces §5.9(ii): Samya vs MultiPaxSys as the request arrival interval
// stretches from the hot-spot 5 seconds back toward the original 300-second
// sampling (implemented by sweeping the time-compression factor).
//
// Paper shape: Samya's advantage shrinks as load thins, but even at the
// original arrival rate Avantan still commits ~43% more than MultiPaxSys.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("ext §5.9(ii)", "throughput vs request arrival interval");

  constexpr Duration kRun = Minutes(20);
  struct Point {
    int64_t compress;   // 300s / compress = effective arrival interval
    const char* label;
  };
  const Point points[] = {
      {60, "5s"}, {30, "10s"}, {12, "25s"}, {6, "50s"}, {2, "150s"},
      {1, "300s (original)"}};

  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kMultiPaxSys};
  std::vector<ExperimentOptions> sweep;
  for (const Point& p : points) {
    for (SystemKind system : systems) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = kRun;
      opts.compress_factor = p.compress;
      sweep.push_back(opts);
    }
  }
  const auto results = RunSweep(std::move(sweep));

  std::printf("%-20s %16s %16s %10s\n", "arrival interval", "Samya tps",
              "MultiPaxSys tps", "ratio");
  double final_ratio = 0;
  size_t idx = 0;
  for (const Point& p : points) {
    const double samya_tps = results[idx++].MeanTps(kRun);
    const double mp_tps = results[idx++].MeanTps(kRun);
    final_ratio = samya_tps / mp_tps;
    std::printf("%-20s %16.2f %16.2f %9.2fx\n", p.label, samya_tps, mp_tps,
                final_ratio);
  }

  std::printf("\nat the original 300s arrival interval Samya commits "
              "%.0f%% more (paper: ~43%% more)\n", (final_ratio - 1) * 100);
  return 0;
}
