// Reproduces Fig 3a: the pre-processed VM demand trace — creations and
// deletions per interval with strongly periodic (diurnal + weekly) shape.
// Prints summary statistics plus a downsampled CSV of the first week that a
// plotting tool can consume directly.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/azure_generator.h"
#include "workload/transform.h"

using namespace samya;            // NOLINT
using namespace samya::workload;  // NOLINT

int main() {
  bench::Banner("Fig 3a", "synthetic Azure VM demand trace");

  auto trace = GenerateAzureTrace({});
  std::printf("intervals: %zu (30 days @ 5 min)\n", trace.size());
  std::printf("mean demand: %.1f creations/interval (paper quotes ~600 on "
              "the real Azure trace)\n", trace.MeanDemand());
  std::printf("max demand:  %lld (paper: ~16000)\n",
              static_cast<long long>(trace.MaxDemand()));
  std::printf("total creations: %lld, total deletions: %lld\n",
              static_cast<long long>(trace.TotalCreations()),
              static_cast<long long>(trace.TotalDeletions()));

  // Day-lag autocorrelation of the hourly-aggregated demand: the
  // periodicity that makes "history an accurate predictor of future
  // behaviour" (hourly aggregation averages out the transient spikes).
  // Clip the rare near-max_rate bursts first: a handful of 16000-token
  // outliers dominate the variance and mask the diurnal signal the
  // autocorrelation is meant to expose.
  auto raw = trace.CreationSeries();
  const double clip = 3.0 * trace.MeanDemand();
  for (double& v : raw) v = std::min(v, clip);
  std::vector<double> y;
  for (size_t i = 0; i + 12 <= raw.size(); i += 12) {
    double acc = 0;
    for (size_t k = 0; k < 12; ++k) acc += raw[i + k];
    y.push_back(acc);
  }
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double num = 0, den = 0;
  for (size_t i = 0; i + 24 < y.size(); ++i) {
    num += (y[i] - mean) * (y[i + 24] - mean);
  }
  for (size_t i = 0; i < y.size(); ++i) den += (y[i] - mean) * (y[i] - mean);
  std::printf("1-day-lag autocorrelation (hourly): %.3f (periodic)\n\n",
              num / den);

  // Compressed form used by the experiments (5 min -> 5 s, 30 d -> 12 h).
  auto fast = CompressTime(trace, 60);
  std::printf("compressed: interval=%s total=%s (paper: 5 s / 12 h)\n\n",
              FormatDuration(fast.interval()).c_str(),
              FormatDuration(fast.TotalDuration()).c_str());

  // Hourly-downsampled first week for plotting.
  std::printf("hour,creations,deletions\n");
  for (size_t h = 0; h < 7 * 24; ++h) {
    int64_t c = 0, d = 0;
    for (size_t k = 0; k < 12; ++k) {
      const auto& iv = trace.at(h * 12 + k);
      c += iv.creations;
      d += iv.deletions;
    }
    std::printf("%zu,%lld,%lld\n", h, static_cast<long long>(c),
                static_cast<long long>(d));
  }
  return 0;
}
