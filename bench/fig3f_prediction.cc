// Reproduces Fig 3f: the value of the Prediction Module. Four Samya
// variants — each Avantan version with and without proactive (prediction-
// driven) redistribution — run the same 30-minute workload.
//
// Paper shape: with predictions Samya commits ~1.4x more than reactive-only,
// for both protocol versions.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("Fig 3f", "proactive (predictive) vs reactive-only redistribution");

  constexpr Duration kRun = Minutes(30);
  const SystemKind systems[] = {
      SystemKind::kSamyaMajority, SystemKind::kSamyaMajorityNoPredict,
      SystemKind::kSamyaAny, SystemKind::kSamyaAnyNoPredict};

  std::vector<ExperimentOptions> sweep;
  for (SystemKind system : systems) {
    ExperimentOptions opts;
    opts.system = system;
    opts.duration = kRun;
    // A tighter pool sharpens the prediction benefit: the paper's demand
    // peaks already exceed per-site allocations in this window.
    sweep.push_back(opts);
  }
  const auto results = RunSweep(std::move(sweep));
  for (size_t i = 0; i < results.size(); ++i) {
    PrintSummaryRow(SystemName(systems[i]), results[i], kRun);
  }

  const double with_maj = results[0].MeanTps(kRun);
  const double wo_maj = results[1].MeanTps(kRun);
  const double with_any = results[2].MeanTps(kRun);
  const double wo_any = results[3].MeanTps(kRun);

  std::printf("\nprediction benefit (paper: ~1.4x; see EXPERIMENTS.md for why\n"
              "an open-loop trace-driven load bounds this near 1x here):\n");
  std::printf("  Av[(n+1)/2]: %.3fx throughput, %llu vs %llu rejected, "
              "proactive+reactive %llu+%llu vs reactive-only %llu\n",
              with_maj / wo_maj,
              static_cast<unsigned long long>(results[0].aggregate.rejected),
              static_cast<unsigned long long>(results[1].aggregate.rejected),
              static_cast<unsigned long long>(
                  results[0].proactive_redistributions),
              static_cast<unsigned long long>(
                  results[0].reactive_redistributions),
              static_cast<unsigned long long>(
                  results[1].reactive_redistributions));
  std::printf("  Av[*]:       %.3fx throughput, %llu vs %llu rejected\n",
              with_any / wo_any,
              static_cast<unsigned long long>(results[2].aggregate.rejected),
              static_cast<unsigned long long>(results[3].aggregate.rejected));

  std::printf("\nrejected transactions (prediction avoids exhaustion):\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-42s rejected=%llu dropped=%llu\n", SystemName(systems[i]),
                static_cast<unsigned long long>(results[i].aggregate.rejected),
                static_cast<unsigned long long>(results[i].aggregate.dropped));
  }
  return 0;
}
