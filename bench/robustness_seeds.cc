// Robustness check: the headline Fig 3b ratio (Samya vs MultiPaxSys) across
// independent workload/simulation seeds, 20 minutes each. The paper reports
// a single GCP run; a simulator can do better — the claim should hold for
// every seed, not one lucky draw.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("robustness", "Fig 3b headline ratio across seeds (20 min each)");

  constexpr Duration kRun = Minutes(20);
  std::printf("%-8s %14s %16s %10s\n", "seed", "Samya tps", "MultiPaxSys tps",
              "ratio");
  double min_ratio = 1e9, max_ratio = 0;
  for (uint64_t seed : {42u, 1u, 7u, 1234u, 98765u}) {
    double tps[2];
    int i = 0;
    for (SystemKind system :
         {SystemKind::kSamyaMajority, SystemKind::kMultiPaxSys}) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = kRun;
      opts.seed = seed;
      opts.trace.seed = seed * 31 + 5;  // independent workload too
      tps[i++] = RunSystem(opts).MeanTps(kRun);
    }
    const double ratio = tps[0] / tps[1];
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    std::printf("%-8llu %14.1f %16.1f %9.1fx\n",
                static_cast<unsigned long long>(seed), tps[0], tps[1], ratio);
  }
  std::printf("\nratio range across seeds: %.1fx .. %.1fx (paper: 16-18x)\n",
              min_ratio, max_ratio);
  return 0;
}
