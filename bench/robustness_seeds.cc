// Robustness check: the headline Fig 3b ratio (Samya vs MultiPaxSys) across
// independent workload/simulation seeds, 20 minutes each. The paper reports
// a single GCP run; a simulator can do better — the claim should hold for
// every seed, not one lucky draw.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("robustness", "Fig 3b headline ratio across seeds (20 min each)");

  constexpr Duration kRun = Minutes(20);
  const uint64_t seeds[] = {42u, 1u, 7u, 1234u, 98765u};
  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kMultiPaxSys};

  std::vector<ExperimentOptions> sweep;
  for (uint64_t seed : seeds) {
    for (SystemKind system : systems) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = kRun;
      opts.seed = seed;
      opts.trace.seed = seed * 31 + 5;  // independent workload too
      sweep.push_back(opts);
    }
  }
  const auto results = RunSweep(std::move(sweep));

  std::printf("%-8s %14s %16s %10s\n", "seed", "Samya tps", "MultiPaxSys tps",
              "ratio");
  double min_ratio = 1e9, max_ratio = 0;
  size_t idx = 0;
  for (uint64_t seed : seeds) {
    const double samya_tps = results[idx++].MeanTps(kRun);
    const double mp_tps = results[idx++].MeanTps(kRun);
    const double ratio = samya_tps / mp_tps;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    std::printf("%-8llu %14.1f %16.1f %9.1fx\n",
                static_cast<unsigned long long>(seed), samya_tps, mp_tps,
                ratio);
  }
  std::printf("\nratio range across seeds: %.1fx .. %.1fx (paper: 16-18x)\n",
              min_ratio, max_ratio);
  return 0;
}
