// Reproduces Table 2a: Mean Absolute Error of resource-demand prediction for
// Random Walk, ARIMA, and LSTM on the (synthetic) Azure VM demand trace,
// with the paper's 80/20 train/test split.
//
// Paper values (on the real Azure dataset): Random Walk 1212.19,
// ARIMA 609.13, LSTM 259.21. With the synthetic trace the absolute values
// differ, but the ordering RandomWalk > ARIMA > LSTM must reproduce.

#include <cstdio>

#include "bench_util.h"
#include "predict/arima.h"
#include "predict/lstm.h"
#include "predict/metrics.h"
#include "workload/azure_generator.h"

using namespace samya;           // NOLINT
using namespace samya::predict;  // NOLINT

int main() {
  bench::Banner("Table 2a", "MAE of demand prediction (RW / ARIMA / LSTM)");

  auto trace = workload::GenerateAzureTrace({});
  auto series = trace.CreationSeries();
  std::printf("trace: %zu intervals, mean demand %.1f, max %lld\n\n",
              series.size(), trace.MeanDemand(),
              static_cast<long long>(trace.MaxDemand()));
  Split split = TrainTestSplit(series, 0.8);

  struct Row {
    const char* name;
    double mae;
    double rmse;
    double paper_mae;
  };
  std::vector<Row> rows;

  {
    RandomWalkPredictor walk;
    auto m = EvaluateOneStepAhead(walk, split);
    rows.push_back({"Random Walk", m->mae, m->rmse, 1212.19});
  }
  {
    ArimaOptions opts;  // ARIMA(2,0,2), robust CSS (see EXPERIMENTS.md)
    opts.p = 2;
    opts.d = 0;
    opts.q = 2;
    opts.robust_loss = true;
    opts.fit.max_iterations = 4000;
    opts.fit.tolerance = 1e-11;
    ArimaPredictor arima(opts);
    auto m = EvaluateOneStepAhead(arima, split);
    rows.push_back({"ARIMA", m->mae, m->rmse, 609.13});
  }
  {
    LstmOptions opts;
    opts.period = 288;  // one day of 5-minute intervals
    LstmPredictor lstm(opts);
    auto m = EvaluateOneStepAhead(lstm, split);
    rows.push_back({"LSTM", m->mae, m->rmse, 259.21});
  }

  std::printf("%-14s %12s %12s %18s\n", "model", "MAE(tokens)", "RMSE",
              "paper MAE (Azure)");
  for (const auto& r : rows) {
    std::printf("%-14s %12.2f %12.2f %18.2f\n", r.name, r.mae, r.rmse,
                r.paper_mae);
  }
  const bool ordering =
      rows[0].mae > rows[1].mae && rows[1].mae > rows[2].mae;
  std::printf("\nordering RandomWalk > ARIMA > LSTM: %s\n",
              ordering ? "REPRODUCED" : "NOT reproduced");
  return ordering ? 0 : 1;
}
