// Reproduces Fig 3d: throughput during a 3-2 network partition lasting the
// rest of a 30-minute run.
//
// Paper shape: MultiPaxSys serves only through the majority-side replicas
// (minority clients starve) and stays far below Samya; the two Samya
// variants start comparable, then Avantan[*] pulls ahead because it can
// redistribute inside the 2-site partition while Avantan[(n+1)/2] cannot.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

namespace {

constexpr Duration kRun = Minutes(30);
constexpr Duration kPartitionAt = Minutes(5);

ExperimentResult RunWithPartition(SystemKind system) {
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = kRun;
  Experiment e(opts);
  e.Setup();
  // Group B: everything placed in the last two regions (Australia, South
  // America) — sites/replicas, app managers, and clients alike.
  std::vector<sim::NodeId> group_a, group_b;
  for (size_t i = 0; i < e.cluster().num_nodes(); ++i) {
    const auto region = e.cluster().node(static_cast<sim::NodeId>(i))->region();
    const bool side_b = region == sim::Region::kAustraliaSoutheast1 ||
                        region == sim::Region::kSouthAmericaEast1;
    (side_b ? group_b : group_a).push_back(static_cast<sim::NodeId>(i));
  }
  e.faults().PartitionAt(kPartitionAt, {group_a, group_b});
  return e.Run();
}

}  // namespace

int main() {
  Banner("Fig 3d", "throughput during a 3-2 partition (starts at minute 5)");

  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kSamyaAny,
                                SystemKind::kMultiPaxSys};
  std::vector<ExperimentResult> results;
  for (SystemKind system : systems) {
    results.push_back(RunWithPartition(system));
    PrintSummaryRow(SystemName(system), results.back(), kRun);
  }

  std::printf("\nmean tps per 5-minute window (partition from minute 5):\n");
  std::printf("%-30s", "system");
  for (int w = 0; w < 6; ++w) std::printf(" %6d-%dm", w * 5, (w + 1) * 5);
  std::printf("\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%-30s", SystemName(systems[i]));
    for (int w = 0; w < 6; ++w) {
      std::printf(" %9.1f", results[i].throughput.MeanRate(
                                Minutes(5) * w, Minutes(5) * (w + 1)));
    }
    std::printf("\n");
  }

  const double maj = results[0].throughput.MeanRate(Minutes(10), kRun);
  const double any = results[1].throughput.MeanRate(Minutes(10), kRun);
  const double mp = results[2].throughput.MeanRate(Minutes(10), kRun);
  std::printf("\npartitioned-window means: Av[(n+1)/2]=%.1f  Av[*]=%.1f  "
              "MultiPaxSys=%.1f tps\n", maj, any, mp);
  std::printf("paper shape: Av[*] >= Av[(n+1)/2] >> MultiPaxSys : %s\n",
              (any >= maj * 0.9 && maj > 3 * mp) ? "REPRODUCED"
                                                 : "NOT reproduced");
  return 0;
}
