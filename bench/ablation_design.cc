// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own Figs 3e/3f):
//   1. the pluggable Redistribution Module (§4.4): greedy (Algorithm 2) vs
//      reject-largest-first vs proportional;
//   2. the epoch (prediction look-ahead) duration (§4.2);
//   3. the Avantan protocol timers (election/accept timeout).
// Each sweep runs the standard 5-region workload for 15 minutes.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/reallocator.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

namespace {

constexpr Duration kRun = Minutes(15);

ExperimentResult RunWith(core::SiteOptions site_template) {
  ExperimentOptions opts;
  opts.system = SystemKind::kSamyaMajority;
  opts.duration = kRun;
  opts.site_template = site_template;
  return RunSystem(opts);
}

void Row(const char* name, const ExperimentResult& r) {
  std::printf("  %-28s %8.1f tps  rejected=%-6llu redis=%-5llu p99=%7.1fms\n",
              name, r.MeanTps(kRun),
              static_cast<unsigned long long>(r.aggregate.rejected),
              static_cast<unsigned long long>(r.proactive_redistributions +
                                              r.reactive_redistributions),
              r.aggregate.latency.P99() / 1000.0);
}

}  // namespace

int main() {
  Banner("ablations", "design-choice sweeps (reallocator / epoch / timers)");

  std::printf("\n[1] Redistribution Module policy (§4.4 pluggability):\n");
  {
    core::SiteOptions t;
    t.reallocator = std::make_shared<core::GreedyReallocator>();
    Row("greedy (Algorithm 2)", RunWith(t));
    t.reallocator = std::make_shared<core::MaxRequestsReallocator>();
    Row("max-requests", RunWith(t));
    t.reallocator = std::make_shared<core::ProportionalReallocator>();
    Row("proportional", RunWith(t));
  }

  std::printf("\n[2] Epoch (prediction look-ahead) duration (§4.2):\n");
  for (Duration epoch : {Seconds(2), Seconds(5), Seconds(15), Seconds(30)}) {
    core::SiteOptions t;
    t.epoch = epoch;
    char label[32];
    std::snprintf(label, sizeof(label), "epoch = %s",
                  FormatDuration(epoch).c_str());
    Row(label, RunWith(t));
  }

  std::printf("\n[3] Avantan election/accept timeouts:\n");
  for (Duration timeout : {Millis(200), Millis(350), Millis(700)}) {
    core::SiteOptions t;
    t.election_timeout = timeout;
    t.accept_timeout = timeout;
    char label[32];
    std::snprintf(label, sizeof(label), "timeout = %s",
                  FormatDuration(timeout).c_str());
    Row(label, RunWith(t));
  }

  std::printf("\nAlgorithm 2's greedy policy maximises token usage; the\n"
              "alternatives trade that for request-count or fairness. Short\n"
              "epochs predict more often (more proactive instances), long\n"
              "ones react slower; timeouts trade recovery speed for spurious\n"
              "re-elections on slow links.\n");
  return 0;
}
