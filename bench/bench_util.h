#ifndef SAMYA_BENCH_BENCH_UTIL_H_
#define SAMYA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/parallel_runner.h"

namespace samya::bench {

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
inline void Banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==============================================================\n");
}

/// Prints the standard per-system summary row used by several benches.
inline void PrintSummaryRow(const char* name,
                            const harness::ExperimentResult& r,
                            Duration duration) {
  std::printf(
      "%-38s %9.1f tps  committed=%-8llu rejected=%-7llu p50=%7.2fms "
      "p90=%8.2fms p99=%8.2fms\n",
      name, r.MeanTps(duration),
      static_cast<unsigned long long>(r.aggregate.TotalCommitted()),
      static_cast<unsigned long long>(r.aggregate.rejected),
      r.aggregate.latency.P50() / 1000.0, r.aggregate.latency.P90() / 1000.0,
      r.aggregate.latency.P99() / 1000.0);
}

/// Runs one configured experiment end to end.
inline harness::ExperimentResult RunSystem(harness::ExperimentOptions opts) {
  harness::Experiment experiment(opts);
  experiment.Setup();
  return experiment.Run();
}

/// Runs a sweep of independent experiments across all cores (results in
/// input order, bit-identical to sequential RunSystem calls — see
/// harness/parallel_runner.h). Sweep-shaped benches build their full options
/// vector up front and hand it here.
inline std::vector<harness::ExperimentResult> RunSweep(
    std::vector<harness::ExperimentOptions> options) {
  const int threads = harness::DefaultRunnerThreads();
  std::printf("[sweep: %zu experiments on %d thread(s)]\n", options.size(),
              threads);
  return harness::RunAll(std::move(options), threads);
}

}  // namespace samya::bench

#endif  // SAMYA_BENCH_BENCH_UTIL_H_
