// Protocol message analysis (beyond the paper's figures): per-message-type
// traffic breakdown for both Avantan versions over 20 minutes of the
// standard workload, via the simulator's message tap. Quantifies the §5.3
// observation that Avantan[*]'s greedy subsets cause more (and smaller)
// redistributions than Avantan[(n+1)/2]'s majority rebalancing.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/messages.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

namespace {

const char* TypeName(uint32_t type) {
  switch (type) {
    case kMsgTokenRequest: return "token-request";
    case kMsgTokenResponse: return "token-response";
    case core::kMsgElectionGetValue: return "Election-GetValue";
    case core::kMsgElectionOkValue: return "ElectionOk-Value";
    case core::kMsgAcceptValue: return "Accept-Value";
    case core::kMsgAcceptOk: return "Accept-ok";
    case core::kMsgDecision: return "Decision";
    case core::kMsgDiscard: return "Discard";
    case core::kMsgStatusQuery: return "StatusQuery";
    case core::kMsgStatusReply: return "StatusReply";
    case core::kMsgReadQuery: return "ReadQuery";
    case core::kMsgReadReply: return "ReadReply";
    default: return "other";
  }
}

}  // namespace

int main() {
  Banner("analysis", "Avantan message-type traffic breakdown (20 min)");

  for (SystemKind system :
       {SystemKind::kSamyaMajority, SystemKind::kSamyaAny}) {
    ExperimentOptions opts;
    opts.system = system;
    opts.duration = Minutes(20);
    Experiment e(opts);
    e.Setup();

    struct PerType {
      uint64_t count = 0;
      uint64_t bytes = 0;
    };
    std::map<uint32_t, PerType> by_type;
    e.cluster().net().set_message_tap(
        [&](SimTime, sim::NodeId, sim::NodeId, uint32_t type, size_t bytes,
            sim::TapEvent ev) {
          // Count send attempts once each; skip the later delivery-time
          // events so a message is not double-counted.
          if (ev != sim::TapEvent::kSent && ev != sim::TapEvent::kDroppedAtSend)
            return;
          auto& t = by_type[type];
          ++t.count;
          t.bytes += bytes;
        });
    auto r = e.Run();

    uint64_t protocol_msgs = 0, protocol_bytes = 0;
    for (const auto& [type, t] : by_type) {
      if (type >= 200 && type < 230) {
        protocol_msgs += t.count;
        protocol_bytes += t.bytes;
      }
    }
    const uint64_t redistributions =
        r.proactive_redistributions + r.reactive_redistributions;

    std::printf("\n--- %s ---\n", SystemName(system));
    std::printf("%-20s %12s %12s\n", "message type", "count", "bytes");
    for (const auto& [type, t] : by_type) {
      std::printf("%-20s %12llu %12llu\n", TypeName(type),
                  static_cast<unsigned long long>(t.count),
                  static_cast<unsigned long long>(t.bytes));
    }
    std::printf("redistributions: %llu (+%llu aborted) -> %.1f protocol "
                "messages and %.0f bytes per redistribution\n",
                static_cast<unsigned long long>(redistributions),
                static_cast<unsigned long long>(r.instances_aborted),
                redistributions > 0
                    ? static_cast<double>(protocol_msgs) /
                          static_cast<double>(redistributions)
                    : 0.0,
                redistributions > 0
                    ? static_cast<double>(protocol_bytes) /
                          static_cast<double>(redistributions)
                    : 0.0);
    std::printf("sites spent %s frozen in total (%.2f%% of 5 x 20 min)\n",
                FormatDuration(r.total_site_frozen_time).c_str(),
                100.0 * ToSeconds(r.total_site_frozen_time) /
                    (5 * ToSeconds(Minutes(20))));
  }
  return 0;
}
