// Simulator hot-path performance tracker. Emits BENCH_simperf.json so the
// events/sec trajectory is visible PR over PR:
//   - canonical single run: the Fig 3b default configuration (Samya
//     Avantan[(n+1)/2], 20 simulated minutes), best wall-clock of five runs,
//     reported as events/sec and messages/sec;
//   - sweep: the robustness_seeds shape (5 seeds x 2 systems, 20 simulated
//     minutes each) run sequentially and then through the parallel runner,
//     reported as a wall-clock speedup. On a single-core machine the speedup
//     is ~1x by construction; `hardware_threads` is recorded alongside so
//     numbers from different machines compare honestly.
//
// The `baseline_*` fields are the pre-overhaul numbers (commit ebc78eb,
// std::function events + per-message vector allocations + sequential
// sweeps), kept in the JSON so the improvement factor is computed against a
// fixed reference. They were measured by running the seed-commit binary and
// the optimized binary interleaved (seed, current, seed, current, ...) on
// the same machine in the same session, best wall-clock of five runs each,
// so both sides see the same background noise.

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "harness/parallel_runner.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

namespace {

// Pre-PR reference (seed commit ebc78eb, Release, single core): best of
// five canonical runs, interleaved with runs of the optimized binary.
constexpr double kBaselineEventsPerSec = 1336562.0;
constexpr double kBaselineWallSeconds = 1.609;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

ExperimentOptions CanonicalOptions(bool smoke) {
  ExperimentOptions opts;  // Fig 3b defaults: Samya Av[(n+1)/2], 5 sites
  opts.system = SystemKind::kSamyaMajority;
  opts.duration = smoke ? Minutes(2) : Minutes(20);
  return opts;
}

std::vector<ExperimentOptions> SweepOptions(bool smoke) {
  std::vector<ExperimentOptions> sweep;
  for (uint64_t seed : {42u, 1u, 7u, 1234u, 98765u}) {
    for (SystemKind system :
         {SystemKind::kSamyaMajority, SystemKind::kMultiPaxSys}) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = smoke ? Minutes(2) : Minutes(20);
      opts.seed = seed;
      opts.trace.seed = seed * 31 + 5;
      sweep.push_back(opts);
    }
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  Banner("micro_simperf", "simulator hot-path events/sec + sweep speedup");
  if (smoke) std::printf("[--smoke: 2 simulated minutes, 1 rep]\n");

  // --- canonical single run, best of five (one under --smoke) ------------
  double best_wall = 1e18;
  uint64_t events = 0, messages = 0, committed = 0;
  for (int rep = 0; rep < (smoke ? 1 : 5); ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = RunSystem(CanonicalOptions(smoke));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = Seconds(t0, t1);
    std::printf("canonical run %d: %.3fs  (%.0f events/sec)\n", rep + 1, wall,
                static_cast<double>(r.events_executed) / wall);
    if (wall < best_wall) best_wall = wall;
    events = r.events_executed;
    messages = r.network.messages_sent;
    committed = r.aggregate.TotalCommitted();
  }
  const double events_per_sec = static_cast<double>(events) / best_wall;
  const double messages_per_sec = static_cast<double>(messages) / best_wall;

  // --- sweep: sequential vs parallel -------------------------------------
  const auto s0 = std::chrono::steady_clock::now();
  const auto seq = RunAll(SweepOptions(smoke), /*threads=*/1);
  const auto s1 = std::chrono::steady_clock::now();
  const auto par = RunAll(SweepOptions(smoke), /*threads=*/0);
  const auto s2 = std::chrono::steady_clock::now();
  const double seq_wall = Seconds(s0, s1);
  const double par_wall = Seconds(s1, s2);

  // The parallel path must be a pure reordering of the sequential one.
  bool identical = seq.size() == par.size();
  for (size_t i = 0; identical && i < seq.size(); ++i) {
    identical = seq[i].events_executed == par[i].events_executed &&
                seq[i].aggregate.TotalCommitted() ==
                    par[i].aggregate.TotalCommitted() &&
                seq[i].aggregate.rejected == par[i].aggregate.rejected;
  }

  const int threads = DefaultRunnerThreads();
  std::printf("\ncanonical: %.3fs wall, %.0f events/sec (baseline %.0f -> "
              "%.2fx)\n",
              best_wall, events_per_sec, kBaselineEventsPerSec,
              events_per_sec / kBaselineEventsPerSec);
  std::printf("sweep (10 sims): sequential %.2fs, parallel %.2fs on %d "
              "thread(s) -> %.2fx, results %s\n",
              seq_wall, par_wall, threads, seq_wall / par_wall,
              identical ? "identical" : "MISMATCH");

  FILE* out = std::fopen("BENCH_simperf.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_simperf.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"canonical_run\": {\n");
  std::fprintf(out, "    \"config\": \"fig3b samya_majority %s\",\n",
               smoke ? "2min (smoke)" : "20min");
  std::fprintf(out, "    \"wall_seconds\": %.4f,\n", best_wall);
  std::fprintf(out, "    \"events_executed\": %llu,\n",
               static_cast<unsigned long long>(events));
  std::fprintf(out, "    \"events_per_sec\": %.0f,\n", events_per_sec);
  std::fprintf(out, "    \"messages_sent\": %llu,\n",
               static_cast<unsigned long long>(messages));
  std::fprintf(out, "    \"messages_per_sec\": %.0f,\n", messages_per_sec);
  std::fprintf(out, "    \"committed\": %llu,\n",
               static_cast<unsigned long long>(committed));
  std::fprintf(out, "    \"baseline_events_per_sec\": %.0f,\n",
               kBaselineEventsPerSec);
  std::fprintf(out, "    \"baseline_wall_seconds\": %.4f,\n",
               kBaselineWallSeconds);
  std::fprintf(out, "    \"speedup_vs_baseline\": %.3f\n",
               events_per_sec / kBaselineEventsPerSec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sweep\": {\n");
  std::fprintf(out, "    \"config\": \"robustness_seeds 5x2 20min\",\n");
  std::fprintf(out, "    \"sequential_wall_seconds\": %.3f,\n", seq_wall);
  std::fprintf(out, "    \"parallel_wall_seconds\": %.3f,\n", par_wall);
  std::fprintf(out, "    \"parallel_speedup\": %.3f,\n", seq_wall / par_wall);
  std::fprintf(out, "    \"results_identical\": %s\n",
               identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"hardware_threads\": %d\n", threads);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_simperf.json\n");
  return identical ? 0 : 1;
}
