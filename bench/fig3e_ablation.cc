// Reproduces Fig 3e: is redistribution worth it? Samya with both Avantan
// versions versus (i) No Constraints — no upper bound, every request
// commits locally (the throughput ceiling) — and (ii) No Redistribution —
// the constraint exists but exhausted sites simply reject.
//
// Paper shape: Samya with redistribution is only ~3.5-4% below the
// no-constraint optimum, and ~14% above no-redistribution.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("Fig 3e", "no-constraint vs Samya vs no-redistribution (25 min)");

  constexpr Duration kRun = Minutes(25);
  const SystemKind systems[] = {
      SystemKind::kSamyaNoConstraint, SystemKind::kSamyaMajority,
      SystemKind::kSamyaAny, SystemKind::kSamyaNoRedistribution};

  std::vector<ExperimentOptions> sweep;
  for (SystemKind system : systems) {
    ExperimentOptions opts;
    opts.system = system;
    opts.duration = kRun;
    sweep.push_back(opts);
  }
  const auto results = RunSweep(std::move(sweep));

  std::vector<double> tps;
  for (size_t i = 0; i < results.size(); ++i) {
    tps.push_back(results[i].MeanTps(kRun));
    PrintSummaryRow(SystemName(systems[i]), results[i], kRun);
  }

  std::printf("\nrelative to the no-constraint optimum (paper in parens):\n");
  std::printf("  Samya Av[(n+1)/2] : %5.1f%% of optimal (~96-96.5%%)\n",
              100.0 * tps[1] / tps[0]);
  std::printf("  Samya Av[*]       : %5.1f%% of optimal (~96-96.5%%)\n",
              100.0 * tps[2] / tps[0]);
  std::printf("  No redistribution : %5.1f%% of optimal\n",
              100.0 * tps[3] / tps[0]);
  std::printf("\nSamya vs no-redistribution (paper: ~+14%%):\n");
  std::printf("  Av[(n+1)/2] : %+5.1f%%\n", 100.0 * (tps[1] / tps[3] - 1));
  std::printf("  Av[*]       : %+5.1f%%\n", 100.0 * (tps[2] / tps[3] - 1));

  std::printf("\nper-5-minute tps series:\nminute,noconstraint,av_majority,"
              "av_any,noredistribution\n");
  const auto base = results[0].throughput.Resample(Minutes(5));
  for (size_t bin = 0; bin < base.size(); ++bin) {
    std::printf("%zu", bin * 5);
    for (const auto& r : results) {
      const auto s = r.throughput.Resample(Minutes(5));
      std::printf(",%.1f", bin < s.size() ? s[bin] : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
