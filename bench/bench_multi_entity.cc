// Multi-entity scale-out bench (DESIGN.md §9, EXPERIMENTS.md). Emits
// BENCH_multientity.json with:
//   - sweep: E in {1, 10, 100, 1000} entities at 1,000 simulated users per
//     entity (so total users span 10^3..10^6), each point run with and
//     without app-manager batching: shard events/sec, p50/p99 acquire
//     latency, and network messages per client request;
//   - equivalence: the E=10 deployment run serially and sharded across the
//     worker pool, compared shard by shard on the full deterministic
//     snapshot (EntityShardResult::ToJson) — the parallel-runner contract;
//   - batching: a high fan-in deployment (40,000 users per entity) where
//     same-window coalescing visibly amortizes the app-manager -> site hop.
//
// "Simulated users" follows the paper's §5 framing: one entity's Azure
// trace at the default mean rate stands for ~1,000 tenants whose aggregate
// demand it is; `load_scale` maps user counts onto arrival rates (0.1
// creations per user per 5-minute interval). Clients are per-region
// aggregators of that demand, not one node per user.
//
// `--smoke` runs the CI shape: the E=10 equivalence check plus a trimmed
// sweep (E in {1, 10}) and batching comparison, same JSON schema.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/json.h"
#include "harness/multi_entity.h"

using namespace samya;           // NOLINT
using namespace samya::bench;    // NOLINT
using namespace samya::harness;  // NOLINT

namespace {

constexpr int kUsersPerEntity = 1000;
constexpr double kUsersPerLoadUnit = 1000.0;  ///< load_scale 1.0 == 1k users

double WallSeconds(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

MultiEntityOptions BaseOptions(int entities, int users_per_entity) {
  MultiEntityOptions opts;
  opts.num_entities = entities;
  opts.sites_per_entity = 5;
  opts.tokens_per_entity = 5000;
  opts.duration = Minutes(2);
  opts.seed = 42;
  opts.trace.days = 1;
  opts.load_scale = static_cast<double>(users_per_entity) / kUsersPerLoadUnit;
  // Reactive-only sites: the sweep stresses deployment scale, not the
  // prediction module, and skipping per-site training keeps 1000-shard
  // setup affordable.
  opts.site_template.enable_prediction = false;
  return opts;
}

struct SweepPoint {
  int entities = 0;
  double wall_seconds = 0;
  MultiEntityResult unbatched;
  MultiEntityResult batched;
};

SweepPoint RunSweepPoint(int entities) {
  SweepPoint point;
  point.entities = entities;
  MultiEntityOptions opts = BaseOptions(entities, kUsersPerEntity);
  const auto t0 = std::chrono::steady_clock::now();
  point.unbatched = RunMultiEntity(opts);
  const auto t1 = std::chrono::steady_clock::now();
  opts.batch_requests = true;
  point.batched = RunMultiEntity(opts);
  point.wall_seconds = WallSeconds(t0, t1);

  std::printf(
      "E=%-5d users=%-8d %7.2fs wall  %10.0f events/s  acquire p50=%6.1fms "
      "p99=%7.1fms  msgs/req %.2f -> %.2f\n",
      entities, entities * kUsersPerEntity, point.wall_seconds,
      static_cast<double>(point.unbatched.events_executed) /
          point.wall_seconds,
      point.unbatched.aggregate.acquire_latency.P50() / 1000.0,
      point.unbatched.aggregate.acquire_latency.P99() / 1000.0,
      point.unbatched.MessagesPerRequest(), point.batched.MessagesPerRequest());
  return point;
}

JsonValue SweepPointJson(const SweepPoint& p) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("entities", static_cast<int64_t>(p.entities));
  o.Set("total_users", static_cast<int64_t>(p.entities * kUsersPerEntity));
  o.Set("wall_seconds", p.wall_seconds);
  o.Set("events_executed", p.unbatched.events_executed);
  o.Set("events_per_sec",
        static_cast<double>(p.unbatched.events_executed) / p.wall_seconds);
  o.Set("committed_acquires", p.unbatched.aggregate.committed_acquires);
  o.Set("acquire_p50_ms",
        p.unbatched.aggregate.acquire_latency.P50() / 1000.0);
  o.Set("acquire_p99_ms",
        p.unbatched.aggregate.acquire_latency.P99() / 1000.0);
  JsonValue mpr = JsonValue::MakeObject();
  mpr.Set("unbatched", p.unbatched.MessagesPerRequest());
  mpr.Set("batched", p.batched.MessagesPerRequest());
  o.Set("messages_per_request", std::move(mpr));
  return o;
}

/// Serial vs sharded, compared shard by shard on the full snapshot.
bool CheckEquivalence(JsonValue* out) {
  MultiEntityOptions opts = BaseOptions(/*entities=*/10, kUsersPerEntity);
  opts.threads = 1;
  MultiEntityResult serial = RunMultiEntity(opts);
  opts.threads = 0;
  MultiEntityResult sharded = RunMultiEntity(opts);

  bool identical = serial.per_entity.size() == sharded.per_entity.size();
  for (size_t i = 0; identical && i < serial.per_entity.size(); ++i) {
    identical = JsonDump(serial.per_entity[i].ToJson()) ==
                JsonDump(sharded.per_entity[i].ToJson());
  }
  std::printf("equivalence (E=10): serial vs sharded on %d thread(s): %s\n",
              DefaultRunnerThreads(), identical ? "identical" : "MISMATCH");

  JsonValue o = JsonValue::MakeObject();
  o.Set("entities", static_cast<int64_t>(10));
  o.Set("threads", static_cast<int64_t>(DefaultRunnerThreads()));
  o.Set("identical", identical);
  o.Set("events_executed", serial.events_executed);
  *out = std::move(o);
  return identical;
}

/// High fan-in batching comparison: enough same-window arrivals per app
/// manager that coalescing visibly pays.
bool CheckBatching(int entities, int fan_in_users, JsonValue* out) {
  MultiEntityOptions opts = BaseOptions(entities, fan_in_users);
  MultiEntityResult unbatched = RunMultiEntity(opts);
  opts.batch_requests = true;
  opts.batch_window = Millis(5);
  MultiEntityResult batched = RunMultiEntity(opts);

  const double before = unbatched.MessagesPerRequest();
  const double after = batched.MessagesPerRequest();
  const double mean_batch =
      batched.batches_sent == 0
          ? 0.0
          : static_cast<double>(batched.batched_requests) /
                static_cast<double>(batched.batches_sent);
  const bool reduced = after < before;
  std::printf(
      "batching (E=%d, %d users/entity): %.2f -> %.2f msgs/request "
      "(-%.1f%%), mean batch %.1f\n",
      entities, fan_in_users, before, after,
      100.0 * (before - after) / before, mean_batch);

  JsonValue o = JsonValue::MakeObject();
  o.Set("entities", static_cast<int64_t>(entities));
  o.Set("users_per_entity", static_cast<int64_t>(fan_in_users));
  o.Set("messages_per_request_unbatched", before);
  o.Set("messages_per_request_batched", after);
  o.Set("reduction_pct", 100.0 * (before - after) / before);
  o.Set("mean_batch_size", mean_batch);
  o.Set("committed_acquires_unbatched",
        unbatched.aggregate.committed_acquires);
  o.Set("committed_acquires_batched", batched.aggregate.committed_acquires);
  *out = std::move(o);
  return reduced;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  Banner("bench_multi_entity",
         smoke ? "multi-entity scale-out (smoke: E=10 equivalence)"
               : "multi-entity scale-out: E x users sweep, sharding, "
                 "batching");

  JsonValue equivalence;
  const bool identical = CheckEquivalence(&equivalence);

  // Smoke keeps the CI budget: a two-entity fan-in still fills batch
  // windows, just with a tenth of the simulated traffic.
  JsonValue batching;
  const bool reduced = smoke ? CheckBatching(2, 20000, &batching)
                             : CheckBatching(10, 40000, &batching);

  JsonValue sweep = JsonValue::MakeArray();
  const std::vector<int> entity_counts =
      smoke ? std::vector<int>{1, 10} : std::vector<int>{1, 10, 100, 1000};
  for (int entities : entity_counts) {
    sweep.Append(SweepPointJson(RunSweepPoint(entities)));
  }

  JsonValue root = JsonValue::MakeObject();
  root.Set("mode", smoke ? "smoke" : "full");
  root.Set("users_per_entity", static_cast<int64_t>(kUsersPerEntity));
  root.Set("equivalence", std::move(equivalence));
  root.Set("batching", std::move(batching));
  root.Set("sweep", std::move(sweep));
  root.Set("hardware_threads",
           static_cast<int64_t>(DefaultRunnerThreads()));

  FILE* out = std::fopen("BENCH_multientity.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_multientity.json\n");
    return 1;
  }
  const std::string text = JsonDump(root, /*indent=*/2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("\nwrote BENCH_multientity.json (equivalence %s, batching %s)\n",
              identical ? "ok" : "FAILED", reduced ? "ok" : "FAILED");
  return (identical && reduced) ? 0 : 1;
}
