// Reproduces §5.9(i) of the extended evaluation: throughput as the global
// maximum limit M_e sweeps from the trace's mean demand to its max demand.
//
// Paper shape: Avantan's throughput improves roughly 5x from M_e = mean
// demand (~600 on the real trace) to M_e = max demand (~16000), because a
// larger pool turns constraint rejections into commits.

#include <cstdio>

#include "bench_util.h"
#include "workload/azure_generator.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("ext §5.9(i)", "throughput vs maximum limit M_e");

  constexpr Duration kRun = Minutes(20);
  auto trace = workload::GenerateAzureTrace({});
  const int64_t mean_demand = static_cast<int64_t>(trace.MeanDemand());
  const int64_t max_demand = trace.MaxDemand();
  std::printf("trace mean demand = %lld, max demand = %lld\n\n",
              static_cast<long long>(mean_demand),
              static_cast<long long>(max_demand));

  const int64_t limits[] = {mean_demand, 1000, 2500, 5000, 10000, max_demand};
  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kSamyaAny};

  std::vector<ExperimentOptions> sweep;
  for (int64_t limit : limits) {
    for (SystemKind system : systems) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = kRun;
      opts.max_tokens = limit;
      sweep.push_back(opts);
    }
  }
  const auto results = RunSweep(std::move(sweep));

  std::printf("%-10s %16s %16s %12s\n", "M_e", "Av[(n+1)/2] tps", "Av[*] tps",
              "rejected");
  double first_maj = 0, last_maj = 0;
  size_t idx = 0;
  for (int64_t limit : limits) {
    const auto& maj = results[idx++];
    const auto& any = results[idx++];
    const double tps_maj = maj.MeanTps(kRun);
    std::printf("%-10lld %16.1f %16.1f %12llu\n",
                static_cast<long long>(limit), tps_maj, any.MeanTps(kRun),
                static_cast<unsigned long long>(maj.aggregate.rejected));
    if (limit == limits[0]) first_maj = tps_maj;
    last_maj = tps_maj;
  }

  std::printf("\nthroughput max-limit / mean-limit: %.1fx (paper: ~5x)\n",
              last_maj / first_maj);
  return 0;
}
