// Conservative-window PDES scaling bench (DESIGN.md §11). Runs the
// canonical Fig 3b configuration (Samya Avantan[(n+1)/2], 20 simulated
// minutes) serially and then on 2/4/8 PDES workers, asserts every parallel
// run is bit-identical to the serial one, and emits BENCH_pdes.json with
// the wall-clock scaling table.
//
// Exit status reflects *correctness only* (digest identity): speedup is
// reported, not gated, because CI machines may expose fewer cores than the
// worker counts swept here. --smoke shortens the run for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

ExperimentOptions CanonicalOptions(bool smoke, int workers) {
  ExperimentOptions opts;  // Fig 3b defaults: Samya Av[(n+1)/2], 5 sites
  opts.system = SystemKind::kSamyaMajority;
  opts.duration = smoke ? Minutes(2) : Minutes(20);
  opts.pdes_workers = workers;
  return opts;
}

/// Everything a run can disagree on, cheap enough to compare exactly.
using Digest = std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                          uint64_t, uint64_t, double>;

Digest DigestOf(const ExperimentResult& r) {
  return {r.events_executed,
          r.aggregate.committed_acquires,
          r.aggregate.committed_releases,
          r.aggregate.rejected,
          r.network.messages_sent,
          r.network.messages_delivered,
          r.network.bytes_sent,
          r.aggregate.latency.P99()};
}

struct Row {
  int workers = 1;
  double wall = 0;
  double events_per_sec = 0;
  bool pdes_active = false;
  std::string fallback;
  Digest digest;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  Banner("bench_pdes", "conservative-window PDES scaling vs the serial loop");
  if (smoke) std::printf("[--smoke: 2 simulated minutes]\n");

  std::vector<Row> rows;
  const int reps = smoke ? 1 : 3;
  for (int workers : {1, 2, 4, 8}) {
    Row row;
    row.workers = workers;
    double best_wall = 1e18;
    for (int rep = 0; rep < reps; ++rep) {
      Experiment experiment(CanonicalOptions(smoke, workers));
      experiment.Setup();
      const auto t0 = std::chrono::steady_clock::now();
      auto r = experiment.Run();
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = Seconds(t0, t1);
      if (wall < best_wall) {
        best_wall = wall;
        row.events_per_sec = static_cast<double>(r.events_executed) / wall;
      }
      row.pdes_active = experiment.pdes_active();
      row.fallback = experiment.pdes_fallback_reason();
      row.digest = DigestOf(r);
    }
    row.wall = best_wall;
    std::printf("workers=%d: %.3fs wall, %.0f events/sec%s%s\n", workers,
                row.wall, row.events_per_sec,
                row.pdes_active ? " [pdes]" : " [serial: ",
                row.pdes_active ? "" : (row.fallback + "]").c_str());
    rows.push_back(row);
  }

  bool identical = true;
  for (const Row& row : rows) {
    if (row.digest != rows[0].digest) {
      std::printf("MISMATCH: workers=%d differs from the serial run\n",
                  row.workers);
      identical = false;
    }
  }
  const double serial_wall = rows[0].wall;
  std::printf("\nscaling (vs workers=1):");
  for (const Row& row : rows) {
    std::printf("  %dw=%.2fx", row.workers, serial_wall / row.wall);
  }
  std::printf("   results %s\n", identical ? "identical" : "MISMATCH");

  FILE* out = std::fopen("BENCH_pdes.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pdes.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"config\": \"fig3b samya_majority %s\",\n",
               smoke ? "2min (smoke)" : "20min");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %d,\n", DefaultRunnerThreads());
  std::fprintf(out, "  \"results_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out, "    {\"workers\": %d, \"wall_seconds\": %.4f, "
                 "\"events_per_sec\": %.0f, \"speedup_vs_serial\": %.3f, "
                 "\"pdes_active\": %s}%s\n",
                 row.workers, row.wall, row.events_per_sec,
                 serial_wall / row.wall, row.pdes_active ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_pdes.json\n");
  return identical ? 0 : 1;
}
