// Reproduces Fig 3c: throughput under staged crash failures. Starting from 5
// regions, one region (site + its client) is crashed every 10 minutes until
// one remains.
//
// Paper shape: MultiPaxSys throughput drops to 0 once 3 sites (a majority)
// have crashed; both Samya variants keep serving, with Avantan[*] ahead of
// Avantan[(n+1)/2] once redistributions need a dead majority.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

namespace {

ExperimentResult RunWithCrashes(SystemKind system) {
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = Minutes(50);
  Experiment e(opts);
  e.Setup();
  // Crash one region every 10 minutes: at 10, 20, 30, 40.
  for (int k = 0; k < 4; ++k) {
    const SimTime at = Minutes(10) * (k + 1);
    e.faults().CrashAt(at, e.server_ids()[static_cast<size_t>(k)]);
    if (IsSamyaVariant(system) || system == SystemKind::kDemarcation) {
      e.faults().CrashAt(at, e.client_ids()[static_cast<size_t>(k)]);
    } else {
      // Baselines: replicas and clients are separate node sets; crash the
      // region's client as well, per the paper's protocol.
      e.faults().CrashAt(at, e.client_ids()[static_cast<size_t>(k)]);
    }
  }
  return e.Run();
}

}  // namespace

int main() {
  Banner("Fig 3c", "throughput while crashing one region every 10 minutes");

  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kSamyaAny,
                                SystemKind::kMultiPaxSys};
  std::vector<ExperimentResult> results;
  for (SystemKind system : systems) {
    results.push_back(RunWithCrashes(system));
    PrintSummaryRow(SystemName(system), results.back(), Minutes(50));
  }

  std::printf("\nmean tps per 10-minute window (crash at each boundary):\n");
  std::printf("%-30s %8s %8s %8s %8s %8s\n", "system", "0-10m", "10-20m",
              "20-30m", "30-40m", "40-50m");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%-30s", SystemName(systems[i]));
    for (int w = 0; w < 5; ++w) {
      std::printf(" %8.1f", results[i].throughput.MeanRate(
                                Minutes(10) * w, Minutes(10) * (w + 1)));
    }
    std::printf("\n");
  }

  const double mp_after_majority_dead =
      results[2].throughput.MeanRate(Minutes(31), Minutes(50));
  const double samya_any_end =
      results[1].throughput.MeanRate(Minutes(40), Minutes(50));
  std::printf("\nMultiPaxSys after 3 crashes: %.2f tps (paper: drops to 0)\n",
              mp_after_majority_dead);
  std::printf("Samya[*] with 1 region left:  %.2f tps (paper: keeps serving)\n",
              samya_any_end);
  return 0;
}
