// Component micro-benchmarks (google-benchmark): the hot paths under every
// experiment — codec, CRC, RNG, histogram, event loop, Algorithm 2, message
// round trips, predictor inference, and trace generation.

#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/histogram.h"
#include "common/random.h"
#include "core/messages.h"
#include "core/reallocator.h"
#include "predict/lstm.h"
#include "sim/environment.h"
#include "workload/azure_generator.h"

namespace samya {
namespace {

void BM_CodecVarintRoundTrip(benchmark::State& state) {
  Rng rng(1);
  std::vector<int64_t> values(256);
  for (auto& v : values) v = static_cast<int64_t>(rng.Next());
  for (auto _ : state) {
    BufferWriter w;
    for (int64_t v : values) w.PutVarintSigned(v);
    BufferReader r(w.buffer());
    int64_t acc = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      acc += r.GetVarintSigned().value();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CodecVarintRoundTrip);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_RngNext(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(9);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextUint64(1000000)));
  }
  benchmark::DoNotOptimize(h.P99());
}
BENCHMARK(BM_HistogramRecord);

void BM_SimEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEnvironment env(1);
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      env.Schedule(i, [&fired] { ++fired; });
    }
    env.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimEventLoop);

void BM_Algorithm2Reallocate(benchmark::State& state) {
  core::GreedyReallocator realloc;
  core::StateList list;
  Rng rng(11);
  for (int i = 0; i < state.range(0); ++i) {
    list.entries.push_back(core::EntityState{
        static_cast<sim::NodeId>(i), rng.UniformInt(0, 1000),
        rng.UniformInt(0, 1500)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(realloc.Reallocate(list));
  }
}
BENCHMARK(BM_Algorithm2Reallocate)->Arg(5)->Arg(20)->Arg(100);

void BM_AvantanMessageRoundTrip(benchmark::State& state) {
  core::ElectionOkValue m;
  m.instance = 42;
  m.ballot = {7, 3};
  m.init_val = {3, 1000, 250};
  for (int i = 0; i < 5; ++i) {
    m.accept_val.entries.push_back(core::EntityState{i, 100 * i, 10 * i});
  }
  for (auto _ : state) {
    BufferWriter w;
    m.EncodeTo(w);
    BufferReader r(w.buffer());
    auto decoded = core::ElectionOkValue::DecodeFrom(r);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_AvantanMessageRoundTrip);

void BM_LstmInference(benchmark::State& state) {
  predict::LstmOptions opts;
  opts.window = 32;
  opts.hidden = 24;
  opts.epochs = 1;
  opts.stride = 8;
  predict::LstmPredictor lstm(opts);
  std::vector<double> series(512);
  Rng rng(13);
  for (auto& v : series) v = rng.Uniform(0, 100);
  (void)lstm.Train(series);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.PredictNext());
  }
}
BENCHMARK(BM_LstmInference);

void BM_AzureTraceGeneration(benchmark::State& state) {
  workload::AzureTraceOptions opts;
  opts.days = 7;
  for (auto _ : state) {
    auto trace = workload::GenerateAzureTrace(opts);
    benchmark::DoNotOptimize(trace.TotalCreations());
  }
}
BENCHMARK(BM_AzureTraceGeneration);

}  // namespace
}  // namespace samya

BENCHMARK_MAIN();
