// Reproduces Table 2b: commit-latency percentiles of the five systems over
// one hour of compressed load (~60 original hours of the Azure-like trace).
//
// Paper values (ms):
//   percentile  Samya Av[(n+1)/2]  Samya Av[*]  Dem/Escrow  MultiPaxSys  CockroachDB
//   p90              1.40             2.9          3.5         126.8        158.7
//   p95             10.2             37.3         59.6         172.7        184.2
//   p99             65.1             97.3        213.9         276.3        351.4
// The expected *shape*: Samya[(n+1)/2] < Samya[*] < Dem/Escrow << MultiPaxSys
// < CockroachDB, with Samya's p90 in single-digit ms and the replicated
// baselines' p90 above 100 ms.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("Table 2b", "commit latency percentiles, 1 hour of load");

  const SystemKind systems[] = {
      SystemKind::kSamyaMajority, SystemKind::kSamyaAny,
      SystemKind::kDemarcation, SystemKind::kMultiPaxSys,
      SystemKind::kCockroachLike};

  std::printf("%-38s %10s %10s %10s %12s\n", "system", "p90(ms)", "p95(ms)",
              "p99(ms)", "committed");
  std::vector<double> p90s;
  for (SystemKind system : systems) {
    ExperimentOptions opts;
    opts.system = system;
    opts.duration = kHour;
    auto r = RunSystem(opts);
    p90s.push_back(r.aggregate.latency.P90());
    std::printf("%-38s %10.2f %10.2f %10.2f %12llu\n", SystemName(system),
                r.aggregate.latency.P90() / 1000.0,
                r.aggregate.latency.P95() / 1000.0,
                r.aggregate.latency.P99() / 1000.0,
                static_cast<unsigned long long>(r.aggregate.TotalCommitted()));
  }

  std::printf("\npaper (ms):                              p90        p95        p99\n");
  std::printf("  Samya w/ Av.[(n+1)/2]                   1.40       10.2       65.1\n");
  std::printf("  Samya w/ Av.[*]                         2.90       37.3       97.3\n");
  std::printf("  Demarcation/Escrow                      3.50       59.6      213.9\n");
  std::printf("  MultiPaxSys                           126.80      172.7      276.3\n");
  std::printf("  CockroachDB                           158.70      184.2      351.4\n");

  const bool shape = p90s[0] <= p90s[3] / 5 && p90s[1] <= p90s[3] / 5 &&
                     p90s[2] < p90s[3] && p90s[3] < p90s[4] * 1.5;
  std::printf("\nshape (Samya << replicated baselines): %s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
