// Reproduces Fig 3g: scalability from 5 to 20 sites (extra sites added in
// the same 5 regions, offered load scaled with the site count), 10 minutes
// per configuration.
//
// Paper shape: throughput grows roughly linearly with the site count while
// average latency stays flat, for both Avantan versions.

#include <cstdio>

#include "bench_util.h"

using namespace samya;          // NOLINT
using namespace samya::bench;   // NOLINT
using namespace samya::harness; // NOLINT

int main() {
  Banner("Fig 3g", "throughput and latency, 5 to 20 sites");

  constexpr Duration kRun = Minutes(10);
  const SystemKind systems[] = {SystemKind::kSamyaMajority,
                                SystemKind::kSamyaAny};
  const int site_counts[] = {5, 10, 15, 20};

  std::vector<ExperimentOptions> sweep;
  for (SystemKind system : systems) {
    for (int sites : site_counts) {
      ExperimentOptions opts;
      opts.system = system;
      opts.num_sites = sites;
      opts.duration = kRun;
      opts.scale_load_with_sites = true;
      // Iso-pressure scaling: the pool grows with the offered load so each
      // site keeps the paper's 1000-token share (§5.2's per-site allocation).
      opts.max_tokens = 1000 * sites;
      sweep.push_back(opts);
    }
  }
  const auto results = RunSweep(std::move(sweep));

  std::printf("%-28s %6s %12s %14s\n", "system", "sites", "tps",
              "mean latency");
  double tps5_maj = 0, tps20_maj = 0;
  size_t idx = 0;
  for (SystemKind system : systems) {
    for (int sites : site_counts) {
      const auto& r = results[idx++];
      const double tps = r.MeanTps(kRun);
      std::printf("%-28s %6d %12.1f %11.2fms\n", SystemName(system), sites,
                  tps, r.aggregate.latency.mean() / 1000.0);
      if (system == SystemKind::kSamyaMajority && sites == 5) tps5_maj = tps;
      if (system == SystemKind::kSamyaMajority && sites == 20) tps20_maj = tps;
    }
  }

  std::printf("\nthroughput 20 sites / 5 sites (Av[(n+1)/2]): %.1fx "
              "(paper: ~linear, i.e. ~4x)\n", tps20_maj / tps5_maj);
  return 0;
}
