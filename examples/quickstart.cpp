// Quickstart: bring up a 5-region Samya deployment, acquire and release
// tokens through an app manager, trigger a redistribution, and read the
// global availability.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/app_manager.h"
#include "core/site.h"
#include "harness/workload_client.h"
#include "sim/cluster.h"

using namespace samya;  // NOLINT — example code

int main() {
  std::printf("Samya quickstart: 5 geo-distributed sites, M_e = 5000\n\n");

  // 1. A simulated geo-distributed cluster (deterministic by seed).
  sim::Cluster cluster(/*seed=*/2024);

  // 2. Five sites, one per paper region, each starting with 1000 tokens.
  std::vector<sim::NodeId> site_ids = {0, 1, 2, 3, 4};
  std::vector<core::Site*> sites;
  for (int i = 0; i < 5; ++i) {
    core::SiteOptions opts;
    opts.sites = site_ids;
    opts.initial_tokens = 1000;
    opts.protocol = core::Protocol::kAvantanMajority;
    opts.enable_prediction = false;  // keep the quickstart reactive-only
    auto* site =
        cluster.AddNode<core::Site>(sim::kPaperRegions[static_cast<size_t>(i)], opts);
    site->set_storage(cluster.StorageFor(site->id()));
    sites.push_back(site);
  }

  // 3. An app manager in us-west1 relaying to the local site first.
  core::AppManagerOptions aopts;
  aopts.sites = site_ids;
  auto* am = cluster.AddNode<core::AppManager>(sim::Region::kUsWest1, aopts);

  // 4. A scripted client: acquire 600, acquire 600 more (forcing an Avantan
  //    redistribution — the local site only has 1000), release 100, then
  //    read the global availability.
  harness::WorkloadClientOptions copts;
  copts.servers = {am->id()};
  std::vector<workload::Request> script = {
      {Millis(10), workload::Request::Type::kAcquire, 600},
      {Millis(20), workload::Request::Type::kAcquire, 600},
      {Seconds(2), workload::Request::Type::kRelease, 100},
      {Seconds(3), workload::Request::Type::kRead, 1},
  };
  auto* client = cluster.AddNode<harness::WorkloadClient>(
      sim::Region::kUsWest1, copts, script);

  // 5. Run the simulation.
  cluster.StartAll();
  cluster.env().RunFor(Seconds(5));

  // 6. Inspect the outcome.
  std::printf("client: %llu acquires, %llu releases, %llu reads committed\n",
              static_cast<unsigned long long>(client->stats().committed_acquires),
              static_cast<unsigned long long>(client->stats().committed_releases),
              static_cast<unsigned long long>(client->stats().committed_reads));
  std::printf("commit latency: p50=%.2fms p99=%.2fms (the second acquire paid "
              "for a redistribution)\n",
              client->stats().latency.P50() / 1000.0,
              client->stats().latency.P99() / 1000.0);

  int64_t total = 0;
  for (auto* site : sites) {
    std::printf("site %d (%s): %lld tokens left, %llu redistributions\n",
                site->id(), sim::RegionName(site->region()),
                static_cast<long long>(site->tokens_left()),
                static_cast<unsigned long long>(
                    site->stats().reactive_redistributions +
                    site->stats().proactive_redistributions));
    total += site->tokens_left();
  }
  std::printf("\nEq. 1 check: %lld in pools + %lld acquired = %lld == M_e\n",
              static_cast<long long>(total),
              static_cast<long long>(1200 - 100),
              static_cast<long long>(total + 1100));
  return 0;
}
