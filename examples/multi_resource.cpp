// Multi-entity deployment (§3.1): ultraCloud tracks three resource types —
// VMs, storage volumes, and network bandwidth units — each with its own
// limit and its own group of value-partitioned sites. A per-region
// EntityRouter consults the EntityDirectory to route each transaction to the
// right group, so one front door serves every resource.

#include <cstdio>

#include "core/directory.h"
#include "core/site.h"
#include "harness/workload_client.h"
#include "sim/cluster.h"

using namespace samya;  // NOLINT — example code

namespace {

struct Resource {
  uint32_t entity;
  const char* name;
  int64_t limit;
  std::vector<core::Site*> sites;
};

}  // namespace

int main() {
  std::printf("Multi-entity Samya: VMs, storage volumes, bandwidth units\n\n");

  sim::Cluster cluster(17);
  core::EntityDirectory directory;
  std::vector<Resource> resources = {
      {1, "vm", 5000, {}},
      {2, "storage", 20000, {}},
      {3, "bandwidth", 800, {}},
  };

  // Each resource gets its own 5-site group, value-partitioned as usual.
  for (auto& res : resources) {
    const sim::NodeId first = static_cast<sim::NodeId>(cluster.num_nodes());
    std::vector<sim::NodeId> ids;
    for (int i = 0; i < 5; ++i) ids.push_back(first + i);
    for (int i = 0; i < 5; ++i) {
      core::SiteOptions opts;
      opts.sites = ids;
      opts.initial_tokens = res.limit / 5;
      opts.protocol = core::Protocol::kAvantanMajority;
      opts.enable_prediction = false;
      auto* site = cluster.AddNode<core::Site>(
          sim::kPaperRegions[static_cast<size_t>(i)], opts);
      site->set_storage(cluster.StorageFor(site->id()));
      res.sites.push_back(site);
    }
    directory.Register(res.entity, ids);  // region r -> the group's r-th site
  }

  // One router per region; clients talk only to their region's router.
  std::vector<core::EntityRouter*> routers;
  for (int r = 0; r < 5; ++r) {
    core::EntityRouterOptions ropts;
    ropts.directory = &directory;
    ropts.region_index = r;
    routers.push_back(cluster.AddNode<core::EntityRouter>(
        sim::kPaperRegions[static_cast<size_t>(r)], ropts));
  }

  // Mixed workload per region: every request carries its entity id.
  Rng rng(4);
  std::vector<harness::WorkloadClient*> clients;
  for (int r = 0; r < 5; ++r) {
    std::vector<workload::Request> script;
    (void)script;  // requests are built manually below with entity ids
    harness::WorkloadClientOptions copts;
    copts.servers = {routers[static_cast<size_t>(r)]->id()};
    clients.push_back(cluster.AddNode<harness::WorkloadClient>(
        sim::kPaperRegions[static_cast<size_t>(r)], copts,
        std::vector<workload::Request>{}));
  }
  // WorkloadClient scripts carry no entity field, so drive mixed-entity
  // traffic with a bare probe instead.
  struct Probe : sim::Node {
    Probe(sim::NodeId id, sim::Region region) : Node(id, region) {}
    void HandleMessage(sim::NodeId, uint32_t, BufferReader& r) override {
      auto resp = TokenResponse::DecodeFrom(r);
      if (resp->committed()) ++committed;
      ++responses;
    }
    void Issue(sim::NodeId router, uint32_t entity, TokenOp op, int64_t n) {
      TokenRequest req;
      req.request_id = next_id++;
      req.entity = entity;
      req.op = op;
      req.amount = n;
      BufferWriter w;
      req.EncodeTo(w);
      Send(router, kMsgTokenRequest, w);
    }
    uint64_t next_id = 1;
    int committed = 0;
    int responses = 0;
  };
  auto* probe = cluster.AddNode<Probe>(sim::Region::kUsWest1);
  cluster.StartAll();

  int issued = 0;
  for (int round = 0; round < 600; ++round) {
    const auto& res = resources[rng.NextUint64(3)];
    const int region = static_cast<int>(rng.NextUint64(5));
    const bool release = rng.Bernoulli(0.3);
    probe->Issue(routers[static_cast<size_t>(region)]->id(), res.entity,
                 release ? TokenOp::kRelease : TokenOp::kAcquire,
                 rng.UniformInt(1, res.entity == 2 ? 40 : 5));
    ++issued;
    cluster.env().RunFor(Millis(20));
  }
  cluster.env().RunFor(Seconds(5));

  std::printf("issued %d mixed transactions; %d committed\n\n", issued,
              probe->committed);
  for (const auto& res : resources) {
    int64_t pool = 0;
    uint64_t redistributions = 0;
    for (auto* s : res.sites) {
      pool += s->tokens_left();
      redistributions += s->stats().reactive_redistributions +
                         s->stats().proactive_redistributions;
    }
    std::printf("%-10s limit=%-6lld pooled=%-6lld in-use=%-6lld "
                "redistributions=%llu\n",
                res.name, static_cast<long long>(res.limit),
                static_cast<long long>(pool),
                static_cast<long long>(res.limit - pool),
                static_cast<unsigned long long>(redistributions));
  }
  std::printf("\neach resource is isolated: its tokens, its sites, its own "
              "Avantan instances.\n");
  return 0;
}
