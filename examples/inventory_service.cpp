// Inventory management (§1 "Other Applications"): a flash sale sells a fixed
// stock of 2000 units from five geo-distributed storefronts. Every purchase
// is acquireTokens(stock, qty); every cancellation releases. The constraint
// "never oversell" is exactly Eq. 1.
//
// The demand is deliberately skewed — one region gets 60% of the traffic —
// so the even initial split is wrong and Avantan has to move stock toward
// the hot storefront. The example contrasts Samya with the same scenario
// without redistribution (stranded inventory).

#include <cstdio>

#include "core/site.h"
#include "harness/workload_client.h"
#include "sim/cluster.h"

using namespace samya;  // NOLINT — example code

namespace {

struct Storefront {
  core::Site* site = nullptr;
  harness::WorkloadClient* client = nullptr;
};

/// Builds 5 storefronts with a skewed purchase workload; returns sold count.
int64_t RunSale(bool redistribution, uint64_t seed) {
  sim::Cluster cluster(seed);
  std::vector<sim::NodeId> site_ids = {0, 1, 2, 3, 4};
  std::vector<Storefront> fronts(5);

  for (int i = 0; i < 5; ++i) {
    core::SiteOptions opts;
    opts.sites = site_ids;
    opts.initial_tokens = 400;  // 2000 units split evenly
    opts.protocol = core::Protocol::kAvantanAny;
    opts.enable_prediction = false;
    opts.enable_redistribution = redistribution;
    fronts[static_cast<size_t>(i)].site = cluster.AddNode<core::Site>(
        sim::kPaperRegions[static_cast<size_t>(i)], opts);
    fronts[static_cast<size_t>(i)].site->set_storage(
        cluster.StorageFor(static_cast<sim::NodeId>(i)));
  }

  // Skewed demand: region 0 sees 1500 purchase attempts, the rest 150 each.
  Rng rng(seed);
  for (int r = 0; r < 5; ++r) {
    std::vector<workload::Request> script;
    const int attempts = r == 0 ? 1500 : 150;
    for (int k = 0; k < attempts; ++k) {
      script.push_back({rng.UniformInt(Millis(10), Minutes(5)),
                        workload::Request::Type::kAcquire,
                        rng.UniformInt(1, 2)});
    }
    std::sort(script.begin(), script.end(),
              [](const auto& a, const auto& b) { return a.at < b.at; });
    harness::WorkloadClientOptions copts;
    copts.servers = {static_cast<sim::NodeId>(r)};
    fronts[static_cast<size_t>(r)].client =
        cluster.AddNode<harness::WorkloadClient>(
            sim::kPaperRegions[static_cast<size_t>(r)], copts, script);
  }

  cluster.StartAll();
  cluster.env().RunFor(Minutes(6));

  int64_t sold = 0, remaining = 0;
  for (const auto& f : fronts) {
    sold += static_cast<int64_t>(f.site->stats().committed_acquires) == 0
                ? 0
                : 0;  // sold tallied from tokens below
    remaining += f.site->tokens_left();
  }
  sold = 2000 - remaining;
  std::printf("  %-22s sold=%-5lld stranded=%-5lld  (hot region denied %llu)\n",
              redistribution ? "with redistribution" : "no redistribution",
              static_cast<long long>(sold), static_cast<long long>(remaining),
              static_cast<unsigned long long>(
                  fronts[0].client->stats().rejected +
                  fronts[0].client->stats().dropped));
  return sold;
}

}  // namespace

int main() {
  std::printf("Flash sale: 2000 units, 5 storefronts, demand skewed 60%% to "
              "one region\n\n");
  const int64_t with = RunSale(/*redistribution=*/true, 11);
  const int64_t without = RunSale(/*redistribution=*/false, 11);
  std::printf("\nredistribution sold %lld more units (%.0f%% of stock was "
              "stranded without it)\n",
              static_cast<long long>(with - without),
              100.0 * static_cast<double>(2000 - without) / 2000.0);
  return 0;
}
