// Cloud resource-tracking service — the paper's motivating scenario (§1).
//
// "ultraCloud" tracks how many VMs its customer "eCommerce.com" may run
// (limit 5000, set by the org admin). Teams in five regions create and
// delete VMs all day; every VM creation is an acquireTokens(VM, 1)
// transaction against Samya, every deletion a releaseTokens(VM, 1). The
// demand follows the synthetic Azure-like trace, phase-shifted per region.
//
// The example runs both Avantan versions over 10 compressed minutes and
// prints per-region outcomes plus the Eq. 1 audit.

#include <cstdio>

#include "harness/experiment.h"

using namespace samya;           // NOLINT — example code
using namespace samya::harness;  // NOLINT

int main() {
  std::printf("ultraCloud VM tracking for eCommerce.com (M_e = 5000 VMs)\n\n");

  for (SystemKind system :
       {SystemKind::kSamyaMajority, SystemKind::kSamyaAny}) {
    ExperimentOptions opts;
    opts.system = system;
    opts.duration = Minutes(10);
    opts.trace.days = 3;
    opts.seed = 7;

    Experiment tracker(opts);
    tracker.Setup();
    auto result = tracker.Run();

    std::printf("--- %s ---\n", SystemName(system));
    static const char* kTeams[5] = {"clothing (us-west1)",
                                    "electronics (asia-east2)",
                                    "groceries (europe-west2)",
                                    "media (australia-se1)",
                                    "logistics (southamerica-east1)"};
    for (size_t r = 0; r < result.per_client.size(); ++r) {
      const auto& s = result.per_client[r];
      std::printf("  %-32s created=%-6llu deleted=%-6llu denied=%llu\n",
                  kTeams[r],
                  static_cast<unsigned long long>(s.committed_acquires),
                  static_cast<unsigned long long>(s.committed_releases),
                  static_cast<unsigned long long>(s.rejected));
    }
    std::printf("  throughput: %.1f transactions/s, p99 latency %.1fms\n",
                result.MeanTps(Minutes(10)),
                result.aggregate.latency.P99() / 1000.0);
    std::printf("  redistributions: %llu proactive, %llu reactive\n",
                static_cast<unsigned long long>(
                    result.proactive_redistributions),
                static_cast<unsigned long long>(
                    result.reactive_redistributions));
    const int64_t pool = tracker.TotalSiteTokens();
    const int64_t in_use = tracker.ServerNetAcquires();
    std::printf("  audit: %lld VMs running + %lld tokens pooled = %lld "
                "(never exceeds the 5000 limit)\n\n",
                static_cast<long long>(in_use), static_cast<long long>(pool),
                static_cast<long long>(in_use + pool));
  }
  return 0;
}
