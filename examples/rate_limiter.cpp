// Geo-distributed rate limiting (§1 "Other Applications"): an API platform
// enforces a global quota of 3000 in-flight request slots across five edge
// locations. Each admitted API call acquires a slot and releases it when it
// finishes; the platform must never admit more than the quota allows.
//
// The example exercises the pluggable Redistribution Module: it runs the
// same bursty workload with the paper's greedy reallocator (maximise token
// usage) and with the proportional reallocator, and reports the difference.

#include <cstdio>
#include <memory>

#include "core/reallocator.h"
#include "core/site.h"
#include "harness/workload_client.h"
#include "sim/cluster.h"

using namespace samya;  // NOLINT — example code

namespace {

int64_t RunLimiter(std::shared_ptr<core::Reallocator> reallocator,
                   const char* name) {
  sim::Cluster cluster(/*seed=*/33);
  std::vector<sim::NodeId> edges = {0, 1, 2, 3, 4};
  std::vector<core::Site*> sites;
  for (int i = 0; i < 5; ++i) {
    core::SiteOptions opts;
    opts.sites = edges;
    opts.initial_tokens = 600;  // 3000-slot quota, split evenly
    opts.protocol = core::Protocol::kAvantanMajority;
    opts.enable_prediction = false;
    opts.reallocator = reallocator;
    auto* site = cluster.AddNode<core::Site>(
        sim::kPaperRegions[static_cast<size_t>(i)], opts);
    site->set_storage(cluster.StorageFor(site->id()));
    sites.push_back(site);
  }

  // Bursty edges: short admission storms (acquire) with slot releases
  // lagging ~2 seconds (request completion).
  Rng rng(33);
  std::vector<harness::WorkloadClient*> clients;
  for (int r = 0; r < 5; ++r) {
    std::vector<workload::Request> script;
    SimTime t = Millis(100);
    while (t < Minutes(4)) {
      const bool storm = rng.Bernoulli(0.2);
      const int calls = storm ? 250 : 25;
      for (int k = 0; k < calls; ++k) {
        const SimTime at = t + rng.UniformInt(0, Seconds(5));
        script.push_back({at, workload::Request::Type::kAcquire, 1});
        script.push_back(
            {at + Seconds(2), workload::Request::Type::kRelease, 1});
      }
      t += Seconds(5);
    }
    std::sort(script.begin(), script.end(),
              [](const auto& a, const auto& b) { return a.at < b.at; });
    harness::WorkloadClientOptions copts;
    copts.servers = {static_cast<sim::NodeId>(r)};
    clients.push_back(cluster.AddNode<harness::WorkloadClient>(
        sim::kPaperRegions[static_cast<size_t>(r)], copts, script));
  }

  cluster.StartAll();
  cluster.env().RunFor(Minutes(5));

  uint64_t admitted = 0, denied = 0;
  for (auto* c : clients) {
    admitted += c->stats().committed_acquires;
    denied += c->stats().rejected + c->stats().dropped;
  }
  int64_t pool = 0;
  for (auto* s : sites) pool += s->tokens_left();
  std::printf("  %-14s admitted=%-7llu denied=%-6llu slots free at end=%lld\n",
              name, static_cast<unsigned long long>(admitted),
              static_cast<unsigned long long>(denied),
              static_cast<long long>(pool));
  return static_cast<int64_t>(admitted);
}

}  // namespace

int main() {
  std::printf("Global API rate limiter: 3000 concurrent slots, 5 edges, "
              "bursty admission storms\n\n");
  RunLimiter(std::make_shared<core::GreedyReallocator>(), "greedy");
  RunLimiter(std::make_shared<core::ProportionalReallocator>(), "proportional");
  std::printf("\nthe Redistribution Module is pluggable (§4.4): both policies "
              "enforce the same quota,\nbut split scarce slots differently "
              "across competing edges.\n");
  return 0;
}
