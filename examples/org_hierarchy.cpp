// The paper's Fig 1 scenario end to end: ultraCloud tracks eCommerce.com's
// VM usage. Teams sit in a quota hierarchy (leaf usage percolates to the
// root, §1); the root-level availability is dis-aggregated across a Samya
// deployment so that team-level VM creations commit at the nearest site
// without a global consensus round.
//
// Each region hosts one org team; the region's tracking front-end keeps the
// team's slice of the hierarchy and charges/refunds it as Samya commits.

#include <cstdio>

#include "core/hierarchy.h"
#include "core/site.h"
#include "harness/workload_client.h"
#include "sim/cluster.h"

using namespace samya;  // NOLINT — example code

int main() {
  std::printf("Fig 1: eCommerce.com under ultraCloud, VM limit 5000\n\n");

  // The org structure (application-side, maintained by the tracking service).
  core::QuotaHierarchy org("eCommerce.com", 5000);
  const auto retail = org.AddNode("retail", org.root()).value();
  const auto clothing = org.AddNode("clothing", retail, 1200).value();
  const auto electronics = org.AddNode("electronics", retail, 1500).value();
  const auto platform = org.AddNode("platform", org.root()).value();
  const auto search = org.AddNode("search", platform, 1000).value();
  const auto ads = org.AddNode("ads", platform, 900).value();
  const auto ml = org.AddNode("ml", platform, 2000).value();
  const core::OrgNodeId teams[5] = {clothing, electronics, search, ads, ml};

  // The storage side: root availability dis-aggregated over 5 Samya sites.
  sim::Cluster cluster(99);
  std::vector<sim::NodeId> site_ids = {0, 1, 2, 3, 4};
  std::vector<core::Site*> sites;
  for (int i = 0; i < 5; ++i) {
    core::SiteOptions opts;
    opts.sites = site_ids;
    opts.initial_tokens = 1000;
    opts.protocol = core::Protocol::kAvantanAny;
    opts.enable_prediction = false;
    auto* site = cluster.AddNode<core::Site>(
        sim::kPaperRegions[static_cast<size_t>(i)], opts);
    site->set_storage(cluster.StorageFor(site->id()));
    sites.push_back(site);
  }

  // Each team creates VMs against its regional site; the sub-limits are
  // enforced in the hierarchy before the token acquire is even attempted.
  Rng rng(5);
  struct Counters {
    int created = 0, denied_sublimit = 0, denied_global = 0;
  } totals[5];
  std::vector<harness::WorkloadClient*> clients;  // unused; direct drive below

  // Drive synchronously through the simulation: each team issues a burst of
  // VM creations; we consult the hierarchy first, then Samya.
  struct Probe : sim::Node {
    Probe(sim::NodeId id, sim::Region region) : Node(id, region) {}
    void HandleMessage(sim::NodeId, uint32_t, BufferReader& r) override {
      auto resp = TokenResponse::DecodeFrom(r);
      last_committed = resp->committed();
      ++responses;
    }
    void Acquire(sim::NodeId site, int64_t n) {
      TokenRequest req;
      req.request_id = next_id++;
      req.op = TokenOp::kAcquire;
      req.amount = n;
      BufferWriter w;
      req.EncodeTo(w);
      Send(site, kMsgTokenRequest, w);
    }
    uint64_t next_id = 1;
    int responses = 0;
    bool last_committed = false;
  };
  auto* probe = cluster.AddNode<Probe>(sim::Region::kUsWest1);
  cluster.StartAll();

  for (int round = 0; round < 400; ++round) {
    const int team = static_cast<int>(rng.NextUint64(5));
    const int64_t vms = rng.UniformInt(1, 12);
    // 1. Hierarchy check: team and org-unit sub-limits.
    Status charge = org.Charge(teams[team], vms);
    if (!charge.ok()) {
      ++totals[team].denied_sublimit;
      continue;
    }
    // 2. Global availability through Samya (the hot root record).
    const int expected = probe->responses + 1;
    probe->Acquire(site_ids[static_cast<size_t>(team)], vms);
    while (probe->responses < expected) cluster.env().Step();
    cluster.env().RunFor(Millis(5));
    if (probe->last_committed) {
      ++totals[team].created;
    } else {
      ++totals[team].denied_global;
      // Roll the hierarchy back: the global limit said no.
      (void)org.Refund(teams[team], vms);
    }
  }
  cluster.env().RunFor(Seconds(5));

  static const char* kNames[5] = {"clothing", "electronics", "search", "ads",
                                  "ml"};
  for (int t = 0; t < 5; ++t) {
    std::printf("%-12s creations=%-4d denied(sub-limit)=%-3d "
                "denied(global)=%d\n",
                kNames[t], totals[t].created, totals[t].denied_sublimit,
                totals[t].denied_global);
  }
  std::printf("\norg tree (usage / limit):\n%s", org.ToString().c_str());

  int64_t pool = 0;
  for (auto* s : sites) pool += s->tokens_left();
  std::printf("\naudit: root usage %lld + pooled %lld = 5000\n",
              static_cast<long long>(org.Usage(org.root()).value()),
              static_cast<long long>(pool));
  return 0;
}
