
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/multipaxos.cc" "src/consensus/CMakeFiles/samya_consensus.dir/multipaxos.cc.o" "gcc" "src/consensus/CMakeFiles/samya_consensus.dir/multipaxos.cc.o.d"
  "/root/repo/src/consensus/paxos.cc" "src/consensus/CMakeFiles/samya_consensus.dir/paxos.cc.o" "gcc" "src/consensus/CMakeFiles/samya_consensus.dir/paxos.cc.o.d"
  "/root/repo/src/consensus/raft.cc" "src/consensus/CMakeFiles/samya_consensus.dir/raft.cc.o" "gcc" "src/consensus/CMakeFiles/samya_consensus.dir/raft.cc.o.d"
  "/root/repo/src/consensus/token_sm.cc" "src/consensus/CMakeFiles/samya_consensus.dir/token_sm.cc.o" "gcc" "src/consensus/CMakeFiles/samya_consensus.dir/token_sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/samya_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/samya_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/samya_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
