# Empty dependencies file for samya_consensus.
# This may be replaced when dependencies are built.
