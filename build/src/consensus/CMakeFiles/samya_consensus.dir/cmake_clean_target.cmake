file(REMOVE_RECURSE
  "libsamya_consensus.a"
)
