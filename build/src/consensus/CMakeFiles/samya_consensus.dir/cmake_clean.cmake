file(REMOVE_RECURSE
  "CMakeFiles/samya_consensus.dir/multipaxos.cc.o"
  "CMakeFiles/samya_consensus.dir/multipaxos.cc.o.d"
  "CMakeFiles/samya_consensus.dir/paxos.cc.o"
  "CMakeFiles/samya_consensus.dir/paxos.cc.o.d"
  "CMakeFiles/samya_consensus.dir/raft.cc.o"
  "CMakeFiles/samya_consensus.dir/raft.cc.o.d"
  "CMakeFiles/samya_consensus.dir/token_sm.cc.o"
  "CMakeFiles/samya_consensus.dir/token_sm.cc.o.d"
  "libsamya_consensus.a"
  "libsamya_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
