file(REMOVE_RECURSE
  "libsamya_common.a"
)
