# Empty dependencies file for samya_common.
# This may be replaced when dependencies are built.
