file(REMOVE_RECURSE
  "CMakeFiles/samya_common.dir/codec.cc.o"
  "CMakeFiles/samya_common.dir/codec.cc.o.d"
  "CMakeFiles/samya_common.dir/crc32.cc.o"
  "CMakeFiles/samya_common.dir/crc32.cc.o.d"
  "CMakeFiles/samya_common.dir/histogram.cc.o"
  "CMakeFiles/samya_common.dir/histogram.cc.o.d"
  "CMakeFiles/samya_common.dir/logging.cc.o"
  "CMakeFiles/samya_common.dir/logging.cc.o.d"
  "CMakeFiles/samya_common.dir/random.cc.o"
  "CMakeFiles/samya_common.dir/random.cc.o.d"
  "CMakeFiles/samya_common.dir/status.cc.o"
  "CMakeFiles/samya_common.dir/status.cc.o.d"
  "CMakeFiles/samya_common.dir/time.cc.o"
  "CMakeFiles/samya_common.dir/time.cc.o.d"
  "CMakeFiles/samya_common.dir/timeseries.cc.o"
  "CMakeFiles/samya_common.dir/timeseries.cc.o.d"
  "CMakeFiles/samya_common.dir/token_api.cc.o"
  "CMakeFiles/samya_common.dir/token_api.cc.o.d"
  "libsamya_common.a"
  "libsamya_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
