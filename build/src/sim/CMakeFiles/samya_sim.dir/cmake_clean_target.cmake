file(REMOVE_RECURSE
  "libsamya_sim.a"
)
