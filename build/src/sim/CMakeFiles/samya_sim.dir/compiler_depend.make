# Empty compiler generated dependencies file for samya_sim.
# This may be replaced when dependencies are built.
