file(REMOVE_RECURSE
  "CMakeFiles/samya_sim.dir/environment.cc.o"
  "CMakeFiles/samya_sim.dir/environment.cc.o.d"
  "CMakeFiles/samya_sim.dir/event_queue.cc.o"
  "CMakeFiles/samya_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/samya_sim.dir/latency_model.cc.o"
  "CMakeFiles/samya_sim.dir/latency_model.cc.o.d"
  "CMakeFiles/samya_sim.dir/network.cc.o"
  "CMakeFiles/samya_sim.dir/network.cc.o.d"
  "CMakeFiles/samya_sim.dir/node.cc.o"
  "CMakeFiles/samya_sim.dir/node.cc.o.d"
  "libsamya_sim.a"
  "libsamya_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
