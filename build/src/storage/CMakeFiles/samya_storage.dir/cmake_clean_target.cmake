file(REMOVE_RECURSE
  "libsamya_storage.a"
)
