file(REMOVE_RECURSE
  "CMakeFiles/samya_storage.dir/stable_storage.cc.o"
  "CMakeFiles/samya_storage.dir/stable_storage.cc.o.d"
  "CMakeFiles/samya_storage.dir/wal.cc.o"
  "CMakeFiles/samya_storage.dir/wal.cc.o.d"
  "libsamya_storage.a"
  "libsamya_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
