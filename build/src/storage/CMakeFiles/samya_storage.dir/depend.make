# Empty dependencies file for samya_storage.
# This may be replaced when dependencies are built.
