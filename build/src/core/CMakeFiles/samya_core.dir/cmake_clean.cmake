file(REMOVE_RECURSE
  "CMakeFiles/samya_core.dir/app_manager.cc.o"
  "CMakeFiles/samya_core.dir/app_manager.cc.o.d"
  "CMakeFiles/samya_core.dir/avantan.cc.o"
  "CMakeFiles/samya_core.dir/avantan.cc.o.d"
  "CMakeFiles/samya_core.dir/directory.cc.o"
  "CMakeFiles/samya_core.dir/directory.cc.o.d"
  "CMakeFiles/samya_core.dir/hierarchy.cc.o"
  "CMakeFiles/samya_core.dir/hierarchy.cc.o.d"
  "CMakeFiles/samya_core.dir/messages.cc.o"
  "CMakeFiles/samya_core.dir/messages.cc.o.d"
  "CMakeFiles/samya_core.dir/reallocator.cc.o"
  "CMakeFiles/samya_core.dir/reallocator.cc.o.d"
  "CMakeFiles/samya_core.dir/site.cc.o"
  "CMakeFiles/samya_core.dir/site.cc.o.d"
  "CMakeFiles/samya_core.dir/types.cc.o"
  "CMakeFiles/samya_core.dir/types.cc.o.d"
  "libsamya_core.a"
  "libsamya_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
