file(REMOVE_RECURSE
  "libsamya_core.a"
)
