# Empty compiler generated dependencies file for samya_core.
# This may be replaced when dependencies are built.
