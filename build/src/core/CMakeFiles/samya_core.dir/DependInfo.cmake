
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_manager.cc" "src/core/CMakeFiles/samya_core.dir/app_manager.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/app_manager.cc.o.d"
  "/root/repo/src/core/avantan.cc" "src/core/CMakeFiles/samya_core.dir/avantan.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/avantan.cc.o.d"
  "/root/repo/src/core/directory.cc" "src/core/CMakeFiles/samya_core.dir/directory.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/directory.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/core/CMakeFiles/samya_core.dir/hierarchy.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/hierarchy.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/core/CMakeFiles/samya_core.dir/messages.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/messages.cc.o.d"
  "/root/repo/src/core/reallocator.cc" "src/core/CMakeFiles/samya_core.dir/reallocator.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/reallocator.cc.o.d"
  "/root/repo/src/core/site.cc" "src/core/CMakeFiles/samya_core.dir/site.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/site.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/samya_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/samya_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/samya_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/samya_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/samya_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/samya_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/samya_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
