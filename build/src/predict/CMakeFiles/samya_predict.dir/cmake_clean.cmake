file(REMOVE_RECURSE
  "CMakeFiles/samya_predict.dir/arima.cc.o"
  "CMakeFiles/samya_predict.dir/arima.cc.o.d"
  "CMakeFiles/samya_predict.dir/lstm.cc.o"
  "CMakeFiles/samya_predict.dir/lstm.cc.o.d"
  "CMakeFiles/samya_predict.dir/matrix.cc.o"
  "CMakeFiles/samya_predict.dir/matrix.cc.o.d"
  "CMakeFiles/samya_predict.dir/metrics.cc.o"
  "CMakeFiles/samya_predict.dir/metrics.cc.o.d"
  "CMakeFiles/samya_predict.dir/optimizer.cc.o"
  "CMakeFiles/samya_predict.dir/optimizer.cc.o.d"
  "CMakeFiles/samya_predict.dir/predictor.cc.o"
  "CMakeFiles/samya_predict.dir/predictor.cc.o.d"
  "libsamya_predict.a"
  "libsamya_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
