file(REMOVE_RECURSE
  "libsamya_predict.a"
)
