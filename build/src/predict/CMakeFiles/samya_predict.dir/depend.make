# Empty dependencies file for samya_predict.
# This may be replaced when dependencies are built.
