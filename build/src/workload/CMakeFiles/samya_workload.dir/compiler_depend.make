# Empty compiler generated dependencies file for samya_workload.
# This may be replaced when dependencies are built.
