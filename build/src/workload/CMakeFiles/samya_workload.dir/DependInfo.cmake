
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/azure_generator.cc" "src/workload/CMakeFiles/samya_workload.dir/azure_generator.cc.o" "gcc" "src/workload/CMakeFiles/samya_workload.dir/azure_generator.cc.o.d"
  "/root/repo/src/workload/request_stream.cc" "src/workload/CMakeFiles/samya_workload.dir/request_stream.cc.o" "gcc" "src/workload/CMakeFiles/samya_workload.dir/request_stream.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/samya_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/samya_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/transform.cc" "src/workload/CMakeFiles/samya_workload.dir/transform.cc.o" "gcc" "src/workload/CMakeFiles/samya_workload.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/samya_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
