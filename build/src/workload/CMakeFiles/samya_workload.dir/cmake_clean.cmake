file(REMOVE_RECURSE
  "CMakeFiles/samya_workload.dir/azure_generator.cc.o"
  "CMakeFiles/samya_workload.dir/azure_generator.cc.o.d"
  "CMakeFiles/samya_workload.dir/request_stream.cc.o"
  "CMakeFiles/samya_workload.dir/request_stream.cc.o.d"
  "CMakeFiles/samya_workload.dir/trace.cc.o"
  "CMakeFiles/samya_workload.dir/trace.cc.o.d"
  "CMakeFiles/samya_workload.dir/transform.cc.o"
  "CMakeFiles/samya_workload.dir/transform.cc.o.d"
  "libsamya_workload.a"
  "libsamya_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
