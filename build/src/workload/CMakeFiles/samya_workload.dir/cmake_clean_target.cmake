file(REMOVE_RECURSE
  "libsamya_workload.a"
)
