file(REMOVE_RECURSE
  "CMakeFiles/samya_baselines.dir/demarcation.cc.o"
  "CMakeFiles/samya_baselines.dir/demarcation.cc.o.d"
  "CMakeFiles/samya_baselines.dir/replicated.cc.o"
  "CMakeFiles/samya_baselines.dir/replicated.cc.o.d"
  "CMakeFiles/samya_baselines.dir/site_escrow.cc.o"
  "CMakeFiles/samya_baselines.dir/site_escrow.cc.o.d"
  "libsamya_baselines.a"
  "libsamya_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
