file(REMOVE_RECURSE
  "libsamya_baselines.a"
)
