
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/demarcation.cc" "src/baselines/CMakeFiles/samya_baselines.dir/demarcation.cc.o" "gcc" "src/baselines/CMakeFiles/samya_baselines.dir/demarcation.cc.o.d"
  "/root/repo/src/baselines/replicated.cc" "src/baselines/CMakeFiles/samya_baselines.dir/replicated.cc.o" "gcc" "src/baselines/CMakeFiles/samya_baselines.dir/replicated.cc.o.d"
  "/root/repo/src/baselines/site_escrow.cc" "src/baselines/CMakeFiles/samya_baselines.dir/site_escrow.cc.o" "gcc" "src/baselines/CMakeFiles/samya_baselines.dir/site_escrow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/samya_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/samya_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/samya_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/samya_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
