# Empty dependencies file for samya_baselines.
# This may be replaced when dependencies are built.
