# Empty dependencies file for samya_harness.
# This may be replaced when dependencies are built.
