file(REMOVE_RECURSE
  "CMakeFiles/samya_harness.dir/experiment.cc.o"
  "CMakeFiles/samya_harness.dir/experiment.cc.o.d"
  "CMakeFiles/samya_harness.dir/workload_client.cc.o"
  "CMakeFiles/samya_harness.dir/workload_client.cc.o.d"
  "libsamya_harness.a"
  "libsamya_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
