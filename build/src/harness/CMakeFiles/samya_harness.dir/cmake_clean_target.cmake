file(REMOVE_RECURSE
  "libsamya_harness.a"
)
