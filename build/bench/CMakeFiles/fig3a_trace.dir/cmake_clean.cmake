file(REMOVE_RECURSE
  "CMakeFiles/fig3a_trace.dir/fig3a_trace.cc.o"
  "CMakeFiles/fig3a_trace.dir/fig3a_trace.cc.o.d"
  "fig3a_trace"
  "fig3a_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
