# Empty dependencies file for fig3a_trace.
# This may be replaced when dependencies are built.
