file(REMOVE_RECURSE
  "CMakeFiles/fig3d_partition.dir/fig3d_partition.cc.o"
  "CMakeFiles/fig3d_partition.dir/fig3d_partition.cc.o.d"
  "fig3d_partition"
  "fig3d_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
