# Empty dependencies file for fig3d_partition.
# This may be replaced when dependencies are built.
