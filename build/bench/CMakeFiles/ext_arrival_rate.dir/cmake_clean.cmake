file(REMOVE_RECURSE
  "CMakeFiles/ext_arrival_rate.dir/ext_arrival_rate.cc.o"
  "CMakeFiles/ext_arrival_rate.dir/ext_arrival_rate.cc.o.d"
  "ext_arrival_rate"
  "ext_arrival_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_arrival_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
