# Empty dependencies file for ext_arrival_rate.
# This may be replaced when dependencies are built.
