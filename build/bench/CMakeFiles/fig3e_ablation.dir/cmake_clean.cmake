file(REMOVE_RECURSE
  "CMakeFiles/fig3e_ablation.dir/fig3e_ablation.cc.o"
  "CMakeFiles/fig3e_ablation.dir/fig3e_ablation.cc.o.d"
  "fig3e_ablation"
  "fig3e_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3e_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
