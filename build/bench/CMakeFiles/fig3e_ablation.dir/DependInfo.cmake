
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3e_ablation.cc" "bench/CMakeFiles/fig3e_ablation.dir/fig3e_ablation.cc.o" "gcc" "bench/CMakeFiles/fig3e_ablation.dir/fig3e_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/samya_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/samya_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/samya_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/samya_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/samya_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/samya_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/samya_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/samya_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/samya_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
