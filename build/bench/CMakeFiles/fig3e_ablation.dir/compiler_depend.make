# Empty compiler generated dependencies file for fig3e_ablation.
# This may be replaced when dependencies are built.
