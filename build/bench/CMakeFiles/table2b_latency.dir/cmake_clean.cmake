file(REMOVE_RECURSE
  "CMakeFiles/table2b_latency.dir/table2b_latency.cc.o"
  "CMakeFiles/table2b_latency.dir/table2b_latency.cc.o.d"
  "table2b_latency"
  "table2b_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2b_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
