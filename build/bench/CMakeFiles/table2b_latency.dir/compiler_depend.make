# Empty compiler generated dependencies file for table2b_latency.
# This may be replaced when dependencies are built.
