file(REMOVE_RECURSE
  "CMakeFiles/fig3b_throughput.dir/fig3b_throughput.cc.o"
  "CMakeFiles/fig3b_throughput.dir/fig3b_throughput.cc.o.d"
  "fig3b_throughput"
  "fig3b_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
