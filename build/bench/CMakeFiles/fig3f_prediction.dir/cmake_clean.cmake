file(REMOVE_RECURSE
  "CMakeFiles/fig3f_prediction.dir/fig3f_prediction.cc.o"
  "CMakeFiles/fig3f_prediction.dir/fig3f_prediction.cc.o.d"
  "fig3f_prediction"
  "fig3f_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3f_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
