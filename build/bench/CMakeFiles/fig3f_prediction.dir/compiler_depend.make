# Empty compiler generated dependencies file for fig3f_prediction.
# This may be replaced when dependencies are built.
