file(REMOVE_RECURSE
  "CMakeFiles/ext_max_limit.dir/ext_max_limit.cc.o"
  "CMakeFiles/ext_max_limit.dir/ext_max_limit.cc.o.d"
  "ext_max_limit"
  "ext_max_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_max_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
