# Empty dependencies file for ext_max_limit.
# This may be replaced when dependencies are built.
