# Empty compiler generated dependencies file for table2a_prediction.
# This may be replaced when dependencies are built.
