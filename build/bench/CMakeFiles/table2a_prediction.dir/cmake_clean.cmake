file(REMOVE_RECURSE
  "CMakeFiles/table2a_prediction.dir/table2a_prediction.cc.o"
  "CMakeFiles/table2a_prediction.dir/table2a_prediction.cc.o.d"
  "table2a_prediction"
  "table2a_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2a_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
