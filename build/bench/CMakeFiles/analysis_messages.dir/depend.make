# Empty dependencies file for analysis_messages.
# This may be replaced when dependencies are built.
