file(REMOVE_RECURSE
  "CMakeFiles/analysis_messages.dir/analysis_messages.cc.o"
  "CMakeFiles/analysis_messages.dir/analysis_messages.cc.o.d"
  "analysis_messages"
  "analysis_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
