# Empty dependencies file for fig3h_readwrite.
# This may be replaced when dependencies are built.
