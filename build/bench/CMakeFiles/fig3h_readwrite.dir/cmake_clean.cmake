file(REMOVE_RECURSE
  "CMakeFiles/fig3h_readwrite.dir/fig3h_readwrite.cc.o"
  "CMakeFiles/fig3h_readwrite.dir/fig3h_readwrite.cc.o.d"
  "fig3h_readwrite"
  "fig3h_readwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3h_readwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
