file(REMOVE_RECURSE
  "CMakeFiles/fig3g_scalability.dir/fig3g_scalability.cc.o"
  "CMakeFiles/fig3g_scalability.dir/fig3g_scalability.cc.o.d"
  "fig3g_scalability"
  "fig3g_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3g_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
