# Empty compiler generated dependencies file for fig3g_scalability.
# This may be replaced when dependencies are built.
