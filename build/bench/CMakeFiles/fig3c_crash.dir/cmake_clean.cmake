file(REMOVE_RECURSE
  "CMakeFiles/fig3c_crash.dir/fig3c_crash.cc.o"
  "CMakeFiles/fig3c_crash.dir/fig3c_crash.cc.o.d"
  "fig3c_crash"
  "fig3c_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
