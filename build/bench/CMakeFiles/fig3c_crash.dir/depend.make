# Empty dependencies file for fig3c_crash.
# This may be replaced when dependencies are built.
