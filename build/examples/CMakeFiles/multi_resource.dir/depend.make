# Empty dependencies file for multi_resource.
# This may be replaced when dependencies are built.
