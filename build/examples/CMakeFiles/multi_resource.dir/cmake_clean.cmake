file(REMOVE_RECURSE
  "CMakeFiles/multi_resource.dir/multi_resource.cpp.o"
  "CMakeFiles/multi_resource.dir/multi_resource.cpp.o.d"
  "multi_resource"
  "multi_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
