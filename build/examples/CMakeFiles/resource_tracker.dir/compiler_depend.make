# Empty compiler generated dependencies file for resource_tracker.
# This may be replaced when dependencies are built.
