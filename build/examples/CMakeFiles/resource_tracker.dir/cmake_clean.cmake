file(REMOVE_RECURSE
  "CMakeFiles/resource_tracker.dir/resource_tracker.cpp.o"
  "CMakeFiles/resource_tracker.dir/resource_tracker.cpp.o.d"
  "resource_tracker"
  "resource_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
