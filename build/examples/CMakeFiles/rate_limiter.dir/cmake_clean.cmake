file(REMOVE_RECURSE
  "CMakeFiles/rate_limiter.dir/rate_limiter.cpp.o"
  "CMakeFiles/rate_limiter.dir/rate_limiter.cpp.o.d"
  "rate_limiter"
  "rate_limiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
