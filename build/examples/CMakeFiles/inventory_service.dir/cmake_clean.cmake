file(REMOVE_RECURSE
  "CMakeFiles/inventory_service.dir/inventory_service.cpp.o"
  "CMakeFiles/inventory_service.dir/inventory_service.cpp.o.d"
  "inventory_service"
  "inventory_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
