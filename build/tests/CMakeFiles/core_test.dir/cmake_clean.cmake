file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/app_manager_test.cc.o"
  "CMakeFiles/core_test.dir/core/app_manager_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/avantan_test.cc.o"
  "CMakeFiles/core_test.dir/core/avantan_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/directory_test.cc.o"
  "CMakeFiles/core_test.dir/core/directory_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hierarchy_test.cc.o"
  "CMakeFiles/core_test.dir/core/hierarchy_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/messages_test.cc.o"
  "CMakeFiles/core_test.dir/core/messages_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/reallocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/reallocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/site_edge_test.cc.o"
  "CMakeFiles/core_test.dir/core/site_edge_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/site_test.cc.o"
  "CMakeFiles/core_test.dir/core/site_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
