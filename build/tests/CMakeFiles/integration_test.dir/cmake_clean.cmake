file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/avantan_agreement_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/avantan_agreement_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/experiment_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/experiment_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/failure_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/failure_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/invariant_property_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/invariant_property_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
