file(REMOVE_RECURSE
  "CMakeFiles/predict_test.dir/predict/arima_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/arima_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/lstm_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/lstm_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/matrix_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/matrix_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/optimizer_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/optimizer_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/predictor_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/predictor_test.cc.o.d"
  "predict_test"
  "predict_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
