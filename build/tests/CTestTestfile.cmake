# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;25;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(predict_test "/root/repo/build/tests/predict_test")
set_tests_properties(predict_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;29;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(consensus_test "/root/repo/build/tests/consensus_test")
set_tests_properties(consensus_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;36;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;42;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;52;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;57;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;60;samya_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;66;samya_test;/root/repo/tests/CMakeLists.txt;0;")
