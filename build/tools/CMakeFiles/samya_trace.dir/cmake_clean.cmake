file(REMOVE_RECURSE
  "CMakeFiles/samya_trace.dir/samya_trace.cc.o"
  "CMakeFiles/samya_trace.dir/samya_trace.cc.o.d"
  "samya_trace"
  "samya_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
