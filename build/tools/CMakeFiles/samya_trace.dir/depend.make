# Empty dependencies file for samya_trace.
# This may be replaced when dependencies are built.
