file(REMOVE_RECURSE
  "CMakeFiles/samya_bench.dir/samya_bench.cc.o"
  "CMakeFiles/samya_bench.dir/samya_bench.cc.o.d"
  "samya_bench"
  "samya_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samya_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
