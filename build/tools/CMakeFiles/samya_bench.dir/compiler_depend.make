# Empty compiler generated dependencies file for samya_bench.
# This may be replaced when dependencies are built.
