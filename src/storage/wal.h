#ifndef SAMYA_STORAGE_WAL_H_
#define SAMYA_STORAGE_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace samya::storage {

/// \brief Append-only write-ahead log with per-record CRC-32C integrity.
///
/// Record layout on disk:
///   [u32 masked_crc32c(payload)] [u32 payload_len] [payload bytes]
///
/// `ReadAll` replays every intact record and stops at the first torn or
/// corrupt record (a crashed writer's partial tail), reporting how many bytes
/// were discarded — the standard RocksDB/LevelDB recovery contract.
///
/// Recovery contract (torn-tail truncation): `Open` appends at the physical
/// end of the file, garbage included. After a crash left a torn/corrupt tail,
/// the owner must truncate the log back to the intact prefix *before*
/// reopening for append — `ReadAll` with `discarded_bytes`, then `Rewrite`
/// with the intact records when `discarded_bytes > 0` — or every subsequent
/// append lands behind the garbage and is permanently unreadable (`ReadAll`
/// stops at the torn record forever). `FileStableStorage::Open` implements
/// exactly this sequence.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending. Appends go
  /// to the physical end of the file: callers must have truncated any torn
  /// tail first (see the recovery contract above).
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record (buffered; call Sync to flush).
  Status Append(const std::vector<uint8_t>& record);

  /// Flushes buffered appends to the OS.
  Status Sync();

  const std::string& path() const { return path_; }

  /// Replays all intact records of the log at `path`. A missing file yields
  /// an empty record list. If a torn/corrupt tail was discarded,
  /// `*discarded_bytes` (optional) is set to its length.
  static Result<std::vector<std::vector<uint8_t>>> ReadAll(
      const std::string& path, size_t* discarded_bytes = nullptr);

  /// Atomically replaces the log contents with the given records (used for
  /// compaction: write snapshot records, drop the old tail).
  static Status Rewrite(const std::string& path,
                        const std::vector<std::vector<uint8_t>>& records);

 private:
  WriteAheadLog(std::string path, std::FILE* f)
      : path_(std::move(path)), f_(f) {}

  std::string path_;
  std::FILE* f_;
};

}  // namespace samya::storage

#endif  // SAMYA_STORAGE_WAL_H_
