#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#include "common/codec.h"
#include "common/crc32.h"
#include "common/macros.h"

namespace samya::storage {

namespace {

Status WriteRecord(std::FILE* f, const std::vector<uint8_t>& record) {
  BufferWriter header;
  header.PutU32(MaskCrc(Crc32c(record)));
  header.PutU32(static_cast<uint32_t>(record.size()));
  if (std::fwrite(header.buffer().data(), 1, header.size(), f) !=
      header.size()) {
    return Status::Corruption("wal: short header write");
  }
  if (!record.empty() &&
      std::fwrite(record.data(), 1, record.size(), f) != record.size()) {
    return Status::Corruption("wal: short payload write");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Corruption("wal: cannot open " + path + ": " +
                              std::strerror(errno));
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(path, f));
}

WriteAheadLog::~WriteAheadLog() {
  if (f_ != nullptr) std::fclose(f_);
}

Status WriteAheadLog::Append(const std::vector<uint8_t>& record) {
  return WriteRecord(f_, record);
}

Status WriteAheadLog::Sync() {
  if (std::fflush(f_) != 0) return Status::Corruption("wal: fflush failed");
  return Status::OK();
}

Result<std::vector<std::vector<uint8_t>>> WriteAheadLog::ReadAll(
    const std::string& path, size_t* discarded_bytes) {
  if (discarded_bytes != nullptr) *discarded_bytes = 0;
  std::vector<std::vector<uint8_t>> records;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return records;  // no log yet: empty state

  // Read the whole file, then scan records; logs here are small (protocol
  // state), so this is simpler and safer than streaming.
  std::vector<uint8_t> data;
  uint8_t chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  std::fclose(f);

  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    BufferReader header(data.data() + pos, 8);
    const uint32_t masked = header.GetU32().value();
    const uint32_t len = header.GetU32().value();
    if (pos + 8 + len > data.size()) break;  // torn tail
    std::vector<uint8_t> payload(data.begin() + pos + 8,
                                 data.begin() + pos + 8 + len);
    if (UnmaskCrc(masked) != Crc32c(payload)) break;  // corrupt tail
    records.push_back(std::move(payload));
    pos += 8 + len;
  }
  if (discarded_bytes != nullptr) *discarded_bytes = data.size() - pos;
  return records;
}

Status WriteAheadLog::Rewrite(const std::string& path,
                              const std::vector<std::vector<uint8_t>>& records) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Corruption("wal: cannot open " + tmp);
  for (const auto& r : records) {
    Status s = WriteRecord(f, r);
    if (!s.ok()) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return s;
    }
  }
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::Corruption("wal: rewrite flush failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Corruption("wal: rename failed");
  }
  return Status::OK();
}

}  // namespace samya::storage
