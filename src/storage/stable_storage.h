#ifndef SAMYA_STORAGE_STABLE_STORAGE_H_
#define SAMYA_STORAGE_STABLE_STORAGE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/wal.h"

namespace samya::storage {

/// \brief Durable key-value store a node uses to survive crashes.
///
/// Per §3.1 of the paper, "when a crashed site recovers, it reconstructs its
/// previous state (typically stored on stable storage)". Sites persist their
/// token state and Avantan protocol variables (BallotNum, AcceptVal,
/// AcceptNum, Decision) here, and reload them in `HandleRecover`.
class StableStorage {
 public:
  virtual ~StableStorage() = default;

  virtual Status Put(const std::string& key,
                     const std::vector<uint8_t>& value) = 0;
  /// Returns kNotFound for absent keys.
  virtual Result<std::vector<uint8_t>> Get(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual std::vector<std::string> Keys() const = 0;

  // Convenience wrappers for string values.
  Status PutString(const std::string& key, const std::string& value);
  Result<std::string> GetString(const std::string& key) const;
};

/// In-memory implementation. "Durability" in simulation means the map is
/// owned by the cluster, not the node object, so a crash/recover cycle of the
/// node leaves it intact.
class InMemoryStableStorage : public StableStorage {
 public:
  Status Put(const std::string& key, const std::vector<uint8_t>& value) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  std::vector<std::string> Keys() const override;

  size_t size() const { return map_.size(); }

 private:
  std::map<std::string, std::vector<uint8_t>> map_;
};

/// File-backed implementation: a WAL of Put/Delete records replayed at open,
/// compacted when the log grows past `compaction_threshold` records.
class FileStableStorage : public StableStorage {
 public:
  static Result<std::unique_ptr<FileStableStorage>> Open(
      const std::string& path, size_t compaction_threshold = 1024);
  ~FileStableStorage() override;

  Status Put(const std::string& key, const std::vector<uint8_t>& value) override;
  Result<std::vector<uint8_t>> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  std::vector<std::string> Keys() const override;

 private:
  FileStableStorage(std::string path, size_t threshold);

  /// Appends + syncs one op record. Compaction is the caller's job (via
  /// `MaybeCompact`), and only after the op is applied to `map_`: the
  /// compacted log is rewritten from the map, so compacting before the map
  /// reflects the new op would drop the just-synced record.
  Status AppendRecord(uint8_t op, const std::string& key,
                      const std::vector<uint8_t>& value);
  Status MaybeCompact();

  std::string path_;
  size_t compaction_threshold_;
  /// Cached "compact_before_apply" test-only mutation flag (PR 4's bug, kept
  /// reachable for checker mutation tests); read once at construction.
  bool mutate_compact_before_apply_ = false;
  size_t log_records_ = 0;
  std::unique_ptr<WriteAheadLog> wal_;
  std::map<std::string, std::vector<uint8_t>> map_;
};

}  // namespace samya::storage

#endif  // SAMYA_STORAGE_STABLE_STORAGE_H_
