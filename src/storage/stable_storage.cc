#include "storage/stable_storage.h"

#include "common/codec.h"
#include "common/macros.h"
#include "common/testonly_mutation.h"
#include "storage/wal.h"

namespace samya::storage {

namespace {
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
}  // namespace

Status StableStorage::PutString(const std::string& key,
                                const std::string& value) {
  return Put(key, std::vector<uint8_t>(value.begin(), value.end()));
}

Result<std::string> StableStorage::GetString(const std::string& key) const {
  SAMYA_ASSIGN_OR_RETURN(std::vector<uint8_t> v, Get(key));
  return std::string(v.begin(), v.end());
}

Status InMemoryStableStorage::Put(const std::string& key,
                                  const std::vector<uint8_t>& value) {
  map_[key] = value;
  return Status::OK();
}

Result<std::vector<uint8_t>> InMemoryStableStorage::Get(
    const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound(key);
  return it->second;
}

Status InMemoryStableStorage::Delete(const std::string& key) {
  map_.erase(key);
  return Status::OK();
}

std::vector<std::string> InMemoryStableStorage::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(map_.size());
  for (const auto& [k, _] : map_) keys.push_back(k);
  return keys;
}

Result<std::unique_ptr<FileStableStorage>> FileStableStorage::Open(
    const std::string& path, size_t compaction_threshold) {
  std::unique_ptr<FileStableStorage> store(
      new FileStableStorage(path, compaction_threshold));
  size_t discarded_bytes = 0;
  SAMYA_ASSIGN_OR_RETURN(auto records,
                         WriteAheadLog::ReadAll(path, &discarded_bytes));
  for (const auto& rec : records) {
    BufferReader r(rec);
    SAMYA_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    SAMYA_ASSIGN_OR_RETURN(std::string key, r.GetString());
    if (op == kOpPut) {
      SAMYA_ASSIGN_OR_RETURN(std::string val, r.GetString());
      store->map_[key] = std::vector<uint8_t>(val.begin(), val.end());
    } else if (op == kOpDelete) {
      store->map_.erase(key);
    } else {
      return Status::Corruption("stable storage: unknown op");
    }
  }
  store->log_records_ = records.size();
  if (discarded_bytes > 0) {
    // A crashed writer left a torn/corrupt tail. `WriteAheadLog::Open`
    // appends at the end of the file, so without truncating here every
    // record written from now on would sit behind the garbage bytes and
    // `ReadAll` (which stops at the first bad record) would never see it
    // again. Rewrite the log to exactly the intact prefix first.
    SAMYA_RETURN_IF_ERROR(WriteAheadLog::Rewrite(path, records));
  }
  SAMYA_ASSIGN_OR_RETURN(store->wal_, WriteAheadLog::Open(path));
  return store;
}

FileStableStorage::FileStableStorage(std::string path, size_t threshold)
    : path_(std::move(path)),
      compaction_threshold_(threshold),
      mutate_compact_before_apply_(
          MutationEnabled(kMutationCompactBeforeApply)) {}

FileStableStorage::~FileStableStorage() = default;

Status FileStableStorage::AppendRecord(uint8_t op, const std::string& key,
                                       const std::vector<uint8_t>& value) {
  BufferWriter w;
  w.PutU8(op);
  w.PutString(key);
  if (op == kOpPut) {
    w.PutString(std::string(value.begin(), value.end()));
  }
  SAMYA_RETURN_IF_ERROR(wal_->Append(w.buffer()));
  SAMYA_RETURN_IF_ERROR(wal_->Sync());
  ++log_records_;
  return Status::OK();
}

Status FileStableStorage::MaybeCompact() {
  if (log_records_ <= compaction_threshold_ ||
      log_records_ <= 2 * map_.size()) {
    return Status::OK();
  }
  std::vector<std::vector<uint8_t>> records;
  records.reserve(map_.size());
  for (const auto& [k, v] : map_) {
    BufferWriter w;
    w.PutU8(kOpPut);
    w.PutString(k);
    w.PutString(std::string(v.begin(), v.end()));
    records.push_back(w.Release());
  }
  wal_.reset();  // close before rewrite
  SAMYA_RETURN_IF_ERROR(WriteAheadLog::Rewrite(path_, records));
  SAMYA_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(path_));
  log_records_ = records.size();
  return Status::OK();
}

Status FileStableStorage::Put(const std::string& key,
                              const std::vector<uint8_t>& value) {
  SAMYA_RETURN_IF_ERROR(AppendRecord(kOpPut, key, value));
  if (mutate_compact_before_apply_) {
    // Test-only resurrection of PR 4's bug: compacting from the pre-op map
    // rewrites the log without the record that was just synced.
    SAMYA_RETURN_IF_ERROR(MaybeCompact());
    map_[key] = value;
    return Status::OK();
  }
  // Apply to the map *before* compaction may run: a compaction triggered by
  // this very append rewrites the log from the map, and rewriting from the
  // pre-op map would silently drop the record that was just synced.
  map_[key] = value;
  return MaybeCompact();
}

Result<std::vector<uint8_t>> FileStableStorage::Get(
    const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound(key);
  return it->second;
}

Status FileStableStorage::Delete(const std::string& key) {
  SAMYA_RETURN_IF_ERROR(AppendRecord(kOpDelete, key, {}));
  map_.erase(key);
  return MaybeCompact();
}

std::vector<std::string> FileStableStorage::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(map_.size());
  for (const auto& [k, _] : map_) keys.push_back(k);
  return keys;
}

}  // namespace samya::storage
