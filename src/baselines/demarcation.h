#ifndef SAMYA_BASELINES_DEMARCATION_H_
#define SAMYA_BASELINES_DEMARCATION_H_

#include <deque>
#include <map>
#include <unordered_map>

#include "common/token_api.h"
#include "sim/node.h"

namespace samya::baselines {

/// Message types 250-259.
inline constexpr uint32_t kMsgBorrowRequest = 250;
inline constexpr uint32_t kMsgBorrowReply = 251;

struct DemarcationOptions {
  std::vector<sim::NodeId> sites;  ///< all sites, including self
  int64_t initial_tokens = 1000;   ///< equal escrow share of M_e
  /// Extra tokens requested beyond the immediate need, to amortize borrows.
  int64_t borrow_slack = 10;
  /// Fraction of its pool a lender is willing to part with per borrow.
  double lend_fraction = 0.35;
};

/// \brief The paper's Demarcation/Escrow baseline (§5): site escrows (Kumar &
/// Stonebraker) + demarcation-style pairwise limit transfers (Barbara &
/// Garcia-Molina, extended to >2 sites following Alonso & El Abbadi).
///
/// Each site serves from its local escrow; on exhaustion it borrows from
/// peers one at a time, in a fixed round-robin order, without any demand
/// prediction or global redistribution. Pairwise transfers conserve tokens:
/// the lender debits before the grant travels. As in the original protocols
/// the network is assumed reliable — a lost BorrowReply permanently strands
/// the granted tokens and blocks the borrower (the paper's stated reason for
/// excluding this baseline from the failure experiments).
class DemarcationSite : public sim::Node {
 public:
  DemarcationSite(sim::NodeId id, sim::Region region, DemarcationOptions opts);

  void Start() override { tokens_left_ = opts_.initial_tokens; }
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;

  int64_t tokens_left() const { return tokens_left_; }
  uint64_t borrows_attempted() const { return borrows_attempted_; }

 private:
  struct QueuedRequest {
    sim::NodeId client = sim::kInvalidNode;
    TokenRequest request;
  };

  void ServeOrBorrow(sim::NodeId client, const TokenRequest& req);
  void RememberWrite(uint64_t request_id, int64_t value);
  const int64_t* LookupWrite(uint64_t request_id) const;
  bool ServeLocally(sim::NodeId client, const TokenRequest& req);
  void Respond(sim::NodeId client, uint64_t request_id, TokenStatus status,
               int64_t value);
  void AskNextPeer();
  void DrainQueue();

  void OnBorrowRequest(sim::NodeId from, BufferReader& r);
  void OnBorrowReply(BufferReader& r);

  DemarcationOptions opts_;
  int64_t tokens_left_ = 0;

  // Borrowing state machine: at most one outstanding borrow.
  bool borrowing_ = false;
  int64_t needed_ = 0;
  size_t peers_asked_ = 0;
  size_t next_peer_ = 0;
  uint64_t next_borrow_id_ = 1;
  uint64_t outstanding_borrow_ = 0;
  std::deque<QueuedRequest> queue_;
  uint64_t borrows_attempted_ = 0;
  /// At-most-once guard against client retries (see core::Site); bounded
  /// via two-generation rotation.
  static constexpr size_t kDedupGenerationSize = 1 << 17;
  std::unordered_map<uint64_t, int64_t> committed_writes_;
  std::unordered_map<uint64_t, int64_t> committed_writes_prev_;
};

}  // namespace samya::baselines

#endif  // SAMYA_BASELINES_DEMARCATION_H_
