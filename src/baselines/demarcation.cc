#include "baselines/demarcation.h"

#include <algorithm>

#include "common/macros.h"

namespace samya::baselines {

DemarcationSite::DemarcationSite(sim::NodeId id, sim::Region region,
                                 DemarcationOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.sites.empty());
  // Start the round-robin at our successor so borrow load spreads.
  for (size_t i = 0; i < opts_.sites.size(); ++i) {
    if (opts_.sites[i] == this->id()) {
      next_peer_ = (i + 1) % opts_.sites.size();
      break;
    }
  }
}

void DemarcationSite::HandleMessage(sim::NodeId from, uint32_t type,
                                    BufferReader& r) {
  switch (type) {
    case kMsgTokenRequest: {
      auto req = TokenRequest::DecodeFrom(r);
      if (!req.ok()) return;
      if (req->op != TokenOp::kRead && req->amount <= 0) {
        Respond(from, req->request_id, TokenStatus::kRejected, tokens_left_);
        return;
      }
      if (req->op != TokenOp::kRead) {
        if (const int64_t* cached = LookupWrite(req->request_id)) {
          Respond(from, req->request_id, TokenStatus::kCommitted, *cached);
          return;
        }
      }
      ServeOrBorrow(from, *req);
      return;
    }
    case kMsgBorrowRequest:
      OnBorrowRequest(from, r);
      return;
    case kMsgBorrowReply:
      OnBorrowReply(r);
      return;
    default:
      SAMYA_CHECK_MSG(false, "demarcation: unknown message type %u", type);
  }
}

void DemarcationSite::ServeOrBorrow(sim::NodeId client,
                                    const TokenRequest& req) {
  if (borrowing_ && req.op == TokenOp::kAcquire) {
    // A borrow round is in flight; preserve order behind it.
    queue_.push_back(QueuedRequest{client, req});
    return;
  }
  if (ServeLocally(client, req)) return;
  // Exhausted escrow: borrow from peers, queueing the request meanwhile.
  queue_.push_back(QueuedRequest{client, req});
  borrowing_ = true;
  needed_ = req.amount + opts_.borrow_slack;
  peers_asked_ = 0;
  AskNextPeer();
}

bool DemarcationSite::ServeLocally(sim::NodeId client,
                                   const TokenRequest& req) {
  switch (req.op) {
    case TokenOp::kAcquire:
      if (tokens_left_ >= req.amount) {
        tokens_left_ -= req.amount;
        RememberWrite(req.request_id, tokens_left_);
        Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
        return true;
      }
      return false;
    case TokenOp::kRelease:
      tokens_left_ += req.amount;
      RememberWrite(req.request_id, tokens_left_);
      Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
      return true;
    case TokenOp::kRead:
      // Demarcation has no global snapshot machinery; reads report the local
      // escrow view.
      Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
      return true;
  }
  return false;
}

void DemarcationSite::RememberWrite(uint64_t request_id, int64_t value) {
  if (committed_writes_.size() >= kDedupGenerationSize) {
    committed_writes_prev_ = std::move(committed_writes_);
    committed_writes_ = {};
  }
  if (committed_writes_.bucket_count() < kDedupGenerationSize) {
    // Pre-size once per generation; see core::Site::RememberWrite.
    committed_writes_.reserve(kDedupGenerationSize);
  }
  committed_writes_[request_id] = value;
}

const int64_t* DemarcationSite::LookupWrite(uint64_t request_id) const {
  auto it = committed_writes_.find(request_id);
  if (it != committed_writes_.end()) return &it->second;
  it = committed_writes_prev_.find(request_id);
  if (it != committed_writes_prev_.end()) return &it->second;
  return nullptr;
}

void DemarcationSite::Respond(sim::NodeId client, uint64_t request_id,
                              TokenStatus status, int64_t value) {
  TokenResponse resp;
  resp.request_id = request_id;
  resp.status = status;
  resp.value = value;
  BufferWriter w;
  resp.EncodeTo(w);
  Send(client, kMsgTokenResponse, w);
}

void DemarcationSite::AskNextPeer() {
  if (peers_asked_ >= opts_.sites.size() - 1 || needed_ <= 0) {
    // Asked everyone (or satisfied): end the borrow round.
    borrowing_ = false;
    DrainQueue();
    return;
  }
  sim::NodeId peer = opts_.sites[next_peer_ % opts_.sites.size()];
  next_peer_ = (next_peer_ + 1) % opts_.sites.size();
  if (peer == id()) {
    peer = opts_.sites[next_peer_ % opts_.sites.size()];
    next_peer_ = (next_peer_ + 1) % opts_.sites.size();
  }
  ++peers_asked_;
  ++borrows_attempted_;
  outstanding_borrow_ = next_borrow_id_++;
  BufferWriter w;
  w.PutU64(outstanding_borrow_);
  w.PutVarintSigned(needed_);
  Send(peer, kMsgBorrowRequest, w);
  // Deliberately no timeout: the underlying demarcation/escrow protocols
  // assume a reliable network (§5); a lost reply blocks this site's borrows.
}

void DemarcationSite::OnBorrowRequest(sim::NodeId from, BufferReader& r) {
  const uint64_t borrow_id = r.GetU64().value();
  const int64_t requested = r.GetVarintSigned().value();
  // Lend up to lend_fraction of the local pool: the lender debits first, so
  // the tokens are never double-spendable.
  const int64_t willing = static_cast<int64_t>(
      static_cast<double>(tokens_left_) * opts_.lend_fraction);
  const int64_t granted = std::clamp<int64_t>(requested, 0, willing);
  tokens_left_ -= granted;
  BufferWriter w;
  w.PutU64(borrow_id);
  w.PutVarintSigned(granted);
  Send(from, kMsgBorrowReply, w);
}

void DemarcationSite::OnBorrowReply(BufferReader& r) {
  const uint64_t borrow_id = r.GetU64().value();
  const int64_t granted = r.GetVarintSigned().value();
  if (borrow_id != outstanding_borrow_) return;  // stale
  outstanding_borrow_ = 0;
  tokens_left_ += granted;
  needed_ -= granted;
  // Serve whatever is now servable before deciding to ask another peer.
  if (needed_ > 0) {
    AskNextPeer();
  } else {
    borrowing_ = false;
    DrainQueue();
  }
}

void DemarcationSite::DrainQueue() {
  while (!borrowing_ && !queue_.empty()) {
    QueuedRequest q = std::move(queue_.front());
    queue_.pop_front();
    if (ServeLocally(q.client, q.request)) continue;
    if (peers_asked_ < opts_.sites.size() - 1) {
      // Mid-drain exhaustion: start another borrow round for this request.
      queue_.push_front(std::move(q));
      borrowing_ = true;
      needed_ = queue_.front().request.amount + opts_.borrow_slack;
      AskNextPeer();
      return;
    }
    Respond(q.client, q.request.request_id, TokenStatus::kRejected,
            tokens_left_);
  }
  if (!borrowing_) peers_asked_ = 0;
}

}  // namespace samya::baselines
