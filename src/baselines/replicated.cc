#include "baselines/replicated.h"

#include "consensus/token_sm.h"

namespace samya::baselines {

ReplicatedGroup CreateMultiPaxSys(sim::Cluster& cluster, int64_t max_tokens,
                                  size_t max_pending) {
  ReplicatedGroup group;
  const sim::NodeId first = static_cast<sim::NodeId>(cluster.num_nodes());
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(first + i);

  for (int i = 0; i < 5; ++i) {
    consensus::MultiPaxosOptions opts;
    opts.group = ids;
    opts.initial_leader = first;  // us-west1, adjacent to the US majority
    opts.max_pending = max_pending;
    auto* node = cluster.AddNode<consensus::MultiPaxosNode>(
        kReplicatedPlacement[static_cast<size_t>(i)], opts,
        std::make_unique<consensus::TokenStateMachine>(max_tokens));
    node->set_storage(cluster.StorageFor(node->id()));
    group.multipaxos.push_back(node);
  }
  group.replica_ids = ids;
  return group;
}

ReplicatedGroup CreateCockroachLike(sim::Cluster& cluster, int64_t max_tokens,
                                    size_t max_pending) {
  ReplicatedGroup group;
  const sim::NodeId first = static_cast<sim::NodeId>(cluster.num_nodes());
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(first + i);

  for (int i = 0; i < 5; ++i) {
    consensus::RaftOptions opts;
    opts.group = ids;
    opts.initial_leader = first;
    opts.max_pending = max_pending;
    auto* node = cluster.AddNode<consensus::RaftNode>(
        kReplicatedPlacement[static_cast<size_t>(i)], opts,
        std::make_unique<consensus::TokenStateMachine>(max_tokens));
    node->set_storage(cluster.StorageFor(node->id()));
    group.raft.push_back(node);
  }
  group.replica_ids = ids;
  return group;
}

}  // namespace samya::baselines
