#ifndef SAMYA_BASELINES_SITE_ESCROW_H_
#define SAMYA_BASELINES_SITE_ESCROW_H_

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/token_api.h"
#include "sim/node.h"

namespace samya::baselines {

/// Message types 260-269.
inline constexpr uint32_t kMsgGossip = 260;
inline constexpr uint32_t kMsgEscrowTransferRequest = 261;
inline constexpr uint32_t kMsgEscrowTransferReply = 262;

struct SiteEscrowOptions {
  std::vector<sim::NodeId> sites;  ///< all sites, including self
  int64_t initial_tokens = 1000;   ///< equal escrow share of M_e
  /// Gossip cadence: each round, the site sends its escrow level to
  /// `gossip_fanout` random peers (epidemic dissemination, per [18]).
  Duration gossip_interval = Seconds(1);
  int gossip_fanout = 2;
  /// On exhaustion, ask the richest known peer for this fraction of the
  /// shortfall-adjusted need.
  int64_t transfer_slack = 25;
  Duration transfer_timeout = Millis(800);
};

/// \brief Generalised Site Escrow baseline (Krishnakumar & Bernstein, VLDB
/// '92 — the paper's related work §2): sites serve from local escrow and use
/// *gossip* to maintain an (eventually consistent) view of every peer's
/// escrow level; on exhaustion a site asks the richest peer it knows of for
/// a transfer.
///
/// Contrast with Demarcation/Escrow (blind round-robin borrowing) and with
/// Samya (consensus on a global snapshot plus deterministic reallocation):
/// gossip steers transfers toward actual surplus but the view is stale, so
/// transfers can miss under fast-moving demand. Pairwise transfers conserve
/// tokens (debit-before-grant); a transfer request that finds no surplus is
/// declined and the requester tries its next-richest known peer.
class SiteEscrowSite : public sim::Node {
 public:
  SiteEscrowSite(sim::NodeId id, sim::Region region, SiteEscrowOptions opts);

  void Start() override;
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;

  int64_t tokens_left() const { return tokens_left_; }
  uint64_t transfers_requested() const { return transfers_requested_; }
  uint64_t gossip_rounds() const { return gossip_rounds_; }

 private:
  struct QueuedRequest {
    sim::NodeId client = sim::kInvalidNode;
    TokenRequest request;
  };

  void ServeOrTransfer(sim::NodeId client, const TokenRequest& req);
  bool ServeLocally(sim::NodeId client, const TokenRequest& req);
  void Respond(sim::NodeId client, uint64_t request_id, TokenStatus status,
               int64_t value);
  void StartTransferRound(int64_t needed);
  void AskRichestPeer();
  void DrainQueue();
  void SendGossip();

  void OnGossip(sim::NodeId from, BufferReader& r);
  void OnTransferRequest(sim::NodeId from, BufferReader& r);
  void OnTransferReply(BufferReader& r);

  SiteEscrowOptions opts_;
  int64_t tokens_left_ = 0;

  // Eventually consistent escrow view: peer -> (level, as-of gossip stamp).
  std::map<sim::NodeId, std::pair<int64_t, uint64_t>> view_;
  uint64_t gossip_stamp_ = 0;

  // Transfer round state (one at a time).
  bool transferring_ = false;
  int64_t needed_ = 0;
  std::vector<sim::NodeId> candidates_;  // richest-first, not yet asked
  uint64_t next_transfer_id_ = 1;
  uint64_t outstanding_transfer_ = 0;
  uint64_t transfer_timer_ = 0;
  std::deque<QueuedRequest> queue_;

  uint64_t transfers_requested_ = 0;
  uint64_t gossip_rounds_ = 0;

  // At-most-once guard (see core::Site), bounded by rotation.
  static constexpr size_t kDedupGenerationSize = 1 << 17;
  std::unordered_map<uint64_t, int64_t> committed_writes_;
  std::unordered_map<uint64_t, int64_t> committed_writes_prev_;
  void RememberWrite(uint64_t request_id, int64_t value);
  const int64_t* LookupWrite(uint64_t request_id) const;
};

}  // namespace samya::baselines

#endif  // SAMYA_BASELINES_SITE_ESCROW_H_
