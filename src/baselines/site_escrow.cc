#include "baselines/site_escrow.h"

#include <algorithm>

#include "common/macros.h"

namespace samya::baselines {

namespace {
constexpr uint64_t kGossipTimer = 1;
constexpr uint64_t kTransferTimeoutTimer = 2;
}  // namespace

SiteEscrowSite::SiteEscrowSite(sim::NodeId id, sim::Region region,
                               SiteEscrowOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.sites.empty());
}

void SiteEscrowSite::Start() {
  tokens_left_ = opts_.initial_tokens;
  // Seed the view with the uniform initial allocation.
  for (sim::NodeId peer : opts_.sites) {
    if (peer != id()) view_[peer] = {opts_.initial_tokens, 0};
  }
  SetTimer(opts_.gossip_interval, kGossipTimer);
}

void SiteEscrowSite::HandleTimer(uint64_t token) {
  if (token == kGossipTimer) {
    SendGossip();
    SetTimer(opts_.gossip_interval, kGossipTimer);
    return;
  }
  SAMYA_CHECK_EQ(token, kTransferTimeoutTimer);
  // The asked peer never answered (e.g. crashed): write it down as broke in
  // our view and move on to the next candidate.
  if (!transferring_) return;
  outstanding_transfer_ = 0;
  AskRichestPeer();
}

void SiteEscrowSite::SendGossip() {
  ++gossip_rounds_;
  ++gossip_stamp_;
  BufferWriter w;
  w.PutVarint(gossip_stamp_);
  w.PutVarintSigned(tokens_left_);
  // Epidemic push to `fanout` random distinct peers.
  std::vector<sim::NodeId> peers;
  for (sim::NodeId peer : opts_.sites) {
    if (peer != id()) peers.push_back(peer);
  }
  for (int k = 0; k < opts_.gossip_fanout && !peers.empty(); ++k) {
    const size_t pick = rng().NextUint64(peers.size());
    Send(peers[pick], kMsgGossip, w);
    peers.erase(peers.begin() + static_cast<long>(pick));
  }
}

void SiteEscrowSite::OnGossip(sim::NodeId from, BufferReader& r) {
  const uint64_t stamp = r.GetVarint().value();
  const int64_t level = r.GetVarintSigned().value();
  auto& entry = view_[from];
  if (stamp > entry.second) entry = {level, stamp};
}

void SiteEscrowSite::HandleMessage(sim::NodeId from, uint32_t type,
                                   BufferReader& r) {
  switch (type) {
    case kMsgTokenRequest: {
      auto req = TokenRequest::DecodeFrom(r);
      if (!req.ok()) return;
      if (req->op != TokenOp::kRead && req->amount <= 0) {
        Respond(from, req->request_id, TokenStatus::kRejected, tokens_left_);
        return;
      }
      if (req->op != TokenOp::kRead) {
        if (const int64_t* cached = LookupWrite(req->request_id)) {
          Respond(from, req->request_id, TokenStatus::kCommitted, *cached);
          return;
        }
      }
      ServeOrTransfer(from, *req);
      return;
    }
    case kMsgGossip:
      OnGossip(from, r);
      return;
    case kMsgEscrowTransferRequest:
      OnTransferRequest(from, r);
      return;
    case kMsgEscrowTransferReply:
      OnTransferReply(r);
      return;
    default:
      SAMYA_CHECK_MSG(false, "site-escrow: unknown message type %u", type);
  }
}

void SiteEscrowSite::ServeOrTransfer(sim::NodeId client,
                                     const TokenRequest& req) {
  if (transferring_ && req.op == TokenOp::kAcquire) {
    queue_.push_back(QueuedRequest{client, req});
    return;
  }
  if (ServeLocally(client, req)) return;
  queue_.push_back(QueuedRequest{client, req});
  StartTransferRound(req.amount + opts_.transfer_slack);
}

bool SiteEscrowSite::ServeLocally(sim::NodeId client,
                                  const TokenRequest& req) {
  switch (req.op) {
    case TokenOp::kAcquire:
      if (tokens_left_ >= req.amount) {
        tokens_left_ -= req.amount;
        RememberWrite(req.request_id, tokens_left_);
        Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
        return true;
      }
      return false;
    case TokenOp::kRelease:
      tokens_left_ += req.amount;
      RememberWrite(req.request_id, tokens_left_);
      Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
      return true;
    case TokenOp::kRead: {
      // Gossip gives an (approximate) global view for free.
      int64_t total = tokens_left_;
      for (const auto& [peer, entry] : view_) total += entry.first;
      Respond(client, req.request_id, TokenStatus::kCommitted, total);
      return true;
    }
  }
  return false;
}

void SiteEscrowSite::StartTransferRound(int64_t needed) {
  transferring_ = true;
  needed_ = needed;
  ++transfers_requested_;
  // Candidates: peers by gossiped escrow level, richest first.
  candidates_.clear();
  for (const auto& [peer, entry] : view_) candidates_.push_back(peer);
  std::sort(candidates_.begin(), candidates_.end(),
            [this](sim::NodeId a, sim::NodeId b) {
              return view_[a].first > view_[b].first;
            });
  AskRichestPeer();
}

void SiteEscrowSite::AskRichestPeer() {
  while (!candidates_.empty() && view_[candidates_.front()].first <= 0) {
    candidates_.erase(candidates_.begin());
  }
  if (candidates_.empty() || needed_ <= 0) {
    transferring_ = false;
    DrainQueue();
    return;
  }
  const sim::NodeId peer = candidates_.front();
  candidates_.erase(candidates_.begin());
  outstanding_transfer_ = next_transfer_id_++;
  BufferWriter w;
  w.PutU64(outstanding_transfer_);
  w.PutVarintSigned(needed_);
  Send(peer, kMsgEscrowTransferRequest, w);
  CancelTimer(transfer_timer_);
  transfer_timer_ = SetTimer(opts_.transfer_timeout, kTransferTimeoutTimer);
}

void SiteEscrowSite::OnTransferRequest(sim::NodeId from, BufferReader& r) {
  const uint64_t transfer_id = r.GetU64().value();
  const int64_t requested = r.GetVarintSigned().value();
  // Grant up to half of the local escrow (debit before the grant travels).
  const int64_t granted =
      std::clamp<int64_t>(requested, 0, tokens_left_ / 2);
  tokens_left_ -= granted;
  BufferWriter w;
  w.PutU64(transfer_id);
  w.PutVarintSigned(granted);
  Send(from, kMsgEscrowTransferReply, w);
}

void SiteEscrowSite::OnTransferReply(BufferReader& r) {
  const uint64_t transfer_id = r.GetU64().value();
  const int64_t granted = r.GetVarintSigned().value();
  if (transfer_id != outstanding_transfer_) return;  // stale/timed out
  outstanding_transfer_ = 0;
  CancelTimer(transfer_timer_);
  tokens_left_ += granted;
  needed_ -= granted;
  if (needed_ > 0) {
    AskRichestPeer();
  } else {
    transferring_ = false;
    DrainQueue();
  }
}

void SiteEscrowSite::DrainQueue() {
  while (!transferring_ && !queue_.empty()) {
    QueuedRequest q = std::move(queue_.front());
    queue_.pop_front();
    if (ServeLocally(q.client, q.request)) continue;
    if (!candidates_.empty()) {
      queue_.push_front(std::move(q));
      transferring_ = true;
      needed_ = queue_.front().request.amount + opts_.transfer_slack;
      AskRichestPeer();
      return;
    }
    Respond(q.client, q.request.request_id, TokenStatus::kRejected,
            tokens_left_);
  }
}

void SiteEscrowSite::Respond(sim::NodeId client, uint64_t request_id,
                             TokenStatus status, int64_t value) {
  TokenResponse resp;
  resp.request_id = request_id;
  resp.status = status;
  resp.value = value;
  BufferWriter w;
  resp.EncodeTo(w);
  Send(client, kMsgTokenResponse, w);
}

void SiteEscrowSite::RememberWrite(uint64_t request_id, int64_t value) {
  if (committed_writes_.size() >= kDedupGenerationSize) {
    committed_writes_prev_ = std::move(committed_writes_);
    committed_writes_ = {};
  }
  if (committed_writes_.bucket_count() < kDedupGenerationSize) {
    // Pre-size once per generation; see core::Site::RememberWrite.
    committed_writes_.reserve(kDedupGenerationSize);
  }
  committed_writes_[request_id] = value;
}

const int64_t* SiteEscrowSite::LookupWrite(uint64_t request_id) const {
  auto it = committed_writes_.find(request_id);
  if (it != committed_writes_.end()) return &it->second;
  it = committed_writes_prev_.find(request_id);
  if (it != committed_writes_prev_.end()) return &it->second;
  return nullptr;
}

}  // namespace samya::baselines
