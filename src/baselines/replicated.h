#ifndef SAMYA_BASELINES_REPLICATED_H_
#define SAMYA_BASELINES_REPLICATED_H_

#include <vector>

#include "consensus/multipaxos.h"
#include "consensus/raft.h"
#include "sim/cluster.h"

namespace samya::baselines {

/// Replica placement of the MultiPaxSys / CockroachDB-like baselines (§5.2):
/// "3 out of 5 sites in different regions within the US, and 2 others in
/// Asia and Europe", leader in us-west1.
inline constexpr std::array<sim::Region, 5> kReplicatedPlacement = {
    sim::Region::kUsWest1, sim::Region::kUsCentral1, sim::Region::kUsEast1,
    sim::Region::kEuropeWest2, sim::Region::kAsiaEast2};

/// A deployed 5-replica group (either protocol); `replica_ids` are the
/// node ids clients should target.
struct ReplicatedGroup {
  std::vector<sim::NodeId> replica_ids;
  std::vector<consensus::MultiPaxosNode*> multipaxos;  // kMultiPaxSys only
  std::vector<consensus::RaftNode*> raft;              // kCockroachLike only
};

/// Builds the paper's MultiPaxSys baseline: a 5-replica leader-based
/// multi-Paxos group replicating a bounded token counter with limit M_e.
ReplicatedGroup CreateMultiPaxSys(sim::Cluster& cluster, int64_t max_tokens,
                                  size_t max_pending = 2);

/// Builds the CockroachDB-like baseline: the same placement and state
/// machine, replicated with Raft.
ReplicatedGroup CreateCockroachLike(sim::Cluster& cluster, int64_t max_tokens,
                                    size_t max_pending = 2);

}  // namespace samya::baselines

#endif  // SAMYA_BASELINES_REPLICATED_H_
