#include "workload/transform.h"

#include "common/macros.h"
#include "common/random.h"

namespace samya::workload {

DemandTrace CompressTime(const DemandTrace& trace, int64_t factor) {
  SAMYA_CHECK_GT(factor, 0);
  SAMYA_CHECK_EQ(trace.interval() % factor, 0);
  return DemandTrace(trace.interval() / factor, trace.data());
}

DemandTrace PhaseShift(const DemandTrace& trace, Duration shift) {
  const size_t n = trace.size();
  if (n == 0) return trace;
  const Duration total = trace.TotalDuration();
  // Normalize into [0, total).
  Duration s = shift % total;
  if (s < 0) s += total;
  const size_t offset = static_cast<size_t>(s / trace.interval());

  std::vector<DemandInterval> rotated(n);
  for (size_t i = 0; i < n; ++i) {
    rotated[(i + offset) % n] = trace.at(i);
  }
  return DemandTrace(trace.interval(), std::move(rotated));
}

DemandTrace Truncate(const DemandTrace& trace, Duration duration) {
  SAMYA_CHECK_GE(duration, 0);
  const size_t keep = std::min(
      trace.size(), static_cast<size_t>(duration / trace.interval()));
  std::vector<DemandInterval> data(trace.data().begin(),
                                   trace.data().begin() +
                                       static_cast<long>(keep));
  return DemandTrace(trace.interval(), std::move(data));
}

DemandTrace ScaleCounts(const DemandTrace& trace, double factor,
                        uint64_t seed) {
  SAMYA_CHECK_GE(factor, 0.0);
  Rng rng(seed);
  std::vector<DemandInterval> data(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    // Binomial-style thinning keeps counts integral and unbiased.
    auto thin = [&](int64_t count) {
      if (factor >= 1.0) {
        const double scaled = static_cast<double>(count) * factor;
        return rng.Poisson(scaled);
      }
      int64_t kept = 0;
      for (int64_t k = 0; k < count; ++k) kept += rng.Bernoulli(factor);
      return kept;
    };
    data[i].creations = thin(trace.at(i).creations);
    data[i].deletions = thin(trace.at(i).deletions);
  }
  return DemandTrace(trace.interval(), std::move(data));
}

}  // namespace samya::workload
