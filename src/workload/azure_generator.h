#ifndef SAMYA_WORKLOAD_AZURE_GENERATOR_H_
#define SAMYA_WORKLOAD_AZURE_GENERATOR_H_

#include <cstdint>

#include "workload/trace.h"

namespace samya::workload {

/// \brief Parameters of the synthetic Azure-like VM workload (substitute for
/// the proprietary Azure Public Dataset; see DESIGN.md §1).
///
/// Cortez et al. (SOSP'17) report that Azure VM arrivals are strongly
/// diurnal and weekly-periodic with bursty spikes — "history is an accurate
/// predictor of future behavior". The generator reproduces those properties:
///   rate_t = mean_rate * diurnal(t) * weekly(t) * lognormal-noise * burst
///   creations_t ~ Poisson(rate_t)
/// Deletions follow creations through per-VM lifetimes so the alive-VM pool
/// (i.e. outstanding acquired tokens) stays bounded, as in the paper where
/// M_e = 5000 caps the global pool. Defaults are calibrated to the demand
/// statistics the paper quotes: mean demand ~600 tokens per interval, max
/// ~16000 (§5.9), ~820k transactions in the compressed hour (§5.3).
struct AzureTraceOptions {
  int days = 30;                       ///< paper: one month of data
  Duration interval = Minutes(5);      ///< paper: 5-minute sampling
  double mean_rate = 100.0;            ///< mean creations per interval
  double diurnal_strength = 0.8;      ///< 0 = flat, 1 = full day/night swing
  double weekend_factor = 0.5;         ///< weekend demand multiplier
  double noise_sigma = 0.45;           ///< lognormal noise on the rate
  /// AR(1) persistence of the (log) noise: cloud demand fluctuations are
  /// sticky over adjacent intervals (Cortez et al.), which is exactly what
  /// separates ARIMA from a random walk in Table 2a.
  double noise_rho = 0.55;
  /// Single-interval demand spikes (short deployment jobs): probability per
  /// interval and mean extra multiplier. These mean-revert immediately,
  /// which is what makes a random-walk forecaster pay twice per spike
  /// (Table 2a's RW column).
  double spike_probability = 0.10;
  double spike_mean_extra = 3.0;
  double burst_probability = 0.001;   ///< chance an interval starts a burst
  double burst_pareto_scale = 25.0;     ///< burst multiplier = 1 + Pareto(scale, alpha)
  double burst_pareto_alpha = 1.2;     ///< heavy tail: rare near-16k spikes
  int burst_duration_intervals = 3;    ///< how long a burst lasts
  double max_rate = 16000.0;           ///< demand cap (paper max demand, §5.9)
  double mean_lifetime_intervals = 5.0;///< VM lifetime (drives deletions)
  uint64_t seed = 42;
};

/// Generates the synthetic trace. Deterministic given `opts.seed`.
DemandTrace GenerateAzureTrace(const AzureTraceOptions& opts = {});

}  // namespace samya::workload

#endif  // SAMYA_WORKLOAD_AZURE_GENERATOR_H_
