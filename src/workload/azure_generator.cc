#include "workload/azure_generator.h"

#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace samya::workload {

DemandTrace GenerateAzureTrace(const AzureTraceOptions& opts) {
  SAMYA_CHECK_GT(opts.days, 0);
  SAMYA_CHECK_GT(opts.interval, 0);
  Rng rng(opts.seed);
  Rng lifetime_rng = rng.Fork(1);

  const int per_day =
      static_cast<int>(Minutes(60) * 24 / opts.interval);
  const size_t n = static_cast<size_t>(opts.days * per_day);

  std::vector<DemandInterval> data(n);
  // Deletions are scheduled into future buckets when their VM is created.
  std::vector<int64_t> pending_deletions(n + 1024, 0);

  int burst_remaining = 0;
  double burst_multiplier = 1.0;
  double log_noise = 0.0;  // AR(1) state, stationary std = noise_sigma

  for (size_t t = 0; t < n; ++t) {
    const double day_frac =
        static_cast<double>(t % static_cast<size_t>(per_day)) /
        static_cast<double>(per_day);
    const int day = static_cast<int>(t / static_cast<size_t>(per_day));

    // Diurnal curve peaking mid-workday (~14:00), with a secondary evening
    // shoulder; always positive.
    const double diurnal =
        1.0 + opts.diurnal_strength *
                  (0.8 * std::sin(2 * M_PI * (day_frac - 0.33)) +
                   0.2 * std::sin(4 * M_PI * (day_frac - 0.25)));
    // Weekly pattern: days 5,6 of each week are weekends.
    const bool weekend = (day % 7) >= 5;
    const double weekly = weekend ? opts.weekend_factor : 1.0;

    // Bursts: rare sustained spikes (deploy storms, batch jobs) with a
    // Pareto-tailed height, so a month of data contains a handful of
    // >10x spikes and the occasional near-max_rate one (§5.9's max 16000).
    if (burst_remaining > 0) {
      --burst_remaining;
    } else if (rng.Bernoulli(opts.burst_probability)) {
      burst_remaining = opts.burst_duration_intervals;
      double u = rng.NextDouble();
      if (u < 1e-9) u = 1e-9;
      burst_multiplier =
          1.0 + opts.burst_pareto_scale *
                    std::pow(u, -1.0 / opts.burst_pareto_alpha);
    }
    const double burst = burst_remaining > 0 ? burst_multiplier : 1.0;

    // AR(1) lognormal noise with stationary standard deviation noise_sigma;
    // the -sigma^2/2 correction keeps the multiplicative mean at 1.
    log_noise = opts.noise_rho * log_noise +
                opts.noise_sigma *
                    std::sqrt(1 - opts.noise_rho * opts.noise_rho) *
                    rng.NextGaussian();
    const double noise =
        std::exp(log_noise - 0.5 * opts.noise_sigma * opts.noise_sigma);

    // Transient one-interval spikes, independent across intervals.
    double spike = 1.0;
    if (opts.spike_probability > 0 && rng.Bernoulli(opts.spike_probability)) {
      spike = 1.0 + rng.Exponential(opts.spike_mean_extra);
    }

    const double rate = std::min(
        opts.max_rate,
        std::max(0.0, opts.mean_rate * diurnal * weekly * burst * noise *
                          spike));
    const int64_t creations = rng.Poisson(rate);
    data[t].creations = creations;

    // Schedule this interval's VMs for deletion after their lifetimes.
    for (int64_t k = 0; k < creations; ++k) {
      const double life =
          lifetime_rng.Exponential(opts.mean_lifetime_intervals);
      size_t expiry = t + 1 + static_cast<size_t>(life);
      if (expiry >= pending_deletions.size()) {
        expiry = pending_deletions.size() - 1;
      }
      ++pending_deletions[expiry];
    }
    data[t].deletions = pending_deletions[t];
  }

  return DemandTrace(opts.interval, std::move(data));
}

}  // namespace samya::workload
