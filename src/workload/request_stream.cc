#include "workload/request_stream.h"

#include <algorithm>

#include "common/macros.h"

namespace samya::workload {

std::vector<Request> GenerateRequests(const DemandTrace& trace,
                                      const RequestStreamOptions& opts) {
  SAMYA_CHECK_GE(opts.read_ratio, 0.0);
  SAMYA_CHECK_LT(opts.read_ratio, 1.0);
  Rng rng(opts.seed);

  std::vector<Request> out;
  const Duration iv = trace.interval();
  for (size_t i = 0; i < trace.size(); ++i) {
    const SimTime start = static_cast<SimTime>(i) * iv;
    if (opts.horizon > 0 && start >= opts.horizon) break;
    auto emit = [&](Request::Type type, int64_t count) {
      for (int64_t k = 0; k < count; ++k) {
        Request r;
        r.at = start + rng.UniformInt(0, iv - 1);
        r.type = type;
        r.amount = 1;
        if (opts.horizon > 0 && r.at >= opts.horizon) continue;
        out.push_back(r);
      }
    };
    emit(Request::Type::kAcquire, trace.at(i).creations);
    emit(Request::Type::kRelease, trace.at(i).deletions);
    if (opts.read_ratio > 0) {
      // reads / (writes + reads) = read_ratio
      const int64_t writes = trace.at(i).creations + trace.at(i).deletions;
      const double reads_f = opts.read_ratio / (1 - opts.read_ratio) *
                             static_cast<double>(writes);
      emit(Request::Type::kRead, rng.Poisson(reads_f));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Request& a, const Request& b) { return a.at < b.at; });
  return out;
}

}  // namespace samya::workload
