#ifndef SAMYA_WORKLOAD_TRACE_H_
#define SAMYA_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace samya::workload {

/// One sampling interval of the VM workload: how many VMs were created and
/// how many were deleted (paper §5.1: creations/deletions per 5-minute
/// interval of the Azure trace).
struct DemandInterval {
  int64_t creations = 0;
  int64_t deletions = 0;
};

/// \brief A VM demand trace: a fixed sampling interval plus per-interval
/// creation/deletion counts. This is the in-memory form of the (synthetic)
/// Azure dataset every experiment consumes.
class DemandTrace {
 public:
  DemandTrace(Duration interval, std::vector<DemandInterval> data)
      : interval_(interval), data_(std::move(data)) {}

  Duration interval() const { return interval_; }
  size_t size() const { return data_.size(); }
  const DemandInterval& at(size_t i) const { return data_[i]; }
  const std::vector<DemandInterval>& data() const { return data_; }

  /// Total simulated duration covered by the trace.
  Duration TotalDuration() const {
    return interval_ * static_cast<Duration>(data_.size());
  }

  int64_t TotalCreations() const;
  int64_t TotalDeletions() const;

  /// Demand series (creations per interval) as doubles: the input to the
  /// Prediction Module and Table 2a.
  std::vector<double> CreationSeries() const;

  /// Summary stats of the creation series.
  double MeanDemand() const;
  int64_t MaxDemand() const;

  /// "interval_index,creations,deletions" CSV (Fig 3a's plot data).
  std::string ToCsv(size_t max_rows = 0) const;

 private:
  Duration interval_;
  std::vector<DemandInterval> data_;
};

}  // namespace samya::workload

#endif  // SAMYA_WORKLOAD_TRACE_H_
