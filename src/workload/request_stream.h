#ifndef SAMYA_WORKLOAD_REQUEST_STREAM_H_
#define SAMYA_WORKLOAD_REQUEST_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/time.h"
#include "workload/trace.h"

namespace samya::workload {

/// A single client request against the token store.
struct Request {
  enum class Type { kAcquire, kRelease, kRead };
  SimTime at = 0;
  Type type = Type::kAcquire;
  int64_t amount = 1;
};

/// Options for turning a demand trace into a timed request stream.
struct RequestStreamOptions {
  /// Fraction of *additional* read-only transactions injected (Fig 3h):
  /// read_ratio r means reads make up fraction r of all requests.
  double read_ratio = 0.0;
  /// Horizon cap: requests after this time are not generated (0 = no cap).
  SimTime horizon = 0;
  uint64_t seed = 7;
};

/// \brief Expands a `DemandTrace` into individual timed requests for one
/// region's client: each creation becomes acquireTokens(VM, 1) and each
/// deletion releaseTokens(VM, 1), spread uniformly within their interval
/// (§5.1.2). Reads are interleaved per `read_ratio`. Output is time-sorted.
std::vector<Request> GenerateRequests(const DemandTrace& trace,
                                      const RequestStreamOptions& opts);

}  // namespace samya::workload

#endif  // SAMYA_WORKLOAD_REQUEST_STREAM_H_
