#include "workload/trace.h"

#include <algorithm>
#include <cstdio>

namespace samya::workload {

int64_t DemandTrace::TotalCreations() const {
  int64_t n = 0;
  for (const auto& d : data_) n += d.creations;
  return n;
}

int64_t DemandTrace::TotalDeletions() const {
  int64_t n = 0;
  for (const auto& d : data_) n += d.deletions;
  return n;
}

std::vector<double> DemandTrace::CreationSeries() const {
  std::vector<double> s;
  s.reserve(data_.size());
  for (const auto& d : data_) s.push_back(static_cast<double>(d.creations));
  return s;
}

double DemandTrace::MeanDemand() const {
  if (data_.empty()) return 0.0;
  return static_cast<double>(TotalCreations()) /
         static_cast<double>(data_.size());
}

int64_t DemandTrace::MaxDemand() const {
  int64_t m = 0;
  for (const auto& d : data_) m = std::max(m, d.creations);
  return m;
}

std::string DemandTrace::ToCsv(size_t max_rows) const {
  std::string s = "interval,creations,deletions\n";
  const size_t n =
      max_rows == 0 ? data_.size() : std::min(max_rows, data_.size());
  char line[96];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(line, sizeof(line), "%zu,%lld,%lld\n", i,
                  static_cast<long long>(data_[i].creations),
                  static_cast<long long>(data_[i].deletions));
    s += line;
  }
  return s;
}

}  // namespace samya::workload
