#ifndef SAMYA_WORKLOAD_TRANSFORM_H_
#define SAMYA_WORKLOAD_TRANSFORM_H_

#include "workload/trace.h"

namespace samya::workload {

/// \brief The §5.1.2 data-processing transforms.

/// Time compression: the same requests that arrived in one original interval
/// now arrive in `interval / factor` — e.g. factor 60 turns the 5-minute
/// Azure sampling into 5 seconds, shrinking 30 days to 12 hours and creating
/// the hot-spot request-arrival rate the paper evaluates.
DemandTrace CompressTime(const DemandTrace& trace, int64_t factor);

/// Phase shift: rotates the trace by `shift` of trace time, modelling a
/// region in a different time zone (peak demand in North America coincides
/// with off-peak in Asia). Positive shift moves the pattern later.
DemandTrace PhaseShift(const DemandTrace& trace, Duration shift);

/// Truncates a trace to its first `duration` worth of intervals.
DemandTrace Truncate(const DemandTrace& trace, Duration duration);

/// Scales both creations and deletions by `factor` (used by the §5.9
/// arrival-rate sweep to thin the load without changing the shape).
DemandTrace ScaleCounts(const DemandTrace& trace, double factor,
                        uint64_t seed);

}  // namespace samya::workload

#endif  // SAMYA_WORKLOAD_TRANSFORM_H_
