#include "common/timeseries.h"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/macros.h"

namespace samya {

void RateSeries::Record(SimTime t, int64_t count) {
  SAMYA_CHECK_GE(t, 0);
  const size_t bin = static_cast<size_t>(t / interval_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += count;
}

int64_t RateSeries::total() const {
  return std::accumulate(bins_.begin(), bins_.end(), int64_t{0});
}

double RateSeries::RatePerSecond(size_t i) const {
  return static_cast<double>(bin(i)) / ToSeconds(interval_);
}

double RateSeries::MeanRate(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  int64_t events = 0;
  const size_t lo = static_cast<size_t>(from / interval_);
  const size_t hi = static_cast<size_t>((to + interval_ - 1) / interval_);
  for (size_t i = lo; i < hi && i < bins_.size(); ++i) events += bins_[i];
  return static_cast<double>(events) / ToSeconds(to - from);
}

std::vector<double> RateSeries::Resample(Duration coarse) const {
  SAMYA_CHECK_GT(coarse, 0);
  SAMYA_CHECK_EQ(coarse % interval_, 0);
  const size_t k = static_cast<size_t>(coarse / interval_);
  std::vector<double> out;
  for (size_t i = 0; i < bins_.size(); i += k) {
    int64_t sum = 0;
    for (size_t j = i; j < i + k && j < bins_.size(); ++j) sum += bins_[j];
    out.push_back(static_cast<double>(sum) / ToSeconds(coarse));
  }
  return out;
}

std::string RateSeries::ToCsv(Duration coarse) const {
  std::string s = "minute,tps\n";
  const auto rates = Resample(coarse);
  char line[64];
  for (size_t i = 0; i < rates.size(); ++i) {
    const double minute =
        static_cast<double>(i) * static_cast<double>(coarse) / kMinute;
    std::snprintf(line, sizeof(line), "%.2f,%.1f\n", minute, rates[i]);
    s += line;
  }
  return s;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

}  // namespace samya
