#include "common/time.h"

#include <cstdio>

namespace samya {

std::string FormatDuration(Duration d) {
  char buf[64];
  if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d));
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis(d));
  } else if (d < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ToSeconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin",
                  static_cast<double>(d) / kMinute);
  }
  return buf;
}

}  // namespace samya
