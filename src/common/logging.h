#ifndef SAMYA_COMMON_LOGGING_H_
#define SAMYA_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdint>
#include <string>

namespace samya {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// \brief Minimal leveled logger.
///
/// Global level defaults to kWarn so experiment binaries stay quiet; tests and
/// examples raise it where useful.
///
/// Thread-safe: each line is formatted into a local buffer and emitted with a
/// single mutex-guarded write, so `parallel_runner` workers never interleave
/// mid-line. Two optional thread-local decorations give concurrent runs
/// readable output:
///  - `SetThreadPrefix("run 12")` tags every line from the calling thread;
///  - `SetThreadSimClock(&env.now_ref())` stamps lines with the owning
///    simulation's current sim-time (the pointer must outlive the run; pass
///    nullptr to detach).
class Logger {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Per-thread line prefix (e.g. the parallel runner's run index). Empty
  /// string clears it. Copied; the argument need not outlive the call.
  static void SetThreadPrefix(std::string prefix);

  /// Per-thread sim-clock: lines are stamped with `*now_us` microseconds at
  /// log time. Pass nullptr to detach (e.g. when a run finishes).
  static void SetThreadSimClock(const int64_t* now_us);

  static void Log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

 private:
  static LogLevel level_;
};

#define SAMYA_LOG_DEBUG(...) \
  ::samya::Logger::Log(::samya::LogLevel::kDebug, __VA_ARGS__)
#define SAMYA_LOG_INFO(...) \
  ::samya::Logger::Log(::samya::LogLevel::kInfo, __VA_ARGS__)
#define SAMYA_LOG_WARN(...) \
  ::samya::Logger::Log(::samya::LogLevel::kWarn, __VA_ARGS__)
#define SAMYA_LOG_ERROR(...) \
  ::samya::Logger::Log(::samya::LogLevel::kError, __VA_ARGS__)

}  // namespace samya

#endif  // SAMYA_COMMON_LOGGING_H_
