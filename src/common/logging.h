#ifndef SAMYA_COMMON_LOGGING_H_
#define SAMYA_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace samya {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// \brief Minimal leveled logger.
///
/// Global level defaults to kWarn so experiment binaries stay quiet; tests and
/// examples raise it where useful. Not thread-safe by design — the whole
/// system runs on a single-threaded deterministic event loop.
class Logger {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  static void Log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

 private:
  static LogLevel level_;
};

#define SAMYA_LOG_DEBUG(...) \
  ::samya::Logger::Log(::samya::LogLevel::kDebug, __VA_ARGS__)
#define SAMYA_LOG_INFO(...) \
  ::samya::Logger::Log(::samya::LogLevel::kInfo, __VA_ARGS__)
#define SAMYA_LOG_WARN(...) \
  ::samya::Logger::Log(::samya::LogLevel::kWarn, __VA_ARGS__)
#define SAMYA_LOG_ERROR(...) \
  ::samya::Logger::Log(::samya::LogLevel::kError, __VA_ARGS__)

}  // namespace samya

#endif  // SAMYA_COMMON_LOGGING_H_
