#include "common/crc32.h"

namespace samya {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC-32C polynomial

struct Crc32cTable {
  uint32_t t[256];
  constexpr Crc32cTable() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

constexpr Crc32cTable kTable{};

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n) {
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace samya
