#ifndef SAMYA_COMMON_RANDOM_H_
#define SAMYA_COMMON_RANDOM_H_

#include <cstdint>
#include <cmath>

#include "common/macros.h"

namespace samya {

/// \brief Deterministic, seedable PRNG (xoshiro256**).
///
/// Every stochastic component (network jitter, workload noise, fault
/// schedules, model initialization) draws from its own `Rng` stream derived
/// from the experiment seed, so a seed fully determines a run.
///
/// The draw functions are defined inline: the latency model samples per
/// message and the workload generator per VM, which together is millions of
/// calls per benchmark run.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n) {
    SAMYA_CHECK_GT(n, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SAMYA_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_spare_gaussian_) {
      has_spare_gaussian_ = false;
      return spare_gaussian_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    double sin_theta;
    double cos_theta;
#if defined(__GNUC__)
    // One fused libm call for the pair; bit-identical to separate
    // sin/cos on glibc, and this runs once per message for latency jitter.
    __builtin_sincos(theta, &sin_theta, &cos_theta);
#else
    sin_theta = std::sin(theta);
    cos_theta = std::cos(theta);
#endif
    spare_gaussian_ = r * sin_theta;
    has_spare_gaussian_ = true;
    return r * cos_theta;
  }

  /// Gaussian with the given mean / stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean. mean > 0.
  double Exponential(double mean) {
    SAMYA_CHECK_GT(mean, 0.0);
    double u = 0.0;
    do {
      u = NextDouble();
    } while (u <= 1e-300);
    return -mean * std::log(u);
  }

  /// Poisson-distributed count with the given mean (mean < ~700).
  int64_t Poisson(double mean);

  /// Derives an independent child stream; streams with distinct tags from the
  /// same parent are decorrelated.
  Rng Fork(uint64_t tag);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace samya

#endif  // SAMYA_COMMON_RANDOM_H_
