#ifndef SAMYA_COMMON_RANDOM_H_
#define SAMYA_COMMON_RANDOM_H_

#include <cstdint>
#include <cmath>

namespace samya {

/// \brief Deterministic, seedable PRNG (xoshiro256**).
///
/// Every stochastic component (network jitter, workload noise, fault
/// schedules, model initialization) draws from its own `Rng` stream derived
/// from the experiment seed, so a seed fully determines a run.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean / stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean. mean > 0.
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (mean < ~700).
  int64_t Poisson(double mean);

  /// Derives an independent child stream; streams with distinct tags from the
  /// same parent are decorrelated.
  Rng Fork(uint64_t tag);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace samya

#endif  // SAMYA_COMMON_RANDOM_H_
