#include "common/status.h"

namespace samya {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace samya
