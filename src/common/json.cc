#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace samya {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_int()) ? v->as_int() : fallback;
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-limited so a
/// hostile corpus file cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    Status st = ParseValue(&v, 0);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const char* what) const {
    return Status::InvalidArgument("json: " + std::string(what) +
                                   " at offset " + std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (AtEnd() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue(true);
          return Status::OK();
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue(false);
          return Status::OK();
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue(nullptr);
          return Status::OK();
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue v;
      st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      out->Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue v;
      Status st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      out->Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  static void AppendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > s_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (AtEnd()) return Fail("truncated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            Status st = ParseHex4(&cp);
            if (!st.ok()) return st;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (!ConsumeLiteral("\\u")) return Fail("lone high surrogate");
              uint32_t lo = 0;
              st = ParseHex4(&lo);
              if (!st.ok()) return st;
              if (lo < 0xDC00 || lo > 0xDFFF) return Fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Fail("lone low surrogate");
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        out->push_back(c);
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {}
    const size_t int_start = pos_;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    // RFC 8259: no leading zeros ("01"), though "0" and "0.5" are fine.
    if (pos_ - int_start > 1 && s_[int_start] == '0') {
      return Fail("leading zero");
    }
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos_;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      return Fail("bad number");
    }
    const std::string tok(s_.substr(start, pos_ - start));
    if (is_double) {
      char* end = nullptr;
      const double d = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size()) return Fail("bad number");
      *out = JsonValue(d);
    } else {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(tok.c_str(), &end, 10);
      if (end != tok.c_str() + tok.size() || errno == ERANGE) {
        return Fail("integer out of range");
      }
      *out = JsonValue(static_cast<int64_t>(i));
    }
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; null is the conventional lossy stand-in.
    *out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips every double; trim the common integral case.
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
  // Ensure a reparse stays a double (e.g. "3" -> "3.0").
  if (out->find_first_of(".eEn", out->size() - std::strlen(buf)) ==
      std::string::npos) {
    *out += ".0";
  }
}

void DumpValue(const JsonValue& v, int indent, int depth, std::string* out) {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    *out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    DumpNumber(v.as_double(), out);
  } else if (v.is_string()) {
    DumpString(v.as_string(), out);
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      *out += "[]";
      return;
    }
    out->push_back('[');
    for (size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out->push_back(',');
      newline(depth + 1);
      DumpValue(a[i], indent, depth + 1, out);
    }
    newline(depth);
    out->push_back(']');
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      *out += "{}";
      return;
    }
    out->push_back('{');
    for (size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out->push_back(',');
      newline(depth + 1);
      DumpString(o[i].first, out);
      *out += indent > 0 ? ": " : ":";
      DumpValue(o[i].second, indent, depth + 1, out);
    }
    newline(depth);
    out->push_back('}');
  }
}

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonDump(const JsonValue& v, int indent) {
  std::string out;
  DumpValue(v, indent, 0, &out);
  if (indent > 0) out.push_back('\n');
  return out;
}

}  // namespace samya
