#include "common/token_api.h"

namespace samya {

void TokenRequest::EncodeTo(BufferWriter& w) const {
  w.PutU64(request_id);
  w.PutVarint(entity);
  w.PutU8(static_cast<uint8_t>(op));
  w.PutVarintSigned(amount);
}

Result<TokenRequest> TokenRequest::DecodeFrom(BufferReader& r) {
  TokenRequest req;
  SAMYA_ASSIGN_OR_RETURN(req.request_id, r.GetU64());
  SAMYA_ASSIGN_OR_RETURN(uint64_t entity, r.GetVarint());
  req.entity = static_cast<uint32_t>(entity);
  SAMYA_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
  if (op < 1 || op > 3) return Status::Corruption("bad token op");
  req.op = static_cast<TokenOp>(op);
  SAMYA_ASSIGN_OR_RETURN(req.amount, r.GetVarintSigned());
  return req;
}

void TokenResponse::EncodeTo(BufferWriter& w) const {
  w.PutU64(request_id);
  w.PutU8(static_cast<uint8_t>(status));
  w.PutVarintSigned(value);
  w.PutVarintSigned(leader_hint);
}

Result<TokenResponse> TokenResponse::DecodeFrom(BufferReader& r) {
  TokenResponse resp;
  SAMYA_ASSIGN_OR_RETURN(resp.request_id, r.GetU64());
  SAMYA_ASSIGN_OR_RETURN(uint8_t status, r.GetU8());
  if (status < 1 || status > 4) return Status::Corruption("bad token status");
  resp.status = static_cast<TokenStatus>(status);
  SAMYA_ASSIGN_OR_RETURN(resp.value, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(int64_t hint, r.GetVarintSigned());
  resp.leader_hint = static_cast<int32_t>(hint);
  return resp;
}

}  // namespace samya
