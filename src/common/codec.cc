#include "common/codec.h"

namespace samya {

void BufferWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void BufferWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void BufferWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BufferWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void BufferWriter::PutVarintSigned(int64_t v) {
  // Zig-zag: maps small-magnitude signed values to small varints.
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void BufferWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufferWriter::PutBytes(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

Status BufferReader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::Corruption("buffer underflow: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> BufferReader::GetU8() {
  SAMYA_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> BufferReader::GetU16() {
  SAMYA_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BufferReader::GetU32() {
  SAMYA_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BufferReader::GetU64() {
  SAMYA_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BufferReader::GetI64() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BufferReader::GetDouble() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<uint64_t> BufferReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) return Status::Corruption("varint too long");
    SAMYA_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> BufferReader::GetVarintSigned() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

Result<std::string> BufferReader::GetString() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  SAMYA_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<bool> BufferReader::GetBool() {
  SAMYA_ASSIGN_OR_RETURN(uint8_t b, GetU8());
  if (b > 1) return Status::Corruption("invalid bool byte");
  return b == 1;
}

}  // namespace samya
