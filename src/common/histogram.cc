#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/json.h"
#include "common/macros.h"

namespace samya {

namespace {

// Exponentially spaced bucket upper bounds: next = max(cur+1, cur*1.046),
// covering [0, ~9e18] in ~1000 buckets (~4.6% relative error).
const std::vector<int64_t>& BucketBounds() {
  static const std::vector<int64_t>& bounds = *new std::vector<int64_t>([] {
    std::vector<int64_t> b;
    int64_t cur = 0;
    while (cur < std::numeric_limits<int64_t>::max() / 2) {
      int64_t next = std::max(cur + 1, static_cast<int64_t>(
                                           static_cast<double>(cur) * 1.046));
      b.push_back(next);
      cur = next;
    }
    b.push_back(std::numeric_limits<int64_t>::max());
    return b;
  }());
  return bounds;
}

}  // namespace

Histogram::Histogram() : buckets_(BucketBounds().size(), 0) {}

size_t Histogram::BucketFor(int64_t value) {
  const auto& bounds = BucketBounds();
  // First bucket whose upper bound is >= value.
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<size_t>(it - bounds.begin());
}

int64_t Histogram::BucketLower(size_t b) {
  return b == 0 ? 0 : BucketBounds()[b - 1];
}

int64_t Histogram::BucketUpper(size_t b) { return BucketBounds()[b]; }

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  ++buckets_[BucketFor(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  SAMYA_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_ / count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const uint64_t next = cum + buckets_[b];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation within the bucket.
      const double lo = static_cast<double>(std::max(BucketLower(b), min_));
      const double hi = static_cast<double>(std::min(BucketUpper(b), max_));
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(buckets_[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2fms p50=%.2fms p90=%.2fms p95=%.2fms "
                "p99=%.2fms max=%.2fms",
                static_cast<unsigned long long>(count_), mean() / 1000.0,
                P50() / 1000.0, P90() / 1000.0, P95() / 1000.0, P99() / 1000.0,
                static_cast<double>(max_) / 1000.0);
  return buf;
}

JsonValue Histogram::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("count", static_cast<int64_t>(count_));
  out.Set("mean", mean());
  out.Set("min", min());
  out.Set("max", max_);
  out.Set("p50", P50());
  out.Set("p90", P90());
  out.Set("p99", P99());
  JsonValue cdf = JsonValue::MakeArray();
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    cum += buckets_[b];
    JsonValue row = JsonValue::MakeObject();
    // Clamp the top bucket's bound to the observed max so the CDF stays
    // finite and plottable.
    row.Set("le", std::min(BucketUpper(b), max_));
    row.Set("count", static_cast<int64_t>(cum));
    cdf.Append(std::move(row));
  }
  out.Set("cdf", std::move(cdf));
  return out;
}

}  // namespace samya
