#ifndef SAMYA_COMMON_FLAT_SET64_H_
#define SAMYA_COMMON_FLAT_SET64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace samya {

/// \brief Open-addressing set of non-zero `uint64_t` keys.
///
/// Replaces `std::unordered_set<uint64_t>` where insert/erase sit on a hot
/// path — e.g. the per-request timer bookkeeping in `sim::Node`, where a
/// timer is armed and cancelled for every client request and every Avantan
/// round. Linear probing over a flat power-of-two table; deletion uses
/// backward-shift (no tombstones), so lookups stay one cache-friendly scan.
///
/// Key 0 marks empty slots and is reserved: it is never stored, and
/// `contains(0)`/`erase(0)`/`insert(0)` are well-defined no-ops (false/0) —
/// callers like `Node::CancelTimer` pass 0 for a never-armed timer id.
class FlatSet64 {
 public:
  FlatSet64() = default;

  bool contains(uint64_t key) const {
    if (key == 0 || size_ == 0) return false;
    size_t i = Slot(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Returns true if the key was inserted (false if already present or 0).
  bool insert(uint64_t key) {
    if (key == 0) return false;
    if (slots_.empty() || size_ * 4 >= slots_.size() * 3) Grow();
    size_t i = Slot(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  /// Returns the number of elements removed (0 or 1).
  size_t erase(uint64_t key) {
    if (key == 0 || size_ == 0) return 0;
    size_t i = Slot(key);
    while (slots_[i] != key) {
      if (slots_[i] == 0) return 0;
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: close the hole so probe chains stay intact.
    size_t hole = i;
    size_t j = (i + 1) & mask_;
    while (slots_[j] != 0) {
      const size_t home = Slot(slots_[j]);
      // Move slots_[j] into the hole iff the hole lies on its probe path.
      const bool movable = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (movable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole] = 0;
    --size_;
    return 1;
  }

  void clear() {
    slots_.assign(slots_.size(), 0);
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

 private:
  static uint64_t Mix(uint64_t x) {
    // splitmix64 finaliser: sequential timer ids scatter across the table.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t Slot(uint64_t key) const { return Mix(key) & mask_; }

  void Grow() {
    const size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
    for (uint64_t key : old) {
      if (key != 0) insert(key);
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace samya

#endif  // SAMYA_COMMON_FLAT_SET64_H_
