#ifndef SAMYA_COMMON_CRC32_H_
#define SAMYA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace samya {

/// CRC-32C (Castagnoli) checksum over a byte span. Used for WAL record and
/// message-envelope integrity.
uint32_t Crc32c(const uint8_t* data, size_t n);

inline uint32_t Crc32c(const std::vector<uint8_t>& buf) {
  return Crc32c(buf.data(), buf.size());
}

/// Masked form (RocksDB/LevelDB idiom): storing a CRC of data that itself
/// contains CRCs is error-prone, so stored checksums are masked.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace samya

#endif  // SAMYA_COMMON_CRC32_H_
