#ifndef SAMYA_COMMON_TESTONLY_MUTATION_H_
#define SAMYA_COMMON_TESTONLY_MUTATION_H_

namespace samya {

/// \file
/// Test-only fault re-injection ("mutation testing" of the checkers): known,
/// historically-fixed bugs kept reachable behind opt-in flags, so the test
/// tooling can prove it would have caught them. A mutation is enabled by
/// listing its name in the SAMYA_TESTONLY_MUTATION environment variable
/// (comma separated) or programmatically via `SetMutationForTest`. With no
/// flag set, every guarded site compiles to its fixed behaviour.
///
/// Registered mutations:
///  - "alloc_remainder": PR 2's initial-allocation bug — sites get
///    M_e / n each and the M_e % n remainder is dropped, so pools no longer
///    sum to M_e (conservation deficit on 3/7-site clusters).
///  - "compact_before_apply": PR 4's storage bug — FileStableStorage
///    compacts the log before applying the op to the in-memory map,
///    rewriting the log from a stale map and dropping the just-synced
///    record.

inline constexpr char kMutationAllocRemainder[] = "alloc_remainder";
inline constexpr char kMutationCompactBeforeApply[] = "compact_before_apply";

/// True when the named mutation is enabled (env var or test override).
/// Callers on warm paths should cache the result at setup time.
bool MutationEnabled(const char* name);

/// Forces a mutation on/off for this process, overriding the environment.
/// Test-only; affects subsequently-constructed components (existing ones may
/// have cached the previous value).
void SetMutationForTest(const char* name, bool enabled);

}  // namespace samya

#endif  // SAMYA_COMMON_TESTONLY_MUTATION_H_
