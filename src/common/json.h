#ifndef SAMYA_COMMON_JSON_H_
#define SAMYA_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace samya {

/// \brief Minimal JSON document model for serializing fault schedules,
/// chaos-corpus cases, and bench reports without external dependencies.
///
/// Design points:
///  - Objects preserve insertion order (a `vector` of key/value pairs), so
///    dumped corpus files diff cleanly and round-trip byte-identically.
///  - Integers are kept distinct from doubles: `SimTime` values are int64
///    microseconds and must survive a round trip exactly.
///  - No exceptions: `JsonParse` returns `Result<JsonValue>`; accessors on
///    the wrong type abort (programmer error), with `is_*` / `Find` for the
///    fallible paths.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(nullptr) {}  // null
  /* implicit */ JsonValue(std::nullptr_t) : v_(nullptr) {}        // NOLINT
  /* implicit */ JsonValue(bool b) : v_(b) {}                      // NOLINT
  /* implicit */ JsonValue(int i) : v_(static_cast<int64_t>(i)) {} // NOLINT
  /* implicit */ JsonValue(int64_t i) : v_(i) {}                   // NOLINT
  /* implicit */ JsonValue(uint64_t i)                             // NOLINT
      : v_(static_cast<int64_t>(i)) {}
  /* implicit */ JsonValue(double d) : v_(d) {}                    // NOLINT
  /* implicit */ JsonValue(const char* s) : v_(std::string(s)) {}  // NOLINT
  /* implicit */ JsonValue(std::string s) : v_(std::move(s)) {}    // NOLINT
  /* implicit */ JsonValue(Array a) : v_(std::move(a)) {}          // NOLINT

  static JsonValue MakeObject() {
    JsonValue v;
    v.v_ = Object{};
    return v;
  }
  static JsonValue MakeArray() {
    JsonValue v;
    v.v_ = Array{};
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  /// Numeric value as double; accepts both int and double storage.
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Appends to an array value.
  void Append(JsonValue v) { as_array().push_back(std::move(v)); }

  /// Sets `key` in an object value (appends; does not dedupe).
  void Set(std::string key, JsonValue v) {
    as_object().emplace_back(std::move(key), std::move(v));
  }

  /// Finds `key` in an object value; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience typed getters with defaults, for tolerant corpus loading.
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  double GetDouble(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key, std::string fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  bool operator==(const JsonValue& o) const { return v_ == o.v_; }
  bool operator!=(const JsonValue& o) const { return !(v_ == o.v_); }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      v_;
};

/// Parses a JSON document. Strict-ish RFC 8259: no comments, no trailing
/// commas; `\uXXXX` escapes are decoded to UTF-8 (surrogate pairs included).
Result<JsonValue> JsonParse(std::string_view text);

/// Serializes a document. `indent` 0 emits a compact single line; > 0
/// pretty-prints with that many spaces per level (corpus files use 2).
std::string JsonDump(const JsonValue& v, int indent = 0);

}  // namespace samya

#endif  // SAMYA_COMMON_JSON_H_
