#ifndef SAMYA_COMMON_TIMESERIES_H_
#define SAMYA_COMMON_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace samya {

/// \brief Fixed-interval event counter used to record throughput-over-time
/// series (the line plots of Figs 3b-3f).
///
/// Events are bucketed by simulated time into `interval`-wide bins; the
/// resulting series can be queried per-bin or aggregated into coarser bins
/// for plotting.
class RateSeries {
 public:
  explicit RateSeries(Duration interval) : interval_(interval) {}

  /// Counts one event (e.g. a committed transaction) at time `t`.
  void Record(SimTime t, int64_t count = 1);

  Duration interval() const { return interval_; }
  size_t num_bins() const { return bins_.size(); }
  int64_t bin(size_t i) const { return i < bins_.size() ? bins_[i] : 0; }
  int64_t total() const;

  /// Events per second within bin `i`.
  double RatePerSecond(size_t i) const;

  /// Mean events/second over [from, to) in simulated time.
  double MeanRate(SimTime from, SimTime to) const;

  /// Re-buckets into `coarse`-wide bins (coarse must be a multiple of the
  /// native interval); returns events/second per coarse bin.
  std::vector<double> Resample(Duration coarse) const;

  /// Renders "t_minutes,rate" CSV rows for plotting.
  std::string ToCsv(Duration coarse) const;

 private:
  Duration interval_;
  std::vector<int64_t> bins_;
};

/// Summary statistics helpers for plain double series.
double Mean(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);

}  // namespace samya

#endif  // SAMYA_COMMON_TIMESERIES_H_
