#ifndef SAMYA_COMMON_HISTOGRAM_H_
#define SAMYA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace samya {

class JsonValue;

/// \brief Log-bucketed latency histogram with percentile queries.
///
/// Values (microseconds in practice) are recorded into exponentially-spaced
/// buckets (~4.6% relative width), so p50..p99.9 queries are O(#buckets) and
/// memory is constant regardless of sample count. Mirrors the histograms used
/// by RocksDB statistics.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double mean() const;

  /// Value at the given percentile in [0, 100]. Returns 0 for empty
  /// histograms. Interpolates within the containing bucket.
  double Percentile(double p) const;

  double P50() const { return Percentile(50); }
  double P90() const { return Percentile(90); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  /// One-line summary, latencies rendered in milliseconds.
  std::string ToString() const;

  /// Snapshot for the metrics export: count/mean/min/max/p50/p90/p99 plus a
  /// bucket CDF — an array of {"le": upper_bound, "count": cumulative} rows,
  /// one per non-empty bucket (empty histograms export an empty CDF).
  JsonValue ToJson() const;

 private:
  static size_t BucketFor(int64_t value);
  static int64_t BucketLower(size_t b);
  static int64_t BucketUpper(size_t b);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  long double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace samya

#endif  // SAMYA_COMMON_HISTOGRAM_H_
