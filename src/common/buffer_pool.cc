#include "common/buffer_pool.h"

namespace samya {

double BufferPool::ReuseRate() const {
  if (stats_.acquired == 0) return 0.0;
  return static_cast<double>(stats_.reused) /
         static_cast<double>(stats_.acquired);
}

}  // namespace samya
