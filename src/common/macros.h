#ifndef SAMYA_COMMON_MACROS_H_
#define SAMYA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. Samya does not use exceptions (see DESIGN.md);
/// recoverable errors flow through `Status`/`Result`, while programmer errors
/// (broken invariants) abort the process with a source location.

#define SAMYA_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SAMYA_CHECK_MSG(cond, ...)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s: ", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SAMYA_CHECK_EQ(a, b) SAMYA_CHECK((a) == (b))
#define SAMYA_CHECK_NE(a, b) SAMYA_CHECK((a) != (b))
#define SAMYA_CHECK_LE(a, b) SAMYA_CHECK((a) <= (b))
#define SAMYA_CHECK_LT(a, b) SAMYA_CHECK((a) < (b))
#define SAMYA_CHECK_GE(a, b) SAMYA_CHECK((a) >= (b))
#define SAMYA_CHECK_GT(a, b) SAMYA_CHECK((a) > (b))

/// Propagates a non-OK Status from an expression returning `Status`.
#define SAMYA_RETURN_IF_ERROR(expr)                                          \
  do {                                                                       \
    ::samya::Status _st = (expr);                                            \
    if (!_st.ok()) return _st;                                               \
  } while (0)

#endif  // SAMYA_COMMON_MACROS_H_
