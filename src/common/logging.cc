#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace samya {

LogLevel Logger::level_ = LogLevel::kWarn;

namespace {

std::mutex& SinkMutex() {
  static std::mutex& m = *new std::mutex;
  return m;
}

thread_local std::string t_prefix;
thread_local const int64_t* t_sim_now_us = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void Logger::SetThreadPrefix(std::string prefix) {
  t_prefix = std::move(prefix);
}

void Logger::SetThreadSimClock(const int64_t* now_us) {
  t_sim_now_us = now_us;
}

void Logger::Log(LogLevel level, const char* fmt, ...) {
  if (level < level_) return;

  // Format the whole line locally, then emit it under the sink mutex as one
  // fprintf so concurrent threads never interleave mid-line.
  char head[96];
  int head_len;
  if (t_sim_now_us != nullptr) {
    head_len = std::snprintf(head, sizeof(head), "[%s] [t=%.3fms] ",
                             LevelName(level),
                             static_cast<double>(*t_sim_now_us) / 1000.0);
  } else {
    head_len = std::snprintf(head, sizeof(head), "[%s] ", LevelName(level));
  }
  if (head_len < 0) head_len = 0;

  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  int body_len = std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);
  if (body_len < 0) body_len = 0;
  if (static_cast<size_t>(body_len) >= sizeof(body)) {
    body_len = sizeof(body) - 1;  // truncated; still a valid line
  }

  std::lock_guard<std::mutex> lock(SinkMutex());
  if (!t_prefix.empty()) {
    std::fprintf(stderr, "%.*s[%s] %.*s\n", head_len, head, t_prefix.c_str(),
                 body_len, body);
  } else {
    std::fprintf(stderr, "%.*s%.*s\n", head_len, head, body_len, body);
  }
}

}  // namespace samya
