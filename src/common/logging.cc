#include "common/logging.h"

#include <cstdio>

namespace samya {

LogLevel Logger::level_ = LogLevel::kWarn;

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::Log(LogLevel level, const char* fmt, ...) {
  if (level < level_) return;
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "\n");
}

}  // namespace samya
