#ifndef SAMYA_COMMON_INLINE_FUNCTION_H_
#define SAMYA_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace samya {

/// \file
/// `InlineFunction<R(Args...)>`: a move-only callable wrapper with small
/// buffer optimisation, built for the simulator's event hot path. Unlike
/// `std::function` it
///   - never copies the wrapped callable (move-only, so captures may hold
///     move-only state such as pooled buffers),
///   - stores callables up to `InlineBytes` (default 48) in place, which
///     covers every closure the simulator schedules — no per-event heap
///     allocation,
///   - relocates trivially-copyable inline callables with `memcpy`
///     (`manage_ == nullptr`), which is what keeps d-ary heap sifts cheap.
/// Larger or over-aligned callables fall back to a single heap allocation.

inline constexpr size_t kInlineFunctionBytes = 48;

template <typename Signature, size_t InlineBytes = kInlineFunctionBytes>
class InlineFunction;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kStoreInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &InlineInvoke<D>;
      if constexpr (!std::is_trivially_copyable_v<D>) {
        manage_ = &InlineManage<D>;
      }
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      invoke_ = &HeapInvoke<D>;
      manage_ = &HeapManage<D>;
      heap_ = true;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the wrapped callable lives in the inline buffer (test hook).
  bool is_inline() const noexcept {
    return invoke_ != nullptr && heap_ == false;
  }

 private:
  enum class Op { kMoveDestroySrc, kDestroy };

  template <typename D>
  static constexpr bool kStoreInline =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_move_constructible_v<D>;

  template <typename D>
  static R InlineInvoke(void* buf, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(buf)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static void InlineManage(Op op, void* dst, void* src) {
    D* s = std::launder(reinterpret_cast<D*>(src));
    if (op == Op::kMoveDestroySrc) {
      ::new (dst) D(std::move(*s));
    }
    s->~D();
  }

  template <typename D>
  static R HeapInvoke(void* buf, Args&&... args) {
    return (**reinterpret_cast<D**>(buf))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void HeapManage(Op op, void* dst, void* src) {
    if (op == Op::kMoveDestroySrc) {
      std::memcpy(dst, src, sizeof(D*));  // transfer ownership of the pointer
    } else {
      delete *reinterpret_cast<D**>(src);
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Op::kMoveDestroySrc, buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, InlineBytes);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  void Reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, nullptr, buf_);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*manage_)(Op, void* dst, void* src) = nullptr;
  bool heap_ = false;
};

}  // namespace samya

#endif  // SAMYA_COMMON_INLINE_FUNCTION_H_
