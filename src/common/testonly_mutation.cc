#include "common/testonly_mutation.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace samya {

namespace {

std::mutex g_mutex;

const std::set<std::string>& EnvMutations() {
  static const std::set<std::string>* parsed = [] {
    auto* out = new std::set<std::string>();
    const char* env = std::getenv("SAMYA_TESTONLY_MUTATION");
    if (env != nullptr) {
      std::string list(env);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) out->insert(list.substr(start, comma - start));
        start = comma + 1;
      }
    }
    return out;
  }();
  return *parsed;
}

std::map<std::string, bool>& Overrides() {
  static auto* overrides = new std::map<std::string, bool>();
  return *overrides;
}

}  // namespace

bool MutationEnabled(const char* name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = Overrides().find(name);
  if (it != Overrides().end()) return it->second;
  return EnvMutations().count(name) > 0;
}

void SetMutationForTest(const char* name, bool enabled) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Overrides()[name] = enabled;
}

}  // namespace samya
