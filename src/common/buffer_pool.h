#ifndef SAMYA_COMMON_BUFFER_POOL_H_
#define SAMYA_COMMON_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace samya {

/// \brief Free-list of byte buffers for the message hot path.
///
/// `Network::Send` moves one encoded payload per message through the event
/// queue; without pooling that is a fresh `std::vector` allocation per
/// message. The pool recycles buffers instead: `Acquire` hands out an empty
/// vector that keeps the capacity of a previously released one, `Release`
/// returns a delivered (or dropped) payload for reuse.
///
/// Single-threaded by design, like everything else hanging off a
/// `SimEnvironment`: each simulation owns its own pool, so the parallel
/// experiment runner needs no locking here.
class BufferPool {
 public:
  struct Stats {
    uint64_t acquired = 0;   ///< total Acquire calls
    uint64_t reused = 0;     ///< Acquires served from the free list
    uint64_t released = 0;   ///< buffers returned
    uint64_t discarded = 0;  ///< returns dropped (pool full / oversized)
  };

  explicit BufferPool(size_t max_pooled = kDefaultMaxPooled,
                      size_t max_buffer_capacity = kDefaultMaxCapacity)
      : max_pooled_(max_pooled), max_buffer_capacity_(max_buffer_capacity) {}

  /// Returns an empty buffer, reusing a pooled one's capacity if available.
  /// Inline: runs once per message sent.
  std::vector<uint8_t> Acquire() {
    ++stats_.acquired;
    if (free_.empty()) return {};
    ++stats_.reused;
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  /// Returns `buf` to the pool. Oversized buffers and overflow beyond
  /// `max_pooled` are simply freed, so the pool's footprint stays bounded.
  /// Inline: runs once per message delivered or dropped.
  void Release(std::vector<uint8_t> buf) {
    ++stats_.released;
    if (buf.capacity() == 0 || buf.capacity() > max_buffer_capacity_ ||
        free_.size() >= max_pooled_) {
      ++stats_.discarded;
      return;
    }
    buf.clear();
    free_.push_back(std::move(buf));
  }

  const Stats& stats() const { return stats_; }
  size_t pooled() const { return free_.size(); }

  /// Fraction of Acquire calls served without allocating (bench metric).
  double ReuseRate() const;

  static constexpr size_t kDefaultMaxPooled = 4096;
  static constexpr size_t kDefaultMaxCapacity = 1 << 16;

 private:
  std::vector<std::vector<uint8_t>> free_;
  size_t max_pooled_;
  size_t max_buffer_capacity_;
  Stats stats_;
};

}  // namespace samya

#endif  // SAMYA_COMMON_BUFFER_POOL_H_
