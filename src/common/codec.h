#ifndef SAMYA_COMMON_CODEC_H_
#define SAMYA_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace samya {

/// \file
/// Byte-level wire codec. Every protocol message in the repository is encoded
/// with `BufferWriter` and decoded with `BufferReader`; the simulator moves
/// byte buffers only, so the codec is exercised by every test and benchmark.
///
/// Encoding primitives: fixed-width little-endian integers, LEB128 varints,
/// zig-zag signed varints, length-prefixed strings, and IEEE-754 doubles.

/// Append-only encoder producing a `std::vector<uint8_t>` buffer.
class BufferWriter {
 public:
  BufferWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);

  /// Unsigned LEB128 varint.
  void PutVarint(uint64_t v);
  /// Zig-zag-encoded signed varint.
  void PutVarintSigned(int64_t v);

  /// Length-prefixed (varint) byte string.
  void PutString(const std::string& s);
  void PutBytes(const uint8_t* data, size_t n);
  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  /// Empties the writer but keeps its capacity, so a long-lived scratch
  /// writer on a hot path (e.g. `Site::Persist`) stops re-allocating.
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential decoder over a byte span. All getters return a `Result` (or
/// Status-checked value) rather than trusting the buffer: a truncated or
/// corrupt message surfaces as `kCorruption`, never as UB.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetVarintSigned();
  Result<std::string> GetString();
  Result<bool> GetBool();

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }
  size_t position() const { return pos_; }

  /// Raw access to the underlying bytes. Lets a relay forward the exact
  /// encoded span `[start_position, position())` it just decoded without
  /// re-encoding it.
  const uint8_t* data() const { return data_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};


// Inline definitions. The codec sits under every message send and every
// decode on the simulator hot path (tens of millions of calls per bench
// run), so these stay in the header where they can inline into callers.

// The fixed-width putters grow the buffer once and then store bytes, rather
// than paying a capacity check per byte via push_back; the shift-based
// stores compile to a single unaligned store on little-endian targets.

inline void BufferWriter::PutU16(uint16_t v) {
  const size_t n = buf_.size();
  buf_.resize(n + 2);
  buf_[n] = static_cast<uint8_t>(v & 0xff);
  buf_[n + 1] = static_cast<uint8_t>(v >> 8);
}

inline void BufferWriter::PutU32(uint32_t v) {
  const size_t n = buf_.size();
  buf_.resize(n + 4);
  for (int i = 0; i < 4; ++i)
    buf_[n + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

inline void BufferWriter::PutU64(uint64_t v) {
  const size_t n = buf_.size();
  buf_.resize(n + 8);
  for (int i = 0; i < 8; ++i)
    buf_[n + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

inline void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

inline void BufferWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

inline void BufferWriter::PutVarintSigned(int64_t v) {
  // Zig-zag: maps small-magnitude signed values to small varints.
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

inline void BufferWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

inline void BufferWriter::PutBytes(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

inline Status BufferReader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::Corruption("buffer underflow: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  return Status::OK();
}

inline Result<uint8_t> BufferReader::GetU8() {
  SAMYA_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

inline Result<uint16_t> BufferReader::GetU16() {
  SAMYA_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

inline Result<uint32_t> BufferReader::GetU32() {
  SAMYA_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

inline Result<uint64_t> BufferReader::GetU64() {
  SAMYA_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

inline Result<int64_t> BufferReader::GetI64() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

inline Result<double> BufferReader::GetDouble() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

inline Result<uint64_t> BufferReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) return Status::Corruption("varint too long");
    SAMYA_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

inline Result<int64_t> BufferReader::GetVarintSigned() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

inline Result<std::string> BufferReader::GetString() {
  SAMYA_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  SAMYA_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

inline Result<bool> BufferReader::GetBool() {
  SAMYA_ASSIGN_OR_RETURN(uint8_t b, GetU8());
  if (b > 1) return Status::Corruption("invalid bool byte");
  return b == 1;
}

}  // namespace samya

#endif  // SAMYA_COMMON_CODEC_H_
