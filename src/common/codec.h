#ifndef SAMYA_COMMON_CODEC_H_
#define SAMYA_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace samya {

/// \file
/// Byte-level wire codec. Every protocol message in the repository is encoded
/// with `BufferWriter` and decoded with `BufferReader`; the simulator moves
/// byte buffers only, so the codec is exercised by every test and benchmark.
///
/// Encoding primitives: fixed-width little-endian integers, LEB128 varints,
/// zig-zag signed varints, length-prefixed strings, and IEEE-754 doubles.

/// Append-only encoder producing a `std::vector<uint8_t>` buffer.
class BufferWriter {
 public:
  BufferWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);

  /// Unsigned LEB128 varint.
  void PutVarint(uint64_t v);
  /// Zig-zag-encoded signed varint.
  void PutVarintSigned(int64_t v);

  /// Length-prefixed (varint) byte string.
  void PutString(const std::string& s);
  void PutBytes(const uint8_t* data, size_t n);
  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential decoder over a byte span. All getters return a `Result` (or
/// Status-checked value) rather than trusting the buffer: a truncated or
/// corrupt message surfaces as `kCorruption`, never as UB.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetVarintSigned();
  Result<std::string> GetString();
  Result<bool> GetBool();

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace samya

#endif  // SAMYA_COMMON_CODEC_H_
