#ifndef SAMYA_COMMON_TIME_H_
#define SAMYA_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace samya {

/// Simulated time, in microseconds since the start of the simulation.
/// All protocol code deals in `SimTime`/`Duration` only; wall-clock time never
/// leaks into protocol logic, which is what makes runs deterministic.
using SimTime = int64_t;
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

constexpr Duration Micros(int64_t n) { return n * kMicrosecond; }
constexpr Duration Millis(int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(int64_t n) { return n * kSecond; }
constexpr Duration Minutes(int64_t n) { return n * kMinute; }

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / kSecond;
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / kMillisecond;
}

/// Formats a duration as e.g. "12.3ms" / "4.56s" for logs and tables.
std::string FormatDuration(Duration d);

}  // namespace samya

#endif  // SAMYA_COMMON_TIME_H_
