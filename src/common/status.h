#ifndef SAMYA_COMMON_STATUS_H_
#define SAMYA_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace samya {

/// Error categories used across the library. Kept deliberately small; the
/// message string carries the specifics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,   ///< acquire rejected: not enough tokens anywhere
  kUnavailable,         ///< site down / partitioned / no quorum
  kTimedOut,
  kAborted,             ///< protocol instance aborted (e.g. superseded ballot)
  kCorruption,          ///< WAL / codec integrity failure
  kInternal,
};

/// \brief Exception-free error type returned by all fallible operations.
///
/// Follows the RocksDB/Abseil idiom: cheap to copy when OK, carries a code and
/// message otherwise. Use `Result<T>` when a value is produced on success.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// Human-readable "CODE: message" form for logs.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Value-or-Status, the return type of fallible value-producing calls.
///
/// `Result<T>` is either an engaged value or a non-OK `Status`. Accessing the
/// value of an errored result aborts (programmer error).
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : v_(std::move(value)) {}  // NOLINT
  /* implicit */ Result(Status status) : v_(std::move(status)) {  // NOLINT
    SAMYA_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    SAMYA_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    SAMYA_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(v_);
  }
  T&& value() && {
    SAMYA_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(std::move(v_));
  }

  /// Status of the result; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

const char* StatusCodeName(StatusCode code);

}  // namespace samya

#define SAMYA_CONCAT_INNER_(a, b) a##b
#define SAMYA_CONCAT_(a, b) SAMYA_CONCAT_INNER_(a, b)

/// Propagates the error of a `Result<T>` expression, otherwise binds the
/// value to `lhs`.
#define SAMYA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define SAMYA_ASSIGN_OR_RETURN(lhs, expr) \
  SAMYA_ASSIGN_OR_RETURN_IMPL_(SAMYA_CONCAT_(_res_, __LINE__), lhs, expr)

#endif  // SAMYA_COMMON_STATUS_H_
