#include "common/random.h"

#include "common/macros.h"

namespace samya {

namespace {

// SplitMix64: used to expand the seed into xoshiro state and to mix fork tags.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  SAMYA_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SAMYA_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  SAMYA_CHECK_GT(mean, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

int64_t Rng::Poisson(double mean) {
  SAMYA_CHECK_GE(mean, 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's method for small means.
    const double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means.
  const double v = Gaussian(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

Rng Rng::Fork(uint64_t tag) {
  uint64_t x = Next() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(x));
}

}  // namespace samya
