#include "common/random.h"

namespace samya {

namespace {

// SplitMix64: used to expand the seed into xoshiro state and to mix fork tags.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  has_spare_gaussian_ = false;
}

int64_t Rng::Poisson(double mean) {
  SAMYA_CHECK_GE(mean, 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's method for small means.
    const double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means.
  const double v = Gaussian(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

Rng Rng::Fork(uint64_t tag) {
  uint64_t x = Next() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(x));
}

}  // namespace samya
