#ifndef SAMYA_COMMON_TOKEN_API_H_
#define SAMYA_COMMON_TOKEN_API_H_

#include <cstdint>

#include "common/codec.h"
#include "common/status.h"

namespace samya {

/// \file
/// Client-facing token API shared by every system in the repository: Samya
/// app managers/sites, MultiPaxSys, the Raft-based CockroachDB-like baseline,
/// and Demarcation/Escrow all speak these two messages, so the experiment
/// harness can drive them interchangeably.
///
/// Message-type registry (`sim::Network` carries a uint32 type per message):
///   10-19   token client API (this file)
///   100-119 multi-Paxos
///   120-139 Raft
///   140-149 single-decree Paxos
///   200-229 Avantan (both versions)
///   230-249 Samya site/app-manager internal
///   250-269 Demarcation/Escrow

inline constexpr uint32_t kMsgTokenRequest = 10;
inline constexpr uint32_t kMsgTokenResponse = 11;
/// Batched form of kMsgTokenRequest (app manager -> site, DESIGN.md §9):
/// [varint count][count x encoded TokenRequest]. The receiver serves each
/// contained request exactly as if it had arrived alone — per-request
/// replies, queueing, and at-most-once dedup all apply unchanged — so
/// batching only amortizes the message count, never changes semantics.
inline constexpr uint32_t kMsgTokenBatchRequest = 12;

/// The paper's transaction types (§3.2) plus the read-only global-snapshot
/// transaction of §5.8.
enum class TokenOp : uint8_t {
  kAcquire = 1,  ///< acquireTokens(e, n)
  kRelease = 2,  ///< releaseTokens(e, m)
  kRead = 3,     ///< read total available tokens
};

/// A client transaction against an entity's token pool. `entity` selects
/// the resource type (§3.2's e — VM, storage, bandwidth, …); single-entity
/// deployments use the default 0.
struct TokenRequest {
  uint64_t request_id = 0;
  uint32_t entity = 0;
  TokenOp op = TokenOp::kAcquire;
  int64_t amount = 1;

  void EncodeTo(BufferWriter& w) const;
  static Result<TokenRequest> DecodeFrom(BufferReader& r);
};

/// Final or retryable outcome of a token transaction.
enum class TokenStatus : uint8_t {
  kCommitted = 1,   ///< transaction committed
  kRejected = 2,    ///< final: constraint Eq. 1 would be violated
  kNotLeader = 3,   ///< retryable: resend to `leader_hint`
  kOverloaded = 4,  ///< retryable: admission queue full, back off
};

/// Outcome of a token transaction, relayed back to the issuing client.
struct TokenResponse {
  uint64_t request_id = 0;
  TokenStatus status = TokenStatus::kRejected;
  /// For reads: the observed global token availability.
  int64_t value = 0;
  /// When a non-leader replica rejects a request it hints who leads.
  int32_t leader_hint = -1;

  bool committed() const { return status == TokenStatus::kCommitted; }

  void EncodeTo(BufferWriter& w) const;
  static Result<TokenResponse> DecodeFrom(BufferReader& r);
};


// Inline definitions. Both messages cross the wire once per client
// transaction in every system, so the codecs stay in the header where the
// varint loops and `Result` plumbing inline into the handler loops.

inline void TokenRequest::EncodeTo(BufferWriter& w) const {
  w.PutU64(request_id);
  w.PutVarint(entity);
  w.PutU8(static_cast<uint8_t>(op));
  w.PutVarintSigned(amount);
}

inline Result<TokenRequest> TokenRequest::DecodeFrom(BufferReader& r) {
  TokenRequest req;
  SAMYA_ASSIGN_OR_RETURN(req.request_id, r.GetU64());
  SAMYA_ASSIGN_OR_RETURN(uint64_t entity, r.GetVarint());
  req.entity = static_cast<uint32_t>(entity);
  SAMYA_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
  if (op < 1 || op > 3) return Status::Corruption("bad token op");
  req.op = static_cast<TokenOp>(op);
  SAMYA_ASSIGN_OR_RETURN(req.amount, r.GetVarintSigned());
  return req;
}

inline void TokenResponse::EncodeTo(BufferWriter& w) const {
  w.PutU64(request_id);
  w.PutU8(static_cast<uint8_t>(status));
  w.PutVarintSigned(value);
  w.PutVarintSigned(leader_hint);
}

inline Result<TokenResponse> TokenResponse::DecodeFrom(BufferReader& r) {
  TokenResponse resp;
  SAMYA_ASSIGN_OR_RETURN(resp.request_id, r.GetU64());
  SAMYA_ASSIGN_OR_RETURN(uint8_t status, r.GetU8());
  if (status < 1 || status > 4) return Status::Corruption("bad token status");
  resp.status = static_cast<TokenStatus>(status);
  SAMYA_ASSIGN_OR_RETURN(resp.value, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(int64_t hint, r.GetVarintSigned());
  resp.leader_hint = static_cast<int32_t>(hint);
  return resp;
}

}  // namespace samya

#endif  // SAMYA_COMMON_TOKEN_API_H_
