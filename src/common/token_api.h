#ifndef SAMYA_COMMON_TOKEN_API_H_
#define SAMYA_COMMON_TOKEN_API_H_

#include <cstdint>

#include "common/codec.h"
#include "common/status.h"

namespace samya {

/// \file
/// Client-facing token API shared by every system in the repository: Samya
/// app managers/sites, MultiPaxSys, the Raft-based CockroachDB-like baseline,
/// and Demarcation/Escrow all speak these two messages, so the experiment
/// harness can drive them interchangeably.
///
/// Message-type registry (`sim::Network` carries a uint32 type per message):
///   10-19   token client API (this file)
///   100-119 multi-Paxos
///   120-139 Raft
///   140-149 single-decree Paxos
///   200-229 Avantan (both versions)
///   230-249 Samya site/app-manager internal
///   250-269 Demarcation/Escrow

inline constexpr uint32_t kMsgTokenRequest = 10;
inline constexpr uint32_t kMsgTokenResponse = 11;

/// The paper's transaction types (§3.2) plus the read-only global-snapshot
/// transaction of §5.8.
enum class TokenOp : uint8_t {
  kAcquire = 1,  ///< acquireTokens(e, n)
  kRelease = 2,  ///< releaseTokens(e, m)
  kRead = 3,     ///< read total available tokens
};

/// A client transaction against an entity's token pool. `entity` selects
/// the resource type (§3.2's e — VM, storage, bandwidth, …); single-entity
/// deployments use the default 0.
struct TokenRequest {
  uint64_t request_id = 0;
  uint32_t entity = 0;
  TokenOp op = TokenOp::kAcquire;
  int64_t amount = 1;

  void EncodeTo(BufferWriter& w) const;
  static Result<TokenRequest> DecodeFrom(BufferReader& r);
};

/// Final or retryable outcome of a token transaction.
enum class TokenStatus : uint8_t {
  kCommitted = 1,   ///< transaction committed
  kRejected = 2,    ///< final: constraint Eq. 1 would be violated
  kNotLeader = 3,   ///< retryable: resend to `leader_hint`
  kOverloaded = 4,  ///< retryable: admission queue full, back off
};

/// Outcome of a token transaction, relayed back to the issuing client.
struct TokenResponse {
  uint64_t request_id = 0;
  TokenStatus status = TokenStatus::kRejected;
  /// For reads: the observed global token availability.
  int64_t value = 0;
  /// When a non-leader replica rejects a request it hints who leads.
  int32_t leader_hint = -1;

  bool committed() const { return status == TokenStatus::kCommitted; }

  void EncodeTo(BufferWriter& w) const;
  static Result<TokenResponse> DecodeFrom(BufferReader& r);
};

}  // namespace samya

#endif  // SAMYA_COMMON_TOKEN_API_H_
