#ifndef SAMYA_CONSENSUS_TOKEN_SM_H_
#define SAMYA_CONSENSUS_TOKEN_SM_H_

#include <unordered_map>

#include "common/token_api.h"
#include "consensus/state_machine.h"

namespace samya::consensus {

/// \brief The replicated hot-spot record: a bounded token counter.
///
/// This is the data item MultiPaxSys and the CockroachDB-like baseline
/// replicate per update. It enforces the same global constraint Eq. 1 that
/// Samya maintains in dis-aggregated form:
///   0 <= acquired <= limit.
class TokenStateMachine : public StateMachine {
 public:
  explicit TokenStateMachine(int64_t limit) : limit_(limit) {}

  /// Command bytes are an encoded `TokenRequest`; the response is an encoded
  /// `TokenResponse` (committed flag + available-token value).
  std::vector<uint8_t> Apply(const std::vector<uint8_t>& command) override;
  std::vector<uint8_t> Query(const std::vector<uint8_t>& query) override;
  void Reset() override {
    acquired_ = 0;
    applied_.clear();
    applied_prev_.clear();
  }

  int64_t acquired() const { return acquired_; }
  int64_t available() const { return limit_ - acquired_; }
  int64_t limit() const { return limit_; }

 private:
  int64_t limit_;
  int64_t acquired_ = 0;
  /// At-most-once guard: a retried command (same request id) returns its
  /// original response instead of re-applying. Deterministic across
  /// replicas because it is driven purely by the applied command sequence.
  /// Bounded via two-generation rotation (retries arrive within seconds).
  static constexpr size_t kGenerationSize = 1 << 16;
  std::unordered_map<uint64_t, std::vector<uint8_t>> applied_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> applied_prev_;
};

}  // namespace samya::consensus

#endif  // SAMYA_CONSENSUS_TOKEN_SM_H_
