#ifndef SAMYA_CONSENSUS_TYPES_H_
#define SAMYA_CONSENSUS_TYPES_H_

#include <cstdint>
#include <string>

#include "common/codec.h"
#include "sim/node.h"

namespace samya::consensus {

/// A Paxos-style ballot: a monotonically increasing round number broken by
/// proposer id. Also used by Avantan (Table 1c: BallotNum = <num, id>).
struct Ballot {
  int64_t num = 0;
  sim::NodeId id = sim::kInvalidNode;

  bool operator==(const Ballot& o) const { return num == o.num && id == o.id; }
  bool operator!=(const Ballot& o) const { return !(*this == o); }
  bool operator<(const Ballot& o) const {
    if (num != o.num) return num < o.num;
    return id < o.id;
  }
  bool operator<=(const Ballot& o) const { return *this < o || *this == o; }
  bool operator>(const Ballot& o) const { return o < *this; }
  bool operator>=(const Ballot& o) const { return o <= *this; }

  void EncodeTo(BufferWriter& w) const {
    w.PutVarintSigned(num);
    w.PutVarintSigned(id);
  }
  static Result<Ballot> DecodeFrom(BufferReader& r) {
    Ballot b;
    SAMYA_ASSIGN_OR_RETURN(b.num, r.GetVarintSigned());
    SAMYA_ASSIGN_OR_RETURN(int64_t id, r.GetVarintSigned());
    b.id = static_cast<sim::NodeId>(id);
    return b;
  }

  std::string ToString() const {
    return "<" + std::to_string(num) + "," + std::to_string(id) + ">";
  }
};

}  // namespace samya::consensus

#endif  // SAMYA_CONSENSUS_TYPES_H_
