#ifndef SAMYA_CONSENSUS_PAXOS_H_
#define SAMYA_CONSENSUS_PAXOS_H_

#include <optional>
#include <vector>

#include "consensus/types.h"
#include "sim/node.h"
#include "storage/stable_storage.h"

namespace samya::consensus {

/// Message types 140-149 (see the registry in common/token_api.h).
inline constexpr uint32_t kMsgPaxosPrepare = 140;
inline constexpr uint32_t kMsgPaxosPromise = 141;
inline constexpr uint32_t kMsgPaxosAccept = 142;
inline constexpr uint32_t kMsgPaxosAccepted = 143;
inline constexpr uint32_t kMsgPaxosLearn = 144;

/// \brief Single-decree Paxos (Lamport's "Paxos made simple"), combined
/// proposer/acceptor/learner roles in one node.
///
/// Included both as the building block the paper contrasts Avantan against
/// and as a safety reference: the property tests assert its agreement
/// guarantee under crashes and message loss, the same way they do for
/// Avantan's Theorems 1-2. Values are int64 for test clarity.
class PaxosNode : public sim::Node {
 public:
  struct Options {
    std::vector<sim::NodeId> group;     ///< all participants (including self)
    Duration retry_timeout = Millis(400);
    storage::StableStorage* storage = nullptr;  ///< durable acceptor state
  };

  PaxosNode(sim::NodeId id, sim::Region region, Options opts);

  /// Starts proposing `value`. Retries with higher ballots until a value
  /// (not necessarily this one) is decided.
  void Propose(int64_t value);

  std::optional<int64_t> decided() const { return decided_; }

  /// Wires durable storage (call before Start; the cluster owns it).
  void set_storage(storage::StableStorage* storage) { opts_.storage = storage; }

  void Start() override;
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override;
  void HandleRecover() override;

 private:
  size_t Majority() const { return opts_.group.size() / 2 + 1; }
  void StartRound();
  void PersistAcceptor();
  void LoadAcceptor();

  void OnPrepare(sim::NodeId from, Ballot b);
  void OnPromise(sim::NodeId from, Ballot b, Ballot accepted_ballot,
                 bool has_value, int64_t value);
  void OnAccept(sim::NodeId from, Ballot b, int64_t value);
  void OnAccepted(sim::NodeId from, Ballot b);
  void OnLearn(int64_t value);

  Options opts_;

  // Acceptor state (durable).
  Ballot promised_;
  Ballot accepted_ballot_;
  std::optional<int64_t> accepted_value_;

  // Proposer state (volatile).
  bool proposing_ = false;
  int64_t my_value_ = 0;
  Ballot current_ballot_;
  int promises_ = 0;
  Ballot best_promise_ballot_;
  std::optional<int64_t> promise_value_;
  int accepts_ = 0;
  int64_t accept_value_ = 0;
  uint64_t round_ = 0;  // guards stale timer callbacks

  // Learner state.
  std::optional<int64_t> decided_;
};

}  // namespace samya::consensus

#endif  // SAMYA_CONSENSUS_PAXOS_H_
