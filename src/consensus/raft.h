#ifndef SAMYA_CONSENSUS_RAFT_H_
#define SAMYA_CONSENSUS_RAFT_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/token_api.h"
#include "consensus/state_machine.h"
#include "sim/node.h"
#include "storage/stable_storage.h"

namespace samya::consensus {

/// Message types 120-139.
inline constexpr uint32_t kMsgRaftRequestVote = 120;
inline constexpr uint32_t kMsgRaftVoteResponse = 121;
inline constexpr uint32_t kMsgRaftAppendEntries = 122;
inline constexpr uint32_t kMsgRaftAppendResponse = 123;

struct RaftOptions {
  std::vector<sim::NodeId> group;
  Duration heartbeat_interval = Millis(75);
  Duration election_timeout_min = Millis(500);
  Duration election_timeout_max = Millis(1000);
  /// Admission cap at the leader (see MultiPaxosOptions::max_pending).
  size_t max_pending = 8;
  /// Serialize conflicting commands: replicate one client command at a time
  /// (the hot-record behaviour of §1; CockroachDB serialises writes to one
  /// key through latches). Disable for pipelined replication.
  bool serialize_commands = true;
  /// If equal to the node's own id, the node short-circuits its first
  /// election timeout so startup converges immediately and deterministically.
  sim::NodeId initial_leader = sim::kInvalidNode;
  storage::StableStorage* storage = nullptr;
};

/// \brief Raft consensus (Ongaro & Ousterhout) replicating a `StateMachine`,
/// the engine of the CockroachDB-like baseline (§5: "uses Raft to replicate
/// any changes to the data").
///
/// Implements leader election with randomized timeouts, log replication with
/// the prev-index/term consistency check and follower log repair, commit on
/// majority match (current-term entries only), and durable term/vote/log.
/// Clients speak the shared token API; non-leaders answer with a hint.
class RaftNode : public sim::Node {
 public:
  RaftNode(sim::NodeId id, sim::Region region, RaftOptions opts,
           std::unique_ptr<StateMachine> sm);

  /// Wires durable storage (call before Start; the cluster owns it).
  void set_storage(storage::StableStorage* storage) { opts_.storage = storage; }

  void Start() override;
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override;
  void HandleRecover() override;

  bool IsLeader() const { return role_ == Role::kLeader; }
  sim::NodeId leader_hint() const { return leader_hint_; }
  int64_t current_term() const { return term_; }
  int64_t commit_index() const { return commit_index_; }

  struct Entry {
    int64_t term = 0;
    std::vector<uint8_t> command;
  };
  /// 1-based log (index 0 is a sentinel), exposed for safety tests.
  const std::vector<Entry>& log() const { return log_; }
  const StateMachine& state_machine() const { return *sm_; }

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  size_t Majority() const { return opts_.group.size() / 2 + 1; }
  int64_t LastLogIndex() const { return static_cast<int64_t>(log_.size()) - 1; }
  int64_t TermAt(int64_t index) const { return log_[static_cast<size_t>(index)].term; }

  void ResetElectionTimer(bool immediate = false);
  void BecomeFollower(int64_t term, sim::NodeId leader);
  void StartElection();
  void BecomeLeader();
  void SendAppendTo(sim::NodeId peer);
  void BroadcastAppend();
  void AdvanceCommit();
  void ApplyCommitted();
  void PersistMeta();
  void PersistLogFrom(size_t index);
  void LoadDurableState();
  void RejectClient(sim::NodeId client, uint64_t request_id,
                    TokenStatus status);

  void OnRequestVote(sim::NodeId from, BufferReader& r);
  void OnVoteResponse(sim::NodeId from, BufferReader& r);
  void OnAppendEntries(sim::NodeId from, BufferReader& r);
  void OnAppendResponse(sim::NodeId from, BufferReader& r);
  void OnClientRequest(sim::NodeId from, BufferReader& r);
  void AppendFromQueue();

  RaftOptions opts_;
  std::unique_ptr<StateMachine> sm_;

  Role role_ = Role::kFollower;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  int64_t term_ = 0;                       // durable
  sim::NodeId voted_for_ = sim::kInvalidNode;  // durable
  std::vector<Entry> log_;                 // durable; [0] sentinel

  int64_t commit_index_ = 0;
  int64_t last_applied_ = 0;

  // Leader volatile state.
  std::map<sim::NodeId, int64_t> next_index_;
  std::map<sim::NodeId, int64_t> match_index_;
  size_t pending_count_ = 0;  // admission-queue accounting
  std::deque<std::pair<sim::NodeId, std::vector<uint8_t>>> admission_queue_;
  std::map<int64_t, sim::NodeId> client_by_index_;

  int votes_ = 0;
  SimTime last_leader_contact_ = 0;
  bool first_timer_ = true;
};

}  // namespace samya::consensus

#endif  // SAMYA_CONSENSUS_RAFT_H_
