#ifndef SAMYA_CONSENSUS_STATE_MACHINE_H_
#define SAMYA_CONSENSUS_STATE_MACHINE_H_

#include <cstdint>
#include <vector>

namespace samya::consensus {

/// \brief Deterministic state machine replicated by multi-Paxos / Raft.
///
/// Commands and responses are opaque byte strings; replicas applying the same
/// command sequence must produce identical states and responses.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies a committed command, returns its response.
  virtual std::vector<uint8_t> Apply(const std::vector<uint8_t>& command) = 0;

  /// Serves a read-only query against current state (leader-only in both
  /// protocols, mirroring leader leases).
  virtual std::vector<uint8_t> Query(const std::vector<uint8_t>& query) = 0;

  /// Discards all state. Called before a crash-recovered replica replays its
  /// durable log from the beginning.
  virtual void Reset() = 0;
};

}  // namespace samya::consensus

#endif  // SAMYA_CONSENSUS_STATE_MACHINE_H_
