#include "consensus/paxos.h"

#include "common/logging.h"
#include "common/macros.h"

namespace samya::consensus {

namespace {
constexpr uint64_t kRetryTimer = 1;

const char* kKeyPromised = "paxos/promised";
const char* kKeyAccepted = "paxos/accepted";
}  // namespace

PaxosNode::PaxosNode(sim::NodeId id, sim::Region region, Options opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.group.empty());
}

void PaxosNode::Start() { LoadAcceptor(); }

void PaxosNode::HandleCrash() {
  // Volatile proposer state is lost; durable acceptor state remains in
  // stable storage.
  proposing_ = false;
  promises_ = 0;
  accepts_ = 0;
  decided_.reset();
  promised_ = Ballot{};
  accepted_ballot_ = Ballot{};
  accepted_value_.reset();
}

void PaxosNode::HandleRecover() { LoadAcceptor(); }

void PaxosNode::PersistAcceptor() {
  if (opts_.storage == nullptr) return;
  BufferWriter w;
  promised_.EncodeTo(w);
  SAMYA_CHECK(opts_.storage->Put(kKeyPromised, w.buffer()).ok());
  BufferWriter wa;
  accepted_ballot_.EncodeTo(wa);
  wa.PutBool(accepted_value_.has_value());
  wa.PutVarintSigned(accepted_value_.value_or(0));
  SAMYA_CHECK(opts_.storage->Put(kKeyAccepted, wa.buffer()).ok());
}

void PaxosNode::LoadAcceptor() {
  if (opts_.storage == nullptr) return;
  auto promised = opts_.storage->Get(kKeyPromised);
  if (promised.ok()) {
    BufferReader r(*promised);
    promised_ = Ballot::DecodeFrom(r).value();
  }
  auto accepted = opts_.storage->Get(kKeyAccepted);
  if (accepted.ok()) {
    BufferReader r(*accepted);
    accepted_ballot_ = Ballot::DecodeFrom(r).value();
    if (r.GetBool().value()) {
      accepted_value_ = r.GetVarintSigned().value();
    } else {
      r.GetVarintSigned().value();  // consume placeholder
      accepted_value_.reset();
    }
  }
}

void PaxosNode::Propose(int64_t value) {
  my_value_ = value;
  proposing_ = true;
  StartRound();
}

void PaxosNode::StartRound() {
  if (decided_.has_value() || !proposing_) return;
  ++round_;
  current_ballot_ = Ballot{std::max(promised_.num, current_ballot_.num) + 1,
                           id()};
  promises_ = 0;
  best_promise_ballot_ = Ballot{};
  promise_value_.reset();
  accepts_ = 0;

  BufferWriter w;
  current_ballot_.EncodeTo(w);
  for (sim::NodeId peer : opts_.group) {
    if (peer == id()) {
      OnPrepare(id(), current_ballot_);
    } else {
      Send(peer, kMsgPaxosPrepare, w);
    }
  }
  // Randomized retry avoids duelling proposers livelocking forever.
  const Duration jitter = rng().UniformInt(0, opts_.retry_timeout / 2);
  SetTimer(opts_.retry_timeout + jitter, kRetryTimer);
}

void PaxosNode::HandleTimer(uint64_t token) {
  SAMYA_CHECK_EQ(token, kRetryTimer);
  if (!decided_.has_value() && proposing_) StartRound();
}

void PaxosNode::HandleMessage(sim::NodeId from, uint32_t type,
                              BufferReader& r) {
  switch (type) {
    case kMsgPaxosPrepare: {
      OnPrepare(from, Ballot::DecodeFrom(r).value());
      break;
    }
    case kMsgPaxosPromise: {
      Ballot b = Ballot::DecodeFrom(r).value();
      Ballot ab = Ballot::DecodeFrom(r).value();
      const bool has = r.GetBool().value();
      const int64_t v = r.GetVarintSigned().value();
      OnPromise(from, b, ab, has, v);
      break;
    }
    case kMsgPaxosAccept: {
      Ballot b = Ballot::DecodeFrom(r).value();
      OnAccept(from, b, r.GetVarintSigned().value());
      break;
    }
    case kMsgPaxosAccepted: {
      OnAccepted(from, Ballot::DecodeFrom(r).value());
      break;
    }
    case kMsgPaxosLearn: {
      OnLearn(r.GetVarintSigned().value());
      break;
    }
    default:
      SAMYA_CHECK_MSG(false, "paxos: unknown message type %u", type);
  }
}

void PaxosNode::OnPrepare(sim::NodeId from, Ballot b) {
  if (b > promised_) {
    promised_ = b;
    PersistAcceptor();
  } else {
    return;  // stale prepare: ignore (proposer will time out)
  }
  BufferWriter w;
  b.EncodeTo(w);
  accepted_ballot_.EncodeTo(w);
  w.PutBool(accepted_value_.has_value());
  w.PutVarintSigned(accepted_value_.value_or(0));
  if (from == id()) {
    BufferReader r(w.buffer());
    Ballot rb = Ballot::DecodeFrom(r).value();
    Ballot rab = Ballot::DecodeFrom(r).value();
    const bool has = r.GetBool().value();
    const int64_t v = r.GetVarintSigned().value();
    OnPromise(id(), rb, rab, has, v);
  } else {
    Send(from, kMsgPaxosPromise, w);
  }
}

void PaxosNode::OnPromise(sim::NodeId from, Ballot b, Ballot accepted_ballot,
                          bool has_value, int64_t value) {
  (void)from;
  if (!proposing_ || b != current_ballot_) return;
  ++promises_;
  if (has_value && accepted_ballot > best_promise_ballot_) {
    best_promise_ballot_ = accepted_ballot;
    promise_value_ = value;
  }
  if (promises_ == static_cast<int>(Majority())) {
    accept_value_ = promise_value_.value_or(my_value_);
    BufferWriter w;
    current_ballot_.EncodeTo(w);
    w.PutVarintSigned(accept_value_);
    for (sim::NodeId peer : opts_.group) {
      if (peer == id()) {
        OnAccept(id(), current_ballot_, accept_value_);
      } else {
        Send(peer, kMsgPaxosAccept, w);
      }
    }
  }
}

void PaxosNode::OnAccept(sim::NodeId from, Ballot b, int64_t value) {
  if (b < promised_) return;  // promised someone newer
  promised_ = b;
  accepted_ballot_ = b;
  accepted_value_ = value;
  PersistAcceptor();
  BufferWriter w;
  b.EncodeTo(w);
  if (from == id()) {
    OnAccepted(id(), b);
  } else {
    Send(from, kMsgPaxosAccepted, w);
  }
}

void PaxosNode::OnAccepted(sim::NodeId from, Ballot b) {
  (void)from;
  if (!proposing_ || b != current_ballot_) return;
  ++accepts_;
  if (accepts_ == static_cast<int>(Majority())) {
    OnLearn(accept_value_);
    BufferWriter w;
    w.PutVarintSigned(accept_value_);
    for (sim::NodeId peer : opts_.group) {
      if (peer != id()) Send(peer, kMsgPaxosLearn, w);
    }
  }
}

void PaxosNode::OnLearn(int64_t value) {
  if (decided_.has_value()) {
    SAMYA_CHECK_MSG(*decided_ == value,
                    "paxos safety violation: decided %lld then %lld",
                    static_cast<long long>(*decided_),
                    static_cast<long long>(value));
    return;
  }
  decided_ = value;
  SAMYA_LOG_DEBUG("paxos node %d decided %lld", id(),
                  static_cast<long long>(value));
}

}  // namespace samya::consensus
