#include "consensus/multipaxos.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace samya::consensus {

namespace {
constexpr uint64_t kHeartbeatTimer = 1;
constexpr uint64_t kElectionTimer = 2;

const char* kKeyBallot = "mp/ballot";
const char* kKeyCommit = "mp/commit";

std::string LogKey(int64_t index) { return "mp/log/" + std::to_string(index); }
}  // namespace

MultiPaxosNode::MultiPaxosNode(sim::NodeId id, sim::Region region,
                               MultiPaxosOptions opts,
                               std::unique_ptr<StateMachine> sm)
    : Node(id, region), opts_(std::move(opts)), sm_(std::move(sm)) {
  SAMYA_CHECK(!opts_.group.empty());
}

void MultiPaxosNode::Start() {
  LoadDurableState();
  if (id() == opts_.initial_leader) {
    role_ = Role::kLeader;
    leader_hint_ = id();
    leader_ballot_ = Ballot{ballot_.num + 1, id()};
    ballot_ = leader_ballot_;
    PersistBallot();
    SetTimer(opts_.heartbeat_interval, kHeartbeatTimer);
  } else {
    BecomeFollower(opts_.initial_leader);
  }
}

void MultiPaxosNode::HandleCrash() {
  role_ = Role::kFollower;
  leader_hint_ = sim::kInvalidNode;
  log_.clear();
  commit_index_ = -1;
  applied_index_ = -1;
  admission_queue_.clear();
  inflight_index_.reset();
  inflight_acks_ = 0;
  client_by_index_.clear();
  merged_entries_.clear();
  promises_ = 0;
  ballot_ = Ballot{};
  leader_ballot_ = Ballot{};
}

void MultiPaxosNode::HandleRecover() {
  // Rebuild from stable storage, re-applying the committed prefix (the state
  // machine itself is volatile; the log is the durable truth).
  LoadDurableState();
  BecomeFollower(sim::kInvalidNode);
}

void MultiPaxosNode::LoadDurableState() {
  sm_->Reset();
  if (opts_.storage == nullptr) return;
  auto ballot = opts_.storage->Get(kKeyBallot);
  if (ballot.ok()) {
    BufferReader r(*ballot);
    ballot_ = Ballot::DecodeFrom(r).value();
  }
  auto commit = opts_.storage->Get(kKeyCommit);
  if (commit.ok()) {
    BufferReader r(*commit);
    commit_index_ = r.GetVarintSigned().value();
  }
  log_.clear();
  applied_index_ = -1;
  for (const auto& key : opts_.storage->Keys()) {
    if (key.rfind("mp/log/", 0) != 0) continue;
    const int64_t index = std::stoll(key.substr(7));
    auto bytes = opts_.storage->Get(key);
    SAMYA_CHECK(bytes.ok());
    BufferReader r(*bytes);
    LogEntry e;
    e.ballot = Ballot::DecodeFrom(r).value();
    const std::string cmd = r.GetString().value();
    e.command = std::vector<uint8_t>(cmd.begin(), cmd.end());
    log_[index] = std::move(e);
  }
  ApplyCommitted();
}

void MultiPaxosNode::PersistBallot() {
  if (opts_.storage == nullptr) return;
  BufferWriter w;
  ballot_.EncodeTo(w);
  SAMYA_CHECK(opts_.storage->Put(kKeyBallot, w.buffer()).ok());
  BufferWriter wc;
  wc.PutVarintSigned(commit_index_);
  SAMYA_CHECK(opts_.storage->Put(kKeyCommit, wc.buffer()).ok());
}

void MultiPaxosNode::PersistEntry(int64_t index) {
  if (opts_.storage == nullptr) return;
  const LogEntry& e = log_[index];
  BufferWriter w;
  e.ballot.EncodeTo(w);
  w.PutString(std::string(e.command.begin(), e.command.end()));
  SAMYA_CHECK(opts_.storage->Put(LogKey(index), w.buffer()).ok());
}

void MultiPaxosNode::BecomeFollower(sim::NodeId leader) {
  role_ = Role::kFollower;
  leader_hint_ = leader;
  inflight_index_.reset();
  inflight_acks_ = 0;
  // Reject queued clients so they retry at the real leader.
  for (const auto& p : admission_queue_) {
    if (p.client == sim::kInvalidNode) continue;
    BufferReader r(p.command);
    auto req = TokenRequest::DecodeFrom(r);
    if (!req.ok()) continue;
    TokenResponse resp;
    resp.request_id = req->request_id;
    resp.status = TokenStatus::kNotLeader;
    resp.leader_hint = leader_hint_;
    BufferWriter w;
    resp.EncodeTo(w);
    Send(p.client, kMsgTokenResponse, w);
  }
  admission_queue_.clear();
  client_by_index_.clear();
  last_leader_contact_ = Now();
  ResetElectionTimer();
}

void MultiPaxosNode::ResetElectionTimer() {
  ++election_epoch_;
  const Duration jitter = rng().UniformInt(0, opts_.election_timeout);
  SetTimer(opts_.election_timeout + jitter, kElectionTimer);
}

void MultiPaxosNode::HandleTimer(uint64_t token) {
  if (token == kHeartbeatTimer) {
    if (role_ != Role::kLeader) return;
    BufferWriter w;
    leader_ballot_.EncodeTo(w);
    w.PutVarintSigned(commit_index_);
    for (sim::NodeId peer : opts_.group) {
      if (peer != id()) Send(peer, kMsgMpHeartbeat, w);
    }
    SetTimer(opts_.heartbeat_interval, kHeartbeatTimer);
    return;
  }
  SAMYA_CHECK_EQ(token, kElectionTimer);
  if (role_ == Role::kLeader) return;
  if (Now() - last_leader_contact_ >= opts_.election_timeout) {
    StartElection();
  }
  ResetElectionTimer();
}

void MultiPaxosNode::StartElection() {
  role_ = Role::kCandidate;
  ballot_ = Ballot{ballot_.num + 1, id()};
  PersistBallot();
  promises_ = 0;
  merged_entries_.clear();
  // Seed the merge with our own accepted entries.
  for (const auto& [index, entry] : log_) {
    if (index > commit_index_) {
      merged_entries_[index] = {entry.ballot, entry.command};
    }
  }
  SAMYA_LOG_DEBUG("mp node %d starts election at ballot %s", id(),
                  ballot_.ToString().c_str());
  BufferWriter w;
  ballot_.EncodeTo(w);
  w.PutVarintSigned(commit_index_ + 1);  // send entries from here
  ++promises_;                           // self-promise
  for (sim::NodeId peer : opts_.group) {
    if (peer != id()) Send(peer, kMsgMpPrepare, w);
  }
}

void MultiPaxosNode::HandleMessage(sim::NodeId from, uint32_t type,
                                   BufferReader& r) {
  switch (type) {
    case kMsgTokenRequest:
      OnClientRequest(from, r);
      break;
    case kMsgMpPrepare: {
      Ballot b = Ballot::DecodeFrom(r).value();
      OnPrepare(from, b, r.GetVarintSigned().value());
      break;
    }
    case kMsgMpPromise: {
      Ballot b = Ballot::DecodeFrom(r).value();
      OnPromise(from, b, r);
      break;
    }
    case kMsgMpAccept: {
      Ballot b = Ballot::DecodeFrom(r).value();
      const int64_t index = r.GetVarintSigned().value();
      const std::string cmd = r.GetString().value();
      const int64_t commit = r.GetVarintSigned().value();
      OnAccept(from, b, index, std::vector<uint8_t>(cmd.begin(), cmd.end()),
               commit);
      break;
    }
    case kMsgMpAccepted: {
      Ballot b = Ballot::DecodeFrom(r).value();
      OnAccepted(from, b, r.GetVarintSigned().value());
      break;
    }
    case kMsgMpCommit:
    case kMsgMpHeartbeat: {
      Ballot b = Ballot::DecodeFrom(r).value();
      OnCommit(from, b, r.GetVarintSigned().value());
      break;
    }
    default:
      SAMYA_CHECK_MSG(false, "multipaxos: unknown message type %u", type);
  }
}

void MultiPaxosNode::OnClientRequest(sim::NodeId from, BufferReader& r) {
  const size_t start = r.position();
  auto req = TokenRequest::DecodeFrom(r);
  if (!req.ok()) return;
  (void)start;

  if (role_ != Role::kLeader) {
    TokenResponse reject;
    reject.request_id = req->request_id;
    reject.status = TokenStatus::kNotLeader;
    reject.leader_hint = leader_hint_;
    BufferWriter w;
    reject.EncodeTo(w);
    Send(from, kMsgTokenResponse, w);
    return;
  }

  BufferWriter cmd;
  req->EncodeTo(cmd);

  if (req->op == TokenOp::kRead) {
    // Leader-lease read: served from applied state without replication.
    const auto resp = sm_->Query(cmd.buffer());
    BufferWriter w;
    w.PutBytes(resp.data(), resp.size());
    Send(from, kMsgTokenResponse, w);
    return;
  }

  if (admission_queue_.size() >= opts_.max_pending) {
    TokenResponse reject;
    reject.request_id = req->request_id;
    reject.status = TokenStatus::kOverloaded;
    reject.leader_hint = id();
    BufferWriter w;
    reject.EncodeTo(w);
    Send(from, kMsgTokenResponse, w);
    return;
  }
  admission_queue_.push_back(Pending{from, cmd.Release()});
  ProposeNext();
}

void MultiPaxosNode::ProposeNext() {
  if (role_ != Role::kLeader || inflight_index_.has_value() ||
      admission_queue_.empty()) {
    return;
  }
  Pending p = std::move(admission_queue_.front());
  admission_queue_.pop_front();

  int64_t index = commit_index_;
  if (!log_.empty()) index = std::max(index, log_.rbegin()->first);
  ++index;

  log_[index] = LogEntry{leader_ballot_, p.command};
  PersistEntry(index);
  if (p.client != sim::kInvalidNode) client_by_index_[index] = p.client;
  inflight_index_ = index;
  inflight_acks_ = 1;  // self

  BufferWriter w;
  leader_ballot_.EncodeTo(w);
  w.PutVarintSigned(index);
  w.PutString(std::string(p.command.begin(), p.command.end()));
  w.PutVarintSigned(commit_index_);
  for (sim::NodeId peer : opts_.group) {
    if (peer != id()) Send(peer, kMsgMpAccept, w);
  }
}

void MultiPaxosNode::OnPrepare(sim::NodeId from, Ballot b,
                               int64_t from_index) {
  if (b <= ballot_) return;  // stale candidate
  ballot_ = b;
  PersistBallot();
  if (role_ == Role::kLeader || role_ == Role::kCandidate) {
    BecomeFollower(from);
  }
  last_leader_contact_ = Now();

  BufferWriter w;
  b.EncodeTo(w);
  w.PutVarintSigned(commit_index_);
  // Entries the candidate asked for.
  std::vector<int64_t> indices;
  for (const auto& [index, entry] : log_) {
    if (index >= from_index) indices.push_back(index);
  }
  w.PutVarint(indices.size());
  for (int64_t index : indices) {
    const LogEntry& e = log_[index];
    w.PutVarintSigned(index);
    e.ballot.EncodeTo(w);
    w.PutString(std::string(e.command.begin(), e.command.end()));
  }
  Send(from, kMsgMpPromise, w);
}

void MultiPaxosNode::OnPromise(sim::NodeId from, Ballot b, BufferReader& r) {
  (void)from;
  if (role_ != Role::kCandidate || b != ballot_) return;
  const int64_t peer_commit = r.GetVarintSigned().value();
  commit_index_ = std::max(commit_index_, peer_commit);
  const uint64_t count = r.GetVarint().value();
  for (uint64_t k = 0; k < count; ++k) {
    const int64_t index = r.GetVarintSigned().value();
    Ballot eb = Ballot::DecodeFrom(r).value();
    const std::string cmd = r.GetString().value();
    auto it = merged_entries_.find(index);
    if (it == merged_entries_.end() || eb > it->second.first) {
      merged_entries_[index] = {eb,
                                std::vector<uint8_t>(cmd.begin(), cmd.end())};
    }
  }
  ++promises_;
  if (promises_ != static_cast<int>(Majority())) return;

  // Won: lead at this ballot and re-replicate every merged entry above the
  // commit point (they may or may not have been chosen; re-accepting them at
  // the higher ballot is safe and completes any half-finished command).
  role_ = Role::kLeader;
  leader_hint_ = id();
  leader_ballot_ = ballot_;
  SAMYA_LOG_INFO("mp node %d becomes leader at %s (commit=%lld)", id(),
                 ballot_.ToString().c_str(),
                 static_cast<long long>(commit_index_));
  for (auto& [index, entry] : merged_entries_) {
    if (index <= commit_index_) continue;
    admission_queue_.push_back(
        Pending{sim::kInvalidNode, std::move(entry.second)});
  }
  merged_entries_.clear();
  ApplyCommitted();
  SetTimer(opts_.heartbeat_interval, kHeartbeatTimer);
  ProposeNext();
}

void MultiPaxosNode::OnAccept(sim::NodeId from, Ballot b, int64_t index,
                              const std::vector<uint8_t>& cmd,
                              int64_t commit_index) {
  if (b < ballot_) return;
  if (b > ballot_) {
    ballot_ = b;
    PersistBallot();
  }
  if (role_ != Role::kFollower || leader_hint_ != from) BecomeFollower(from);
  last_leader_contact_ = Now();

  log_[index] = LogEntry{b, cmd};
  PersistEntry(index);
  commit_index_ = std::max(commit_index_, commit_index);
  ApplyCommitted();

  BufferWriter w;
  b.EncodeTo(w);
  w.PutVarintSigned(index);
  Send(from, kMsgMpAccepted, w);
}

void MultiPaxosNode::OnAccepted(sim::NodeId from, Ballot b, int64_t index) {
  (void)from;
  if (role_ != Role::kLeader || b != leader_ballot_) return;
  if (!inflight_index_.has_value() || *inflight_index_ != index) return;
  ++inflight_acks_;
  if (inflight_acks_ < static_cast<int>(Majority())) return;

  // Chosen: commit, apply, answer the client, move on to the next command.
  commit_index_ = std::max(commit_index_, index);
  PersistBallot();
  inflight_index_.reset();
  inflight_acks_ = 0;
  ApplyCommitted();

  BufferWriter w;
  leader_ballot_.EncodeTo(w);
  w.PutVarintSigned(commit_index_);
  for (sim::NodeId peer : opts_.group) {
    if (peer != id()) Send(peer, kMsgMpCommit, w);
  }
  ProposeNext();
}

void MultiPaxosNode::OnCommit(sim::NodeId from, Ballot b,
                              int64_t commit_index) {
  if (b < ballot_) return;
  if (b > ballot_) {
    ballot_ = b;
    PersistBallot();
  }
  // Heartbeats/commits come from the current leader: adopt it as our hint
  // (this is how followers learn the outcome of an election).
  if (role_ != Role::kFollower || leader_hint_ != from) {
    BecomeFollower(from);
  }
  last_leader_contact_ = Now();
  commit_index_ = std::max(commit_index_, commit_index);
  ApplyCommitted();
}

void MultiPaxosNode::ApplyCommitted() {
  while (applied_index_ < commit_index_) {
    auto it = log_.find(applied_index_ + 1);
    if (it == log_.end()) break;  // hole: wait for catch-up via merge
    const auto response = sm_->Apply(it->second.command);
    ++applied_index_;
    RespondToClient(applied_index_, response);
  }
}

void MultiPaxosNode::RespondToClient(int64_t index,
                                     const std::vector<uint8_t>& response) {
  auto it = client_by_index_.find(index);
  if (it == client_by_index_.end()) return;
  BufferWriter w;
  w.PutBytes(response.data(), response.size());
  Send(it->second, kMsgTokenResponse, w);
  client_by_index_.erase(it);
}

}  // namespace samya::consensus
