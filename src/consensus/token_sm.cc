#include "consensus/token_sm.h"

#include "common/macros.h"

namespace samya::consensus {

std::vector<uint8_t> TokenStateMachine::Apply(
    const std::vector<uint8_t>& command) {
  BufferReader r(command);
  auto req = TokenRequest::DecodeFrom(r);
  TokenResponse resp;
  if (req.ok()) {
    auto dup = applied_.find(req->request_id);
    if (dup != applied_.end()) return dup->second;
    dup = applied_prev_.find(req->request_id);
    if (dup != applied_prev_.end()) return dup->second;
    resp.request_id = req->request_id;
    switch (req->op) {
      case TokenOp::kAcquire:
        if (req->amount > 0 && acquired_ + req->amount <= limit_) {
          acquired_ += req->amount;
          resp.status = TokenStatus::kCommitted;
        }
        break;
      case TokenOp::kRelease:
        if (req->amount > 0 && req->amount <= acquired_) {
          acquired_ -= req->amount;
          resp.status = TokenStatus::kCommitted;
        }
        break;
      case TokenOp::kRead:
        resp.status = TokenStatus::kCommitted;
        break;
    }
    resp.value = available();
  }
  BufferWriter w;
  resp.EncodeTo(w);
  std::vector<uint8_t> bytes = w.Release();
  if (req.ok() && req->op != TokenOp::kRead) {
    if (applied_.size() >= kGenerationSize) {
      applied_prev_ = std::move(applied_);
      applied_ = {};
    }
    applied_[req->request_id] = bytes;
  }
  return bytes;
}

std::vector<uint8_t> TokenStateMachine::Query(
    const std::vector<uint8_t>& query) {
  BufferReader r(query);
  auto req = TokenRequest::DecodeFrom(r);
  TokenResponse resp;
  if (req.ok()) {
    resp.request_id = req->request_id;
    resp.status = TokenStatus::kCommitted;
    resp.value = available();
  }
  BufferWriter w;
  resp.EncodeTo(w);
  return w.Release();
}

}  // namespace samya::consensus
