#include "consensus/raft.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace samya::consensus {

namespace {
constexpr uint64_t kElectionTimer = 1;
constexpr uint64_t kHeartbeatTimer = 2;

const char* kKeyMeta = "raft/meta";
std::string LogKey(int64_t index) {
  return "raft/log/" + std::to_string(index);
}
}  // namespace

RaftNode::RaftNode(sim::NodeId id, sim::Region region, RaftOptions opts,
                   std::unique_ptr<StateMachine> sm)
    : Node(id, region), opts_(std::move(opts)), sm_(std::move(sm)) {
  SAMYA_CHECK(!opts_.group.empty());
  log_.push_back(Entry{});  // sentinel at index 0
}

void RaftNode::Start() {
  LoadDurableState();
  // Only the configured initial leader skips the contact check on its first
  // timeout; everyone else defers to it.
  first_timer_ = opts_.initial_leader == id();
  ResetElectionTimer(/*immediate=*/first_timer_);
}

void RaftNode::HandleCrash() {
  role_ = Role::kFollower;
  leader_hint_ = sim::kInvalidNode;
  term_ = 0;
  voted_for_ = sim::kInvalidNode;
  log_.assign(1, Entry{});
  commit_index_ = 0;
  last_applied_ = 0;
  next_index_.clear();
  match_index_.clear();
  pending_count_ = 0;
  admission_queue_.clear();
  client_by_index_.clear();
  votes_ = 0;
}

void RaftNode::HandleRecover() {
  LoadDurableState();
  first_timer_ = false;
  ResetElectionTimer();
}

void RaftNode::LoadDurableState() {
  sm_->Reset();
  if (opts_.storage == nullptr) return;
  auto meta = opts_.storage->Get(kKeyMeta);
  if (meta.ok()) {
    BufferReader r(*meta);
    term_ = r.GetVarintSigned().value();
    voted_for_ = static_cast<sim::NodeId>(r.GetVarintSigned().value());
  }
  // Reload the log in index order.
  log_.assign(1, Entry{});
  for (int64_t i = 1;; ++i) {
    auto bytes = opts_.storage->Get(LogKey(i));
    if (!bytes.ok()) break;
    BufferReader r(*bytes);
    Entry e;
    e.term = r.GetVarintSigned().value();
    const std::string cmd = r.GetString().value();
    e.command = std::vector<uint8_t>(cmd.begin(), cmd.end());
    log_.push_back(std::move(e));
  }
  commit_index_ = 0;
  last_applied_ = 0;
}

void RaftNode::PersistMeta() {
  if (opts_.storage == nullptr) return;
  BufferWriter w;
  w.PutVarintSigned(term_);
  w.PutVarintSigned(voted_for_);
  SAMYA_CHECK(opts_.storage->Put(kKeyMeta, w.buffer()).ok());
}

void RaftNode::PersistLogFrom(size_t index) {
  if (opts_.storage == nullptr) return;
  for (size_t i = index; i < log_.size(); ++i) {
    BufferWriter w;
    w.PutVarintSigned(log_[i].term);
    w.PutString(std::string(log_[i].command.begin(), log_[i].command.end()));
    SAMYA_CHECK(opts_.storage->Put(LogKey(static_cast<int64_t>(i)),
                                   w.buffer()).ok());
  }
  // Remove any stale tail beyond the truncation point.
  for (int64_t i = static_cast<int64_t>(log_.size());; ++i) {
    if (!opts_.storage->Get(LogKey(i)).ok()) break;
    SAMYA_CHECK(opts_.storage->Delete(LogKey(i)).ok());
  }
}

void RaftNode::ResetElectionTimer(bool immediate) {
  const Duration timeout =
      immediate ? Duration{0}
                : rng().UniformInt(opts_.election_timeout_min,
                                   opts_.election_timeout_max);
  SetTimer(timeout, kElectionTimer);
}

void RaftNode::HandleTimer(uint64_t token) {
  if (token == kHeartbeatTimer) {
    if (role_ != Role::kLeader) return;
    BroadcastAppend();
    SetTimer(opts_.heartbeat_interval, kHeartbeatTimer);
    return;
  }
  SAMYA_CHECK_EQ(token, kElectionTimer);
  if (role_ == Role::kLeader) return;
  if (first_timer_ ||
      Now() - last_leader_contact_ >= opts_.election_timeout_min) {
    first_timer_ = false;
    StartElection();
  }
  ResetElectionTimer();
}

void RaftNode::BecomeFollower(int64_t term, sim::NodeId leader) {
  const bool stepped_down = role_ == Role::kLeader;
  role_ = Role::kFollower;
  if (term > term_) {
    term_ = term;
    voted_for_ = sim::kInvalidNode;
    PersistMeta();
  }
  if (leader != sim::kInvalidNode) leader_hint_ = leader;
  last_leader_contact_ = Now();
  if (stepped_down) {
    pending_count_ = 0;
    admission_queue_.clear();
    client_by_index_.clear();
  }
}

void RaftNode::StartElection() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id();
  PersistMeta();
  votes_ = 1;
  SAMYA_LOG_DEBUG("raft node %d starts election term %lld", id(),
                  static_cast<long long>(term_));
  BufferWriter w;
  w.PutVarintSigned(term_);
  w.PutVarintSigned(LastLogIndex());
  w.PutVarintSigned(TermAt(LastLogIndex()));
  for (sim::NodeId peer : opts_.group) {
    if (peer != id()) Send(peer, kMsgRaftRequestVote, w);
  }
  if (Majority() == 1) BecomeLeader();
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  leader_hint_ = id();
  next_index_.clear();
  match_index_.clear();
  for (sim::NodeId peer : opts_.group) {
    next_index_[peer] = LastLogIndex() + 1;
    match_index_[peer] = 0;
  }
  pending_count_ = 0;
  SAMYA_LOG_INFO("raft node %d becomes leader in term %lld", id(),
                 static_cast<long long>(term_));
  BroadcastAppend();
  SetTimer(opts_.heartbeat_interval, kHeartbeatTimer);
}

void RaftNode::SendAppendTo(sim::NodeId peer) {
  const int64_t next = next_index_[peer];
  const int64_t prev = next - 1;
  BufferWriter w;
  w.PutVarintSigned(term_);
  w.PutVarintSigned(prev);
  w.PutVarintSigned(TermAt(prev));
  const int64_t last = LastLogIndex();
  const uint64_t count = static_cast<uint64_t>(std::max<int64_t>(0, last - prev));
  w.PutVarint(count);
  for (int64_t i = next; i <= last; ++i) {
    const Entry& e = log_[static_cast<size_t>(i)];
    w.PutVarintSigned(e.term);
    w.PutString(std::string(e.command.begin(), e.command.end()));
  }
  w.PutVarintSigned(commit_index_);
  Send(peer, kMsgRaftAppendEntries, w);
}

void RaftNode::BroadcastAppend() {
  for (sim::NodeId peer : opts_.group) {
    if (peer != id()) SendAppendTo(peer);
  }
}

void RaftNode::HandleMessage(sim::NodeId from, uint32_t type,
                             BufferReader& r) {
  switch (type) {
    case kMsgTokenRequest:
      OnClientRequest(from, r);
      break;
    case kMsgRaftRequestVote:
      OnRequestVote(from, r);
      break;
    case kMsgRaftVoteResponse:
      OnVoteResponse(from, r);
      break;
    case kMsgRaftAppendEntries:
      OnAppendEntries(from, r);
      break;
    case kMsgRaftAppendResponse:
      OnAppendResponse(from, r);
      break;
    default:
      SAMYA_CHECK_MSG(false, "raft: unknown message type %u", type);
  }
}

void RaftNode::OnRequestVote(sim::NodeId from, BufferReader& r) {
  const int64_t term = r.GetVarintSigned().value();
  const int64_t last_index = r.GetVarintSigned().value();
  const int64_t last_term = r.GetVarintSigned().value();

  if (term > term_) BecomeFollower(term, sim::kInvalidNode);

  bool granted = false;
  if (term == term_ &&
      (voted_for_ == sim::kInvalidNode || voted_for_ == from)) {
    // Up-to-date check (§5.4.1 of the Raft paper).
    const int64_t my_last_term = TermAt(LastLogIndex());
    const bool up_to_date =
        last_term > my_last_term ||
        (last_term == my_last_term && last_index >= LastLogIndex());
    if (up_to_date) {
      granted = true;
      voted_for_ = from;
      PersistMeta();
      last_leader_contact_ = Now();  // don't immediately stand ourselves
    }
  }
  BufferWriter w;
  w.PutVarintSigned(term_);
  w.PutBool(granted);
  Send(from, kMsgRaftVoteResponse, w);
}

void RaftNode::OnVoteResponse(sim::NodeId from, BufferReader& r) {
  (void)from;
  const int64_t term = r.GetVarintSigned().value();
  const bool granted = r.GetBool().value();
  if (term > term_) {
    BecomeFollower(term, sim::kInvalidNode);
    return;
  }
  if (role_ != Role::kCandidate || term != term_ || !granted) return;
  ++votes_;
  if (votes_ == static_cast<int>(Majority())) BecomeLeader();
}

void RaftNode::OnAppendEntries(sim::NodeId from, BufferReader& r) {
  const int64_t term = r.GetVarintSigned().value();
  const int64_t prev_index = r.GetVarintSigned().value();
  const int64_t prev_term = r.GetVarintSigned().value();
  const uint64_t count = r.GetVarint().value();
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint64_t k = 0; k < count; ++k) {
    Entry e;
    e.term = r.GetVarintSigned().value();
    const std::string cmd = r.GetString().value();
    e.command = std::vector<uint8_t>(cmd.begin(), cmd.end());
    entries.push_back(std::move(e));
  }
  const int64_t leader_commit = r.GetVarintSigned().value();

  BufferWriter w;
  if (term < term_) {
    w.PutVarintSigned(term_);
    w.PutBool(false);
    w.PutVarintSigned(0);
    Send(from, kMsgRaftAppendResponse, w);
    return;
  }
  BecomeFollower(term, from);

  // Consistency check.
  if (prev_index > LastLogIndex() ||
      TermAt(prev_index) != prev_term) {
    w.PutVarintSigned(term_);
    w.PutBool(false);
    w.PutVarintSigned(0);
    Send(from, kMsgRaftAppendResponse, w);
    return;
  }

  // Append, truncating any conflicting suffix.
  size_t first_changed = log_.size();
  for (uint64_t k = 0; k < count; ++k) {
    const int64_t index = prev_index + 1 + static_cast<int64_t>(k);
    if (index <= LastLogIndex()) {
      if (TermAt(index) != entries[k].term) {
        log_.resize(static_cast<size_t>(index));
        log_.push_back(std::move(entries[k]));
        first_changed = std::min(first_changed, static_cast<size_t>(index));
      }
    } else {
      log_.push_back(std::move(entries[k]));
      first_changed = std::min(first_changed, log_.size() - 1);
    }
  }
  if (first_changed < log_.size()) PersistLogFrom(first_changed);

  if (leader_commit > commit_index_) {
    commit_index_ = std::min(leader_commit, LastLogIndex());
    ApplyCommitted();
  }

  w.PutVarintSigned(term_);
  w.PutBool(true);
  w.PutVarintSigned(prev_index + static_cast<int64_t>(count));
  Send(from, kMsgRaftAppendResponse, w);
}

void RaftNode::OnAppendResponse(sim::NodeId from, BufferReader& r) {
  const int64_t term = r.GetVarintSigned().value();
  const bool success = r.GetBool().value();
  const int64_t match = r.GetVarintSigned().value();
  if (term > term_) {
    BecomeFollower(term, sim::kInvalidNode);
    return;
  }
  if (role_ != Role::kLeader || term != term_) return;
  if (success) {
    match_index_[from] = std::max(match_index_[from], match);
    next_index_[from] = match_index_[from] + 1;
    AdvanceCommit();
  } else {
    // Log repair: back off and retry immediately.
    next_index_[from] = std::max<int64_t>(1, next_index_[from] - 1);
    SendAppendTo(from);
  }
}

void RaftNode::AdvanceCommit() {
  // Find the highest index replicated on a majority with a current-term
  // entry (Raft's commit rule, §5.4.2).
  for (int64_t n = LastLogIndex(); n > commit_index_; --n) {
    if (TermAt(n) != term_) break;
    size_t replicas = 1;  // self
    for (const auto& [peer, match] : match_index_) {
      if (peer != id() && match >= n) ++replicas;
    }
    if (replicas >= Majority()) {
      commit_index_ = n;
      ApplyCommitted();
      // Let followers learn the new commit index promptly.
      BroadcastAppend();
      break;
    }
  }
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const auto response =
        sm_->Apply(log_[static_cast<size_t>(last_applied_)].command);
    auto it = client_by_index_.find(last_applied_);
    if (it != client_by_index_.end()) {
      BufferWriter w;
      w.PutBytes(response.data(), response.size());
      Send(it->second, kMsgTokenResponse, w);
      client_by_index_.erase(it);
      if (pending_count_ > 0) --pending_count_;
    }
  }
  AppendFromQueue();
}

void RaftNode::RejectClient(sim::NodeId client, uint64_t request_id,
                            TokenStatus status) {
  TokenResponse resp;
  resp.request_id = request_id;
  resp.status = status;
  resp.leader_hint = leader_hint_;
  BufferWriter w;
  resp.EncodeTo(w);
  Send(client, kMsgTokenResponse, w);
}

void RaftNode::OnClientRequest(sim::NodeId from, BufferReader& r) {
  auto req = TokenRequest::DecodeFrom(r);
  if (!req.ok()) return;

  if (role_ != Role::kLeader) {
    RejectClient(from, req->request_id, TokenStatus::kNotLeader);
    return;
  }

  BufferWriter cmd;
  req->EncodeTo(cmd);

  if (req->op == TokenOp::kRead) {
    const auto resp = sm_->Query(cmd.buffer());
    BufferWriter w;
    w.PutBytes(resp.data(), resp.size());
    Send(from, kMsgTokenResponse, w);
    return;
  }

  if (pending_count_ >= opts_.max_pending) {
    RejectClient(from, req->request_id, TokenStatus::kOverloaded);
    return;
  }
  ++pending_count_;
  admission_queue_.emplace_back(from, cmd.Release());
  AppendFromQueue();
}

void RaftNode::AppendFromQueue() {
  if (role_ != Role::kLeader || admission_queue_.empty()) return;
  if (opts_.serialize_commands && LastLogIndex() > commit_index_) {
    return;  // a conflicting command is still replicating
  }
  auto [client, cmd] = std::move(admission_queue_.front());
  admission_queue_.pop_front();
  log_.push_back(Entry{term_, std::move(cmd)});
  PersistLogFrom(log_.size() - 1);
  client_by_index_[LastLogIndex()] = client;
  BroadcastAppend();
}

}  // namespace samya::consensus
