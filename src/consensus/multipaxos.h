#ifndef SAMYA_CONSENSUS_MULTIPAXOS_H_
#define SAMYA_CONSENSUS_MULTIPAXOS_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/token_api.h"
#include "consensus/state_machine.h"
#include "consensus/types.h"
#include "sim/node.h"
#include "storage/stable_storage.h"

namespace samya::consensus {

/// Message types 100-119.
inline constexpr uint32_t kMsgMpPrepare = 100;
inline constexpr uint32_t kMsgMpPromise = 101;
inline constexpr uint32_t kMsgMpAccept = 102;
inline constexpr uint32_t kMsgMpAccepted = 103;
inline constexpr uint32_t kMsgMpCommit = 104;
inline constexpr uint32_t kMsgMpHeartbeat = 105;

/// Options for a multi-Paxos replica.
struct MultiPaxosOptions {
  std::vector<sim::NodeId> group;     ///< replica ids, including self
  sim::NodeId initial_leader = 0;     ///< stable leader at startup
  Duration heartbeat_interval = Millis(75);
  Duration election_timeout = Millis(800);
  /// Admission cap at the leader: conflicting commands on the hot record are
  /// executed sequentially (§1 "Sequential execution"); arrivals beyond this
  /// queue depth are rejected so commit latency stays bounded under the
  /// paper's overload (throughput then equals replication capacity).
  size_t max_pending = 8;
  storage::StableStorage* storage = nullptr;
};

/// \brief Leader-based multi-Paxos replicated state machine ("Paxos made
/// live" style): stable leader, one Accept round per command, Prepare phase
/// only on leader change.
///
/// This is the engine of the paper's MultiPaxSys baseline: each token
/// transaction is replicated to a majority of geo-distributed replicas before
/// committing. Clients send `kMsgTokenRequest` to any replica; non-leaders
/// answer with a leader hint.
class MultiPaxosNode : public sim::Node {
 public:
  MultiPaxosNode(sim::NodeId id, sim::Region region, MultiPaxosOptions opts,
                 std::unique_ptr<StateMachine> sm);

  /// Wires durable storage (call before Start; the cluster owns it).
  void set_storage(storage::StableStorage* storage) { opts_.storage = storage; }

  void Start() override;
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override;
  void HandleRecover() override;

  bool IsLeader() const { return role_ == Role::kLeader; }
  sim::NodeId leader_hint() const { return leader_hint_; }
  int64_t committed_index() const { return commit_index_; }
  int64_t applied_index() const { return applied_index_; }
  const StateMachine& state_machine() const { return *sm_; }

  /// Log entry visible for safety tests.
  struct LogEntry {
    Ballot ballot;
    std::vector<uint8_t> command;
  };
  const std::map<int64_t, LogEntry>& log() const { return log_; }

 private:
  enum class Role { kLeader, kFollower, kCandidate };

  size_t Majority() const { return opts_.group.size() / 2 + 1; }
  void BecomeFollower(sim::NodeId leader);
  void StartElection();
  void ResetElectionTimer();
  void ProposeNext();
  void ApplyCommitted();
  void PersistEntry(int64_t index);
  void PersistBallot();
  void LoadDurableState();
  void BroadcastCommit();
  void RespondToClient(int64_t index, const std::vector<uint8_t>& response);

  void OnPrepare(sim::NodeId from, Ballot b, int64_t from_index);
  void OnPromise(sim::NodeId from, Ballot b, BufferReader& r);
  void OnAccept(sim::NodeId from, Ballot b, int64_t index,
                const std::vector<uint8_t>& cmd, int64_t commit_index);
  void OnAccepted(sim::NodeId from, Ballot b, int64_t index);
  void OnCommit(sim::NodeId from, Ballot b, int64_t commit_index);
  void OnClientRequest(sim::NodeId from, BufferReader& r);

  MultiPaxosOptions opts_;
  std::unique_ptr<StateMachine> sm_;

  Role role_ = Role::kFollower;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  Ballot ballot_;           // promised ballot (durable)
  Ballot leader_ballot_;    // ballot this leader leads with (leader only)

  std::map<int64_t, LogEntry> log_;  // accepted entries (durable)
  int64_t commit_index_ = -1;
  int64_t applied_index_ = -1;

  // Leader bookkeeping.
  struct Pending {
    sim::NodeId client = sim::kInvalidNode;
    std::vector<uint8_t> command;
  };
  std::deque<Pending> admission_queue_;
  std::optional<int64_t> inflight_index_;
  int inflight_acks_ = 0;
  std::map<int64_t, sim::NodeId> client_by_index_;

  // Election bookkeeping.
  int promises_ = 0;
  std::map<int64_t, std::pair<Ballot, std::vector<uint8_t>>> merged_entries_;
  uint64_t election_epoch_ = 0;
  SimTime last_leader_contact_ = 0;
};

}  // namespace samya::consensus

#endif  // SAMYA_CONSENSUS_MULTIPAXOS_H_
