#ifndef SAMYA_HARNESS_HISTORY_H_
#define SAMYA_HARNESS_HISTORY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "common/token_api.h"

namespace samya::harness {

/// Client-observed final outcome of an operation.
enum class HistOutcome : uint8_t {
  kOpen = 0,       ///< no final response observed (timeout/drop/run end)
  kCommitted = 1,  ///< client saw kCommitted
  kRejected = 2,   ///< client saw kRejected (final constraint rejection)
};

/// One client operation in a token history: an invocation event, an optional
/// response event, and server-side knowledge gathered from the core taps.
struct HistoryOp {
  uint64_t request_id = 0;
  int32_t client = -1;  ///< issuing node id
  uint32_t entity = 0;
  TokenOp op = TokenOp::kAcquire;
  int64_t amount = 0;
  SimTime invoke = 0;
  SimTime respond = kNoRespond;  ///< client-observed response time
  HistOutcome outcome = HistOutcome::kOpen;
  int64_t read_value = 0;  ///< committed reads: observed availability
  /// The serving system reported this write committed (site/app-manager
  /// tap), whether or not the client observed a response. The checker must
  /// place the effect of such an op even when `outcome` stays kOpen.
  bool server_committed = false;

  static constexpr SimTime kNoRespond = -1;
  bool open() const { return outcome == HistOutcome::kOpen; }
};

/// \brief Collects per-entity invocation/response histories from the client
/// and server taps, for the linearizability checker (lin_check.h).
///
/// Wiring: `WorkloadClientOptions::history` records invocations and
/// client-observed responses; `Site::set_history_tap` /
/// `AppManager::set_response_tap` feed `OnServerOutcome` so writes the
/// system committed but the client never heard about are not treated as
/// optional. All methods are idempotent against duplicate taps (retries,
/// dedup-cache replays).
class HistoryRecorder {
 public:
  /// Client is about to send `req` for the first time.
  void OnInvoke(int32_t client, const TokenRequest& req, SimTime at);

  /// Client observed a final response. `value` is the response's value field
  /// (meaningful for committed reads). Later duplicates are ignored.
  void OnClientResponse(uint64_t request_id, TokenStatus status, int64_t value,
                        SimTime at);

  /// A server-side tap observed a final outcome for `request_id`. Only
  /// `kCommitted` outcomes for writes are recorded (they constrain the
  /// checker); everything else — and ids never invoked, e.g. internal
  /// traffic — is ignored.
  void OnServerOutcome(uint64_t request_id, TokenStatus status);

  /// Ops of `entity`, sorted by (invoke, request_id). Open ops keep
  /// `respond == kNoRespond` and order after every completed response.
  std::vector<HistoryOp> History(uint32_t entity) const;

  size_t size() const { return ops_.size(); }
  void Clear();

 private:
  std::vector<HistoryOp> ops_;
  std::unordered_map<uint64_t, size_t> index_;  ///< request_id -> ops_ index
};

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_HISTORY_H_
