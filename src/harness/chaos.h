#ifndef SAMYA_HARNESS_CHAOS_H_
#define SAMYA_HARNESS_CHAOS_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "harness/experiment.h"
#include "sim/nemesis.h"

namespace samya::harness {

/// \brief One chaos configuration: a system + workload seed + fault
/// schedule. Fully serializable, so a violating case commits to the corpus
/// and replays bit-identically on any machine.
struct ChaosCase {
  SystemKind system = SystemKind::kSamyaMajority;
  uint64_t seed = 1;
  int num_sites = 5;
  int64_t max_tokens = 5000;
  Duration duration = Seconds(50);  ///< load window (run drains 10s more)
  double intensity = 1.0;           ///< nemesis intensity that bred `schedule`
  sim::FaultSchedule schedule;

  /// Whether the auditor's quiescence guard was armed when this case was
  /// found. Guard-off cases (used by the shrink pipeline to manufacture
  /// deterministic conservation violations) must replay guard-off too.
  bool quiescence_guard = true;

  /// Provenance, for humans reading the corpus: what the case reproduces
  /// ("" when it is a regression guard expected to pass clean).
  std::string violation_check;
  std::string note;

  JsonValue ToJson() const;
  static Result<ChaosCase> FromJson(const JsonValue& v);
};

/// Wire-format name of a SystemKind ("samya_majority"); inverse of
/// `SystemKindFromId`. Stable across releases — corpus files depend on it.
const char* SystemIdName(SystemKind kind);
bool SystemKindFromId(const std::string& id, SystemKind* out);

/// Builds the full ExperimentOptions for a chaos run: applies the fault
/// schedule, enables the auditor (with `audit` as the template; heal_time /
/// load_end are derived from the case), and pins workload knobs.
ExperimentOptions MakeChaosOptions(const ChaosCase& c, AuditOptions audit);

/// Runs one case to completion (Setup + Run) and returns the result, whose
/// `violations` field is the verdict.
ExperimentResult RunChaosCase(const ChaosCase& c, const AuditOptions& audit);

/// Derives the standard nemesis schedule for (system, seed, intensity) —
/// the exact generator `chaos_search` sweeps. The nemesis targets nodes
/// 0..num_sites-1, so the site count must be fixed before generation.
ChaosCase MakeNemesisCase(SystemKind system, uint64_t seed, double intensity,
                          int num_sites = 5);

/// \brief ddmin delta-debugging of a violating fault schedule.
///
/// Repeatedly re-runs the case with subsets of the schedule's ops, keeping a
/// subset only if it still produces a violation of the same check category
/// (`c.violation_check`, e.g. "conservation"). Deterministic: candidate
/// order is fixed and every run is a fresh single-threaded simulation.
/// `max_runs` bounds the search; `runs_used` (optional) reports the spend.
/// Returns the case with the minimized schedule (1-minimal w.r.t. op
/// removal when the budget sufficed).
ChaosCase ShrinkCase(const ChaosCase& c, const AuditOptions& audit,
                     int max_runs = 300, int* runs_used = nullptr);

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_CHAOS_H_
