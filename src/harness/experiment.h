#ifndef SAMYA_HARNESS_EXPERIMENT_H_
#define SAMYA_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/site.h"
#include "harness/history.h"
#include "harness/invariant_auditor.h"
#include "harness/workload_client.h"
#include "obs/observability.h"
#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "sim/nemesis.h"
#include "sim/schedule_oracle.h"
#include "workload/azure_generator.h"

namespace samya::harness {

/// The systems under test across §5. The ablation variants are the paper's
/// Fig 3e/3f configurations of Samya.
enum class SystemKind {
  kSamyaMajority,            ///< Samya w/ Avantan[(n+1)/2]
  kSamyaAny,                 ///< Samya w/ Avantan[*]
  kMultiPaxSys,              ///< leader-based multi-Paxos baseline
  kCockroachLike,            ///< Raft-based baseline (CockroachDB stand-in)
  kDemarcation,              ///< Demarcation/Escrow baseline
  kSiteEscrow,               ///< Generalised Site Escrow (gossip) baseline
  kSamyaNoConstraint,        ///< Fig 3e upper bound: no limit, no sync
  kSamyaNoRedistribution,    ///< Fig 3e: constraint but never redistribute
  kSamyaMajorityNoPredict,   ///< Fig 3f: reactive-only Avantan[(n+1)/2]
  kSamyaAnyNoPredict,        ///< Fig 3f: reactive-only Avantan[*]
};

const char* SystemName(SystemKind kind);
bool IsSamyaVariant(SystemKind kind);

/// One experiment configuration: a system, a workload, and a duration.
struct ExperimentOptions {
  SystemKind system = SystemKind::kSamyaMajority;
  int num_sites = 5;          ///< Samya/Demarcation sites (Fig 3g sweeps this)
  int64_t max_tokens = 5000;  ///< the global limit M_e (§5.2)
  Duration duration = kHour;  ///< measured load window
  double read_ratio = 0.0;    ///< Fig 3h
  uint64_t seed = 42;
  workload::AzureTraceOptions trace;  ///< synthetic Azure workload knobs
  int64_t compress_factor = 60;       ///< §5.1.2: 5 min -> 5 s
  double load_scale = 1.0;            ///< §5.9(ii) arrival-rate sweep
  /// Scale offered load with the site count (Fig 3g adds clients as sites
  /// are added so throughput can scale).
  bool scale_load_with_sites = false;

  // Client behaviour.
  Duration client_timeout = Seconds(3);
  int client_attempts = 2;
  /// Closed-loop (saturation) clients: Fig 3h's regime, where throughput is
  /// bounded by per-request latency instead of trace arrival times.
  bool closed_loop = false;
  int client_window = 4;

  // Samya knobs.
  core::SiteOptions site_template;  ///< timers/epoch defaults for sites

  /// Conservative-window PDES worker count (DESIGN.md §11). 1 (default)
  /// runs the plain serial event loop. >1 partitions the simulation by
  /// region across that many workers, bit-identical to the serial run.
  /// Silently ignored — with the reason logged and surfaced through
  /// `Experiment::pdes_fallback_reason()` — when an attached feature needs
  /// the serial loop (schedule oracle, history recorder, auditor, tracing,
  /// latency-shrinking fault schedules, or an already-parallel sweep).
  int pdes_workers = 1;

  // Chaos knobs. `fault_schedule` is applied against the network during
  // Setup (node ids: sites are 0..num_sites-1); `audit.enabled` installs a
  // continuous InvariantAuditor before the run (Samya variants with the
  // constraint on — it audits Eq. 1, which other systems do not promise).
  sim::FaultSchedule fault_schedule;
  AuditOptions audit;

  /// Observability components to attach (DESIGN.md §8). All off by default:
  /// the simulator then runs its untraced hot path.
  obs::ObsOptions obs;

  // Schedule exploration (DESIGN.md §10). Both non-owning and null by
  // default, which leaves the simulator and client hot paths untouched.
  /// Oracle deciding message-delivery order; attached to the environment
  /// before any node is constructed.
  sim::ScheduleOracle* oracle = nullptr;
  /// Records every client op (plus server-side commit taps on Samya sites
  /// and app managers) for the linearizability checker.
  HistoryRecorder* history = nullptr;
  /// When non-empty, region r's client plays `scripts_override[r]` (missing
  /// or empty entries idle that region) instead of the generated Azure
  /// trace. The explorer uses this to drive small fixed scenarios.
  std::vector<std::vector<workload::Request>> scripts_override;
};

/// Aggregated measurements of one run.
struct ExperimentResult {
  ClientStats aggregate;              ///< merged over all clients
  std::vector<ClientStats> per_client;
  RateSeries throughput{Seconds(1)};  ///< committed txns/s over time

  // Samya-specific counters (zero for baselines).
  uint64_t proactive_redistributions = 0;
  uint64_t reactive_redistributions = 0;
  uint64_t instances_completed = 0;
  uint64_t instances_aborted = 0;
  /// Sum over sites of time spent frozen mid-redistribution.
  Duration total_site_frozen_time = 0;

  sim::NetworkStats network;
  uint64_t events_executed = 0;

  // Filled when the run was audited (`ExperimentOptions::audit.enabled`).
  std::vector<AuditViolation> violations;
  uint64_t audit_ticks = 0;

  /// The run's observability bundle (metrics registry / tracer / profiler),
  /// set iff any `ExperimentOptions::obs` component was on. Shared so sweep
  /// results can be moved around without copying trace buffers.
  std::shared_ptr<obs::Observability> obs;

  double MeanTps(Duration duration) const {
    return static_cast<double>(aggregate.TotalCommitted()) /
           ToSeconds(duration);
  }
};

/// \brief Builds a full deployment (sites/replicas + app managers + one
/// trace-driven client per region), runs it for `duration`, and aggregates
/// the measurements. All figure/table benches are thin wrappers over this.
class Experiment {
 public:
  explicit Experiment(ExperimentOptions opts);

  /// Constructs all nodes and workloads. Call once, before Run.
  void Setup();

  /// Runs the workload to completion (duration + drain) and aggregates.
  ExperimentResult Run();

  const ExperimentOptions& options() const { return opts_; }

  /// Access between Setup and Run for fault/partition schedules.
  sim::Cluster& cluster() { return *cluster_; }
  sim::FaultInjector& faults() { return *faults_; }
  const std::vector<sim::NodeId>& server_ids() const { return server_ids_; }
  const std::vector<sim::NodeId>& client_ids() const { return client_ids_; }

  const std::vector<core::Site*>& samya_sites() const { return sites_; }
  const std::vector<WorkloadClient*>& clients() const { return clients_; }

  /// The run's observability bundle; null unless `options().obs` requested
  /// a component. Valid from Setup on.
  obs::Observability* observability() const { return obs_.get(); }

  /// True when this run is actually executing on the PDES worker pool
  /// (requested via `pdes_workers` and not forced serial). Valid from
  /// Setup on.
  bool pdes_active() const {
    return cluster_ != nullptr && cluster_->pdes_active();
  }
  /// Why PDES is not running ("" when it is): the Setup-time prescan
  /// reason if the request never reached the cluster, otherwise the
  /// coordinator's own fallback reason.
  std::string pdes_fallback_reason() const {
    if (!pdes_fallback_reason_.empty()) return pdes_fallback_reason_;
    return cluster_ != nullptr ? cluster_->pdes_fallback_reason()
                               : std::string("setup not run");
  }

  /// Conservation audit (Eq. 1): sum of site TokensLeft plus net committed
  /// acquires must equal M_e. Meaningful for Samya variants with the
  /// constraint on, after a failure-free drained run.
  int64_t TotalSiteTokens() const;
  int64_t NetCommittedAcquires() const;
  /// Server-side ledger: acquires minus releases committed by the sites
  /// themselves. Unlike the client view, this stays exact even when a
  /// response outlives its client's patience (e.g. across a crash).
  int64_t ServerNetAcquires() const;

 private:
  void SetupSamya();
  void SetupReplicated();
  void SetupDemarcation();
  /// Names exported trace "processes" and seeds the registry's per-site
  /// label space (no-op when observability is off).
  void FinishObsSetup();
  /// End-of-run registry population: site/network/per-link counters.
  void SnapshotMetrics();
  void AddClients(const std::vector<std::vector<sim::NodeId>>& servers_per_region);
  std::vector<double> RegionDemandSeries(int region_index) const;
  /// The generated, load-scaled, time-compressed base trace. Every region's
  /// demand is a phase shift of this one series, so it is computed once and
  /// cached — regenerating it per region/site dominated `Setup` cost.
  const workload::DemandTrace& CompressedBaseTrace() const;

  ExperimentOptions opts_;
  mutable std::unique_ptr<workload::DemandTrace> compressed_base_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<sim::FaultInjector> faults_;
  std::shared_ptr<obs::Observability> obs_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::vector<core::Site*> sites_;
  std::vector<WorkloadClient*> clients_;
  std::vector<sim::NodeId> server_ids_;
  std::vector<sim::NodeId> client_ids_;
  std::string pdes_fallback_reason_;  ///< Setup prescan verdict; "" = eligible
  bool setup_done_ = false;
};

/// Full JSON snapshot of one observed run: the metrics registry, the
/// event-loop profile, and headline result counters. Components that were
/// disabled are simply absent from the object.
JsonValue BuildMetricsSnapshot(const ExperimentResult& result);

/// Site `site_index`'s share of an entity's M_e tokens: M/n, with the first
/// (M % n) sites absorbing the division remainder so the pools sum to
/// exactly M_e (Eq. 1 conservation holds from t=0). Shared by every
/// deployment builder; also the host of the "alloc_remainder" test-only
/// mutation (common/testonly_mutation.h), which re-drops the remainder.
int64_t InitialSiteTokens(int64_t max_tokens, int num_sites, int site_index);

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_EXPERIMENT_H_
