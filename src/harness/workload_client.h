#ifndef SAMYA_HARNESS_WORKLOAD_CLIENT_H_
#define SAMYA_HARNESS_WORKLOAD_CLIENT_H_

#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/timeseries.h"
#include "common/token_api.h"
#include "harness/history.h"
#include "sim/node.h"
#include "workload/request_stream.h"

namespace samya::harness {

/// Per-client measurement results; the raw material of every table/figure.
struct ClientStats {
  Histogram latency;            ///< commit latency (µs), committed txns only
  Histogram acquire_latency;    ///< commit latency of acquires alone
  RateSeries committed{Seconds(1)};  ///< committed txns per second
  uint64_t committed_acquires = 0;
  uint64_t committed_releases = 0;
  uint64_t committed_reads = 0;
  uint64_t rejected = 0;   ///< final constraint rejections
  uint64_t dropped = 0;    ///< gave up after retries/timeouts
  uint64_t sent = 0;
  /// Releases skipped because the client held no acquired tokens (§3.2: "an
  /// individual client never returns more tokens than what it has acquired").
  uint64_t skipped_releases = 0;

  uint64_t TotalCommitted() const {
    return committed_acquires + committed_releases + committed_reads;
  }
};

struct WorkloadClientOptions {
  /// Servers this client may contact. The first entry is the preferred
  /// (closest) one — in Samya that is the region's site, in MultiPaxSys any
  /// replica (a leader hint redirects).
  std::vector<sim::NodeId> servers;
  Duration request_timeout = Millis(600);
  int max_attempts = 4;
  Duration overload_backoff = Millis(40);
  /// Closed-loop mode: ignore the script's timestamps and keep `window`
  /// requests outstanding, issuing the next one as each completes. This is
  /// the saturation-style load of Fig 3h, where throughput is bounded by
  /// request latency rather than trace arrival rate.
  bool closed_loop = false;
  int window = 4;
  /// Entity (resource type, §3.2) stamped on every request this client
  /// issues. Multi-entity deployments route on it (EntityRouter); the
  /// default 0 is the single-entity convention used everywhere else.
  uint32_t entity = 0;
  /// Optional history recorder (non-owning): every issued request records an
  /// invocation, every final response a completion, for the linearizability
  /// checker. Null (the default) records nothing.
  HistoryRecorder* history = nullptr;
};

/// \brief Trace-driven open-loop client (§5.2: one per region, all issuing
/// transactions simultaneously).
///
/// Plays a scripted request stream against any system speaking the token
/// API. Retries `kNotLeader` at the hinted leader and `kOverloaded` after a
/// backoff; gives up after `max_attempts`, counting the request as dropped.
/// Records commit latency (client-observed, as in the paper) and per-second
/// committed throughput.
class WorkloadClient : public sim::Node {
 public:
  WorkloadClient(sim::NodeId id, sim::Region region,
                 WorkloadClientOptions opts,
                 std::vector<workload::Request> script);

  void Start() override;
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override;

  const ClientStats& stats() const { return stats_; }
  size_t outstanding() const { return outstanding_.size(); }

 private:
  struct Outstanding {
    TokenRequest request;
    SimTime first_sent = 0;
    int attempts = 0;
    sim::NodeId target = sim::kInvalidNode;
    uint64_t timeout_timer = 0;
  };

  void ScheduleNext();
  void IssueNext();
  void SendTo(Outstanding& out, sim::NodeId target);
  void Retry(uint64_t request_id, sim::NodeId target, Duration delay);
  sim::NodeId PreferredServer() const;
  sim::NodeId NextServer(sim::NodeId previous) const;

  WorkloadClientOptions opts_;
  std::vector<workload::Request> script_;
  size_t next_request_ = 0;
  uint64_t next_request_id_ = 1;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  // Keyed lookups only, never iterated in order; bounded by the client
  // window, so a small pre-sized hash map avoids a node allocation per
  // request.
  std::unordered_map<uint64_t, Outstanding> outstanding_;
  bool issue_timer_armed_ = false;  ///< at most one pending issue timer
  int64_t balance_ = 0;  ///< tokens acquired minus tokens released
  ClientStats stats_;
  // Reused for every request sent; `Send` copies the bytes out
  // synchronously, so one scratch writer per client is safe.
  BufferWriter send_scratch_;
};

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_WORKLOAD_CLIENT_H_
