#ifndef SAMYA_HARNESS_PARALLEL_RUNNER_H_
#define SAMYA_HARNESS_PARALLEL_RUNNER_H_

#include <functional>
#include <vector>

#include "harness/experiment.h"

namespace samya::harness {

/// \brief Runs `fn(0) .. fn(n-1)` across a pool of `threads` workers
/// (work-stealing by atomic claim; `threads <= 0` resolves like `RunAll`).
///
/// The generic engine under `RunAll` and the multi-entity shard runner.
/// Determinism contract: callers must make each `fn(i)` self-contained —
/// the function owns all state it touches apart from writing its own,
/// index-addressed result slot. Under that contract the outcome is
/// bit-identical to the serial loop `for (i in 0..n-1) fn(i)` regardless of
/// thread count or scheduling, because no execution order is observable.
void RunIndexed(size_t n, int threads, const std::function<void(size_t)>& fn);

/// \brief Multi-core runner for sweeps of independent experiments.
///
/// Every figure/table bench is a sweep over configurations (systems, seeds,
/// site counts, read ratios, ...) of fully independent, single-threaded,
/// seeded simulations — which parallelises perfectly across cores.
///
/// Determinism contract: each `ExperimentOptions` is run in its own
/// `Experiment` (own `SimEnvironment`, RNG streams, buffer pool — no shared
/// mutable state), so `RunAll` returns results bit-identical to running
/// `Experiment::Setup()+Run()` sequentially over the same options, in input
/// order, regardless of thread count or scheduling. Verified by
/// tests/harness/parallel_runner_test.cc.
///
/// `threads <= 0` uses the hardware concurrency (overridable with the
/// SAMYA_BENCH_THREADS environment variable, e.g. for reproducing
/// single-core numbers on a big machine).
std::vector<ExperimentResult> RunAll(std::vector<ExperimentOptions> options,
                                     int threads = 0);

/// Thread count `RunAll` resolves `threads <= 0` to.
int DefaultRunnerThreads();

/// Workers currently executing inside `RunIndexed` pools, process-wide
/// (0 when no sweep is running; the serial fast path does not count).
/// `Experiment::Setup` consults this to keep intra-run PDES from
/// oversubscribing cores that a sweep already saturates.
int ActiveSweepThreads();

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_PARALLEL_RUNNER_H_
