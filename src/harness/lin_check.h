#ifndef SAMYA_HARNESS_LIN_CHECK_H_
#define SAMYA_HARNESS_LIN_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/history.h"

namespace samya::harness {

/// \brief Sequential token-counter specification (the paper's Eq. 1 as a
/// state machine): a single counter of acquired tokens bounded by the
/// entity's capacity M_e.
///
/// This is the reference model both the linearizability checker and the
/// `consensus/token_sm` unit tests link against: a distributed run is
/// correct exactly when its client history can be explained by some
/// sequential execution of these three transitions.
struct TokenSpec {
  int64_t capacity = 0;  ///< M_e
  int64_t acquired = 0;

  /// acquireTokens(e, n): commits iff the pool can still cover it.
  bool Acquire(int64_t amount) {
    if (amount <= 0 || acquired + amount > capacity) return false;
    acquired += amount;
    return true;
  }
  /// releaseTokens(e, m): commits iff that many tokens are outstanding.
  bool Release(int64_t amount) {
    if (amount <= 0 || amount > acquired) return false;
    acquired -= amount;
    return true;
  }
  /// Global availability a committed read must report.
  int64_t Read() const { return capacity - acquired; }
};

/// What the checker demands of a history. The strictness knobs exist because
/// not every system under test promises full linearizability:
///  - Samya commits are linearizable, but a local-pool rejection can be
///    globally spurious (tokens were free at another site) and a global read
///    sums per-site snapshots taken at slightly different instants — so its
///    preset keeps `strict_rejections`/`strict_reads` off.
///  - Replicated baselines (MultiPaxSys, Raft) serialize everything through
///    one log: fully strict.
///  - Escrow/demarcation are not linearizable by design; `kBoundedSafety`
///    only demands that no placement of the committed effects can be found
///    where the counter stays within [0, M] — the numeric-invariant notion
///    of correctness.
struct CheckOptions {
  enum class Mode { kLinearizability, kBoundedSafety };
  Mode mode = Mode::kLinearizability;
  int64_t max_tokens = 0;  ///< M_e
  /// Committed reads must return the exact spec value at their
  /// linearization point (off: only 0 <= value <= M is required).
  bool strict_reads = false;
  /// Rejected acquires must be justifiable — the spec could not have granted
  /// the amount at the chosen linearization point.
  bool strict_rejections = false;
  /// Search budget; exceeded => `CheckResult::complete` is false.
  uint64_t max_states = 20'000'000;

  static CheckOptions Samya(int64_t m) {
    return CheckOptions{Mode::kLinearizability, m, false, false};
  }
  static CheckOptions Replicated(int64_t m) {
    return CheckOptions{Mode::kLinearizability, m, true, true};
  }
  static CheckOptions Bounded(int64_t m) {
    return CheckOptions{Mode::kBoundedSafety, m, false, false};
  }
};

struct CheckResult {
  bool ok = true;
  bool complete = true;  ///< false when the state budget ran out first
  std::string violation;  ///< human-readable; empty when ok
  uint64_t states_explored = 0;
  uint64_t cache_hits = 0;
};

/// \brief Checks one entity's history against the sequential `TokenSpec`.
///
/// Linearizability mode runs the Wing & Gong search with Lowe-style
/// memoization: depth-first over the partial orders, where a configuration
/// is the pair (set of linearized ops, spec counter) and revisiting a
/// configuration is pruned. Open ops (no client-observed response) may
/// linearize at any point after their invocation or never — except ops a
/// server tap marked `server_committed`, whose effect must be placed.
///
/// Bounded-safety mode checks that some placement of each committed effect
/// inside its [invoke, respond] window keeps the counter within [0, M]:
/// the supremum side places acquires as late and releases as early as
/// possible, the infimum side the reverse; a violation under the most
/// favorable placement is a violation under every placement.
CheckResult CheckHistory(const std::vector<HistoryOp>& history,
                         const CheckOptions& opts);

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_LIN_CHECK_H_
