#include "harness/chaos.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace samya::harness {

namespace {

struct SystemIdEntry {
  const char* id;
  SystemKind kind;
};

constexpr SystemIdEntry kSystemIds[] = {
    {"samya_majority", SystemKind::kSamyaMajority},
    {"samya_any", SystemKind::kSamyaAny},
    {"multipaxsys", SystemKind::kMultiPaxSys},
    {"cockroach_like", SystemKind::kCockroachLike},
    {"demarcation", SystemKind::kDemarcation},
    {"site_escrow", SystemKind::kSiteEscrow},
    {"samya_no_constraint", SystemKind::kSamyaNoConstraint},
    {"samya_no_redistribution", SystemKind::kSamyaNoRedistribution},
    {"samya_majority_no_predict", SystemKind::kSamyaMajorityNoPredict},
    {"samya_any_no_predict", SystemKind::kSamyaAnyNoPredict},
};

}  // namespace

const char* SystemIdName(SystemKind kind) {
  for (const auto& e : kSystemIds) {
    if (e.kind == kind) return e.id;
  }
  return "unknown";
}

bool SystemKindFromId(const std::string& id, SystemKind* out) {
  for (const auto& e : kSystemIds) {
    if (id == e.id) {
      *out = e.kind;
      return true;
    }
  }
  return false;
}

JsonValue ChaosCase::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("format", "samya-chaos-case-v1");
  doc.Set("system", SystemIdName(system));
  doc.Set("seed", static_cast<int64_t>(seed));
  doc.Set("num_sites", static_cast<int64_t>(num_sites));
  doc.Set("max_tokens", max_tokens);
  doc.Set("duration_us", duration);
  doc.Set("intensity", intensity);
  if (!quiescence_guard) doc.Set("quiescence_guard", false);
  if (!violation_check.empty()) doc.Set("violation_check", violation_check);
  if (!note.empty()) doc.Set("note", note);
  doc.Set("schedule", schedule.ToJson());
  return doc;
}

Result<ChaosCase> ChaosCase::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("chaos case: not an object");
  }
  const std::string format = v.GetString("format", "");
  if (format != "samya-chaos-case-v1") {
    return Status::InvalidArgument("chaos case: unknown format '" + format +
                                   "'");
  }
  ChaosCase c;
  if (!SystemKindFromId(v.GetString("system", ""), &c.system)) {
    return Status::InvalidArgument("chaos case: unknown system '" +
                                   v.GetString("system", "") + "'");
  }
  c.seed = static_cast<uint64_t>(v.GetInt("seed", 1));
  c.num_sites = static_cast<int>(v.GetInt("num_sites", 5));
  c.max_tokens = v.GetInt("max_tokens", 5000);
  c.duration = v.GetInt("duration_us", Seconds(50));
  c.intensity = v.GetDouble("intensity", 1.0);
  c.quiescence_guard = v.GetBool("quiescence_guard", true);
  c.violation_check = v.GetString("violation_check", "");
  c.note = v.GetString("note", "");
  const JsonValue* sched = v.Find("schedule");
  if (sched == nullptr) {
    return Status::InvalidArgument("chaos case: missing schedule");
  }
  SAMYA_ASSIGN_OR_RETURN(c.schedule, sim::FaultSchedule::FromJson(*sched));
  return c;
}

ExperimentOptions MakeChaosOptions(const ChaosCase& c, AuditOptions audit) {
  ExperimentOptions o;
  o.system = c.system;
  o.num_sites = c.num_sites;
  o.max_tokens = c.max_tokens;
  o.duration = c.duration;
  o.seed = c.seed;
  o.fault_schedule = c.schedule;
  audit.enabled = true;
  audit.require_quiescence = audit.require_quiescence && c.quiescence_guard;
  // The terminal heal block is the last scheduled op; with it gone (e.g. a
  // shrunken schedule) the latest remaining op still bounds the fault era.
  audit.heal_time = 0;
  for (const sim::FaultOp& op : c.schedule.ops) {
    audit.heal_time = std::max(audit.heal_time, op.at);
  }
  audit.load_end = c.duration;
  o.audit = audit;
  return o;
}

ExperimentResult RunChaosCase(const ChaosCase& c, const AuditOptions& audit) {
  Experiment e(MakeChaosOptions(c, audit));
  e.Setup();
  return e.Run();
}

ChaosCase MakeNemesisCase(SystemKind system, uint64_t seed, double intensity,
                          int num_sites) {
  ChaosCase c;
  c.system = system;
  c.seed = seed;
  c.intensity = intensity;
  c.num_sites = num_sites;
  sim::NemesisOptions nopts;
  nopts.horizon = Seconds(40);
  nopts.heal_margin = Seconds(8);
  nopts.intensity = intensity;
  for (int i = 0; i < c.num_sites; ++i) {
    nopts.nodes.push_back(static_cast<sim::NodeId>(i));
  }
  c.schedule = sim::GenerateSchedule(nopts, seed);
  return c;
}

namespace {

bool HasViolationOfCheck(const ExperimentResult& r, const std::string& check) {
  if (check.empty()) return !r.violations.empty();
  for (const AuditViolation& v : r.violations) {
    if (v.check == check) return true;
  }
  return false;
}

}  // namespace

ChaosCase ShrinkCase(const ChaosCase& c, const AuditOptions& audit,
                     int max_runs, int* runs_used) {
  int runs = 0;
  const auto reproduces = [&](const std::vector<sim::FaultOp>& ops) {
    ++runs;
    ChaosCase candidate = c;
    candidate.schedule.ops = ops;
    return HasViolationOfCheck(RunChaosCase(candidate, audit),
                               c.violation_check);
  };

  std::vector<sim::FaultOp> ops = c.schedule.ops;
  // ddmin (Zeller & Hildebrandt): try removing ever-finer chunks, keeping a
  // reduction whenever the violation survives.
  size_t n = 2;
  while (ops.size() >= 2 && runs < max_runs) {
    const size_t chunk = (ops.size() + n - 1) / n;
    bool reduced = false;
    for (size_t i = 0; i < n && i * chunk < ops.size(); ++i) {
      if (runs >= max_runs) break;
      std::vector<sim::FaultOp> candidate;
      candidate.reserve(ops.size() - chunk);
      for (size_t j = 0; j < ops.size(); ++j) {
        if (j / chunk != i) candidate.push_back(ops[j]);
      }
      if (candidate.size() == ops.size() || candidate.empty()) continue;
      if (reproduces(candidate)) {
        ops = std::move(candidate);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= ops.size()) break;  // 1-minimal
      n = std::min(n * 2, ops.size());
    }
  }
  // Final singleton sweep: drop any op whose removal keeps the violation.
  for (size_t i = 0; i < ops.size() && ops.size() > 1 && runs < max_runs;) {
    std::vector<sim::FaultOp> candidate = ops;
    candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
    if (reproduces(candidate)) {
      ops = std::move(candidate);
    } else {
      ++i;
    }
  }

  if (runs_used != nullptr) *runs_used = runs;
  ChaosCase out = c;
  out.schedule.ops = std::move(ops);
  return out;
}

}  // namespace samya::harness
