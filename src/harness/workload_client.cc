#include "harness/workload_client.h"

#include "common/macros.h"

namespace samya::harness {

namespace {
// Timer tokens: 0 issues the next scripted request; otherwise the token
// encodes (request_id << 1) | is_retry.
constexpr uint64_t kIssueNext = 0;
uint64_t TimeoutToken(uint64_t id) { return id << 1; }
uint64_t RetryToken(uint64_t id) { return (id << 1) | 1; }
}  // namespace

WorkloadClient::WorkloadClient(sim::NodeId id, sim::Region region,
                               WorkloadClientOptions opts,
                               std::vector<workload::Request> script)
    : Node(id, region), opts_(std::move(opts)), script_(std::move(script)) {
  SAMYA_CHECK(!opts_.servers.empty());
  // Request ids must be globally unique: clients can share an app manager,
  // which keys its routing table by request id.
  next_request_id_ = (static_cast<uint64_t>(id) << 40) + 1;
  outstanding_.reserve(64);
}

void WorkloadClient::Start() { ScheduleNext(); }

void WorkloadClient::HandleCrash() {
  outstanding_.clear();
  // A crashed client stops issuing (Fig 3c crashes the region's client with
  // its site).
  next_request_ = script_.size();
}

sim::NodeId WorkloadClient::PreferredServer() const {
  return opts_.servers.front();
}

sim::NodeId WorkloadClient::NextServer(sim::NodeId previous) const {
  for (size_t i = 0; i < opts_.servers.size(); ++i) {
    if (opts_.servers[i] == previous) {
      return opts_.servers[(i + 1) % opts_.servers.size()];
    }
  }
  return opts_.servers.front();
}

void WorkloadClient::ScheduleNext() {
  if (next_request_ >= script_.size() || issue_timer_armed_) return;
  if (opts_.closed_loop) {
    // Issue immediately whenever the window has room.
    if (outstanding_.size() < static_cast<size_t>(opts_.window)) {
      issue_timer_armed_ = true;
      SetTimer(0, kIssueNext);
    }
    return;
  }
  const SimTime at = script_[next_request_].at;
  const Duration delay = at > Now() ? at - Now() : 0;
  issue_timer_armed_ = true;
  SetTimer(delay, kIssueNext);
}

void WorkloadClient::IssueNext() {
  while (next_request_ < script_.size() &&
         (opts_.closed_loop
              ? outstanding_.size() < static_cast<size_t>(opts_.window)
              : script_[next_request_].at <= Now())) {
    const workload::Request& r = script_[next_request_++];
    if (r.type == workload::Request::Type::kRelease) {
      // §3.2: never return more tokens than held.
      if (balance_ < r.amount) {
        ++stats_.skipped_releases;
        continue;
      }
      balance_ -= r.amount;
    }
    Outstanding out;
    out.request.request_id = next_request_id_++;
    out.request.entity = opts_.entity;
    out.request.amount = r.amount;
    switch (r.type) {
      case workload::Request::Type::kAcquire:
        out.request.op = TokenOp::kAcquire;
        break;
      case workload::Request::Type::kRelease:
        out.request.op = TokenOp::kRelease;
        break;
      case workload::Request::Type::kRead:
        out.request.op = TokenOp::kRead;
        break;
    }
    out.first_sent = Now();
    ++stats_.sent;
    if (opts_.history != nullptr) {
      opts_.history->OnInvoke(id(), out.request, Now());
    }
    const uint64_t id = out.request.request_id;
    Outstanding& slot = outstanding_[id];
    slot = out;
    // Prefer a learned leader hint if it is one of our candidate servers;
    // otherwise the closest server.
    sim::NodeId target = PreferredServer();
    for (sim::NodeId s : opts_.servers) {
      if (s == leader_hint_) target = leader_hint_;
    }
    SendTo(slot, target);
  }
  ScheduleNext();
}

void WorkloadClient::SendTo(Outstanding& out, sim::NodeId target) {
  ++out.attempts;
  out.target = target;
  send_scratch_.Clear();
  out.request.EncodeTo(send_scratch_);
  Send(target, kMsgTokenRequest, send_scratch_);
  out.timeout_timer =
      SetTimer(opts_.request_timeout, TimeoutToken(out.request.request_id));
}

void WorkloadClient::HandleTimer(uint64_t token) {
  if (token == kIssueNext) {
    issue_timer_armed_ = false;
    IssueNext();
    return;
  }
  const uint64_t id = token >> 1;
  const bool is_retry = (token & 1) != 0;
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  Outstanding& out = it->second;

  if (is_retry) {
    SendTo(out, out.target);
    return;
  }
  // Timeout: try another server or give up.
  if (out.attempts >= opts_.max_attempts) {
    ++stats_.dropped;
    outstanding_.erase(it);
    ScheduleNext();
    return;
  }
  SendTo(out, NextServer(out.target));
}

void WorkloadClient::HandleMessage(sim::NodeId from, uint32_t type,
                                   BufferReader& r) {
  (void)from;
  SAMYA_CHECK_EQ(type, kMsgTokenResponse);
  auto resp = TokenResponse::DecodeFrom(r);
  if (!resp.ok()) return;
  auto it = outstanding_.find(resp->request_id);
  if (it == outstanding_.end()) return;  // duplicate/stale response
  Outstanding& out = it->second;
  CancelTimer(out.timeout_timer);

  if (opts_.history != nullptr && (resp->status == TokenStatus::kCommitted ||
                                   resp->status == TokenStatus::kRejected)) {
    opts_.history->OnClientResponse(resp->request_id, resp->status,
                                    resp->value, Now());
  }
  switch (resp->status) {
    case TokenStatus::kCommitted: {
      stats_.latency.Record(Now() - out.first_sent);
      stats_.committed.Record(Now());
      switch (out.request.op) {
        case TokenOp::kAcquire:
          ++stats_.committed_acquires;
          stats_.acquire_latency.Record(Now() - out.first_sent);
          balance_ += out.request.amount;
          break;
        case TokenOp::kRelease:
          ++stats_.committed_releases;
          break;
        case TokenOp::kRead:
          ++stats_.committed_reads;
          break;
      }
      outstanding_.erase(it);
      ScheduleNext();
      return;
    }
    case TokenStatus::kRejected:
      ++stats_.rejected;
      // A definitive non-commit: a rejected release did not return tokens,
      // so the client still holds them. (Timeout drops are ambiguous — the
      // request may commit later — so those never restore balance.)
      if (out.request.op == TokenOp::kRelease) {
        balance_ += out.request.amount;
      }
      outstanding_.erase(it);
      ScheduleNext();
      return;
    case TokenStatus::kNotLeader: {
      if (out.attempts >= opts_.max_attempts) {
        ++stats_.dropped;
        if (out.request.op == TokenOp::kRelease) {
          balance_ += out.request.amount;  // definitive: never applied
        }
        outstanding_.erase(it);
        ScheduleNext();
        return;
      }
      if (resp->leader_hint >= 0) {
        leader_hint_ = resp->leader_hint;
        SendTo(out, resp->leader_hint);
      } else {
        SendTo(out, NextServer(out.target));
      }
      return;
    }
    case TokenStatus::kOverloaded: {
      if (out.attempts >= opts_.max_attempts) {
        ++stats_.dropped;
        if (out.request.op == TokenOp::kRelease) {
          balance_ += out.request.amount;  // definitive: never applied
        }
        outstanding_.erase(it);
        ScheduleNext();
        return;
      }
      out.timeout_timer = 0;
      SetTimer(opts_.overload_backoff, RetryToken(out.request.request_id));
      return;
    }
  }
}

}  // namespace samya::harness
