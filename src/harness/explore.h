#ifndef SAMYA_HARNESS_EXPLORE_H_
#define SAMYA_HARNESS_EXPLORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/experiment.h"
#include "harness/lin_check.h"
#include "sim/schedule_oracle.h"
#include "workload/request_stream.h"

namespace samya::harness {

/// Which schedule oracle drives a run. `kReplay` replays
/// `ExploreCase::choices` — the corpus format, and the DFS/ddmin workhorse.
enum class SchedulerKind { kFifo, kRandom, kPct, kReplay };

/// Wire-format name of a SchedulerKind ("pct"); stable — corpus files
/// depend on it. Inverse: `SchedulerKindFromId`.
const char* SchedulerIdName(SchedulerKind kind);
bool SchedulerKindFromId(const std::string& id, SchedulerKind* out);

/// \brief One schedule-exploration configuration: a small fixed workload, a
/// scheduler, and (for replay) the recorded choice trace. Fully
/// serializable, so a violating schedule commits to
/// `tests/integration/schedule_corpus/` and replays bit-identically.
struct ExploreCase {
  SystemKind system = SystemKind::kSamyaMajority;
  SchedulerKind scheduler = SchedulerKind::kReplay;
  uint64_t seed = 1;
  int num_sites = 3;
  /// Deliberately not divisible by 3: the M % n allocation remainder is
  /// live, so the "alloc_remainder" mutation is observable.
  int64_t max_tokens = 31;
  Duration duration = Seconds(3);  ///< load window (run drains 10s more)
  Duration window = Millis(5);     ///< oracle commutativity window
  int pct_depth = 3;               ///< PCT priority-change points
  /// Per-region client scripts (region r plays scripts[r]; missing entries
  /// idle). Empty => `DefaultExploreScripts(max_tokens)`.
  std::vector<std::vector<workload::Request>> scripts;
  /// Recorded oracle choices; the schedule under kReplay, and what ddmin
  /// minimizes. Ignored by the other schedulers.
  std::vector<uint32_t> choices;
  /// Test-only mutation armed for the run ("" = none); see
  /// common/testonly_mutation.h. Mutations are process-global: cases with
  /// one set must not run concurrently with other runs.
  std::string mutation;
  /// Provenance: the check this case violates ("" = regression guard
  /// expected to pass clean).
  std::string violation_check;
  std::string note;

  JsonValue ToJson() const;
  static Result<ExploreCase> FromJson(const JsonValue& v);
};

/// The standard small contention scenario: three active regions issuing a
/// handful of acquires/releases/reads against 3 sites, sized so the second
/// burst overdraws a local pool and forces 1–2 reactive Avantan rounds.
std::vector<std::vector<workload::Request>> DefaultExploreScripts(
    int64_t max_tokens);

/// Per-system history-check preset (lin_check.h). Returns false when the
/// system has no checkable token spec (kSamyaNoConstraint promises nothing).
bool CheckPresetFor(SystemKind kind, int64_t max_tokens, CheckOptions* out);

/// Everything one explored run yields: the auditor verdict, the history
/// checker verdict, and the decision trace (replayable via kReplay).
struct ExploreRunResult {
  CheckResult check;
  std::vector<AuditViolation> violations;
  std::vector<sim::ChoicePoint> trace;
  std::vector<uint32_t> choices;  ///< trace projected to chosen indices
  uint64_t ops_recorded = 0;
  uint64_t events_executed = 0;
  /// First failed check: an auditor check name ("conservation", ...), or
  /// "linearizability" / "bounded_safety" from the history checker. Empty
  /// when the run was clean.
  std::string failed_check;

  bool violated() const { return !failed_check.empty(); }
};

/// Runs one case end to end: builds the oracle (unless `oracle` overrides
/// it), arms the mutation, runs the experiment with the auditor + history
/// recorder attached, then checks the history against the system's preset.
ExploreRunResult RunExploreCase(const ExploreCase& c,
                                sim::ScheduleOracle* oracle = nullptr);

/// Bounded exhaustive search knobs. `max_depth` caps how many decision
/// points may deviate from FIFO (the tree is complete up to that depth);
/// `max_runs` caps total re-executions.
struct DfsOptions {
  uint32_t max_depth = 10;
  uint64_t max_runs = 2000;
  /// Prune a run whose (choice, state-hash) signature was already seen —
  /// distinct prefixes that converge to the same interleaving share a
  /// subtree, so re-expanding it is pure waste.
  bool prune_states = true;
};

struct DfsStats {
  uint64_t runs = 0;
  uint64_t states = 0;  ///< distinct decision-context hashes encountered
  uint64_t prunes = 0;
  uint32_t deepest_branch = 0;  ///< deepest decision index branched on
  /// The frontier drained before `max_runs`: every schedule within
  /// `max_depth` deviations was covered (modulo state pruning).
  bool exhausted = false;
  uint64_t violations = 0;           ///< runs that failed a check
  std::vector<uint32_t> failing_choices;  ///< first violating schedule
  std::string failed_check;
};

/// \brief Bounded exhaustive DFS over the schedule space of `base`.
///
/// Stateless search by re-execution: each frontier entry is a choice prefix,
/// replayed with FIFO past its end; the run's recorded trace then spawns one
/// child per untaken candidate at every decision index in
/// [prefix length, max_depth). Each bounded choice sequence is visited
/// exactly once; revisited run signatures are pruned. Small configs
/// (3 sites, 1–2 Avantan rounds) exhaust within a few hundred runs.
DfsStats ExploreDfs(const ExploreCase& base, const DfsOptions& dopts);

/// ddmin minimization of a violating choice trace: repeatedly replays the
/// case with subsets of `choices`, keeping a subset iff it still fails
/// `c.violation_check` (any check when empty). Returns the case with the
/// minimized trace; `runs_used` reports the spend against `max_runs`.
ExploreCase ShrinkChoices(const ExploreCase& c, int max_runs = 300,
                          int* runs_used = nullptr);

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_EXPLORE_H_
