#include "harness/lin_check.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <unordered_set>

#include "common/macros.h"

namespace samya::harness {

namespace {

const char* OpName(TokenOp op) {
  switch (op) {
    case TokenOp::kAcquire:
      return "acquire";
    case TokenOp::kRelease:
      return "release";
    case TokenOp::kRead:
      return "read";
  }
  return "?";
}

std::string Describe(const HistoryOp& op) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s(%" PRId64 ") client=%d id=%" PRIu64 " [%" PRId64 ", %" PRId64
                "] outcome=%d%s",
                OpName(op.op), op.amount, op.client, op.request_id, op.invoke,
                op.respond, static_cast<int>(op.outcome),
                op.server_committed ? " server-committed" : "");
  return buf;
}

// --------------------------------------------------------------------------
// Linearizability: Wing & Gong DFS with memoized configurations.
// --------------------------------------------------------------------------

class WglChecker {
 public:
  WglChecker(std::vector<HistoryOp> ops, const CheckOptions& opts)
      : ops_(std::move(ops)), opts_(opts) {
    spec_.capacity = opts_.max_tokens;
    linearized_.assign(ops_.size(), false);
    words_.assign((ops_.size() + 63) / 64, 0);
    for (const HistoryOp& op : ops_) {
      must_.push_back(!op.open() || op.server_committed);
    }
    must_remaining_ = 0;
    for (bool m : must_) must_remaining_ += m ? 1 : 0;
  }

  CheckResult Run() {
    const bool ok = Dfs();
    CheckResult r;
    r.states_explored = states_;
    r.cache_hits = cache_hits_;
    r.complete = complete_;
    r.ok = ok || !complete_;  // an exhausted budget is "not proven wrong"
    if (!ok && complete_) {
      r.violation = "history not linearizable against TokenSpec(M=" +
                    std::to_string(opts_.max_tokens) + "); " +
                    std::to_string(ops_.size()) + " checked ops";
      for (size_t i = 0; i < ops_.size() && i < 40; ++i) {
        r.violation += "\n  " + Describe(ops_[i]);
      }
    }
    return r;
  }

 private:
  /// Attempts the op's transition at the current point; returns false when
  /// its precondition fails (state untouched either way on failure).
  bool Apply(const HistoryOp& op) {
    switch (op.op) {
      case TokenOp::kAcquire:
        if (op.outcome == HistOutcome::kRejected) {
          // Legal only where the spec really could not grant it.
          TokenSpec probe = spec_;
          return !probe.Acquire(op.amount);
        }
        return spec_.Acquire(op.amount);
      case TokenOp::kRelease:
        if (op.outcome == HistOutcome::kRejected) {
          TokenSpec probe = spec_;
          return !probe.Release(op.amount);
        }
        return spec_.Release(op.amount);
      case TokenOp::kRead:
        // Only strict committed reads reach the search (others are filtered
        // out before it); the value must match the spec exactly here.
        return spec_.Read() == op.read_value;
    }
    return false;
  }

  void Undo(const HistoryOp& op) {
    if (op.outcome == HistOutcome::kRejected) return;
    if (op.op == TokenOp::kAcquire) spec_.acquired -= op.amount;
    if (op.op == TokenOp::kRelease) spec_.acquired += op.amount;
  }

  bool Dfs() {
    if (must_remaining_ == 0) return true;
    if (++states_ > opts_.max_states) {
      complete_ = false;
      return false;
    }
    if (!Memoize()) {
      ++cache_hits_;
      return false;
    }
    // An op may linearize next iff every op that responded before its
    // invocation already has. Open ops never bound the frontier.
    SimTime min_respond = HistoryOp::kNoRespond;
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (linearized_[i] || ops_[i].open()) continue;
      if (min_respond == HistoryOp::kNoRespond ||
          ops_[i].respond < min_respond) {
        min_respond = ops_[i].respond;
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (linearized_[i]) continue;
      if (min_respond != HistoryOp::kNoRespond &&
          ops_[i].invoke > min_respond) {
        continue;
      }
      const HistoryOp& op = ops_[i];
      if (!Apply(op)) continue;
      linearized_[i] = true;
      words_[i / 64] |= 1ull << (i % 64);
      must_remaining_ -= must_[i] ? 1 : 0;
      if (Dfs()) return true;
      must_remaining_ += must_[i] ? 1 : 0;
      words_[i / 64] &= ~(1ull << (i % 64));
      linearized_[i] = false;
      Undo(op);
      if (!complete_) return false;
    }
    return false;
  }

  /// Inserts the configuration (linearized set, spec counter); false when it
  /// was already visited. Two independent FNV streams keyed differently make
  /// an accidental 128-bit collision negligible.
  bool Memoize() {
    uint64_t h1 = 0xcbf29ce484222325ull;
    uint64_t h2 = 0x84222325cbf29ce4ull;
    auto mix = [](uint64_t h, uint64_t v) {
      h ^= v;
      return h * 0x100000001b3ull;
    };
    for (uint64_t w : words_) {
      h1 = mix(h1, w);
      h2 = mix(h2, w + 0x9e3779b97f4a7c15ull);
    }
    h1 = mix(h1, static_cast<uint64_t>(spec_.acquired));
    h2 = mix(h2, static_cast<uint64_t>(spec_.acquired) * 3);
    return visited_.insert((static_cast<unsigned __int128>(h1) << 64) | h2)
        .second;
  }

  struct U128Hash {
    size_t operator()(unsigned __int128 v) const {
      return static_cast<size_t>(static_cast<uint64_t>(v) ^
                                 static_cast<uint64_t>(v >> 64));
    }
  };

  std::vector<HistoryOp> ops_;
  CheckOptions opts_;
  TokenSpec spec_;
  std::vector<bool> linearized_;
  std::vector<uint64_t> words_;  ///< linearized_ as bits, for hashing
  std::vector<bool> must_;
  size_t must_remaining_ = 0;
  std::unordered_set<unsigned __int128, U128Hash> visited_;
  uint64_t states_ = 0;
  uint64_t cache_hits_ = 0;
  bool complete_ = true;
};

// --------------------------------------------------------------------------
// Bounded-counter safety.
// --------------------------------------------------------------------------

/// One effect placement in a time sweep: `delta` applied at `at`; at equal
/// times, negative deltas apply first on the supremum side and positive
/// first on the infimum side (both favor the history).
struct Effect {
  SimTime at;
  int64_t delta;
  const HistoryOp* op;
};

CheckResult CheckBounded(const std::vector<HistoryOp>& history,
                         const CheckOptions& opts) {
  CheckResult r;
  const SimTime kEnd =
      std::numeric_limits<SimTime>::max();  // open ops place last

  for (const HistoryOp& op : history) {
    if (op.op == TokenOp::kRead && op.outcome == HistOutcome::kCommitted) {
      if (op.read_value < 0 || op.read_value > opts.max_tokens) {
        r.ok = false;
        r.violation = "read outside [0, M]: " + Describe(op);
        return r;
      }
    }
  }

  // Supremum side: did committed acquires ever have to exceed M? Acquires
  // place as late as possible, releases as early as possible; open releases
  // may have committed (and help), open non-pinned acquires may not have
  // (and are excluded). A violation under this most favorable placement is a
  // violation under every placement.
  std::vector<Effect> sup;
  // Infimum side: could every committed release have been covered? Acquires
  // early (open ones included — they may have committed), releases late,
  // open non-pinned releases excluded.
  std::vector<Effect> inf;
  for (const HistoryOp& op : history) {
    const bool committed =
        op.outcome == HistOutcome::kCommitted || op.server_committed;
    const SimTime respond = op.open() ? kEnd : op.respond;
    if (op.op == TokenOp::kAcquire) {
      if (committed) sup.push_back({respond, op.amount, &op});
      if (committed || op.open()) inf.push_back({op.invoke, op.amount, &op});
    } else if (op.op == TokenOp::kRelease) {
      if (committed || op.open()) sup.push_back({op.invoke, -op.amount, &op});
      if (committed) inf.push_back({respond, -op.amount, &op});
    }
  }
  auto sweep = [&](std::vector<Effect>& effects, bool neg_first,
                   const char* side) {
    std::stable_sort(effects.begin(), effects.end(),
                     [neg_first](const Effect& a, const Effect& b) {
                       if (a.at != b.at) return a.at < b.at;
                       const bool an = a.delta < 0, bn = b.delta < 0;
                       return neg_first ? (an && !bn) : (!an && bn);
                     });
    int64_t acquired = 0;
    for (const Effect& e : effects) {
      acquired += e.delta;
      // Each side only checks its own bound: the sup placement is only
      // favorable for staying *under* M (releases earliest), so dipping
      // below zero there says nothing — some later release placement may
      // keep the counter non-negative. Symmetrically for inf.
      if (neg_first && acquired > opts.max_tokens) {
        r.ok = false;
        r.violation = std::string(side) +
                      ": acquired tokens exceed M even under the most "
                      "favorable placement at " +
                      Describe(*e.op);
        return false;
      }
      if (!neg_first && acquired < 0) {
        r.ok = false;
        r.violation = std::string(side) +
                      ": more tokens released than acquired even under the "
                      "most favorable placement at " +
                      Describe(*e.op);
        return false;
      }
    }
    return true;
  };
  if (!sweep(sup, /*neg_first=*/true, "sup")) return r;
  if (!sweep(inf, /*neg_first=*/false, "inf")) return r;
  return r;
}

}  // namespace

CheckResult CheckHistory(const std::vector<HistoryOp>& history,
                         const CheckOptions& opts) {
  SAMYA_CHECK_GT(opts.max_tokens, 0);
  if (opts.mode == CheckOptions::Mode::kBoundedSafety) {
    return CheckBounded(history, opts);
  }

  // Keep only ops the mode constrains:
  //  - committed writes and open writes (effects; open = may have happened),
  //  - committed reads when strict_reads,
  //  - rejections when strict_rejections.
  std::vector<HistoryOp> checked;
  for (const HistoryOp& op : history) {
    if (op.outcome == HistOutcome::kRejected) {
      if (opts.strict_rejections) checked.push_back(op);
      continue;
    }
    if (op.op == TokenOp::kRead) {
      if (op.outcome == HistOutcome::kCommitted) {
        if (op.read_value < 0 || op.read_value > opts.max_tokens) {
          CheckResult r;
          r.ok = false;
          r.violation = "read outside [0, M]: " + Describe(op);
          return r;
        }
        if (opts.strict_reads) checked.push_back(op);
      }
      continue;
    }
    checked.push_back(op);
  }
  return WglChecker(std::move(checked), opts).Run();
}

}  // namespace samya::harness
