#include "harness/multi_entity.h"

#include <string>

#include "common/logging.h"
#include "common/macros.h"
#include "core/app_manager.h"
#include "core/directory.h"
#include "harness/experiment.h"
#include "harness/parallel_runner.h"
#include "sim/cluster.h"
#include "workload/request_stream.h"
#include "workload/transform.h"

namespace samya::harness {

namespace {

constexpr int kRegions = 5;

/// Shard RNG root: a function of (base seed, entity) only, so a shard's
/// entire event stream is fixed before any worker touches it. The multiplier
/// is a prime far above any realistic entity count, keeping distinct
/// (seed, entity) pairs from colliding.
uint64_t ShardSeed(uint64_t base, uint32_t entity) {
  return base * 1000003ull + entity;
}

/// Counter/histogram fold for per-client stats. The per-second RateSeries is
/// intentionally not folded — it stays per client, as in `Experiment::Run`.
void FoldClientStats(ClientStats& into, const ClientStats& from) {
  into.latency.Merge(from.latency);
  into.acquire_latency.Merge(from.acquire_latency);
  into.committed_acquires += from.committed_acquires;
  into.committed_releases += from.committed_releases;
  into.committed_reads += from.committed_reads;
  into.rejected += from.rejected;
  into.dropped += from.dropped;
  into.sent += from.sent;
  into.skipped_releases += from.skipped_releases;
}

}  // namespace

EntityShardResult RunEntityShard(const MultiEntityOptions& opts,
                                 uint32_t entity) {
  SAMYA_CHECK_GE(opts.sites_per_entity, 1);
  const uint64_t shard_seed = ShardSeed(opts.seed, entity);
  const int n = opts.sites_per_entity;

  // Per-entity workload stream: the same generator family as the
  // single-entity harness, but seeded per entity so every entity sees its
  // own demand curve (distinct noise, spikes, and request timings).
  workload::AzureTraceOptions topts = opts.trace;
  topts.seed = shard_seed;
  auto trace = workload::GenerateAzureTrace(topts);
  if (opts.load_scale != 1.0) {
    trace = workload::ScaleCounts(trace, opts.load_scale, shard_seed + 100);
  }
  const workload::DemandTrace compressed =
      workload::CompressTime(trace, opts.compress_factor);
  const Duration day = compressed.interval() * 288;

  sim::Cluster cluster(shard_seed);

  // The entity's site group, round-robin across regions, pools summing to
  // exactly M_e (the first max%n sites absorb the division remainder).
  std::vector<sim::NodeId> site_ids;
  for (int i = 0; i < n; ++i) site_ids.push_back(i);
  std::vector<core::Site*> sites;
  for (int i = 0; i < n; ++i) {
    core::SiteOptions sopts = opts.site_template;
    sopts.sites = site_ids;
    sopts.initial_tokens = InitialSiteTokens(opts.tokens_per_entity, n, i);
    sopts.seasonal_period = 288;
    if (sopts.enable_prediction && sopts.training_series.empty()) {
      const int r = i % kRegions;
      auto shifted = workload::PhaseShift(compressed, day * r / kRegions);
      sopts.training_series = shifted.CreationSeries();
      const int sites_in_region = (n + kRegions - 1 - r) / kRegions;
      if (sites_in_region > 1) {
        for (double& v : sopts.training_series) {
          v /= static_cast<double>(sites_in_region);
        }
      }
    }
    auto* site = cluster.AddNode<core::Site>(
        sim::kPaperRegions[static_cast<size_t>(i % kRegions)], sopts);
    site->set_storage(cluster.StorageFor(site->id()));
    sites.push_back(site);
  }

  // One app manager per region: the region's own sites first (rotated
  // over), the rest as failover targets; batching per the deployment knobs.
  std::vector<core::AppManager*> ams;
  std::vector<sim::NodeId> am_by_region(kRegions, sim::kInvalidNode);
  for (int r = 0; r < kRegions; ++r) {
    core::AppManagerOptions aopts;
    for (int i = r; i < n; i += kRegions) {
      aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    }
    aopts.rotate_over = aopts.sites.size();
    for (int i = 0; i < n; ++i) {
      if (i % kRegions != r) {
        aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
      }
    }
    aopts.batch_requests = opts.batch_requests;
    aopts.batch_window = opts.batch_window;
    aopts.max_batch = opts.max_batch;
    auto* am = cluster.AddNode<core::AppManager>(
        sim::kPaperRegions[static_cast<size_t>(r)], aopts);
    ams.push_back(am);
    am_by_region[static_cast<size_t>(r)] = am->id();
  }

  // Directory + per-region router front doors (§3.1). Within a shard only
  // this entity is registered; requests carrying any other entity id are
  // rejected by the router, which the tests use to verify routing.
  core::EntityDirectory directory;
  directory.Register(entity, am_by_region);
  std::vector<core::EntityRouter*> routers;
  std::vector<sim::NodeId> router_by_region(kRegions, sim::kInvalidNode);
  for (int r = 0; r < kRegions; ++r) {
    core::EntityRouterOptions ropts;
    ropts.directory = &directory;
    ropts.region_index = r;
    auto* router = cluster.AddNode<core::EntityRouter>(
        sim::kPaperRegions[static_cast<size_t>(r)], ropts);
    routers.push_back(router);
    router_by_region[static_cast<size_t>(r)] = router->id();
  }

  // Five regional clients, each playing its phase-shifted slice of the
  // entity's trace and stamping the entity id on every request.
  std::vector<WorkloadClient*> clients;
  for (int r = 0; r < kRegions; ++r) {
    auto shifted = workload::PhaseShift(compressed, day * r / kRegions);
    workload::RequestStreamOptions ropts;
    ropts.read_ratio = opts.read_ratio;
    ropts.horizon = opts.duration;
    ropts.seed = shard_seed + 7 + static_cast<uint64_t>(r);
    auto script = workload::GenerateRequests(shifted, ropts);

    WorkloadClientOptions copts;
    copts.servers = {router_by_region[static_cast<size_t>(r)]};
    copts.request_timeout = opts.client_timeout;
    copts.max_attempts = opts.client_attempts;
    copts.entity = entity;
    auto* client = cluster.AddNode<WorkloadClient>(
        sim::kPaperRegions[static_cast<size_t>(r)], copts, std::move(script));
    clients.push_back(client);
  }

  Logger::SetThreadSimClock(cluster.env().now_ptr());
  cluster.StartAll();
  cluster.env().RunUntil(opts.duration + Seconds(10));

  EntityShardResult result;
  result.entity = entity;
  for (auto* client : clients) FoldClientStats(result.clients, client->stats());
  for (auto* site : sites) {
    result.tokens_left += site->tokens_left();
    result.redistributions += site->stats().proactive_redistributions +
                              site->stats().reactive_redistributions;
  }
  for (auto* am : ams) {
    result.am_relayed += am->relayed();
    result.batches_sent += am->batches_sent();
    result.batched_requests += am->batched_requests();
  }
  for (auto* router : routers) {
    result.routed += router->routed();
    result.unknown_entity += router->unknown_entity();
  }
  result.events_executed = cluster.env().events_executed();
  result.messages_sent = cluster.net().stats().messages_sent;
  result.bytes_sent = cluster.net().stats().bytes_sent;

  if (opts.collect_metrics) {
    auto mr = std::make_shared<obs::MetricsRegistry>();
    obs::MetricLabels l;
    // The entity id rides in the `site` label slot: "entity.*" families are
    // entity-scoped, never site-scoped, so the slot is unambiguous.
    l.site = static_cast<int32_t>(entity);
    mr->GetCounter("entity.committed_acquires", l)
        ->Add(result.clients.committed_acquires);
    mr->GetCounter("entity.committed_releases", l)
        ->Add(result.clients.committed_releases);
    mr->GetCounter("entity.committed_reads", l)
        ->Add(result.clients.committed_reads);
    mr->GetCounter("entity.rejected", l)->Add(result.clients.rejected);
    mr->GetCounter("entity.dropped", l)->Add(result.clients.dropped);
    mr->GetCounter("entity.sent", l)->Add(result.clients.sent);
    mr->GetCounter("entity.routed", l)->Add(result.routed);
    mr->GetCounter("entity.unknown_entity", l)->Add(result.unknown_entity);
    mr->GetCounter("entity.am_relayed", l)->Add(result.am_relayed);
    mr->GetCounter("entity.batches_sent", l)->Add(result.batches_sent);
    mr->GetCounter("entity.batched_requests", l)
        ->Add(result.batched_requests);
    mr->GetCounter("entity.redistributions", l)->Add(result.redistributions);
    mr->GetCounter("entity.messages_sent", l)->Add(result.messages_sent);
    mr->GetCounter("entity.events_executed", l)->Add(result.events_executed);
    mr->GetGauge("entity.tokens_left", l)->Set(result.tokens_left);
    mr->GetHistogram("entity.latency_us", l)->Merge(result.clients.latency);
    mr->GetHistogram("entity.acquire_latency_us", l)
        ->Merge(result.clients.acquire_latency);
    result.metrics = mr;
  }
  Logger::SetThreadSimClock(nullptr);
  return result;
}

JsonValue EntityShardResult::ToJson() const {
  JsonValue o = JsonValue::MakeObject();
  o.Set("entity", static_cast<uint64_t>(entity));
  o.Set("committed_acquires", clients.committed_acquires);
  o.Set("committed_releases", clients.committed_releases);
  o.Set("committed_reads", clients.committed_reads);
  o.Set("rejected", clients.rejected);
  o.Set("dropped", clients.dropped);
  o.Set("sent", clients.sent);
  o.Set("skipped_releases", clients.skipped_releases);
  o.Set("latency", clients.latency.ToJson());
  o.Set("acquire_latency", clients.acquire_latency.ToJson());
  o.Set("events_executed", events_executed);
  o.Set("messages_sent", messages_sent);
  o.Set("bytes_sent", bytes_sent);
  o.Set("routed", routed);
  o.Set("unknown_entity", unknown_entity);
  o.Set("am_relayed", am_relayed);
  o.Set("batches_sent", batches_sent);
  o.Set("batched_requests", batched_requests);
  o.Set("tokens_left", tokens_left);
  o.Set("redistributions", redistributions);
  return o;
}

MultiEntityResult RunMultiEntity(const MultiEntityOptions& opts) {
  SAMYA_CHECK_GE(opts.num_entities, 1);
  const auto n = static_cast<size_t>(opts.num_entities);
  MultiEntityResult result;
  result.per_entity.resize(n);
  RunIndexed(n, opts.threads, [&](size_t i) {
    Logger::SetThreadPrefix("entity " + std::to_string(i));
    result.per_entity[i] = RunEntityShard(opts, static_cast<uint32_t>(i));
    Logger::SetThreadPrefix("");
  });

  // Fold in entity order — fixed regardless of which worker ran what, so
  // the aggregate (and the merged registry) is itself deterministic.
  for (const EntityShardResult& shard : result.per_entity) {
    FoldClientStats(result.aggregate, shard.clients);
    result.events_executed += shard.events_executed;
    result.messages_sent += shard.messages_sent;
    result.bytes_sent += shard.bytes_sent;
    result.am_relayed += shard.am_relayed;
    result.batches_sent += shard.batches_sent;
    result.batched_requests += shard.batched_requests;
    if (shard.metrics != nullptr) {
      if (result.metrics == nullptr) {
        result.metrics = std::make_shared<obs::MetricsRegistry>();
      }
      result.metrics->Merge(*shard.metrics);
    }
  }
  return result;
}

}  // namespace samya::harness
