#include "harness/invariant_auditor.h"

#include <algorithm>

#include "common/codec.h"
#include "common/logging.h"
#include "common/macros.h"
#include "core/site.h"
#include "harness/experiment.h"

namespace samya::harness {

InvariantAuditor::InvariantAuditor(Experiment* experiment, AuditOptions opts)
    : experiment_(experiment), opts_(opts) {}

bool InvariantAuditor::Quiescent() const {
  for (const core::Site* site : experiment_->samya_sites()) {
    if (!site->alive() || site->frozen()) return false;
  }
  return true;
}

void InvariantAuditor::Report(const std::string& check, std::string detail) {
  if (violations_.size() >= kMaxViolations) return;
  const SimTime now = experiment_->cluster().env().Now();
  SAMYA_LOG_ERROR("AUDIT t=%s %s: %s", FormatDuration(now).c_str(),
                  check.c_str(), detail.c_str());
  violations_.push_back({now, check, std::move(detail)});
}

void InvariantAuditor::OnInstanceEvent(const core::Site& site,
                                       core::InstanceId instance,
                                       const core::StateList* value) {
  if (!opts_.check_agreement) return;
  const int32_t site_id = site.id();
  if (value == nullptr) {
    // Abort. In any mode a durable abort by a *participant* of a decided
    // value is a Theorem 2 violation: the deciders reallocate the aborter's
    // pooled tokens while the aborter keeps them. Aborts by sites outside
    // the decided R_t are routine (a cohort probed during the election but
    // left out of the participant list gives up via its watchdog). In
    // majority mode aborted elections legitimately re-run and commit, so
    // the conflict check does not apply at all.
    if (!any_mode_) return;
    any_mode_aborts_.insert({instance, site_id});
    auto decided = decided_participants_.find(instance);
    if (decided != decided_participants_.end() &&
        std::find(decided->second.begin(), decided->second.end(), site_id) !=
            decided->second.end()) {
      Report("agreement",
             "participant site " + std::to_string(site_id) +
                 " aborted instance " + std::to_string(instance) +
                 " already decided by site " +
                 std::to_string(first_decider_[instance]));
    }
    return;
  }

  BufferWriter w;
  value->EncodeTo(w);
  auto [it, inserted] = decided_encodings_.try_emplace(instance, w.buffer());
  if (inserted) {
    first_decider_[instance] = site_id;
    std::vector<int32_t> participants;
    for (sim::NodeId p : value->Participants()) {
      participants.push_back(static_cast<int32_t>(p));
    }
    decided_participants_[instance] = std::move(participants);
  } else if (it->second != w.buffer()) {
    Report("agreement",
           "divergent decisions for instance " + std::to_string(instance) +
               ": site " + std::to_string(site_id) + " decided " +
               value->ToString() + ", site " +
               std::to_string(first_decider_[instance]) +
               " decided differently");
  }
  if (any_mode_) {
    const auto& participants = decided_participants_[instance];
    for (const auto& [aborted_instance, aborter] : any_mode_aborts_) {
      if (aborted_instance != instance) continue;
      if (std::find(participants.begin(), participants.end(), aborter) ==
          participants.end()) {
        continue;  // non-participant abort: routine
      }
      Report("agreement",
             "site " + std::to_string(site_id) + " decided instance " +
                 std::to_string(instance) +
                 " durably aborted by participant site " +
                 std::to_string(aborter));
    }
  }
}

void InvariantAuditor::CheckTokenInvariants(bool final_audit) {
  const int64_t ledger = experiment_->ServerNetAcquires();
  if (opts_.check_constraint) {
    // Eq. 1 as an inequality holds continuously: committed-and-unreleased
    // acquires can never exceed M_e, regardless of crashes or freezes.
    if (ledger > max_tokens_) {
      Report("constraint", "net committed acquires " + std::to_string(ledger) +
                               " exceed M_e " + std::to_string(max_tokens_));
    }
    for (const core::Site* site : experiment_->samya_sites()) {
      if (site->tokens_left() < 0) {
        Report("non_negative",
               "site " + std::to_string(site->id()) + " pool is " +
                   std::to_string(site->tokens_left()));
      }
    }
  }
  if (opts_.check_conservation) {
    // The equality needs a quiescent instant unless the guard is off.
    if (opts_.require_quiescence && !Quiescent()) return;
    const int64_t pools = experiment_->TotalSiteTokens();
    if (pools + ledger != max_tokens_) {
      Report("conservation",
             "site pools " + std::to_string(pools) + " + net acquires " +
                 std::to_string(ledger) + " != M_e " +
                 std::to_string(max_tokens_) +
                 (final_audit ? " (final)" : ""));
    }
  }
}

void InvariantAuditor::Tick() {
  ++ticks_;
  CheckTokenInvariants(/*final_audit=*/false);
}

void InvariantAuditor::Install() {
  SAMYA_CHECK(opts_.enabled);
  const ExperimentOptions& eopts = experiment_->options();
  any_mode_ = eopts.system == SystemKind::kSamyaAny ||
              eopts.system == SystemKind::kSamyaAnyNoPredict;
  max_tokens_ = eopts.max_tokens;
  // Keep ticking through the post-load drain, then stop so the event queue
  // empties (RunUntilIdle in tests must terminate).
  stop_ticking_after_ = eopts.duration + Seconds(9);

  for (core::Site* site : experiment_->samya_sites()) {
    site->set_instance_observer(
        [this](const core::Site& s, core::InstanceId instance,
               const core::StateList* value) {
          OnInstanceEvent(s, instance, value);
        });
  }

  sim::SimEnvironment& env = experiment_->cluster().env();
  ScheduleNextTick();

  if (opts_.check_liveness && opts_.heal_time > 0 &&
      opts_.heal_time + opts_.liveness_grace < opts_.load_end) {
    probe_armed_ = true;
    env.ScheduleAt(opts_.heal_time + opts_.liveness_grace, [this] {
      probe_fired_ = true;
      committed_at_probe_ = CommittedOps();
    });
  }
}

uint64_t InvariantAuditor::CommittedOps() const {
  uint64_t total = 0;
  for (const core::Site* site : experiment_->samya_sites()) {
    total += site->stats().committed_acquires +
             site->stats().committed_releases + site->stats().committed_reads;
  }
  return total;
}

void InvariantAuditor::ScheduleNextTick() {
  sim::SimEnvironment& env = experiment_->cluster().env();
  if (env.Now() >= stop_ticking_after_) return;
  env.Schedule(opts_.period, [this] {
    Tick();
    ScheduleNextTick();
  });
}

void InvariantAuditor::FinalAudit() {
  CheckTokenInvariants(/*final_audit=*/true);
  if (!opts_.check_liveness || opts_.heal_time == 0) return;

  const SimTime now = experiment_->cluster().env().Now();
  // A site still frozen long after the final heal is stuck: its engaged
  // instance should have decided or aborted within the grace window.
  for (const core::Site* site : experiment_->samya_sites()) {
    if (!site->alive()) {
      Report("liveness", "site " + std::to_string(site->id()) +
                             " still crashed after the terminal heal");
      continue;
    }
    if (site->frozen() &&
        now - site->frozen_since() > opts_.liveness_grace) {
      Report("liveness",
             "site " + std::to_string(site->id()) + " frozen since " +
                 FormatDuration(site->frozen_since()) +
                 ", past the post-heal grace window");
    }
  }
  if (probe_armed_ && probe_fired_) {
    const uint64_t committed_now = CommittedOps();
    if (committed_now == committed_at_probe_) {
      Report("liveness",
             "no operation committed after heal+grace (" +
                 std::to_string(committed_at_probe_) + " ops at probe)");
    }
  }
}

}  // namespace samya::harness
