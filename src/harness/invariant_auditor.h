#ifndef SAMYA_HARNESS_INVARIANT_AUDITOR_H_
#define SAMYA_HARNESS_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "core/messages.h"
#include "core/types.h"

namespace samya::core {
class Site;
}

namespace samya::harness {

class Experiment;

/// Configuration of the continuous invariant auditor.
struct AuditOptions {
  bool enabled = false;

  /// Cadence of the periodic (clock-driven) checks. Event-driven checks
  /// (agreement) run at every decision/abort regardless.
  Duration period = Millis(500);

  bool check_conservation = true;  ///< Eq. 1 equality at quiescent instants
  bool check_constraint = true;    ///< acquires ledger never exceeds M_e
  bool check_agreement = true;     ///< no divergent decisions per instance
  bool check_liveness = true;      ///< progress + unfreeze after final heal

  /// The Eq. 1 *equality* is exact only at quiescent instants: every site
  /// alive and none frozen mid-redistribution (a crashed site's in-memory
  /// pool reads zero, and reallocations apply per-site, not atomically).
  /// The auditor therefore skips the equality check at non-quiescent ticks.
  /// Disabling this guard makes conservation fire during any crash window —
  /// the shrink acceptance test uses exactly that to manufacture a
  /// deterministic violation.
  bool require_quiescence = true;

  /// How long after `heal_time` the system gets to recover liveness.
  Duration liveness_grace = Seconds(8);

  /// When the fault schedule's terminal heal block runs (0 = no faults; the
  /// liveness checks are skipped).
  SimTime heal_time = 0;

  /// When offered load stops (the experiment `duration`). The
  /// progress-after-heal probe only arms when it lands before this.
  SimTime load_end = 0;
};

/// One invariant violation, timestamped in simulated time. `check` is one of
/// "conservation", "constraint", "non_negative", "agreement", "liveness".
struct AuditViolation {
  SimTime at = 0;
  std::string check;
  std::string detail;
};

/// \brief Continuous invariant auditor for Samya runs (§3.2 Eq. 1 and the
/// Theorem 1/2 agreement properties), hooked into the run itself.
///
/// Two kinds of hooks:
///  - event-driven: `Site::set_instance_observer` fires at every local
///    decision application / abort, where agreement is checked incrementally
///    across sites;
///  - clock-driven: a periodic tick checks the token-conservation equality
///    (at quiescent instants), the constraint bound, and non-negative pools.
///
/// Liveness-after-heal: a probe at `heal_time + liveness_grace` captures the
/// committed-operation count; `FinalAudit` (after the run drains) flags a
/// run whose tail made no progress, or left a site frozen since before the
/// grace cutoff.
///
/// The auditor schedules its ticks on the experiment's own event loop, so
/// audited runs stay deterministic — the tick cadence is part of the event
/// stream, not wall-clock sampling.
class InvariantAuditor {
 public:
  InvariantAuditor(Experiment* experiment, AuditOptions opts);

  /// Installs observers and schedules the periodic ticks. Call after
  /// `Experiment::Setup` and before the run starts.
  void Install();

  /// End-of-run checks (liveness, final conservation). Call after the run.
  void FinalAudit();

  const std::vector<AuditViolation>& violations() const { return violations_; }
  uint64_t ticks() const { return ticks_; }

 private:
  void Tick();
  void ScheduleNextTick();
  uint64_t CommittedOps() const;
  void CheckTokenInvariants(bool final_audit);
  void OnInstanceEvent(const core::Site& site, core::InstanceId instance,
                       const core::StateList* value);
  void Report(const std::string& check, std::string detail);
  bool Quiescent() const;

  Experiment* experiment_;
  AuditOptions opts_;
  bool any_mode_ = false;
  int64_t max_tokens_ = 0;
  SimTime stop_ticking_after_ = 0;

  // Agreement state: first-seen encoding + participant set of each decided
  // instance, the site that decided it, and (any-mode) which sites durably
  // aborted it while engaged.
  std::map<core::InstanceId, std::vector<uint8_t>> decided_encodings_;
  std::map<core::InstanceId, int32_t> first_decider_;
  std::map<core::InstanceId, std::vector<int32_t>> decided_participants_;
  std::set<std::pair<core::InstanceId, int32_t>> any_mode_aborts_;

  // Liveness probe state.
  bool probe_armed_ = false;
  bool probe_fired_ = false;
  uint64_t committed_at_probe_ = 0;

  uint64_t ticks_ = 0;
  std::vector<AuditViolation> violations_;
  static constexpr size_t kMaxViolations = 64;  // stop flooding, keep first
};

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_INVARIANT_AUDITOR_H_
