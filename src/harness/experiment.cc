#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>

#include "baselines/demarcation.h"
#include "baselines/site_escrow.h"
#include "baselines/replicated.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/testonly_mutation.h"
#include "core/app_manager.h"
#include "harness/parallel_runner.h"
#include "workload/transform.h"

namespace samya::harness {

namespace {

/// The five client regions of §5.2.
constexpr std::array<sim::Region, 5> kClientRegions = sim::kPaperRegions;

}  // namespace

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSamyaMajority:
      return "Samya w/ Avantan[(n+1)/2]";
    case SystemKind::kSamyaAny:
      return "Samya w/ Avantan[*]";
    case SystemKind::kMultiPaxSys:
      return "MultiPaxSys";
    case SystemKind::kCockroachLike:
      return "CockroachDB-like (Raft)";
    case SystemKind::kDemarcation:
      return "Demarcation/Escrow";
    case SystemKind::kSiteEscrow:
      return "Generalised Site Escrow (gossip)";
    case SystemKind::kSamyaNoConstraint:
      return "Samya (no constraints)";
    case SystemKind::kSamyaNoRedistribution:
      return "Samya (no redistribution)";
    case SystemKind::kSamyaMajorityNoPredict:
      return "Samya w/ Av.[(n+1)/2], no prediction";
    case SystemKind::kSamyaAnyNoPredict:
      return "Samya w/ Av.[*], no prediction";
  }
  return "?";
}

bool IsSamyaVariant(SystemKind kind) {
  switch (kind) {
    case SystemKind::kMultiPaxSys:
    case SystemKind::kCockroachLike:
    case SystemKind::kDemarcation:
    case SystemKind::kSiteEscrow:
      return false;
    default:
      return true;
  }
}

int64_t InitialSiteTokens(int64_t max_tokens, int num_sites, int site_index) {
  const int64_t base = max_tokens / num_sites;
  if (MutationEnabled(kMutationAllocRemainder)) {
    return base;  // PR 2's bug: the M_e % n remainder is dropped
  }
  return base + (site_index < max_tokens % num_sites ? 1 : 0);
}

Experiment::Experiment(ExperimentOptions opts) : opts_(std::move(opts)) {
  SAMYA_CHECK_GE(opts_.num_sites, 1);
}

const workload::DemandTrace& Experiment::CompressedBaseTrace() const {
  if (compressed_base_ == nullptr) {
    auto trace = workload::GenerateAzureTrace(opts_.trace);
    double scale = opts_.load_scale;
    if (opts_.scale_load_with_sites) {
      scale *= static_cast<double>(opts_.num_sites) / 5.0;
    }
    if (scale != 1.0) {
      trace = workload::ScaleCounts(trace, scale, opts_.seed + 100);
    }
    compressed_base_ = std::make_unique<workload::DemandTrace>(
        workload::CompressTime(trace, opts_.compress_factor));
  }
  return *compressed_base_;
}

std::vector<double> Experiment::RegionDemandSeries(int region_index) const {
  const workload::DemandTrace& compressed = CompressedBaseTrace();
  const Duration day = compressed.interval() * 288;
  auto shifted = workload::PhaseShift(
      compressed, day * region_index / 5);
  auto series = shifted.CreationSeries();
  // Several sites share a region's load; each observes its slice.
  const int sites_in_region =
      (opts_.num_sites + 4 - region_index) / 5;  // round-robin placement
  if (sites_in_region > 1) {
    for (double& v : series) v /= static_cast<double>(sites_in_region);
  }
  return series;
}

namespace {

/// Why `opts` cannot run on the PDES worker pool ("" when it can). The
/// coordinator re-checks most of these itself (sim/pdes.h), but deciding
/// here keeps ineligible runs from ever building partition machinery and
/// lets the reason name the harness feature instead of its sim-level
/// symptom.
std::string PdesIneligibility(const ExperimentOptions& opts) {
  if (opts.oracle != nullptr) {
    return "schedule oracle attached: exploration needs the serial loop";
  }
  if (opts.history != nullptr) {
    return "history recorder attached: ops append to one shared log";
  }
  if (opts.audit.enabled) {
    return "invariant auditor reads cross-site state mid-run";
  }
  if (opts.obs.tracing) {
    return "tracing attached: spans append to one shared buffer";
  }
  for (const sim::FaultOp& op : opts.fault_schedule.ops) {
    if ((op.kind == sim::FaultOp::Kind::kSetDelayFactor ||
         op.kind == sim::FaultOp::Kind::kSetLinkDelayFactor) &&
        op.value < 1.0) {
      return "fault schedule shrinks latency below the lookahead bound";
    }
  }
  if (ActiveSweepThreads() > 1) {
    return "parallel sweep already saturates the cores";
  }
  return "";
}

}  // namespace

void Experiment::Setup() {
  SAMYA_CHECK(!setup_done_);
  setup_done_ = true;
  sim::PdesOptions pdes;
  if (opts_.pdes_workers > 1) {
    pdes_fallback_reason_ = PdesIneligibility(opts_);
    if (pdes_fallback_reason_.empty()) {
      pdes.workers = opts_.pdes_workers;
    } else {
      SAMYA_LOG_INFO("experiment: pdes disabled: %s",
                     pdes_fallback_reason_.c_str());
    }
  }
  cluster_ = std::make_unique<sim::Cluster>(opts_.seed, sim::LatencyModel(),
                                           pdes);
  faults_ = std::make_unique<sim::FaultInjector>(&cluster_->net());
  if (opts_.oracle != nullptr) {
    // Before any event is scheduled: the queue must meta-tag every slot.
    cluster_->env().set_oracle(opts_.oracle);
  }

  if (opts_.obs.any()) {
    // Attach before any node starts: sites cache the tracer/metrics
    // pointers in Start(), so late attachment would instrument nothing.
    obs_ = std::make_shared<obs::Observability>(opts_.obs);
    cluster_->net().set_observability(obs_->tracer(), obs_->metrics(),
                                      obs_->profiler());
    cluster_->env().set_profiler(obs_->profiler());
  }

  if (opts_.system == SystemKind::kDemarcation ||
      opts_.system == SystemKind::kSiteEscrow) {
    SetupDemarcation();
  } else if (!IsSamyaVariant(opts_.system)) {
    SetupReplicated();
  } else {
    SetupSamya();
  }

  if (!opts_.fault_schedule.empty()) {
    sim::ApplySchedule(opts_.fault_schedule, &cluster_->net());
  }
  if (opts_.audit.enabled) {
    auditor_ = std::make_unique<InvariantAuditor>(this, opts_.audit);
    auditor_->Install();
  }
  FinishObsSetup();
}

void Experiment::FinishObsSetup() {
  if (obs_ == nullptr) return;
  obs::Tracer* tracer = obs_->tracer();
  if (tracer == nullptr) return;
  // Every node becomes a "process" row in the Perfetto export; give each a
  // readable name. Servers and clients are known by id; everything between
  // is an app manager.
  std::vector<bool> named(cluster_->num_nodes(), false);
  char buf[64];
  for (sim::NodeId id : server_ids_) {
    std::snprintf(buf, sizeof(buf), "site %d (%s)", id,
                  sim::RegionName(cluster_->node(id)->region()));
    tracer->SetProcessName(id, buf);
    named[static_cast<size_t>(id)] = true;
  }
  for (sim::NodeId id : client_ids_) {
    std::snprintf(buf, sizeof(buf), "client %d (%s)", id,
                  sim::RegionName(cluster_->node(id)->region()));
    tracer->SetProcessName(id, buf);
    named[static_cast<size_t>(id)] = true;
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (named[i]) continue;
    const auto id = static_cast<sim::NodeId>(i);
    std::snprintf(buf, sizeof(buf), "app manager %d (%s)", id,
                  sim::RegionName(cluster_->node(id)->region()));
    tracer->SetProcessName(id, buf);
  }
}

void Experiment::SetupSamya() {
  const int n = opts_.num_sites;
  std::vector<sim::NodeId> site_ids;
  for (int i = 0; i < n; ++i) site_ids.push_back(i);

  for (int i = 0; i < n; ++i) {
    core::SiteOptions sopts = opts_.site_template;
    sopts.sites = site_ids;
    sopts.initial_tokens = InitialSiteTokens(opts_.max_tokens, n, i);
    sopts.seasonal_period = 288;
    switch (opts_.system) {
      case SystemKind::kSamyaMajority:
        sopts.protocol = core::Protocol::kAvantanMajority;
        break;
      case SystemKind::kSamyaAny:
        sopts.protocol = core::Protocol::kAvantanAny;
        break;
      case SystemKind::kSamyaMajorityNoPredict:
        sopts.protocol = core::Protocol::kAvantanMajority;
        sopts.enable_prediction = false;
        break;
      case SystemKind::kSamyaAnyNoPredict:
        sopts.protocol = core::Protocol::kAvantanAny;
        sopts.enable_prediction = false;
        break;
      case SystemKind::kSamyaNoConstraint:
        sopts.enforce_constraint = false;
        sopts.enable_redistribution = false;
        sopts.enable_prediction = false;
        break;
      case SystemKind::kSamyaNoRedistribution:
        sopts.enable_redistribution = false;
        sopts.enable_prediction = false;
        break;
      default:
        SAMYA_CHECK(false);
    }
    if (sopts.enable_prediction && sopts.training_series.empty()) {
      sopts.training_series = RegionDemandSeries(i % 5);
    }
    auto* site = cluster_->AddNode<core::Site>(
        kClientRegions[static_cast<size_t>(i % 5)], sopts);
    site->set_storage(cluster_->StorageFor(site->id()));
    if (opts_.history != nullptr) {
      site->set_history_tap([h = opts_.history](uint64_t id, TokenStatus s) {
        h->OnServerOutcome(id, s);
      });
    }
    sites_.push_back(site);
    server_ids_.push_back(site->id());
  }

  // One app manager per region, preferring (and rotating over) the region's
  // own sites, with the remaining sites as failover targets.
  std::vector<std::vector<sim::NodeId>> am_per_region(5);
  for (int r = 0; r < 5; ++r) {
    core::AppManagerOptions aopts;
    for (int i = r; i < n; i += 5) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    aopts.rotate_over = aopts.sites.size();
    for (int i = 0; i < n; ++i) {
      if (i % 5 != r) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    }
    auto* am = cluster_->AddNode<core::AppManager>(
        kClientRegions[static_cast<size_t>(r)], aopts);
    if (opts_.history != nullptr) {
      am->set_response_tap([h = opts_.history](const TokenResponse& resp) {
        h->OnServerOutcome(resp.request_id, resp.status);
      });
    }
    am_per_region[static_cast<size_t>(r)] = {am->id()};
  }
  AddClients(am_per_region);
}

void Experiment::SetupDemarcation() {
  const int n = opts_.num_sites;
  std::vector<sim::NodeId> site_ids;
  for (int i = 0; i < n; ++i) site_ids.push_back(i);
  for (int i = 0; i < n; ++i) {
    if (opts_.system == SystemKind::kSiteEscrow) {
      baselines::SiteEscrowOptions sopts;
      sopts.sites = site_ids;
      sopts.initial_tokens = InitialSiteTokens(opts_.max_tokens, n, i);
      cluster_->AddNode<baselines::SiteEscrowSite>(
          kClientRegions[static_cast<size_t>(i % 5)], sopts);
    } else {
      baselines::DemarcationOptions dopts;
      dopts.sites = site_ids;
      dopts.initial_tokens = InitialSiteTokens(opts_.max_tokens, n, i);
      cluster_->AddNode<baselines::DemarcationSite>(
          kClientRegions[static_cast<size_t>(i % 5)], dopts);
    }
    server_ids_.push_back(site_ids[static_cast<size_t>(i)]);
  }
  std::vector<std::vector<sim::NodeId>> am_per_region(5);
  for (int r = 0; r < 5; ++r) {
    core::AppManagerOptions aopts;
    for (int i = r; i < n; i += 5) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    aopts.rotate_over = aopts.sites.size();
    for (int i = 0; i < n; ++i) {
      if (i % 5 != r) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    }
    auto* am = cluster_->AddNode<core::AppManager>(
        kClientRegions[static_cast<size_t>(r)], aopts);
    am_per_region[static_cast<size_t>(r)] = {am->id()};
  }
  AddClients(am_per_region);
}

void Experiment::SetupReplicated() {
  baselines::ReplicatedGroup group =
      opts_.system == SystemKind::kMultiPaxSys
          ? baselines::CreateMultiPaxSys(*cluster_, opts_.max_tokens)
          : baselines::CreateCockroachLike(*cluster_, opts_.max_tokens);
  server_ids_ = group.replica_ids;
  // Clients contact the replicas directly (the paper's baseline clients are
  // plain RPC clients); the leader hint steers them after the first reply.
  std::vector<std::vector<sim::NodeId>> servers_per_region(
      5, group.replica_ids);
  AddClients(servers_per_region);
}

void Experiment::AddClients(
    const std::vector<std::vector<sim::NodeId>>& servers_per_region) {
  for (int r = 0; r < 5; ++r) {
    std::vector<workload::Request> script;
    if (!opts_.scripts_override.empty()) {
      // Fixed explorer scenario; missing entries leave the region idle.
      if (static_cast<size_t>(r) < opts_.scripts_override.size()) {
        script = opts_.scripts_override[static_cast<size_t>(r)];
      }
    } else {
      const workload::DemandTrace& compressed = CompressedBaseTrace();
      const Duration day = compressed.interval() * 288;
      auto shifted = workload::PhaseShift(compressed, day * r / 5);

      workload::RequestStreamOptions ropts;
      ropts.read_ratio = opts_.read_ratio;
      ropts.horizon = opts_.duration;
      ropts.seed = opts_.seed + 7 + static_cast<uint64_t>(r);
      script = workload::GenerateRequests(shifted, ropts);
    }

    WorkloadClientOptions copts;
    copts.servers = servers_per_region[static_cast<size_t>(r)];
    copts.request_timeout = opts_.client_timeout;
    copts.max_attempts = opts_.client_attempts;
    copts.closed_loop = opts_.closed_loop;
    copts.window = opts_.client_window;
    copts.history = opts_.history;
    auto* client = cluster_->AddNode<WorkloadClient>(
        kClientRegions[static_cast<size_t>(r)], copts, std::move(script));
    clients_.push_back(client);
    client_ids_.push_back(client->id());
  }
}

ExperimentResult Experiment::Run() {
  SAMYA_CHECK(setup_done_);
  // Stamp this thread's log lines with this simulation's clock for the
  // duration of the run (parallel sweeps run one simulation per thread).
  Logger::SetThreadSimClock(cluster_->env().now_ptr());
  cluster_->StartAll();
  cluster_->RunUntil(opts_.duration + Seconds(10));
  // Fold per-partition obs state into the primary registries before
  // anything below reads metrics or profiler counts (no-op when serial).
  cluster_->FinishRun();

  ExperimentResult result;
  for (auto* client : clients_) {
    const ClientStats& s = client->stats();
    result.per_client.push_back(s);
    result.aggregate.latency.Merge(s.latency);
    result.aggregate.acquire_latency.Merge(s.acquire_latency);
    result.aggregate.committed_acquires += s.committed_acquires;
    result.aggregate.committed_releases += s.committed_releases;
    result.aggregate.committed_reads += s.committed_reads;
    result.aggregate.rejected += s.rejected;
    result.aggregate.dropped += s.dropped;
    result.aggregate.sent += s.sent;
    for (size_t bin = 0; bin < s.committed.num_bins(); ++bin) {
      if (s.committed.bin(bin) > 0) {
        result.throughput.Record(static_cast<SimTime>(bin) * Seconds(1),
                                 s.committed.bin(bin));
      }
    }
  }
  for (auto* site : sites_) {
    result.proactive_redistributions += site->stats().proactive_redistributions;
    result.reactive_redistributions += site->stats().reactive_redistributions;
    result.instances_completed += site->stats().instances_completed;
    result.instances_aborted += site->stats().instances_aborted;
    result.total_site_frozen_time += site->stats().time_frozen;
  }
  result.network = cluster_->net().stats();
  result.events_executed = cluster_->TotalEventsExecuted();
  if (auditor_ != nullptr) {
    auditor_->FinalAudit();
    result.violations = auditor_->violations();
    result.audit_ticks = auditor_->ticks();
  }
  if (obs_ != nullptr) {
    SnapshotMetrics();
    if (obs::Tracer* tracer = obs_->tracer()) {
      tracer->CloseOpenSpans(cluster_->env().Now());
    }
    result.obs = obs_;
  }
  Logger::SetThreadSimClock(nullptr);
  return result;
}

void Experiment::SnapshotMetrics() {
  obs::MetricsRegistry* mr = obs_->metrics();
  if (mr == nullptr) return;
  const char* protocol = "";
  if (IsSamyaVariant(opts_.system)) {
    protocol = (opts_.system == SystemKind::kSamyaAny ||
                opts_.system == SystemKind::kSamyaAnyNoPredict)
                   ? "any"
                   : "majority";
  }

  for (auto* site : sites_) {
    const core::SiteStats& s = site->stats();
    obs::MetricLabels l;
    l.site = site->id();
    l.protocol = protocol;
    mr->GetCounter("site.committed_acquires", l)->Add(s.committed_acquires);
    mr->GetCounter("site.committed_releases", l)->Add(s.committed_releases);
    mr->GetCounter("site.committed_reads", l)->Add(s.committed_reads);
    mr->GetCounter("site.rejected", l)->Add(s.rejected);
    mr->GetCounter("site.requests_queued", l)->Add(s.requests_queued);
    mr->GetCounter("site.proactive_redistributions", l)
        ->Add(s.proactive_redistributions);
    mr->GetCounter("site.reactive_redistributions", l)
        ->Add(s.reactive_redistributions);
    mr->GetCounter("site.instances_completed", l)->Add(s.instances_completed);
    mr->GetCounter("site.instances_aborted", l)->Add(s.instances_aborted);
    mr->GetGauge("site.time_frozen_us", l)->Set(s.time_frozen);
    mr->GetGauge("site.tokens_left", l)->Set(site->tokens_left());
  }

  const sim::NetworkStats& ns = cluster_->net().stats();
  mr->GetCounter("net.messages_sent")->Add(ns.messages_sent);
  mr->GetCounter("net.messages_delivered")->Add(ns.messages_delivered);
  mr->GetCounter("net.messages_dropped_loss")->Add(ns.messages_dropped_loss);
  mr->GetCounter("net.messages_dropped_partition")
      ->Add(ns.messages_dropped_partition);
  mr->GetCounter("net.messages_dropped_crashed")
      ->Add(ns.messages_dropped_crashed);
  mr->GetCounter("net.messages_dropped_link")->Add(ns.messages_dropped_link);
  mr->GetCounter("net.messages_duplicated")->Add(ns.messages_duplicated);
  mr->GetCounter("net.bytes_sent")->Add(ns.bytes_sent);
  mr->GetGauge("sim.events_executed")->Set(
      static_cast<int64_t>(cluster_->TotalEventsExecuted()));

  // Per-directed-link lifecycle counters (satellite: surfaced through the
  // snapshot so drop accounting is auditable per link).
  for (const auto& [key, lc] : cluster_->net().link_counters()) {
    obs::MetricLabels l;
    l.site = sim::Network::LinkKeyFrom(key);
    l.peer = sim::Network::LinkKeyTo(key);
    mr->GetCounter("link.attempts", l)->Add(lc.attempts);
    mr->GetCounter("link.duplicated", l)->Add(lc.duplicated);
    mr->GetCounter("link.dropped_at_send", l)->Add(lc.dropped_at_send);
    mr->GetCounter("link.delivered", l)->Add(lc.delivered);
    mr->GetCounter("link.dropped_at_delivery", l)->Add(lc.dropped_at_delivery);
    mr->GetCounter("link.bytes", l)->Add(lc.bytes);
  }
}

JsonValue BuildMetricsSnapshot(const ExperimentResult& result) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue summary = JsonValue::MakeObject();
  summary.Set("committed_acquires", result.aggregate.committed_acquires);
  summary.Set("committed_releases", result.aggregate.committed_releases);
  summary.Set("committed_reads", result.aggregate.committed_reads);
  summary.Set("rejected", result.aggregate.rejected);
  summary.Set("dropped", result.aggregate.dropped);
  summary.Set("sent", result.aggregate.sent);
  summary.Set("instances_completed", result.instances_completed);
  summary.Set("instances_aborted", result.instances_aborted);
  summary.Set("proactive_redistributions", result.proactive_redistributions);
  summary.Set("reactive_redistributions", result.reactive_redistributions);
  summary.Set("events_executed", result.events_executed);
  summary.Set("messages_sent", result.network.messages_sent);
  summary.Set("messages_delivered", result.network.messages_delivered);
  root.Set("summary", std::move(summary));
  root.Set("client_latency", result.aggregate.latency.ToJson());
  if (result.obs != nullptr) {
    if (const obs::MetricsRegistry* mr = result.obs->metrics()) {
      root.Set("metrics", mr->ToJson());
    }
    if (const obs::EventLoopProfiler* prof = result.obs->profiler()) {
      root.Set("profiler", prof->ToJson());
    }
    if (const obs::Tracer* tracer = result.obs->tracer()) {
      JsonValue t = JsonValue::MakeObject();
      t.Set("spans", static_cast<uint64_t>(tracer->spans().size()));
      t.Set("instants", static_cast<uint64_t>(tracer->instants().size()));
      t.Set("messages", static_cast<uint64_t>(tracer->messages().size()));
      root.Set("trace", std::move(t));
    }
  }
  return root;
}

int64_t Experiment::TotalSiteTokens() const {
  int64_t sum = 0;
  for (auto* site : sites_) sum += site->tokens_left();
  return sum;
}

int64_t Experiment::ServerNetAcquires() const {
  int64_t net = 0;
  for (auto* site : sites_) {
    net += static_cast<int64_t>(site->stats().committed_acquires) -
           static_cast<int64_t>(site->stats().committed_releases);
  }
  return net;
}

int64_t Experiment::NetCommittedAcquires() const {
  int64_t net = 0;
  for (auto* client : clients_) {
    net += static_cast<int64_t>(client->stats().committed_acquires) -
           static_cast<int64_t>(client->stats().committed_releases);
  }
  return net;
}

}  // namespace samya::harness
