#include "harness/experiment.h"

#include <algorithm>

#include "baselines/demarcation.h"
#include "baselines/site_escrow.h"
#include "baselines/replicated.h"
#include "common/macros.h"
#include "core/app_manager.h"
#include "workload/transform.h"

namespace samya::harness {

namespace {

/// The five client regions of §5.2.
constexpr std::array<sim::Region, 5> kClientRegions = sim::kPaperRegions;

}  // namespace

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSamyaMajority:
      return "Samya w/ Avantan[(n+1)/2]";
    case SystemKind::kSamyaAny:
      return "Samya w/ Avantan[*]";
    case SystemKind::kMultiPaxSys:
      return "MultiPaxSys";
    case SystemKind::kCockroachLike:
      return "CockroachDB-like (Raft)";
    case SystemKind::kDemarcation:
      return "Demarcation/Escrow";
    case SystemKind::kSiteEscrow:
      return "Generalised Site Escrow (gossip)";
    case SystemKind::kSamyaNoConstraint:
      return "Samya (no constraints)";
    case SystemKind::kSamyaNoRedistribution:
      return "Samya (no redistribution)";
    case SystemKind::kSamyaMajorityNoPredict:
      return "Samya w/ Av.[(n+1)/2], no prediction";
    case SystemKind::kSamyaAnyNoPredict:
      return "Samya w/ Av.[*], no prediction";
  }
  return "?";
}

bool IsSamyaVariant(SystemKind kind) {
  switch (kind) {
    case SystemKind::kMultiPaxSys:
    case SystemKind::kCockroachLike:
    case SystemKind::kDemarcation:
    case SystemKind::kSiteEscrow:
      return false;
    default:
      return true;
  }
}

Experiment::Experiment(ExperimentOptions opts) : opts_(std::move(opts)) {
  SAMYA_CHECK_GE(opts_.num_sites, 1);
}

const workload::DemandTrace& Experiment::CompressedBaseTrace() const {
  if (compressed_base_ == nullptr) {
    auto trace = workload::GenerateAzureTrace(opts_.trace);
    double scale = opts_.load_scale;
    if (opts_.scale_load_with_sites) {
      scale *= static_cast<double>(opts_.num_sites) / 5.0;
    }
    if (scale != 1.0) {
      trace = workload::ScaleCounts(trace, scale, opts_.seed + 100);
    }
    compressed_base_ = std::make_unique<workload::DemandTrace>(
        workload::CompressTime(trace, opts_.compress_factor));
  }
  return *compressed_base_;
}

std::vector<double> Experiment::RegionDemandSeries(int region_index) const {
  const workload::DemandTrace& compressed = CompressedBaseTrace();
  const Duration day = compressed.interval() * 288;
  auto shifted = workload::PhaseShift(
      compressed, day * region_index / 5);
  auto series = shifted.CreationSeries();
  // Several sites share a region's load; each observes its slice.
  const int sites_in_region =
      (opts_.num_sites + 4 - region_index) / 5;  // round-robin placement
  if (sites_in_region > 1) {
    for (double& v : series) v /= static_cast<double>(sites_in_region);
  }
  return series;
}

void Experiment::Setup() {
  SAMYA_CHECK(!setup_done_);
  setup_done_ = true;
  cluster_ = std::make_unique<sim::Cluster>(opts_.seed);
  faults_ = std::make_unique<sim::FaultInjector>(&cluster_->net());

  if (opts_.system == SystemKind::kDemarcation ||
      opts_.system == SystemKind::kSiteEscrow) {
    SetupDemarcation();
  } else if (!IsSamyaVariant(opts_.system)) {
    SetupReplicated();
  } else {
    SetupSamya();
  }

  if (!opts_.fault_schedule.empty()) {
    sim::ApplySchedule(opts_.fault_schedule, &cluster_->net());
  }
  if (opts_.audit.enabled) {
    auditor_ = std::make_unique<InvariantAuditor>(this, opts_.audit);
    auditor_->Install();
  }
}

void Experiment::SetupSamya() {
  const int n = opts_.num_sites;
  std::vector<sim::NodeId> site_ids;
  for (int i = 0; i < n; ++i) site_ids.push_back(i);

  for (int i = 0; i < n; ++i) {
    core::SiteOptions sopts = opts_.site_template;
    sopts.sites = site_ids;
    // The first (max_tokens % n) sites absorb the division remainder so the
    // pools sum to exactly M_e (Eq. 1 conservation holds from t=0).
    sopts.initial_tokens =
        opts_.max_tokens / n + (i < opts_.max_tokens % n ? 1 : 0);
    sopts.seasonal_period = 288;
    switch (opts_.system) {
      case SystemKind::kSamyaMajority:
        sopts.protocol = core::Protocol::kAvantanMajority;
        break;
      case SystemKind::kSamyaAny:
        sopts.protocol = core::Protocol::kAvantanAny;
        break;
      case SystemKind::kSamyaMajorityNoPredict:
        sopts.protocol = core::Protocol::kAvantanMajority;
        sopts.enable_prediction = false;
        break;
      case SystemKind::kSamyaAnyNoPredict:
        sopts.protocol = core::Protocol::kAvantanAny;
        sopts.enable_prediction = false;
        break;
      case SystemKind::kSamyaNoConstraint:
        sopts.enforce_constraint = false;
        sopts.enable_redistribution = false;
        sopts.enable_prediction = false;
        break;
      case SystemKind::kSamyaNoRedistribution:
        sopts.enable_redistribution = false;
        sopts.enable_prediction = false;
        break;
      default:
        SAMYA_CHECK(false);
    }
    if (sopts.enable_prediction && sopts.training_series.empty()) {
      sopts.training_series = RegionDemandSeries(i % 5);
    }
    auto* site = cluster_->AddNode<core::Site>(
        kClientRegions[static_cast<size_t>(i % 5)], sopts);
    site->set_storage(cluster_->StorageFor(site->id()));
    sites_.push_back(site);
    server_ids_.push_back(site->id());
  }

  // One app manager per region, preferring (and rotating over) the region's
  // own sites, with the remaining sites as failover targets.
  std::vector<std::vector<sim::NodeId>> am_per_region(5);
  for (int r = 0; r < 5; ++r) {
    core::AppManagerOptions aopts;
    for (int i = r; i < n; i += 5) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    aopts.rotate_over = aopts.sites.size();
    for (int i = 0; i < n; ++i) {
      if (i % 5 != r) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    }
    auto* am = cluster_->AddNode<core::AppManager>(
        kClientRegions[static_cast<size_t>(r)], aopts);
    am_per_region[static_cast<size_t>(r)] = {am->id()};
  }
  AddClients(am_per_region);
}

void Experiment::SetupDemarcation() {
  const int n = opts_.num_sites;
  std::vector<sim::NodeId> site_ids;
  for (int i = 0; i < n; ++i) site_ids.push_back(i);
  for (int i = 0; i < n; ++i) {
    if (opts_.system == SystemKind::kSiteEscrow) {
      baselines::SiteEscrowOptions sopts;
      sopts.sites = site_ids;
      sopts.initial_tokens =
          opts_.max_tokens / n + (i < opts_.max_tokens % n ? 1 : 0);
      cluster_->AddNode<baselines::SiteEscrowSite>(
          kClientRegions[static_cast<size_t>(i % 5)], sopts);
    } else {
      baselines::DemarcationOptions dopts;
      dopts.sites = site_ids;
      dopts.initial_tokens =
          opts_.max_tokens / n + (i < opts_.max_tokens % n ? 1 : 0);
      cluster_->AddNode<baselines::DemarcationSite>(
          kClientRegions[static_cast<size_t>(i % 5)], dopts);
    }
    server_ids_.push_back(site_ids[static_cast<size_t>(i)]);
  }
  std::vector<std::vector<sim::NodeId>> am_per_region(5);
  for (int r = 0; r < 5; ++r) {
    core::AppManagerOptions aopts;
    for (int i = r; i < n; i += 5) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    aopts.rotate_over = aopts.sites.size();
    for (int i = 0; i < n; ++i) {
      if (i % 5 != r) aopts.sites.push_back(site_ids[static_cast<size_t>(i)]);
    }
    auto* am = cluster_->AddNode<core::AppManager>(
        kClientRegions[static_cast<size_t>(r)], aopts);
    am_per_region[static_cast<size_t>(r)] = {am->id()};
  }
  AddClients(am_per_region);
}

void Experiment::SetupReplicated() {
  baselines::ReplicatedGroup group =
      opts_.system == SystemKind::kMultiPaxSys
          ? baselines::CreateMultiPaxSys(*cluster_, opts_.max_tokens)
          : baselines::CreateCockroachLike(*cluster_, opts_.max_tokens);
  server_ids_ = group.replica_ids;
  // Clients contact the replicas directly (the paper's baseline clients are
  // plain RPC clients); the leader hint steers them after the first reply.
  std::vector<std::vector<sim::NodeId>> servers_per_region(
      5, group.replica_ids);
  AddClients(servers_per_region);
}

void Experiment::AddClients(
    const std::vector<std::vector<sim::NodeId>>& servers_per_region) {
  for (int r = 0; r < 5; ++r) {
    const workload::DemandTrace& compressed = CompressedBaseTrace();
    const Duration day = compressed.interval() * 288;
    auto shifted = workload::PhaseShift(compressed, day * r / 5);

    workload::RequestStreamOptions ropts;
    ropts.read_ratio = opts_.read_ratio;
    ropts.horizon = opts_.duration;
    ropts.seed = opts_.seed + 7 + static_cast<uint64_t>(r);
    auto script = workload::GenerateRequests(shifted, ropts);

    WorkloadClientOptions copts;
    copts.servers = servers_per_region[static_cast<size_t>(r)];
    copts.request_timeout = opts_.client_timeout;
    copts.max_attempts = opts_.client_attempts;
    copts.closed_loop = opts_.closed_loop;
    copts.window = opts_.client_window;
    auto* client = cluster_->AddNode<WorkloadClient>(
        kClientRegions[static_cast<size_t>(r)], copts, std::move(script));
    clients_.push_back(client);
    client_ids_.push_back(client->id());
  }
}

ExperimentResult Experiment::Run() {
  SAMYA_CHECK(setup_done_);
  cluster_->StartAll();
  cluster_->env().RunUntil(opts_.duration + Seconds(10));

  ExperimentResult result;
  for (auto* client : clients_) {
    const ClientStats& s = client->stats();
    result.per_client.push_back(s);
    result.aggregate.latency.Merge(s.latency);
    result.aggregate.committed_acquires += s.committed_acquires;
    result.aggregate.committed_releases += s.committed_releases;
    result.aggregate.committed_reads += s.committed_reads;
    result.aggregate.rejected += s.rejected;
    result.aggregate.dropped += s.dropped;
    result.aggregate.sent += s.sent;
    for (size_t bin = 0; bin < s.committed.num_bins(); ++bin) {
      if (s.committed.bin(bin) > 0) {
        result.throughput.Record(static_cast<SimTime>(bin) * Seconds(1),
                                 s.committed.bin(bin));
      }
    }
  }
  for (auto* site : sites_) {
    result.proactive_redistributions += site->stats().proactive_redistributions;
    result.reactive_redistributions += site->stats().reactive_redistributions;
    result.instances_completed += site->stats().instances_completed;
    result.instances_aborted += site->stats().instances_aborted;
    result.total_site_frozen_time += site->stats().time_frozen;
  }
  result.network = cluster_->net().stats();
  result.events_executed = cluster_->env().events_executed();
  if (auditor_ != nullptr) {
    auditor_->FinalAudit();
    result.violations = auditor_->violations();
    result.audit_ticks = auditor_->ticks();
  }
  return result;
}

int64_t Experiment::TotalSiteTokens() const {
  int64_t sum = 0;
  for (auto* site : sites_) sum += site->tokens_left();
  return sum;
}

int64_t Experiment::ServerNetAcquires() const {
  int64_t net = 0;
  for (auto* site : sites_) {
    net += static_cast<int64_t>(site->stats().committed_acquires) -
           static_cast<int64_t>(site->stats().committed_releases);
  }
  return net;
}

int64_t Experiment::NetCommittedAcquires() const {
  int64_t net = 0;
  for (auto* client : clients_) {
    net += static_cast<int64_t>(client->stats().committed_acquires) -
           static_cast<int64_t>(client->stats().committed_releases);
  }
  return net;
}

}  // namespace samya::harness
