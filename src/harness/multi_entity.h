#ifndef SAMYA_HARNESS_MULTI_ENTITY_H_
#define SAMYA_HARNESS_MULTI_ENTITY_H_

#include <memory>
#include <vector>

#include "common/json.h"
#include "core/site.h"
#include "harness/workload_client.h"
#include "obs/metrics.h"
#include "workload/azure_generator.h"

namespace samya::harness {

/// \brief Multi-entity scale-out harness (DESIGN.md §9).
///
/// §3.1's deployment model: every entity (resource type) e has its own group
/// of sites value-partitioning its own token pool M_e, and a run-time
/// directory service maps entities to per-region endpoints. Token pools of
/// different entities never interact — Eq. 1 is per entity — so the
/// deployment is embarrassingly parallel across entities. This harness
/// exploits that: each entity becomes one self-contained shard simulation
/// (own `sim::Cluster`, sites, app managers, `EntityDirectory` +
/// per-region `EntityRouter` front doors, and regional workload clients),
/// and shards execute across `parallel_runner` workers.
///
/// Determinism contract: a shard's RNG stream is derived from
/// (seed, entity) only, and shards share no mutable state, so the sharded
/// run's per-entity results are bit-identical to running the shards
/// serially in entity order — regardless of worker count or scheduling.
/// Verified by tests/harness/multi_entity_test.cc and the CI smoke.
struct MultiEntityOptions {
  int num_entities = 10;             ///< E
  int sites_per_entity = 5;          ///< sites in each entity's group
  int64_t tokens_per_entity = 5000;  ///< the per-entity global limit M_e
  Duration duration = Minutes(10);   ///< measured load window per shard
  uint64_t seed = 42;

  /// Offered load per entity as a multiplier over the base Azure trace.
  /// Benches map "simulated users" onto this (see EXPERIMENTS.md).
  double load_scale = 1.0;
  double read_ratio = 0.0;
  workload::AzureTraceOptions trace;  ///< per-entity variation via the seed
  int64_t compress_factor = 60;

  // Client behaviour (five regional clients per entity).
  Duration client_timeout = Seconds(3);
  int client_attempts = 2;

  // App-manager request batching (DESIGN.md §9): coalesce same-entity
  // requests that arrive within the window into one kMsgTokenBatchRequest.
  bool batch_requests = false;
  Duration batch_window = Millis(2);
  size_t max_batch = 128;

  core::SiteOptions site_template;  ///< timers/ablation defaults for sites

  /// Collect a per-shard MetricsRegistry ("entity.*" families labelled by
  /// entity id) and fold them in entity order into
  /// `MultiEntityResult::metrics` via `MetricsRegistry::Merge`.
  bool collect_metrics = false;

  /// Worker threads for sharded execution: 1 = serial reference, 0 =
  /// hardware default (SAMYA_BENCH_THREADS overrides).
  int threads = 0;
};

/// Deterministic measurements of one entity's shard.
struct EntityShardResult {
  uint32_t entity = 0;
  /// Merged over the shard's regional clients (counters and latency
  /// histograms; the per-second series stays per client).
  ClientStats clients;
  uint64_t events_executed = 0;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t routed = 0;          ///< requests the entity routers forwarded
  uint64_t unknown_entity = 0;  ///< router rejections (wrong-entity traffic)
  uint64_t am_relayed = 0;
  uint64_t batches_sent = 0;
  uint64_t batched_requests = 0;
  int64_t tokens_left = 0;  ///< sum over the group; conservation input
  uint64_t redistributions = 0;
  /// Per-shard registry; set iff `collect_metrics` was on.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  /// Full deterministic snapshot (counters + latency histograms). Two runs
  /// of the same shard are equivalent iff these compare equal — the
  /// serial-vs-sharded checks diff this, not a lossy summary.
  JsonValue ToJson() const;
};

/// Aggregate of a multi-entity run.
struct MultiEntityResult {
  std::vector<EntityShardResult> per_entity;  ///< indexed by entity id
  ClientStats aggregate;                      ///< folded over entities
  uint64_t events_executed = 0;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t am_relayed = 0;
  uint64_t batches_sent = 0;
  uint64_t batched_requests = 0;
  /// Folded per-entity registries (entity order); null unless
  /// `collect_metrics`.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  /// Network messages per client-issued request — the batching headline.
  double MessagesPerRequest() const {
    return aggregate.sent == 0 ? 0.0
                               : static_cast<double>(messages_sent) /
                                     static_cast<double>(aggregate.sent);
  }
};

/// Runs entity `entity`'s shard to completion. Deterministic in
/// (opts, entity) alone; safe to call concurrently for distinct entities.
EntityShardResult RunEntityShard(const MultiEntityOptions& opts,
                                 uint32_t entity);

/// Runs all E shards (serially when `opts.threads == 1`, else across the
/// worker pool) and folds per-entity results in entity order.
MultiEntityResult RunMultiEntity(const MultiEntityOptions& opts);

}  // namespace samya::harness

#endif  // SAMYA_HARNESS_MULTI_ENTITY_H_
