#include "harness/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace samya::harness {

namespace {
/// See ActiveSweepThreads(). Relaxed is enough: readers only need an
/// approximate "is a sweep running" signal, not an ordering guarantee.
std::atomic<int> g_active_sweep_threads{0};
}  // namespace

int ActiveSweepThreads() {
  return g_active_sweep_threads.load(std::memory_order_relaxed);
}

int DefaultRunnerThreads() {
  if (const char* env = std::getenv("SAMYA_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void RunIndexed(size_t n, int threads, const std::function<void(size_t)>& fn) {
  if (threads <= 0) threads = DefaultRunnerThreads();
  if (threads == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work-stealing by atomic index: each worker claims the next task. Tasks
  // are independent (caller's contract), so no synchronisation beyond the
  // claim counter is needed.
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  const size_t num_workers = std::min(static_cast<size_t>(threads), n);
  g_active_sweep_threads.fetch_add(static_cast<int>(num_workers),
                                   std::memory_order_relaxed);
  std::vector<std::thread> pool;
  pool.reserve(num_workers);
  for (size_t t = 0; t < num_workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  g_active_sweep_threads.fetch_sub(static_cast<int>(num_workers),
                                   std::memory_order_relaxed);
}

std::vector<ExperimentResult> RunAll(std::vector<ExperimentOptions> options,
                                     int threads) {
  const size_t n = options.size();
  std::vector<ExperimentResult> results(n);
  RunIndexed(n, threads, [&](size_t i) {
    // Tag this thread's log lines with the run it is executing so
    // interleaved worker output stays attributable.
    Logger::SetThreadPrefix("run " + std::to_string(i));
    Experiment experiment(options[i]);
    experiment.Setup();
    results[i] = experiment.Run();
    Logger::SetThreadPrefix("");
  });
  return results;
}

}  // namespace samya::harness
