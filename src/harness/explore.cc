#include "harness/explore.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "common/testonly_mutation.h"
#include "core/site.h"
#include "harness/chaos.h"
#include "harness/history.h"

namespace samya::harness {

namespace {

struct SchedulerIdEntry {
  const char* id;
  SchedulerKind kind;
};

constexpr SchedulerIdEntry kSchedulerIds[] = {
    {"fifo", SchedulerKind::kFifo},
    {"random", SchedulerKind::kRandom},
    {"pct", SchedulerKind::kPct},
    {"replay", SchedulerKind::kReplay},
};

const char* RequestTypeName(workload::Request::Type t) {
  switch (t) {
    case workload::Request::Type::kAcquire:
      return "acquire";
    case workload::Request::Type::kRelease:
      return "release";
    case workload::Request::Type::kRead:
      return "read";
  }
  return "acquire";
}

bool RequestTypeFromName(const std::string& name,
                         workload::Request::Type* out) {
  if (name == "acquire") {
    *out = workload::Request::Type::kAcquire;
  } else if (name == "release") {
    *out = workload::Request::Type::kRelease;
  } else if (name == "read") {
    *out = workload::Request::Type::kRead;
  } else {
    return false;
  }
  return true;
}

/// FNV-1a fold of the live system state, installed as the oracle's state
/// function: decision contexts that agree on it (and on the candidate set)
/// lead to identical subtrees, which is what DFS pruning keys on. Only
/// counters that are stable between events go in — nothing clock-derived.
uint64_t DigestState(const Experiment& e) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const core::Site* s : e.samya_sites()) {
    mix(static_cast<uint64_t>(s->tokens_left()));
    mix(s->frozen() ? 0x9e3779b97f4a7c15ull : 0);
    mix(s->queue_depth());
    mix(s->stats().committed_acquires);
    mix(s->stats().committed_releases);
    mix(s->stats().rejected);
    mix(s->stats().instances_completed);
    mix(s->stats().instances_aborted);
  }
  return h;
}

std::unique_ptr<sim::ScheduleOracle> MakeOracle(const ExploreCase& c) {
  switch (c.scheduler) {
    case SchedulerKind::kFifo:
      return std::make_unique<sim::FifoOracle>();
    case SchedulerKind::kRandom:
      return std::make_unique<sim::RandomWalkOracle>(c.seed);
    case SchedulerKind::kPct: {
      uint64_t ops = 0;
      const auto& scripts =
          c.scripts.empty() ? DefaultExploreScripts(c.max_tokens) : c.scripts;
      for (const auto& s : scripts) ops += s.size();
      // Every client op fans out into a handful of request/response and
      // redistribution messages; 16x is a generous decision-count estimate
      // (PCT only needs the order of magnitude).
      return std::make_unique<sim::PctOracle>(
          c.seed, c.pct_depth, 32 + 16 * ops);
    }
    case SchedulerKind::kReplay:
      return std::make_unique<sim::ReplayOracle>(c.choices);
  }
  SAMYA_CHECK(false);
  return nullptr;
}

ExperimentOptions MakeExploreOptions(const ExploreCase& c) {
  ExperimentOptions o;
  o.system = c.system;
  o.num_sites = c.num_sites;
  o.max_tokens = c.max_tokens;
  o.duration = c.duration;
  o.seed = c.seed;
  o.scripts_override =
      c.scripts.empty() ? DefaultExploreScripts(c.max_tokens) : c.scripts;
  // Reactive-only: proactive prediction would schedule epoch redistributions
  // unrelated to the scripted ops, bloating the schedule space under DFS.
  o.site_template.enable_prediction = false;
  if (IsSamyaVariant(c.system) && c.system != SystemKind::kSamyaNoConstraint) {
    o.audit.enabled = true;
    o.audit.heal_time = 0;  // no faults: liveness checks stay disarmed
    o.audit.load_end = c.duration;
  }
  return o;
}

void TrimTrailingZeros(std::vector<uint32_t>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

/// Does `r` fail the named check ("" = any)? Mirrors chaos.cc's
/// HasViolationOfCheck, extended with the history-checker verdicts.
bool FailsCheck(const ExploreRunResult& r, const std::string& check) {
  if (check.empty()) return r.violated();
  for (const AuditViolation& v : r.violations) {
    if (v.check == check) return true;
  }
  if (!r.check.ok &&
      (check == "linearizability" || check == "bounded_safety")) {
    return true;
  }
  return false;
}

}  // namespace

const char* SchedulerIdName(SchedulerKind kind) {
  for (const auto& e : kSchedulerIds) {
    if (e.kind == kind) return e.id;
  }
  return "unknown";
}

bool SchedulerKindFromId(const std::string& id, SchedulerKind* out) {
  for (const auto& e : kSchedulerIds) {
    if (id == e.id) {
      *out = e.kind;
      return true;
    }
  }
  return false;
}

std::vector<std::vector<workload::Request>> DefaultExploreScripts(
    int64_t max_tokens) {
  using workload::Request;
  // All requests are unit-amount, like the Azure trace the rest of the
  // harness plays (1 request == 1 token): the auditor's conservation ledger
  // and the client balance guard both count committed requests.
  //
  // Each site starts with ~share tokens; region 0's second burst overdraws
  // its local pool, forcing a reactive Avantan round right while the other
  // regions' traffic is in flight. Scaling with M keeps the scenario small
  // for DFS exhaustion (e.g. M=7 => 13 ops) and contended for sweeps
  // (M=31 => 45 ops).
  const int64_t share = std::max<int64_t>(max_tokens / 3, 2);
  const auto burst = [](std::vector<Request>* s, SimTime start, int64_t count,
                        Request::Type type) {
    for (int64_t k = 0; k < count; ++k) {
      s->push_back(Request{start + Millis(2) * k, type, 1});
    }
  };
  std::vector<std::vector<Request>> scripts(3);
  burst(&scripts[0], Millis(50), share - 1, Request::Type::kAcquire);
  burst(&scripts[0], Millis(600), share, Request::Type::kAcquire);
  burst(&scripts[0], Millis(1500), 2, Request::Type::kRelease);
  burst(&scripts[0], Millis(2500), 1, Request::Type::kRead);
  burst(&scripts[1], Millis(55), share / 2, Request::Type::kAcquire);
  burst(&scripts[1], Millis(1200), share / 2, Request::Type::kRelease);
  burst(&scripts[1], Millis(2600), 1, Request::Type::kRead);
  burst(&scripts[2], Millis(60), share - 1, Request::Type::kAcquire);
  burst(&scripts[2], Millis(800), 2, Request::Type::kAcquire);
  burst(&scripts[2], Millis(1600), 1, Request::Type::kRelease);
  return scripts;
}

bool CheckPresetFor(SystemKind kind, int64_t max_tokens, CheckOptions* out) {
  switch (kind) {
    case SystemKind::kMultiPaxSys:
    case SystemKind::kCockroachLike:
      *out = CheckOptions::Replicated(max_tokens);
      return true;
    case SystemKind::kDemarcation:
    case SystemKind::kSiteEscrow:
      *out = CheckOptions::Bounded(max_tokens);
      return true;
    case SystemKind::kSamyaNoConstraint:
      return false;  // promises no bound at all (Fig 3e upper line)
    default:
      *out = CheckOptions::Samya(max_tokens);
      return true;
  }
}

JsonValue ExploreCase::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("format", "samya-explore-case-v1");
  doc.Set("system", SystemIdName(system));
  doc.Set("scheduler", SchedulerIdName(scheduler));
  doc.Set("seed", static_cast<int64_t>(seed));
  doc.Set("num_sites", static_cast<int64_t>(num_sites));
  doc.Set("max_tokens", max_tokens);
  doc.Set("duration_us", duration);
  doc.Set("window_us", window);
  doc.Set("pct_depth", static_cast<int64_t>(pct_depth));
  if (!mutation.empty()) doc.Set("mutation", mutation);
  if (!violation_check.empty()) doc.Set("violation_check", violation_check);
  if (!note.empty()) doc.Set("note", note);
  if (!scripts.empty()) {
    JsonValue regions = JsonValue::MakeArray();
    for (const auto& script : scripts) {
      JsonValue ops = JsonValue::MakeArray();
      for (const workload::Request& q : script) {
        JsonValue op = JsonValue::MakeObject();
        op.Set("at_us", q.at);
        op.Set("type", RequestTypeName(q.type));
        op.Set("amount", q.amount);
        ops.Append(std::move(op));
      }
      regions.Append(std::move(ops));
    }
    doc.Set("scripts", std::move(regions));
  }
  JsonValue ch = JsonValue::MakeArray();
  for (uint32_t x : choices) ch.Append(static_cast<int64_t>(x));
  doc.Set("choices", std::move(ch));
  return doc;
}

Result<ExploreCase> ExploreCase::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("explore case: not an object");
  }
  const std::string format = v.GetString("format", "");
  if (format != "samya-explore-case-v1") {
    return Status::InvalidArgument("explore case: unknown format '" + format +
                                   "'");
  }
  ExploreCase c;
  if (!SystemKindFromId(v.GetString("system", ""), &c.system)) {
    return Status::InvalidArgument("explore case: unknown system '" +
                                   v.GetString("system", "") + "'");
  }
  if (!SchedulerKindFromId(v.GetString("scheduler", "replay"),
                           &c.scheduler)) {
    return Status::InvalidArgument("explore case: unknown scheduler '" +
                                   v.GetString("scheduler", "") + "'");
  }
  c.seed = static_cast<uint64_t>(v.GetInt("seed", 1));
  c.num_sites = static_cast<int>(v.GetInt("num_sites", 3));
  c.max_tokens = v.GetInt("max_tokens", 31);
  c.duration = v.GetInt("duration_us", Seconds(3));
  c.window = v.GetInt("window_us", Millis(5));
  c.pct_depth = static_cast<int>(v.GetInt("pct_depth", 3));
  c.mutation = v.GetString("mutation", "");
  c.violation_check = v.GetString("violation_check", "");
  c.note = v.GetString("note", "");
  if (const JsonValue* regions = v.Find("scripts")) {
    if (!regions->is_array()) {
      return Status::InvalidArgument("explore case: scripts not an array");
    }
    for (const JsonValue& script : regions->as_array()) {
      if (!script.is_array()) {
        return Status::InvalidArgument("explore case: script not an array");
      }
      std::vector<workload::Request> ops;
      for (const JsonValue& op : script.as_array()) {
        workload::Request q;
        q.at = op.GetInt("at_us", 0);
        q.amount = op.GetInt("amount", 1);
        if (!RequestTypeFromName(op.GetString("type", ""), &q.type)) {
          return Status::InvalidArgument("explore case: unknown op type '" +
                                         op.GetString("type", "") + "'");
        }
        ops.push_back(q);
      }
      c.scripts.push_back(std::move(ops));
    }
  }
  if (const JsonValue* ch = v.Find("choices")) {
    if (!ch->is_array()) {
      return Status::InvalidArgument("explore case: choices not an array");
    }
    for (const JsonValue& x : ch->as_array()) {
      if (!x.is_int() || x.as_int() < 0) {
        return Status::InvalidArgument("explore case: bad choice entry");
      }
      c.choices.push_back(static_cast<uint32_t>(x.as_int()));
    }
  }
  return c;
}

ExploreRunResult RunExploreCase(const ExploreCase& c,
                                sim::ScheduleOracle* oracle) {
  std::unique_ptr<sim::ScheduleOracle> owned;
  if (oracle == nullptr) {
    owned = MakeOracle(c);
    oracle = owned.get();
  }
  oracle->set_window(c.window);

  if (!c.mutation.empty()) SetMutationForTest(c.mutation.c_str(), true);
  HistoryRecorder history;
  ExperimentOptions opts = MakeExploreOptions(c);
  opts.oracle = oracle;
  opts.history = &history;
  Experiment e(opts);
  e.Setup();
  oracle->set_state_hash_fn([&e]() { return DigestState(e); });
  const ExperimentResult r = e.Run();
  oracle->set_state_hash_fn(nullptr);
  if (!c.mutation.empty()) SetMutationForTest(c.mutation.c_str(), false);

  ExploreRunResult out;
  out.trace = oracle->trace();
  out.choices.reserve(out.trace.size());
  for (const sim::ChoicePoint& cp : out.trace) out.choices.push_back(cp.chosen);
  out.violations = r.violations;
  out.events_executed = r.events_executed;
  out.ops_recorded = history.size();

  CheckOptions copts;
  const bool checkable = CheckPresetFor(c.system, c.max_tokens, &copts);
  if (checkable) {
    out.check = CheckHistory(history.History(/*entity=*/0), copts);
  }
  if (!out.violations.empty()) {
    out.failed_check = out.violations.front().check;
  } else if (checkable && !out.check.ok) {
    out.failed_check = copts.mode == CheckOptions::Mode::kBoundedSafety
                           ? "bounded_safety"
                           : "linearizability";
  }
  return out;
}

DfsStats ExploreDfs(const ExploreCase& base, const DfsOptions& dopts) {
  DfsStats st;
  std::vector<std::vector<uint32_t>> frontier;
  frontier.push_back({});
  std::unordered_set<uint64_t> seen_runs;
  std::unordered_set<uint64_t> seen_states;

  while (!frontier.empty() && st.runs < dopts.max_runs) {
    std::vector<uint32_t> prefix = std::move(frontier.back());
    frontier.pop_back();

    ExploreCase c = base;
    c.scheduler = SchedulerKind::kReplay;
    c.choices = prefix;
    sim::ReplayOracle oracle(prefix);
    const ExploreRunResult r = RunExploreCase(c, &oracle);
    ++st.runs;

    uint64_t sig = 1469598103934665603ull;
    for (const sim::ChoicePoint& cp : r.trace) {
      sig ^= cp.state_hash + cp.chosen;
      sig *= 1099511628211ull;
      seen_states.insert(cp.state_hash);
    }
    st.states = seen_states.size();

    if (r.violated()) {
      ++st.violations;
      if (st.failing_choices.empty() && st.failed_check.empty()) {
        st.failed_check = r.failed_check;
        st.failing_choices = r.choices;
        TrimTrailingZeros(&st.failing_choices);
      }
    }

    if (dopts.prune_states && !seen_runs.insert(sig).second) {
      ++st.prunes;
      continue;
    }

    // Branch at every decision index past the forced prefix (the recorded
    // choices up to index j are the prefix plus FIFO zeros, so each child
    // prefix pins a distinct first deviation — every bounded choice
    // sequence is generated exactly once).
    const size_t lo = prefix.size();
    const size_t hi =
        std::min<size_t>(r.trace.size(), dopts.max_depth);
    for (size_t j = lo; j < hi; ++j) {
      for (uint32_t alt = 1; alt < r.trace[j].num_candidates; ++alt) {
        std::vector<uint32_t> child(r.choices.begin(),
                                    r.choices.begin() +
                                        static_cast<ptrdiff_t>(j));
        child.push_back(alt);
        frontier.push_back(std::move(child));
        st.deepest_branch =
            std::max(st.deepest_branch, static_cast<uint32_t>(j + 1));
      }
    }
  }
  st.exhausted = frontier.empty();
  return st;
}

ExploreCase ShrinkChoices(const ExploreCase& c, int max_runs,
                          int* runs_used) {
  int runs = 0;
  const auto reproduces = [&](const std::vector<uint32_t>& choices) {
    ++runs;
    ExploreCase candidate = c;
    candidate.scheduler = SchedulerKind::kReplay;
    candidate.choices = choices;
    return FailsCheck(RunExploreCase(candidate), c.violation_check);
  };

  std::vector<uint32_t> choices = c.choices;
  TrimTrailingZeros(&choices);
  // ddmin (Zeller & Hildebrandt) over the choice trace, exactly as
  // chaos.cc's ShrinkCase does over fault ops: removing a choice shifts the
  // later decisions earlier, which ReplayOracle tolerates (clamping), so
  // every candidate subset is a runnable schedule.
  size_t n = 2;
  while (choices.size() >= 2 && runs < max_runs) {
    const size_t chunk = (choices.size() + n - 1) / n;
    bool reduced = false;
    for (size_t i = 0; i < n && i * chunk < choices.size(); ++i) {
      if (runs >= max_runs) break;
      std::vector<uint32_t> candidate;
      candidate.reserve(choices.size() - chunk);
      for (size_t j = 0; j < choices.size(); ++j) {
        if (j / chunk != i) candidate.push_back(choices[j]);
      }
      if (candidate.size() == choices.size() || candidate.empty()) continue;
      if (reproduces(candidate)) {
        choices = std::move(candidate);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= choices.size()) break;  // 1-minimal
      n = std::min(n * 2, choices.size());
    }
  }
  // Final singleton sweep.
  for (size_t i = 0; i < choices.size() && choices.size() > 1 &&
                     runs < max_runs;) {
    std::vector<uint32_t> candidate = choices;
    candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
    if (reproduces(candidate)) {
      choices = std::move(candidate);
    } else {
      ++i;
    }
  }

  if (runs_used != nullptr) *runs_used = runs;
  ExploreCase out = c;
  out.scheduler = SchedulerKind::kReplay;
  out.choices = std::move(choices);
  return out;
}

}  // namespace samya::harness
