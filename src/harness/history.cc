#include "harness/history.h"

#include <algorithm>

#include "common/macros.h"

namespace samya::harness {

void HistoryRecorder::OnInvoke(int32_t client, const TokenRequest& req,
                               SimTime at) {
  auto [it, inserted] = index_.emplace(req.request_id, ops_.size());
  SAMYA_CHECK(inserted);  // request ids are globally unique per run
  HistoryOp op;
  op.request_id = req.request_id;
  op.client = client;
  op.entity = req.entity;
  op.op = req.op;
  op.amount = req.amount;
  op.invoke = at;
  ops_.push_back(op);
}

void HistoryRecorder::OnClientResponse(uint64_t request_id, TokenStatus status,
                                       int64_t value, SimTime at) {
  auto it = index_.find(request_id);
  if (it == index_.end()) return;
  HistoryOp& op = ops_[it->second];
  if (!op.open()) return;  // duplicate response
  switch (status) {
    case TokenStatus::kCommitted:
      op.outcome = HistOutcome::kCommitted;
      op.respond = at;
      op.read_value = value;
      op.server_committed = true;
      break;
    case TokenStatus::kRejected:
      op.outcome = HistOutcome::kRejected;
      op.respond = at;
      break;
    case TokenStatus::kNotLeader:
    case TokenStatus::kOverloaded:
      break;  // retryable, not a final response
  }
}

void HistoryRecorder::OnServerOutcome(uint64_t request_id, TokenStatus status) {
  if (status != TokenStatus::kCommitted) return;
  auto it = index_.find(request_id);
  if (it == index_.end()) return;  // not a recorded client op
  HistoryOp& op = ops_[it->second];
  // Committed reads with no observed response constrain nothing (the value
  // the server returned is unknown here), so only writes are pinned.
  if (op.op != TokenOp::kRead) op.server_committed = true;
}

std::vector<HistoryOp> HistoryRecorder::History(uint32_t entity) const {
  std::vector<HistoryOp> out;
  for (const HistoryOp& op : ops_) {
    if (op.entity == entity) out.push_back(op);
  }
  std::sort(out.begin(), out.end(), [](const HistoryOp& a, const HistoryOp& b) {
    if (a.invoke != b.invoke) return a.invoke < b.invoke;
    return a.request_id < b.request_id;
  });
  return out;
}

void HistoryRecorder::Clear() {
  ops_.clear();
  index_.clear();
}

}  // namespace samya::harness
