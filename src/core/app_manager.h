#ifndef SAMYA_CORE_APP_MANAGER_H_
#define SAMYA_CORE_APP_MANAGER_H_

#include <functional>
#include <unordered_map>

#include "common/token_api.h"
#include "sim/node.h"

namespace samya::core {

struct AppManagerOptions {
  /// Sites in preference order; the first is the closest (§4.1.2 step 2).
  std::vector<sim::NodeId> sites;
  /// Failover: if the chosen site does not answer within this timeout the
  /// request is re-relayed to the next site. One attempt by default because
  /// redistribution can legitimately delay a queued request, and re-sending
  /// a queued acquire would double-apply it.
  Duration site_timeout = Millis(1500);
  int max_attempts = 1;
  /// Load balancing: rotate fresh requests over the first `rotate_over`
  /// sites (the same-region replicas in the Fig 3g scalability setup).
  size_t rotate_over = 1;

  /// Client-side request batching (DESIGN.md §9): coalesce token requests
  /// bound for the same site that arrive within `batch_window` into one
  /// kMsgTokenBatchRequest, so the per-message cost amortizes over the batch
  /// at high client fan-in. Requires sites that speak the batch message
  /// (core::Site does; the baselines do not). Per-request reply semantics,
  /// failover, and at-most-once dedup are unchanged: every request keeps its
  /// own routing entry and timeout, and failover resends individually.
  bool batch_requests = false;
  Duration batch_window = Millis(2);
  /// A full batch flushes immediately without waiting out the window.
  size_t max_batch = 128;
};

/// \brief Stateless application manager (§3.1): relays client token requests
/// to the closest live site and routes the responses back.
///
/// "Stateless" as in the paper: it holds only transient routing entries for
/// in-flight requests, nothing durable — a crashed app manager can be
/// replaced by a fresh process and clients simply retry.
class AppManager : public sim::Node {
 public:
  AppManager(sim::NodeId id, sim::Region region, AppManagerOptions opts);

  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override {
    inflight_.clear();
    for (auto& pending : batch_pending_) pending.clear();
  }

  uint64_t relayed() const { return relayed_; }
  uint64_t batches_sent() const { return batches_sent_; }
  uint64_t batched_requests() const { return batched_requests_; }

  /// History tap for linearizability checking: fires with every site
  /// response this manager routes back toward a client — the earliest point
  /// the front door knows an outcome, even if the client-bound hop is then
  /// lost. Not part of the protocol; pass nullptr to remove.
  using ResponseTap = std::function<void(const TokenResponse&)>;
  void set_response_tap(ResponseTap tap) { response_tap_ = std::move(tap); }

 private:
  struct Inflight {
    sim::NodeId client = sim::kInvalidNode;
    std::vector<uint8_t> request;
    size_t site_index = 0;
    int attempts = 0;
    uint64_t timer = 0;
  };

  void RelayTo(uint64_t request_id, Inflight& entry);
  void EnqueueInBatch(uint64_t request_id, Inflight& entry);
  void FlushBatch(size_t site_index);

  AppManagerOptions opts_;
  ResponseTap response_tap_;  // checker hook; not protocol state
  // Keyed lookups only (no ordered iteration), and one insert+erase per
  // relayed request, so a pre-sized hash map beats the red-black tree.
  std::unordered_map<uint64_t, Inflight> inflight_;
  uint64_t relayed_ = 0;
  size_t rotation_ = 0;
  // Per-site pending batches (request ids awaiting the window flush). Client
  // request ids are (client_id << 40) + seq, so bit 63 is free to namespace
  // the per-site flush timers away from per-request timeout timers.
  static constexpr uint64_t kBatchTimerBit = 1ull << 63;
  std::vector<std::vector<uint64_t>> batch_pending_;
  uint64_t batches_sent_ = 0;
  uint64_t batched_requests_ = 0;
  // Reused for every response forwarded back to a client; `Send` copies the
  // bytes out synchronously, so one scratch writer per manager is safe.
  BufferWriter send_scratch_;
};

}  // namespace samya::core

#endif  // SAMYA_CORE_APP_MANAGER_H_
