#ifndef SAMYA_CORE_APP_MANAGER_H_
#define SAMYA_CORE_APP_MANAGER_H_

#include <unordered_map>

#include "common/token_api.h"
#include "sim/node.h"

namespace samya::core {

struct AppManagerOptions {
  /// Sites in preference order; the first is the closest (§4.1.2 step 2).
  std::vector<sim::NodeId> sites;
  /// Failover: if the chosen site does not answer within this timeout the
  /// request is re-relayed to the next site. One attempt by default because
  /// redistribution can legitimately delay a queued request, and re-sending
  /// a queued acquire would double-apply it.
  Duration site_timeout = Millis(1500);
  int max_attempts = 1;
  /// Load balancing: rotate fresh requests over the first `rotate_over`
  /// sites (the same-region replicas in the Fig 3g scalability setup).
  size_t rotate_over = 1;
};

/// \brief Stateless application manager (§3.1): relays client token requests
/// to the closest live site and routes the responses back.
///
/// "Stateless" as in the paper: it holds only transient routing entries for
/// in-flight requests, nothing durable — a crashed app manager can be
/// replaced by a fresh process and clients simply retry.
class AppManager : public sim::Node {
 public:
  AppManager(sim::NodeId id, sim::Region region, AppManagerOptions opts);

  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override { inflight_.clear(); }

  uint64_t relayed() const { return relayed_; }

 private:
  struct Inflight {
    sim::NodeId client = sim::kInvalidNode;
    std::vector<uint8_t> request;
    size_t site_index = 0;
    int attempts = 0;
    uint64_t timer = 0;
  };

  void RelayTo(uint64_t request_id, Inflight& entry);

  AppManagerOptions opts_;
  // Keyed lookups only (no ordered iteration), and one insert+erase per
  // relayed request, so a pre-sized hash map beats the red-black tree.
  std::unordered_map<uint64_t, Inflight> inflight_;
  uint64_t relayed_ = 0;
  size_t rotation_ = 0;
  // Reused for every response forwarded back to a client; `Send` copies the
  // bytes out synchronously, so one scratch writer per manager is safe.
  BufferWriter send_scratch_;
};

}  // namespace samya::core

#endif  // SAMYA_CORE_APP_MANAGER_H_
