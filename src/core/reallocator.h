#ifndef SAMYA_CORE_REALLOCATOR_H_
#define SAMYA_CORE_REALLOCATOR_H_

#include <memory>
#include <vector>

#include "core/types.h"

namespace samya::core {

/// Result of Algorithm 2 for one participating site.
struct Allocation {
  sim::NodeId site = sim::kInvalidNode;
  /// The site's new TokensLeft (all participants' tokens were pooled, so
  /// this *replaces* the old local count rather than adding to it).
  int64_t tokens_granted = 0;
  /// True if the site's TokensWanted was zeroed by RejectSomeRequests.
  bool wanted_rejected = false;
};

/// \brief Pluggable Redistribution Module (§4.1.1, §4.4): given the agreed
/// list L_t, deterministically reallocates the pooled spare tokens.
///
/// Every participant runs this locally on the same input and must reach the
/// same output — that is what lets Avantan finish with purely local
/// reallocation, no extra round.
class Reallocator {
 public:
  virtual ~Reallocator() = default;
  virtual std::vector<Allocation> Reallocate(const StateList& list) const = 0;
};

/// The paper's Algorithm 2. Greedy strategy that maximises overall token
/// usage: if total wanted exceeds the pooled spare, requests are rejected in
/// ascending order of TokensWanted until the remainder fits; every surviving
/// request is granted in full and the leftover is split equally (integer
/// division; the remainder goes to the lowest site ids so no token is ever
/// created or destroyed).
class GreedyReallocator : public Reallocator {
 public:
  std::vector<Allocation> Reallocate(const StateList& list) const override;
};

/// Alternative strategy (the module is pluggable; used by the ablation
/// bench): satisfy as many *requests* as possible instead of maximising
/// token usage — i.e. reject the largest TokensWanted first.
class MaxRequestsReallocator : public Reallocator {
 public:
  std::vector<Allocation> Reallocate(const StateList& list) const override;
};

/// Proportional strategy: when demand exceeds spare, grant each requester a
/// pro-rata share instead of rejecting anyone outright.
class ProportionalReallocator : public Reallocator {
 public:
  std::vector<Allocation> Reallocate(const StateList& list) const override;
};

std::unique_ptr<Reallocator> MakeGreedyReallocator();

}  // namespace samya::core

#endif  // SAMYA_CORE_REALLOCATOR_H_
