#ifndef SAMYA_CORE_TYPES_H_
#define SAMYA_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "consensus/types.h"
#include "sim/node.h"

namespace samya::core {

using consensus::Ballot;

/// State of an entity at one site (paper Table 1a). `site` identifies whose
/// state this is when entries travel inside AcceptVal lists.
struct EntityState {
  sim::NodeId site = sim::kInvalidNode;
  int64_t tokens_left = 0;    ///< TokensLeft_S
  int64_t tokens_wanted = 0;  ///< TokensWanted_S

  bool operator==(const EntityState& o) const {
    return site == o.site && tokens_left == o.tokens_left &&
           tokens_wanted == o.tokens_wanted;
  }

  void EncodeTo(BufferWriter& w) const;
  static Result<EntityState> DecodeFrom(BufferReader& r);
};

/// The AcceptVal of Avantan: the list L_t of participating sites' states
/// (Eq. 6). Unlike Paxos, the agreed-upon value is a *list* of InitVals.
struct StateList {
  std::vector<EntityState> entries;

  bool empty() const { return entries.empty(); }
  bool operator==(const StateList& o) const { return entries == o.entries; }

  /// The participant set R_t, implied by the entries.
  std::vector<sim::NodeId> Participants() const;
  bool Contains(sim::NodeId site) const;

  void EncodeTo(BufferWriter& w) const;
  static Result<StateList> DecodeFrom(BufferReader& r);

  std::string ToString() const;
};

/// Outcome of the deterministic reallocation (Algorithm 2) for one site.
struct Grant {
  sim::NodeId site = sim::kInvalidNode;
  int64_t tokens_granted = 0;
};

}  // namespace samya::core

#endif  // SAMYA_CORE_TYPES_H_
