#include "core/app_manager.h"

#include "common/macros.h"

namespace samya::core {

AppManager::AppManager(sim::NodeId id, sim::Region region,
                       AppManagerOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.sites.empty());
}

void AppManager::HandleMessage(sim::NodeId from, uint32_t type,
                               BufferReader& r) {
  if (type == kMsgTokenRequest) {
    // Peek the request id without consuming the payload: we need the raw
    // bytes to forward verbatim.
    const size_t start = r.position();
    auto req = TokenRequest::DecodeFrom(r);
    if (!req.ok()) return;
    (void)start;
    BufferWriter payload;
    req->EncodeTo(payload);

    Inflight entry;
    entry.client = from;
    entry.request = payload.Release();
    if (opts_.rotate_over > 1) {
      entry.site_index = rotation_++ % opts_.rotate_over;
    }
    RelayTo(req->request_id, entry);
    inflight_[req->request_id] = std::move(entry);
    return;
  }
  SAMYA_CHECK_EQ(type, kMsgTokenResponse);
  auto resp = TokenResponse::DecodeFrom(r);
  if (!resp.ok()) return;
  auto it = inflight_.find(resp->request_id);
  if (it == inflight_.end()) return;  // stale (timed out / crashed meanwhile)
  CancelTimer(it->second.timer);
  BufferWriter w;
  resp->EncodeTo(w);
  Send(it->second.client, kMsgTokenResponse, w);
  inflight_.erase(it);
}

void AppManager::RelayTo(uint64_t request_id, Inflight& entry) {
  const sim::NodeId site = opts_.sites[entry.site_index % opts_.sites.size()];
  ++entry.attempts;
  ++relayed_;
  BufferWriter w;
  w.PutBytes(entry.request.data(), entry.request.size());
  Send(site, kMsgTokenRequest, w);
  entry.timer = SetTimer(opts_.site_timeout, request_id);
}

void AppManager::HandleTimer(uint64_t token) {
  auto it = inflight_.find(token);
  if (it == inflight_.end()) return;
  Inflight& entry = it->second;
  if (entry.attempts >= opts_.max_attempts) {
    // Give up; the client's own retry/timeout policy takes over.
    inflight_.erase(it);
    return;
  }
  ++entry.site_index;  // fail over to the next-closest site
  RelayTo(token, entry);
}

}  // namespace samya::core
