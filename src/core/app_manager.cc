#include "core/app_manager.h"

#include "common/macros.h"

namespace samya::core {

AppManager::AppManager(sim::NodeId id, sim::Region region,
                       AppManagerOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.sites.empty());
  inflight_.reserve(256);
}

void AppManager::HandleMessage(sim::NodeId from, uint32_t type,
                               BufferReader& r) {
  if (type == kMsgTokenRequest) {
    // Decode for the request id, but keep the raw encoded span so the relay
    // forwards the client's bytes verbatim instead of re-encoding them.
    const size_t start = r.position();
    auto req = TokenRequest::DecodeFrom(r);
    if (!req.ok()) return;

    Inflight entry;
    entry.client = from;
    entry.request.assign(r.data() + start, r.data() + r.position());
    if (opts_.rotate_over > 1) {
      entry.site_index = rotation_++ % opts_.rotate_over;
    }
    RelayTo(req->request_id, entry);
    inflight_[req->request_id] = std::move(entry);
    return;
  }
  SAMYA_CHECK_EQ(type, kMsgTokenResponse);
  auto resp = TokenResponse::DecodeFrom(r);
  if (!resp.ok()) return;
  auto it = inflight_.find(resp->request_id);
  if (it == inflight_.end()) return;  // stale (timed out / crashed meanwhile)
  CancelTimer(it->second.timer);
  send_scratch_.Clear();
  resp->EncodeTo(send_scratch_);
  Send(it->second.client, kMsgTokenResponse, send_scratch_);
  inflight_.erase(it);
}

void AppManager::RelayTo(uint64_t request_id, Inflight& entry) {
  const sim::NodeId site = opts_.sites[entry.site_index % opts_.sites.size()];
  ++entry.attempts;
  ++relayed_;
  Send(site, kMsgTokenRequest, entry.request.data(), entry.request.size());
  entry.timer = SetTimer(opts_.site_timeout, request_id);
}

void AppManager::HandleTimer(uint64_t token) {
  auto it = inflight_.find(token);
  if (it == inflight_.end()) return;
  Inflight& entry = it->second;
  if (entry.attempts >= opts_.max_attempts) {
    // Give up; the client's own retry/timeout policy takes over.
    inflight_.erase(it);
    return;
  }
  ++entry.site_index;  // fail over to the next-closest site
  RelayTo(token, entry);
}

}  // namespace samya::core
