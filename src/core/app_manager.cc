#include "core/app_manager.h"

#include "common/macros.h"

namespace samya::core {

AppManager::AppManager(sim::NodeId id, sim::Region region,
                       AppManagerOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.sites.empty());
  inflight_.reserve(256);
  if (opts_.batch_requests) batch_pending_.resize(opts_.sites.size());
}

void AppManager::HandleMessage(sim::NodeId from, uint32_t type,
                               BufferReader& r) {
  if (type == kMsgTokenRequest) {
    // Decode for the request id, but keep the raw encoded span so the relay
    // forwards the client's bytes verbatim instead of re-encoding them.
    const size_t start = r.position();
    auto req = TokenRequest::DecodeFrom(r);
    if (!req.ok()) return;

    Inflight entry;
    entry.client = from;
    entry.request.assign(r.data() + start, r.data() + r.position());
    if (opts_.rotate_over > 1) {
      entry.site_index = rotation_++ % opts_.rotate_over;
    }
    // Insert before relaying: a full batch flushes inside EnqueueInBatch and
    // reads the request bytes back out of the routing table.
    Inflight& slot = inflight_[req->request_id];
    slot = std::move(entry);
    if (opts_.batch_requests) {
      EnqueueInBatch(req->request_id, slot);
    } else {
      RelayTo(req->request_id, slot);
    }
    return;
  }
  SAMYA_CHECK_EQ(type, kMsgTokenResponse);
  auto resp = TokenResponse::DecodeFrom(r);
  if (!resp.ok()) return;
  auto it = inflight_.find(resp->request_id);
  if (it == inflight_.end()) return;  // stale (timed out / crashed meanwhile)
  if (response_tap_) response_tap_(*resp);
  CancelTimer(it->second.timer);
  send_scratch_.Clear();
  resp->EncodeTo(send_scratch_);
  Send(it->second.client, kMsgTokenResponse, send_scratch_);
  inflight_.erase(it);
}

void AppManager::RelayTo(uint64_t request_id, Inflight& entry) {
  const sim::NodeId site = opts_.sites[entry.site_index % opts_.sites.size()];
  ++entry.attempts;
  ++relayed_;
  Send(site, kMsgTokenRequest, entry.request.data(), entry.request.size());
  entry.timer = SetTimer(opts_.site_timeout, request_id);
}

void AppManager::EnqueueInBatch(uint64_t request_id, Inflight& entry) {
  const size_t site_index = entry.site_index % opts_.sites.size();
  ++entry.attempts;
  ++relayed_;
  // The per-request timeout covers the worst case of sitting out the whole
  // window, so a request can never time out while still in a pending batch.
  entry.timer =
      SetTimer(opts_.site_timeout + opts_.batch_window, request_id);
  std::vector<uint64_t>& pending = batch_pending_[site_index];
  pending.push_back(request_id);
  if (pending.size() >= opts_.max_batch) {
    FlushBatch(site_index);
  } else if (pending.size() == 1) {
    SetTimer(opts_.batch_window, kBatchTimerBit | site_index);
  }
}

void AppManager::FlushBatch(size_t site_index) {
  std::vector<uint64_t>& pending = batch_pending_[site_index];
  if (pending.empty()) return;  // crash cleared it; stale flush timer
  size_t live = 0;
  for (uint64_t id : pending) live += inflight_.count(id);
  if (live == 0) {
    pending.clear();
    return;
  }
  send_scratch_.Clear();
  send_scratch_.PutVarint(live);
  for (uint64_t id : pending) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;
    const std::vector<uint8_t>& bytes = it->second.request;
    send_scratch_.PutBytes(bytes.data(), bytes.size());
  }
  Send(opts_.sites[site_index], kMsgTokenBatchRequest, send_scratch_);
  ++batches_sent_;
  batched_requests_ += live;
  pending.clear();
}

void AppManager::HandleTimer(uint64_t token) {
  if ((token & kBatchTimerBit) != 0) {
    FlushBatch(static_cast<size_t>(token & ~kBatchTimerBit));
    return;
  }
  auto it = inflight_.find(token);
  if (it == inflight_.end()) return;
  Inflight& entry = it->second;
  if (entry.attempts >= opts_.max_attempts) {
    // Give up; the client's own retry/timeout policy takes over.
    inflight_.erase(it);
    return;
  }
  ++entry.site_index;  // fail over to the next-closest site
  RelayTo(token, entry);
}

}  // namespace samya::core
