#include "core/directory.h"

#include "common/macros.h"

namespace samya::core {

void EntityDirectory::Register(uint32_t entity,
                               std::vector<sim::NodeId> endpoint_by_region) {
  entries_[entity] = EntityInfo{entity, std::move(endpoint_by_region)};
}

sim::NodeId EntityDirectory::Lookup(uint32_t entity, int region_index) const {
  auto it = entries_.find(entity);
  if (it == entries_.end()) return sim::kInvalidNode;
  const auto& endpoints = it->second.endpoint_by_region;
  if (region_index < 0 ||
      static_cast<size_t>(region_index) >= endpoints.size()) {
    return sim::kInvalidNode;
  }
  return endpoints[static_cast<size_t>(region_index)];
}

std::vector<uint32_t> EntityDirectory::Entities() const {
  std::vector<uint32_t> out;
  out.reserve(entries_.size());
  for (const auto& [entity, _] : entries_) out.push_back(entity);
  return out;
}

EntityRouter::EntityRouter(sim::NodeId id, sim::Region region,
                           EntityRouterOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(opts_.directory != nullptr);
}

void EntityRouter::HandleMessage(sim::NodeId from, uint32_t type,
                                 BufferReader& r) {
  if (type == kMsgTokenResponse) {
    auto resp = TokenResponse::DecodeFrom(r);
    if (!resp.ok()) return;
    auto it = inflight_.find(resp->request_id);
    if (it == inflight_.end()) return;
    BufferWriter w;
    resp->EncodeTo(w);
    Send(it->second, kMsgTokenResponse, w);
    inflight_.erase(it);
    return;
  }
  SAMYA_CHECK_EQ(type, kMsgTokenRequest);
  auto req = TokenRequest::DecodeFrom(r);
  if (!req.ok()) return;

  const sim::NodeId endpoint =
      opts_.directory->Lookup(req->entity, opts_.region_index);
  if (endpoint == sim::kInvalidNode) {
    ++unknown_entity_;
    TokenResponse resp;
    resp.request_id = req->request_id;
    resp.status = TokenStatus::kRejected;
    BufferWriter w;
    resp.EncodeTo(w);
    Send(from, kMsgTokenResponse, w);
    return;
  }
  ++routed_;
  inflight_[req->request_id] = from;
  BufferWriter w;
  req->EncodeTo(w);
  Send(endpoint, kMsgTokenRequest, w);
  // Garbage-collect the routing entry if the endpoint never answers.
  SetTimer(opts_.endpoint_timeout, req->request_id);
}

void EntityRouter::HandleTimer(uint64_t token) { inflight_.erase(token); }

}  // namespace samya::core
