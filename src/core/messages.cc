#include "core/messages.h"

namespace samya::core {

InstanceId MakeAnyInstance(sim::NodeId leader, uint32_t seq) {
  return (static_cast<InstanceId>(leader) << 32) | static_cast<InstanceId>(seq);
}

void ElectionGetValue::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  ballot.EncodeTo(w);
  w.PutBool(recovery);
}

Result<ElectionGetValue> ElectionGetValue::DecodeFrom(BufferReader& r) {
  ElectionGetValue m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(m.ballot, Ballot::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.recovery, r.GetBool());
  return m;
}

void ElectionOkValue::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  ballot.EncodeTo(w);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutBool(has_init_val);
  init_val.EncodeTo(w);
  accept_val.EncodeTo(w);
  accept_num.EncodeTo(w);
  w.PutBool(decision);
  decided_value.EncodeTo(w);
  w.PutVarintSigned(next_instance);
}

Result<ElectionOkValue> ElectionOkValue::DecodeFrom(BufferReader& r) {
  ElectionOkValue m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(m.ballot, Ballot::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind < 1 || kind > 3) return Status::Corruption("bad election-ok kind");
  m.kind = static_cast<Kind>(kind);
  SAMYA_ASSIGN_OR_RETURN(m.has_init_val, r.GetBool());
  SAMYA_ASSIGN_OR_RETURN(m.init_val, EntityState::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.accept_val, StateList::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.accept_num, Ballot::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.decision, r.GetBool());
  SAMYA_ASSIGN_OR_RETURN(m.decided_value, StateList::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.next_instance, r.GetVarintSigned());
  return m;
}

void AcceptValue::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  ballot.EncodeTo(w);
  value.EncodeTo(w);
  w.PutBool(decision);
}

Result<AcceptValue> AcceptValue::DecodeFrom(BufferReader& r) {
  AcceptValue m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(m.ballot, Ballot::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.value, StateList::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.decision, r.GetBool());
  return m;
}

void AcceptOk::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  ballot.EncodeTo(w);
}

Result<AcceptOk> AcceptOk::DecodeFrom(BufferReader& r) {
  AcceptOk m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(m.ballot, Ballot::DecodeFrom(r));
  return m;
}

void DecisionMsg::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  ballot.EncodeTo(w);
  value.EncodeTo(w);
}

Result<DecisionMsg> DecisionMsg::DecodeFrom(BufferReader& r) {
  DecisionMsg m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(m.ballot, Ballot::DecodeFrom(r));
  SAMYA_ASSIGN_OR_RETURN(m.value, StateList::DecodeFrom(r));
  return m;
}

void Discard::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  ballot.EncodeTo(w);
}

Result<Discard> Discard::DecodeFrom(BufferReader& r) {
  Discard m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(m.ballot, Ballot::DecodeFrom(r));
  return m;
}

void StatusQuery::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
}

Result<StatusQuery> StatusQuery::DecodeFrom(BufferReader& r) {
  StatusQuery m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  return m;
}

void StatusReply::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(instance);
  w.PutU8(static_cast<uint8_t>(kind));
  value.EncodeTo(w);
}

Result<StatusReply> StatusReply::DecodeFrom(BufferReader& r) {
  StatusReply m;
  SAMYA_ASSIGN_OR_RETURN(m.instance, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind < 1 || kind > 4) return Status::Corruption("bad status-reply kind");
  m.kind = static_cast<Kind>(kind);
  SAMYA_ASSIGN_OR_RETURN(m.value, StateList::DecodeFrom(r));
  return m;
}

void ReadQuery::EncodeTo(BufferWriter& w) const { w.PutU64(read_id); }

Result<ReadQuery> ReadQuery::DecodeFrom(BufferReader& r) {
  ReadQuery m;
  SAMYA_ASSIGN_OR_RETURN(m.read_id, r.GetU64());
  return m;
}

void ReadReply::EncodeTo(BufferWriter& w) const {
  w.PutU64(read_id);
  w.PutVarintSigned(tokens_left);
}

Result<ReadReply> ReadReply::DecodeFrom(BufferReader& r) {
  ReadReply m;
  SAMYA_ASSIGN_OR_RETURN(m.read_id, r.GetU64());
  SAMYA_ASSIGN_OR_RETURN(m.tokens_left, r.GetVarintSigned());
  return m;
}

}  // namespace samya::core
