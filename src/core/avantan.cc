#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"
#include "core/site.h"

/// \file
/// The Avantan protocol logic of `Site`: Algorithm 1 (majority version), the
/// any-subset variant of §4.3.2, and both failure-recovery procedures.

namespace samya::core {

namespace {
constexpr uint64_t kLeaderTimer = 2;
constexpr uint64_t kWatchdogTimer = 3;
constexpr uint64_t kStatusRetryTimer = 4;
constexpr int kMaxAcceptRetransmits = 3;

std::string AbortedKey(InstanceId i) {
  return "site/aborted/" + std::to_string(i);
}
std::string OutcomeKey(InstanceId i) {
  return "site/outcome/" + std::to_string(i);
}
}  // namespace

// --------------------------------------------------------------------------
// Avantan[(n+1)/2] — Algorithm 1
// --------------------------------------------------------------------------

void Site::StartMajorityElection(InstanceId instance, bool recovery) {
  // Election-GetValue (lines 1-4): bump the ballot, snapshot InitVal, ask
  // everyone for their state. Also the failure-recovery entry point: a
  // cohort that times out re-runs this for the same instance with
  // recovery=true, which keeps un-engaged sites out of the value.
  CancelTimer(leader_timer_);
  CancelTimer(watchdog_timer_);
  role_ = Role::kLeader;
  leader_phase_ = LeaderPhase::kElection;
  recovery_mode_ = recovery;
  if (tracer_ != nullptr) {
    // Fresh leadership opens the round span under the ambient context (the
    // triggering acquire request, or nothing for proactive/epoch triggers).
    // Recovery re-elections keep the existing round span and just open a
    // new phase under it. Opened before Engage so Engage sees it.
    tracer_->EndSpan(Now(), phase_span_);
    if (!instance_span_.valid()) {
      instance_span_ =
          tracer_->BeginSpan(Now(), id(), "avantan.majority.instance",
                             "round", tracer_->current());
      tracer_->SetSpanArg(instance_span_, 0, "instance", instance);
    }
    phase_span_ =
        tracer_->BeginSpan(Now(), id(),
                           recovery ? "election.recovery" : "election",
                           "phase", instance_span_);
  }
  phase_started_ = Now();
  Engage(instance);
  ballot_ = Ballot{ballot_.num + 1, id()};
  election_responses_.clear();
  accept_ok_from_.clear();

  ElectionOkValue self;
  self.instance = instance;
  self.ballot = ballot_;
  self.kind = ElectionOkValue::Kind::kOk;
  self.init_val = BuildInitVal();
  self.accept_val = accept_val_;
  self.accept_num = accept_num_;
  self.decision = decision_;
  election_responses_[id()] = self;
  Persist();

  SAMYA_LOG_DEBUG("site %d leads instance %lld at ballot %s", id(),
                  static_cast<long long>(instance),
                  ballot_.ToString().c_str());
  // The phase context rides the broadcast (and the timeout timer), so
  // cohort engage spans and the retry path parent under this election.
  obs::Tracer::ContextGuard guard(phase_span_.valid() ? tracer_ : nullptr,
                                  phase_span_);
  BufferWriter w;
  ElectionGetValue{instance, ballot_, recovery}.EncodeTo(w);
  BroadcastToOthers(kMsgElectionGetValue, w, opts_.sites);
  leader_timer_ = SetTimer(opts_.election_timeout, kLeaderTimer);

  if (election_responses_.size() >= Majority()) MajorityChooseAndAccept();
}

void Site::OnElectionGetValue(sim::NodeId from, const ElectionGetValue& m) {
  if (IsAnyMode()) {
    // Change (ii) of §4.3.2: while engaged, reject all other leaders'
    // elections, even at higher ballots.
    if (engaged_.has_value()) return;
    if (outcomes_.count(m.instance) > 0) {
      ElectionOkValue resp;
      resp.instance = m.instance;
      resp.ballot = m.ballot;
      resp.kind = ElectionOkValue::Kind::kAlreadyDecided;
      resp.decided_value = outcomes_[m.instance];
      BufferWriter w;
      resp.EncodeTo(w);
      Send(from, kMsgElectionOkValue, w);
      return;
    }
    if (aborted_.count(m.instance) > 0) return;
    if (!(m.ballot > ballot_)) return;
    ballot_ = m.ballot;
    Engage(m.instance);
    role_ = Role::kCohort;
    cohort_leader_ = from;
  } else {
    if (m.instance < next_instance_) {
      // We already applied this redistribution: hand the outcome over.
      ElectionOkValue resp;
      resp.instance = m.instance;
      resp.ballot = m.ballot;
      resp.kind = ElectionOkValue::Kind::kAlreadyDecided;
      auto it = outcomes_.find(m.instance);
      if (it != outcomes_.end()) resp.decided_value = it->second;
      BufferWriter w;
      resp.EncodeTo(w);
      Send(from, kMsgElectionOkValue, w);
      return;
    }
    if (m.instance > next_instance_) {
      // We missed earlier decisions; ask the leader to catch us up.
      ElectionOkValue resp;
      resp.instance = m.instance;
      resp.ballot = m.ballot;
      resp.kind = ElectionOkValue::Kind::kBehind;
      resp.next_instance = next_instance_;
      BufferWriter w;
      resp.EncodeTo(w);
      Send(from, kMsgElectionOkValue, w);
      return;
    }
    // Current instance: standard promise rule (lines 6-8).
    if (!(m.ballot > ballot_)) return;
    ballot_ = m.ballot;
    if (role_ == Role::kLeader) {
      // Preempted by a higher ballot: step down to cohort.
      CancelTimer(leader_timer_);
      leader_phase_ = LeaderPhase::kIdle;
      role_ = Role::kCohort;
    }
    if (!engaged_.has_value() && m.recovery) {
      // Recovery elections must not freeze fresh sites: we act as a pure
      // acceptor, sharing our (possibly empty) accept state but offering no
      // tokens. We keep serving clients throughout.
      Persist();
      ElectionOkValue resp;
      resp.instance = m.instance;
      resp.ballot = ballot_;
      resp.kind = ElectionOkValue::Kind::kOk;
      resp.has_init_val = false;
      resp.accept_val = accept_val_;
      resp.accept_num = accept_num_;
      resp.decision = decision_;
      BufferWriter w;
      resp.EncodeTo(w);
      Send(from, kMsgElectionOkValue, w);
      return;
    }
    Engage(m.instance);
    role_ = Role::kCohort;
    cohort_leader_ = from;
  }

  // Lines 9-12: refresh TokensWanted from the Prediction Module before
  // reporting InitVal (sized to the provisioning horizon, like the
  // proactive trigger).
  if (opts_.enable_prediction && predictor_ != nullptr) {
    const double predicted = predictor_->PredictNext();
    if (predicted > static_cast<double>(tokens_left_)) {
      const double provision =
          predicted * static_cast<double>(opts_.prediction_horizon_epochs);
      tokens_wanted_ =
          std::max(tokens_wanted_,
                   static_cast<int64_t>(provision) - tokens_left_);
    }
  }
  Persist();

  ElectionOkValue resp;
  resp.instance = m.instance;
  resp.ballot = ballot_;
  resp.kind = ElectionOkValue::Kind::kOk;
  resp.init_val = BuildInitVal();
  resp.accept_val = accept_val_;
  resp.accept_num = accept_num_;
  resp.decision = decision_;
  BufferWriter w;
  resp.EncodeTo(w);
  Send(from, kMsgElectionOkValue, w);

  CancelTimer(watchdog_timer_);
  watchdog_timer_ = SetTimer(
      opts_.watchdog_timeout + rng().UniformInt(0, opts_.watchdog_timeout / 2),
      kWatchdogTimer);
}

void Site::OnElectionOkValue(sim::NodeId from, const ElectionOkValue& m) {
  if (role_ != Role::kLeader || leader_phase_ != LeaderPhase::kElection)
    return;
  if (!engaged_.has_value() || *engaged_ != m.instance) return;

  switch (m.kind) {
    case ElectionOkValue::Kind::kAlreadyDecided: {
      if (!m.decided_value.empty()) {
        ApplyDecision(m.instance, m.decided_value);
      }
      return;
    }
    case ElectionOkValue::Kind::kBehind: {
      SendCatchUp(from, m.next_instance);
      return;
    }
    case ElectionOkValue::Kind::kOk:
      break;
  }
  if (m.ballot != ballot_) return;
  election_responses_[from] = m;

  if (IsAnyMode()) {
    // Change (i) of §4.3.2: proceed as soon as the collected TokensLeft can
    // satisfy our own requirement, with whatever subset responded.
    int64_t collected = 0;
    for (const auto& [site, resp] : election_responses_) {
      collected += resp.init_val.tokens_left;
    }
    if (collected >= tokens_wanted_) AnyProceedToAccept();
  } else {
    if (election_responses_.size() >= Majority()) MajorityChooseAndAccept();
  }
}

void Site::MajorityChooseAndAccept() {
  SAMYA_CHECK(engaged_.has_value());
  const InstanceId instance = *engaged_;
  CancelTimer(leader_timer_);
  if (hist_election_us_ != nullptr) {
    hist_election_us_->Record(Now() - phase_started_);
  }
  if (tracer_ != nullptr) {
    tracer_->EndSpan(Now(), phase_span_);
    phase_span_ = obs::TraceContext{};
  }

  // Value choice (lines 15-23) including the failure-recovery rules.
  bool chosen_decision = false;
  StateList chosen;
  Ballot best_accept_num;
  bool have_accepted = false;
  for (const auto& [site, resp] : election_responses_) {
    if (resp.decision) {
      chosen = resp.accept_val;
      chosen_decision = true;
      break;
    }
    if (!resp.accept_val.empty() &&
        (!have_accepted || resp.accept_num > best_accept_num)) {
      chosen = resp.accept_val;
      best_accept_num = resp.accept_num;
      have_accepted = true;
    }
  }
  if (!chosen_decision && !have_accepted) {
    // Failure-free: AcceptVal = concatenation of the received InitVals
    // (line 22), ordered by site id so every replica derives the same list.
    // Recovery responders without InitVals contributed only acceptor state.
    for (const auto& [site, resp] : election_responses_) {
      if (!resp.has_init_val) continue;
      chosen.entries.push_back(resp.init_val);
    }
    std::sort(chosen.entries.begin(), chosen.entries.end(),
              [](const EntityState& a, const EntityState& b) {
                return a.site < b.site;
              });
  }

  if (chosen_decision) {
    // Someone already learned the decision: just distribute it.
    obs::Tracer::ContextGuard guard(
        instance_span_.valid() ? tracer_ : nullptr, instance_span_);
    BufferWriter w;
    DecisionMsg{instance, ballot_, chosen}.EncodeTo(w);
    BroadcastToOthers(kMsgDecision, w, opts_.sites);
    ApplyDecision(instance, chosen);
    return;
  }

  accept_val_ = chosen;
  accept_num_ = ballot_;
  decision_ = false;
  Persist();
  leader_phase_ = LeaderPhase::kAccept;
  accept_ok_from_ = {id()};

  if (tracer_ != nullptr) {
    phase_span_ =
        tracer_->BeginSpan(Now(), id(), "accept", "phase", instance_span_);
  }
  phase_started_ = Now();
  obs::Tracer::ContextGuard guard(phase_span_.valid() ? tracer_ : nullptr,
                                  phase_span_);
  BufferWriter w;
  AcceptValue{instance, ballot_, accept_val_, false}.EncodeTo(w);
  BroadcastToOthers(kMsgAcceptValue, w, opts_.sites);
  leader_timer_ = SetTimer(opts_.accept_timeout, kLeaderTimer);

  if (accept_ok_from_.size() >= Majority()) {
    // Single-site deployment.
    OnAcceptOk(id(), AcceptOk{instance, ballot_});
  }
}

void Site::OnAcceptValue(sim::NodeId from, const AcceptValue& m) {
  if (IsAnyMode()) {
    if (outcomes_.count(m.instance) > 0) {
      BufferWriter w;
      AcceptOk{m.instance, m.ballot}.EncodeTo(w);
      Send(from, kMsgAcceptOk, w);
      return;
    }
    if (aborted_.count(m.instance) > 0) return;  // refused instance
    if (!engaged_.has_value() || *engaged_ != m.instance) return;
  } else {
    if (m.instance < next_instance_) {
      // Already applied: help the stalled leader terminate.
      auto it = outcomes_.find(m.instance);
      if (it != outcomes_.end()) SendDecisionTo(from, m.instance, it->second);
      return;
    }
    if (m.instance > next_instance_) return;  // behind; recover via election
    if (m.ballot < ballot_) return;           // promised someone newer
    ballot_ = m.ballot;
    if (role_ == Role::kLeader && from != id()) {
      CancelTimer(leader_timer_);
      leader_phase_ = LeaderPhase::kIdle;
      role_ = Role::kCohort;
    }
    // Storing acceptor state does not require freezing: we only freeze when
    // our own snapshot is part of the value (or we were already engaged).
    if (engaged_.has_value() || m.value.Contains(id())) {
      Engage(m.instance);
      role_ = Role::kCohort;
      cohort_leader_ = from;
    }
  }

  // Lines 26-31.
  accept_val_ = m.value;
  accept_num_ = m.ballot;
  decision_ = m.decision;
  Persist();

  BufferWriter w;
  AcceptOk{m.instance, m.ballot}.EncodeTo(w);
  Send(from, kMsgAcceptOk, w);

  if (engaged_.has_value()) {
    CancelTimer(watchdog_timer_);
    watchdog_timer_ = SetTimer(
        opts_.watchdog_timeout +
            rng().UniformInt(0, opts_.watchdog_timeout / 2),
        kWatchdogTimer);
  }
}

void Site::OnAcceptOk(sim::NodeId from, const AcceptOk& m) {
  if (role_ != Role::kLeader || leader_phase_ != LeaderPhase::kAccept) return;
  if (!engaged_.has_value() || *engaged_ != m.instance) return;
  if (m.ballot != ballot_) return;
  accept_ok_from_.insert(from);

  const size_t needed =
      IsAnyMode() ? accept_val_.entries.size() : Majority();
  if (accept_ok_from_.size() < needed) return;

  // Decision (lines 33-35).
  decision_ = true;
  CancelTimer(leader_timer_);
  if (hist_accept_us_ != nullptr) {
    hist_accept_us_->Record(Now() - phase_started_);
  }
  if (tracer_ != nullptr) {
    tracer_->EndSpan(Now(), phase_span_);
    phase_span_ = obs::TraceContext{};
  }
  const InstanceId instance = *engaged_;
  const StateList value = accept_val_;
  obs::Tracer::ContextGuard guard(instance_span_.valid() ? tracer_ : nullptr,
                                  instance_span_);
  BufferWriter w;
  DecisionMsg{instance, ballot_, value}.EncodeTo(w);
  if (IsAnyMode()) {
    BroadcastToOthers(kMsgDecision, w, value.Participants());
  } else {
    BroadcastToOthers(kMsgDecision, w, opts_.sites);
  }
  ApplyDecision(instance, value);
}

void Site::SendCatchUp(sim::NodeId to, int64_t from_instance) {
  // A site behind the trimmed log cannot have participated in the missing
  // instances (participation requires being current), so its tokens are in
  // none of the lost values: fast-forwarding it is safe. We send the oldest
  // retained decisions; ApplyDecision fast-forwards past the gap below.
  for (int64_t t = from_instance; t < next_instance_; ++t) {
    auto it = outcomes_.find(t);
    if (it != outcomes_.end()) SendDecisionTo(to, t, it->second);
  }
}

// --------------------------------------------------------------------------
// Avantan[*] — §4.3.2
// --------------------------------------------------------------------------

void Site::StartAnyElection() {
  const InstanceId instance = MakeAnyInstance(id(), any_seq_++);
  CancelTimer(leader_timer_);
  CancelTimer(watchdog_timer_);
  role_ = Role::kLeader;
  leader_phase_ = LeaderPhase::kElection;
  if (tracer_ != nullptr) {
    tracer_->EndSpan(Now(), phase_span_);
    instance_span_ = tracer_->BeginSpan(Now(), id(), "avantan.any.instance",
                                        "round", tracer_->current());
    tracer_->SetSpanArg(instance_span_, 0, "instance", instance);
    phase_span_ =
        tracer_->BeginSpan(Now(), id(), "election", "phase", instance_span_);
  }
  phase_started_ = Now();
  Engage(instance);
  ballot_ = Ballot{ballot_.num + 1, id()};
  election_responses_.clear();
  accept_ok_from_.clear();
  any_retransmits_ = 0;

  ElectionOkValue self;
  self.instance = instance;
  self.ballot = ballot_;
  self.kind = ElectionOkValue::Kind::kOk;
  self.init_val = BuildInitVal();
  election_responses_[id()] = self;
  Persist();

  obs::Tracer::ContextGuard guard(phase_span_.valid() ? tracer_ : nullptr,
                                  phase_span_);
  BufferWriter w;
  ElectionGetValue{instance, ballot_}.EncodeTo(w);
  BroadcastToOthers(kMsgElectionGetValue, w, opts_.sites);
  leader_timer_ = SetTimer(opts_.election_timeout, kLeaderTimer);

  if (tokens_left_ >= tokens_wanted_ || opts_.sites.size() == 1) {
    AnyProceedToAccept();
  }
}

void Site::AnyProceedToAccept() {
  SAMYA_CHECK(engaged_.has_value());
  const InstanceId instance = *engaged_;
  CancelTimer(leader_timer_);
  leader_phase_ = LeaderPhase::kAccept;
  if (hist_election_us_ != nullptr) {
    hist_election_us_->Record(Now() - phase_started_);
  }
  if (tracer_ != nullptr) {
    tracer_->EndSpan(Now(), phase_span_);
    phase_span_ =
        tracer_->BeginSpan(Now(), id(), "accept", "phase", instance_span_);
  }
  phase_started_ = Now();
  obs::Tracer::ContextGuard guard(phase_span_.valid() ? tracer_ : nullptr,
                                  phase_span_);

  // R_t = exactly the sites whose InitVals we collected (change i).
  accept_val_ = StateList{};
  for (const auto& [site, resp] : election_responses_) {
    accept_val_.entries.push_back(resp.init_val);
  }
  std::sort(accept_val_.entries.begin(), accept_val_.entries.end(),
            [](const EntityState& a, const EntityState& b) {
              return a.site < b.site;
            });
  accept_num_ = ballot_;
  decision_ = false;
  Persist();

  // Non-participants are told to discard the instance.
  BufferWriter wd;
  Discard{instance, ballot_}.EncodeTo(wd);
  for (sim::NodeId site : opts_.sites) {
    if (site != id() && !accept_val_.Contains(site)) {
      Send(site, kMsgDiscard, wd);
    }
  }

  accept_ok_from_ = {id()};
  BufferWriter w;
  AcceptValue{instance, ballot_, accept_val_, false}.EncodeTo(w);
  BroadcastToOthers(kMsgAcceptValue, w, accept_val_.Participants());
  leader_timer_ = SetTimer(opts_.accept_timeout, kLeaderTimer);

  if (accept_ok_from_.size() >= accept_val_.entries.size()) {
    OnAcceptOk(id(), AcceptOk{instance, ballot_});
  }
}

void Site::StartAnyRecovery() {
  SAMYA_CHECK(engaged_.has_value());
  SAMYA_CHECK(!accept_val_.empty());
  if (decision_) {
    ApplyDecision(*engaged_, accept_val_);
    return;
  }
  // Recovery retransmits/probes attribute to the round span.
  obs::Tracer::ContextGuard guard(instance_span_.valid() ? tracer_ : nullptr,
                                  instance_span_);
  // Retransmit Accept-Value a few times first (cheap), then probe R_t.
  if (role_ == Role::kLeader && any_retransmits_ < kMaxAcceptRetransmits) {
    ++any_retransmits_;
    BufferWriter w;
    AcceptValue{*engaged_, ballot_, accept_val_, false}.EncodeTo(w);
    for (sim::NodeId site : accept_val_.Participants()) {
      if (site != id() && accept_ok_from_.count(site) == 0) {
        Send(site, kMsgAcceptValue, w);
      }
    }
    leader_timer_ = SetTimer(opts_.accept_timeout, kLeaderTimer);
    return;
  }

  status_replies_.clear();
  BufferWriter w;
  StatusQuery{*engaged_}.EncodeTo(w);
  BroadcastToOthers(kMsgStatusQuery, w, accept_val_.Participants());
  CancelTimer(watchdog_timer_);
  watchdog_timer_ = SetTimer(
      opts_.watchdog_timeout + rng().UniformInt(0, opts_.watchdog_timeout / 2),
      kStatusRetryTimer);
}

void Site::OnStatusQuery(sim::NodeId from, const StatusQuery& m) {
  StatusReply reply;
  reply.instance = m.instance;
  auto decided = outcomes_.find(m.instance);
  if (decided != outcomes_.end()) {
    reply.kind = StatusReply::Kind::kDecided;
    reply.value = decided->second;
  } else if (engaged_.has_value() && *engaged_ == m.instance &&
             !accept_val_.empty()) {
    reply.kind = StatusReply::Kind::kAccepted;
    reply.value = accept_val_;
  } else {
    // We never accepted this instance. Promise never to: record it as
    // aborted so a delayed Accept-Value cannot resurrect it — that promise
    // is what makes the inquirer's abort verdict safe.
    reply.kind = StatusReply::Kind::kAborted;
    if (aborted_.insert(m.instance).second && storage_ != nullptr) {
      SAMYA_CHECK(storage_->Put(AbortedKey(m.instance), {}).ok());
    }
    if (engaged_.has_value() && *engaged_ == m.instance) {
      AbortInstance(m.instance);
    }
  }
  BufferWriter w;
  reply.EncodeTo(w);
  Send(from, kMsgStatusReply, w);
}

void Site::OnStatusReply(sim::NodeId from, const StatusReply& m) {
  if (!engaged_.has_value() || *engaged_ != m.instance) return;
  switch (m.kind) {
    case StatusReply::Kind::kDecided:
      ApplyDecision(m.instance, m.value);
      return;
    case StatusReply::Kind::kAborted: {
      // Tell the rest of R_t, then abort locally.
      BufferWriter w;
      Discard{m.instance, ballot_}.EncodeTo(w);
      BroadcastToOthers(kMsgDiscard, w, accept_val_.Participants());
      aborted_.insert(m.instance);
      if (storage_ != nullptr) {
        SAMYA_CHECK(storage_->Put(AbortedKey(m.instance), {}).ok());
      }
      AbortInstance(m.instance);
      return;
    }
    case StatusReply::Kind::kAccepted:
      status_replies_[from] = m;
      ConcludeAnyRecovery();
      return;
    case StatusReply::Kind::kUnknown:
      return;
  }
}

void Site::ConcludeAnyRecovery() {
  // §4.3.2 recovery: if every other member of R_t holds the identical
  // AcceptVal (and nobody decided or aborted), the value was stored on all
  // of R_t — decide it.
  SAMYA_CHECK(engaged_.has_value());
  const auto participants = accept_val_.Participants();
  size_t accepted = 1;  // self
  for (sim::NodeId site : participants) {
    if (site == id()) continue;
    auto it = status_replies_.find(site);
    if (it == status_replies_.end()) return;  // still waiting
    if (!(it->second.value == accept_val_)) return;
    ++accepted;
  }
  if (accepted < participants.size()) return;
  const InstanceId instance = *engaged_;
  const StateList value = accept_val_;
  decision_ = true;
  obs::Tracer::ContextGuard guard(instance_span_.valid() ? tracer_ : nullptr,
                                  instance_span_);
  BufferWriter w;
  DecisionMsg{instance, ballot_, value}.EncodeTo(w);
  BroadcastToOthers(kMsgDecision, w, participants);
  ApplyDecision(instance, value);
}

// --------------------------------------------------------------------------
// Termination paths shared by both versions
// --------------------------------------------------------------------------

void Site::OnDecisionMsg(sim::NodeId from, const DecisionMsg& m) {
  (void)from;
  ApplyDecision(m.instance, m.value);
}

void Site::OnDiscard(sim::NodeId from, const Discard& m) {
  (void)from;
  if (outcomes_.count(m.instance) > 0) return;
  aborted_.insert(m.instance);
  if (storage_ != nullptr) {
    SAMYA_CHECK(storage_->Put(AbortedKey(m.instance), {}).ok());
  }
  if (engaged_.has_value() && *engaged_ == m.instance) {
    AbortInstance(m.instance);
  }
}

void Site::ApplyDecision(InstanceId instance, const StateList& value) {
  if (IsAnyMode()) {
    if (outcomes_.count(instance) > 0) return;
    if (aborted_.count(instance) > 0) {
      SAMYA_LOG_ERROR(
          "site %d: decision for instance it aborted (%lld) — dropped", id(),
          static_cast<long long>(instance));
      return;
    }
    FinishInstanceLocally(instance, value);
    return;
  }
  if (instance < next_instance_) return;  // duplicate
  if (instance > next_instance_) {
    if (!engaged_.has_value() &&
        instance >= next_instance_ + kOutcomeLogSize) {
      // We are so far behind that the cluster has trimmed the decisions we
      // missed. We were not engaged, hence not a participant in any of
      // them: fast-forward and apply from here.
      SAMYA_LOG_INFO("site %d fast-forwards %lld -> %lld", id(),
                     static_cast<long long>(next_instance_),
                     static_cast<long long>(instance));
      next_instance_ = instance;
      FinishInstanceLocally(instance, value);
      ApplyConsecutiveDecisions();
      return;
    }
    pending_decisions_[instance] = value;
    return;
  }
  FinishInstanceLocally(instance, value);
  ApplyConsecutiveDecisions();
}

void Site::ApplyConsecutiveDecisions() {
  for (auto it = pending_decisions_.find(next_instance_);
       it != pending_decisions_.end();
       it = pending_decisions_.find(next_instance_)) {
    const StateList value = it->second;
    pending_decisions_.erase(it);
    FinishInstanceLocally(next_instance_, value);
  }
}

void Site::FinishInstanceLocally(InstanceId instance, const StateList& value) {
  outcomes_[instance] = value;
  if (storage_ != nullptr) {
    BufferWriter w;
    value.EncodeTo(w);
    SAMYA_CHECK(storage_->Put(OutcomeKey(instance), w.buffer()).ok());
  }

  if (value.Contains(id())) {
    // §4.4: all participants pooled their tokens; our new TokensLeft is the
    // deterministic allocation computed from the agreed list.
    const auto allocations = opts_.reallocator->Reallocate(value);
    for (const auto& a : allocations) {
      if (a.site == id()) {
        tokens_left_ = a.tokens_granted;
        break;
      }
    }
    tokens_wanted_ = 0;
  }

  const bool was_engaged = engaged_.has_value() && *engaged_ == instance;
  if (was_engaged) {
    if (hist_instance_us_ != nullptr) {
      hist_instance_us_->Record(Now() - freeze_started_);
    }
    if (tracer_ != nullptr) {
      tracer_->EndSpan(Now(), phase_span_);
      tracer_->EndSpan(Now(), instance_span_);
      phase_span_ = obs::TraceContext{};
      instance_span_ = obs::TraceContext{};
    }
    AccountUnfreeze();
    engaged_.reset();
    ResetInstanceState();
  } else if (!engaged_.has_value()) {
    // We held bare acceptor state for this instance; clear the slot so it
    // cannot leak into the next instance's recovery.
    ResetInstanceState();
  }
  if (!IsAnyMode()) {
    next_instance_ = std::max(next_instance_, instance + 1);
    // Bound the decided log: anything older than kOutcomeLogSize instances
    // is only needed to catch up sites that are further behind than that,
    // which SendCatchUp handles by fast-forwarding them instead.
    while (!outcomes_.empty() &&
           outcomes_.begin()->first < next_instance_ - kOutcomeLogSize) {
      if (storage_ != nullptr) {
        SAMYA_CHECK(
            storage_->Delete(OutcomeKey(outcomes_.begin()->first)).ok());
      }
      outcomes_.erase(outcomes_.begin());
    }
  }
  ++stats_.instances_completed;
  Persist();
  SAMYA_LOG_DEBUG("site %d applied instance %lld: tokens_left=%lld", id(),
                  static_cast<long long>(instance),
                  static_cast<long long>(tokens_left_));
  if (instance_observer_) instance_observer_(*this, instance, &value);
  if (was_engaged) DrainQueue();
}

void Site::AbortInstance(InstanceId instance) {
  if (!engaged_.has_value() || *engaged_ != instance) return;
  ++stats_.instances_aborted;
  if (tracer_ != nullptr) {
    tracer_->Instant(Now(), id(), "abort", "round", instance_span_);
    tracer_->EndSpan(Now(), phase_span_);
    tracer_->EndSpan(Now(), instance_span_);
    phase_span_ = obs::TraceContext{};
    instance_span_ = obs::TraceContext{};
  }
  AccountUnfreeze();
  engaged_.reset();
  ResetInstanceState();
  tokens_wanted_ = 0;
  abort_backoff_until_ = Now() + opts_.abort_backoff;
  Persist();
  SAMYA_LOG_DEBUG("site %d aborted instance %lld", id(),
                  static_cast<long long>(instance));
  if (instance_observer_) instance_observer_(*this, instance, nullptr);
  DrainQueue();
}

}  // namespace samya::core
