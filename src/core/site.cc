#include "core/site.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"
#include "sim/network.h"

namespace samya::core {

namespace {
constexpr uint64_t kEpochTimer = 1;
constexpr uint64_t kLeaderTimer = 2;
constexpr uint64_t kWatchdogTimer = 3;
constexpr uint64_t kStatusRetryTimer = 4;

uint64_t ReadTimerToken(uint64_t read_id) { return (read_id << 3) | 5; }
bool IsReadTimer(uint64_t token) { return (token & 7) == 5; }
uint64_t ReadIdOf(uint64_t token) { return token >> 3; }

const char* kKeyCore = "site/core";
std::string AbortedKey(InstanceId i) {
  return "site/aborted/" + std::to_string(i);
}
}  // namespace

Site::Site(sim::NodeId id, sim::Region region, SiteOptions opts)
    : Node(id, region), opts_(std::move(opts)) {
  SAMYA_CHECK(!opts_.sites.empty());
  if (opts_.reallocator == nullptr) {
    opts_.reallocator = std::make_shared<GreedyReallocator>();
  }
  if (!opts_.predictor_factory) {
    const size_t period = opts_.seasonal_period;
    opts_.predictor_factory = [period] {
      return predict::MakeSeasonalNaive(period);
    };
  }
}

Site::~Site() = default;

void Site::Start() {
  tracer_ = network()->tracer();
  // The shard-local registry under PDES (merged in partition order at run
  // end), the primary one otherwise.
  if (obs::MetricsRegistry* mr = network()->metrics_for(id())) {
    obs::MetricLabels labels;
    labels.site = id();
    labels.protocol = ProtocolName();
    labels.round = "election";
    hist_election_us_ = mr->GetHistogram("avantan.round_us", labels);
    labels.round = "accept";
    hist_accept_us_ = mr->GetHistogram("avantan.round_us", labels);
    labels.round = "";
    hist_instance_us_ = mr->GetHistogram("avantan.instance_us", labels);
  }
  tokens_left_ = opts_.initial_tokens;
  LoadDurable();
  predictor_ = opts_.predictor_factory();
  if (!opts_.training_series.empty()) {
    Status st = predictor_->Train(opts_.training_series);
    SAMYA_CHECK_MSG(st.ok(), "predictor training failed: %s",
                    st.ToString().c_str());
  }
  SetTimer(opts_.epoch, kEpochTimer);
}

void Site::HandleCrash() {
  if (tracer_ != nullptr) {
    // Spans die with the volatile state that owned them.
    for (const auto& [rid, ctx] : request_spans_) tracer_->EndSpan(Now(), ctx);
    tracer_->EndSpan(Now(), phase_span_);
    tracer_->EndSpan(Now(), instance_span_);
  }
  request_spans_.clear();
  phase_span_ = obs::TraceContext{};
  instance_span_ = obs::TraceContext{};
  queue_.clear();
  queued_ids_.clear();
  committed_writes_.clear();
  committed_writes_prev_.clear();
  reads_.clear();
  election_responses_.clear();
  status_replies_.clear();
  pending_decisions_.clear();
  accept_ok_from_.clear();
  engaged_.reset();
  role_ = Role::kNone;
  leader_phase_ = LeaderPhase::kIdle;
  cohort_leader_ = sim::kInvalidNode;
  accept_val_ = StateList{};
  accept_num_ = Ballot{};
  decision_ = false;
  tokens_left_ = 0;
  tokens_wanted_ = 0;
  ballot_ = Ballot{};
  next_instance_ = 0;
  any_seq_ = 0;
  outcomes_.clear();
  aborted_.clear();
  demand_this_epoch_ = 0;
  predictor_.reset();
}

void Site::HandleRecover() {
  tokens_left_ = opts_.initial_tokens;
  LoadDurable();
  predictor_ = opts_.predictor_factory();
  if (!opts_.training_series.empty()) {
    (void)predictor_->Train(opts_.training_series);
  }
  SetTimer(opts_.epoch, kEpochTimer);
  if (engaged_.has_value()) {
    // We crashed mid-instance; resume as a cohort and let the watchdog drive
    // recovery for the engaged instance.
    role_ = Role::kCohort;
    leader_phase_ = LeaderPhase::kIdle;
    watchdog_timer_ = SetTimer(
        opts_.watchdog_timeout + rng().UniformInt(0, Millis(200)),
        kWatchdogTimer);
  }
}

void Site::Persist() {
  if (storage_ == nullptr) return;
  // One record for all of the site's durable scalars. Persist runs on every
  // commit, so the old one-key-per-field layout (5 Puts, 5 fresh writers)
  // was a measurable slice of the request hot path.
  persist_scratch_.Clear();
  BufferWriter& w = persist_scratch_;
  w.PutVarintSigned(tokens_left_);
  w.PutVarintSigned(tokens_wanted_);
  ballot_.EncodeTo(w);
  w.PutVarintSigned(next_instance_);
  w.PutVarint(any_seq_);
  w.PutBool(engaged_.has_value());
  w.PutVarintSigned(engaged_.value_or(0));
  accept_val_.EncodeTo(w);
  accept_num_.EncodeTo(w);
  w.PutBool(decision_);
  w.PutVarintSigned(cohort_leader_);
  SAMYA_CHECK(storage_->Put(kKeyCore, w.buffer()).ok());
}

void Site::LoadDurable() {
  if (storage_ == nullptr) return;
  if (auto v = storage_->Get(kKeyCore); v.ok()) {
    BufferReader r(*v);
    tokens_left_ = r.GetVarintSigned().value();
    tokens_wanted_ = r.GetVarintSigned().value();
    ballot_ = Ballot::DecodeFrom(r).value();
    next_instance_ = r.GetVarintSigned().value();
    any_seq_ = static_cast<uint32_t>(r.GetVarint().value());
    const bool engaged = r.GetBool().value();
    const InstanceId instance = r.GetVarintSigned().value();
    accept_val_ = StateList::DecodeFrom(r).value();
    accept_num_ = Ballot::DecodeFrom(r).value();
    decision_ = r.GetBool().value();
    cohort_leader_ = static_cast<sim::NodeId>(r.GetVarintSigned().value());
    engaged_ = engaged ? std::optional<InstanceId>(instance) : std::nullopt;
  }
  for (const auto& key : storage_->Keys()) {
    if (key.rfind("site/outcome/", 0) == 0) {
      auto v = storage_->Get(key);
      SAMYA_CHECK(v.ok());
      BufferReader r(*v);
      outcomes_[std::stoll(key.substr(13))] = StateList::DecodeFrom(r).value();
    } else if (key.rfind("site/aborted/", 0) == 0) {
      aborted_.insert(std::stoll(key.substr(13)));
    }
  }
}

void Site::HandleTimer(uint64_t token) {
  if (token == kEpochTimer) {
    OnEpochTick();
    return;
  }
  if (IsReadTimer(token)) {
    CompleteRead(ReadIdOf(token));
    return;
  }
  if (token == kLeaderTimer) {
    if (role_ != Role::kLeader || !engaged_.has_value()) return;
    const InstanceId instance = *engaged_;
    if (leader_phase_ == LeaderPhase::kElection) {
      if (!IsAnyMode() && recovery_mode_) {
        // A recovery election could not reach a majority; stay engaged
        // (blocked, per §4.3.1) and retry after a backoff.
        role_ = Role::kCohort;
        leader_phase_ = LeaderPhase::kIdle;
        watchdog_timer_ = SetTimer(
            opts_.watchdog_timeout +
                rng().UniformInt(0, opts_.watchdog_timeout / 2),
            kWatchdogTimer);
        return;
      }
      // Fresh instance, no value constructed yet: aborting is safe
      // (§4.3.1 Fault Tolerance) — our snapshot never left this site.
      if (IsAnyMode()) {
        BufferWriter w;
        Discard{instance, ballot_}.EncodeTo(w);
        for (const auto& [site, _] : election_responses_) {
          if (site != id()) Send(site, kMsgDiscard, w);
        }
      }
      AbortInstance(instance);
      return;
    }
    // Accept phase stalled: the value may contain other sites' snapshots,
    // so aborting is no longer safe; run failure recovery instead.
    if (IsAnyMode()) {
      StartAnyRecovery();
    } else {
      StartMajorityElection(instance, /*recovery=*/true);
    }
    return;
  }
  if (token == kWatchdogTimer) {
    if (role_ != Role::kCohort || !engaged_.has_value()) return;
    const InstanceId instance = *engaged_;
    SAMYA_LOG_DEBUG("site %d watchdog fired for instance %lld", id(),
                    static_cast<long long>(instance));
    if (IsAnyMode()) {
      if (accept_val_.empty()) {
        // §4.3.2 recovery case (i): we never accepted, so the leader cannot
        // have decided; refusing the instance from now on makes this safe.
        aborted_.insert(instance);
        if (storage_ != nullptr) {
          SAMYA_CHECK(storage_->Put(AbortedKey(instance), {}).ok());
        }
        AbortInstance(instance);
      } else {
        StartAnyRecovery();
      }
    } else {
      StartMajorityElection(instance, /*recovery=*/true);
    }
    return;
  }
  if (token == kStatusRetryTimer) {
    if (engaged_.has_value() && !accept_val_.empty()) StartAnyRecovery();
    return;
  }
  SAMYA_CHECK_MSG(false, "site %d: unexpected timer token %llu", id(),
                  static_cast<unsigned long long>(token));
}

// --------------------------------------------------------------------------
// Request handling (§4.1.2 steps 1-3)
// --------------------------------------------------------------------------

void Site::HandleMessage(sim::NodeId from, uint32_t type, BufferReader& r) {
  switch (type) {
    case kMsgTokenRequest:
      OnClientRequest(from, r);
      break;
    case kMsgTokenBatchRequest: {
      // An app manager coalesced same-site requests into one message. Serve
      // each exactly as if it had arrived alone: per-request replies, queue
      // freezes, and at-most-once dedup all run per contained request.
      auto count = r.GetVarint();
      if (!count.ok()) break;
      for (uint64_t i = 0; i < *count; ++i) OnClientRequest(from, r);
      break;
    }
    case kMsgElectionGetValue:
      OnElectionGetValue(from, ElectionGetValue::DecodeFrom(r).value());
      break;
    case kMsgElectionOkValue:
      OnElectionOkValue(from, ElectionOkValue::DecodeFrom(r).value());
      break;
    case kMsgAcceptValue:
      OnAcceptValue(from, AcceptValue::DecodeFrom(r).value());
      break;
    case kMsgAcceptOk:
      OnAcceptOk(from, AcceptOk::DecodeFrom(r).value());
      break;
    case kMsgDecision:
      OnDecisionMsg(from, DecisionMsg::DecodeFrom(r).value());
      break;
    case kMsgDiscard:
      OnDiscard(from, Discard::DecodeFrom(r).value());
      break;
    case kMsgStatusQuery:
      OnStatusQuery(from, StatusQuery::DecodeFrom(r).value());
      break;
    case kMsgStatusReply:
      OnStatusReply(from, StatusReply::DecodeFrom(r).value());
      break;
    case kMsgReadQuery:
      OnReadQuery(from, ReadQuery::DecodeFrom(r).value());
      break;
    case kMsgReadReply:
      OnReadReply(ReadReply::DecodeFrom(r).value());
      break;
    default:
      SAMYA_CHECK_MSG(false, "site: unknown message type %u", type);
  }
}

void Site::OnClientRequest(sim::NodeId from, BufferReader& r) {
  auto req = TokenRequest::DecodeFrom(r);
  if (!req.ok()) return;
  if (req->op != TokenOp::kRead && req->amount <= 0) {
    Respond(from, req->request_id, TokenStatus::kRejected, tokens_left_);
    return;
  }
  if (req->op != TokenOp::kRead) {
    if (const int64_t* cached = LookupWrite(req->request_id)) {
      Respond(from, req->request_id, TokenStatus::kCommitted, *cached);
      return;
    }
    // A retry of a request that is still queued: stay silent; the queued
    // copy will answer when it drains.
    if (queued_ids_.count(req->request_id) > 0) return;
  }
  // Open the request span once the request is known to be fresh; it stays
  // open across freezes (queued requests) and ends in Respond. The guard
  // makes the request the ambient parent for everything this arrival
  // triggers — including a reactive Avantan round.
  obs::TraceContext req_ctx;
  if (tracer_ != nullptr) {
    const char* name = req->op == TokenOp::kAcquire    ? "acquire"
                       : req->op == TokenOp::kRelease ? "release"
                                                       : "read";
    req_ctx = tracer_->BeginSpan(Now(), id(), name, "request",
                                 tracer_->current());
    tracer_->SetSpanArg(req_ctx, 0, "amount", req->amount);
    tracer_->SetSpanArg(req_ctx, 1, "request_id",
                        static_cast<int64_t>(req->request_id));
    request_spans_[req->request_id] = req_ctx;
  }
  obs::Tracer::ContextGuard guard(req_ctx.valid() ? tracer_ : nullptr,
                                  req_ctx);
  if (req->op == TokenOp::kAcquire) {
    demand_this_epoch_ += static_cast<double>(req->amount);
  }
  if (req->op != TokenOp::kRead && frozen()) {
    // §4.3: queue writes until the redistribution instance terminates.
    queue_.push_back(QueuedRequest{from, *req});
    queued_ids_.insert(req->request_id);
    ++stats_.requests_queued;
    return;
  }
  ServeOrQueue(from, *req);
}

void Site::ServeOrQueue(sim::NodeId client, const TokenRequest& req) {
  if (ServeLocally(client, req)) return;

  // Unservable acquire: trigger a reactive redistribution (Eq. 5) unless
  // redistribution is disabled or recently aborted.
  if (opts_.enable_redistribution && Now() >= abort_backoff_until_) {
    queue_.push_back(QueuedRequest{client, req});
    queued_ids_.insert(req.request_id);
    ++stats_.requests_queued;
    TriggerReactive(req.amount);
    return;
  }
  ++stats_.rejected;
  Respond(client, req.request_id, TokenStatus::kRejected, tokens_left_);
}

bool Site::ServeLocally(sim::NodeId client, const TokenRequest& req) {
  switch (req.op) {
    case TokenOp::kAcquire:
      if (!opts_.enforce_constraint) {
        tokens_left_ -= req.amount;  // unconstrained baseline: may go negative
        ++stats_.committed_acquires;
        Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
        return true;
      }
      if (tokens_left_ >= req.amount) {
        tokens_left_ -= req.amount;
        Persist();
        ++stats_.committed_acquires;
        RememberWrite(req.request_id, tokens_left_);
        Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
        return true;
      }
      return false;
    case TokenOp::kRelease:
      tokens_left_ += req.amount;
      Persist();
      ++stats_.committed_releases;
      RememberWrite(req.request_id, tokens_left_);
      Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
      return true;
    case TokenOp::kRead:
      StartGlobalRead(client, req);
      return true;
  }
  return false;
}

void Site::Respond(sim::NodeId client, uint64_t request_id, TokenStatus status,
                   int64_t value) {
  if (history_tap_) history_tap_(request_id, status);
  TokenResponse resp;
  resp.request_id = request_id;
  resp.status = status;
  resp.value = value;
  send_scratch_.Clear();
  resp.EncodeTo(send_scratch_);
  if (!request_spans_.empty()) {
    auto it = request_spans_.find(request_id);
    if (it != request_spans_.end()) {
      // Send under the request's own context (so the response message joins
      // its trace), then close the span.
      const obs::TraceContext ctx = it->second;
      request_spans_.erase(it);
      obs::Tracer::ContextGuard guard(tracer_, ctx);
      Send(client, kMsgTokenResponse, send_scratch_);
      tracer_->EndSpan(Now(), ctx);
      return;
    }
  }
  Send(client, kMsgTokenResponse, send_scratch_);
}

void Site::DrainQueue() {
  // Serve in arrival order; acquires the refreshed pool cannot satisfy are
  // rejected rather than re-triggering, so a dry global pool cannot livelock
  // redistribution (new arrivals may trigger again).
  while (!frozen() && !queue_.empty()) {
    QueuedRequest q = std::move(queue_.front());
    queue_.pop_front();
    queued_ids_.erase(q.request.request_id);
    // Re-install the request's span (opened at arrival) as ambient context,
    // so its service after the freeze still attributes to its trace.
    obs::TraceContext ctx;
    if (!request_spans_.empty()) {
      auto it = request_spans_.find(q.request.request_id);
      if (it != request_spans_.end()) ctx = it->second;
    }
    obs::Tracer::ContextGuard guard(ctx.valid() ? tracer_ : nullptr, ctx);
    if (!ServeLocally(q.client, q.request)) {
      ++stats_.rejected;
      Respond(q.client, q.request.request_id, TokenStatus::kRejected,
              tokens_left_);
    }
  }
}

// --------------------------------------------------------------------------
// Prediction & triggering (§4.2)
// --------------------------------------------------------------------------

void Site::OnEpochTick() {
  if (predictor_ != nullptr) predictor_->Observe(demand_this_epoch_);
  demand_this_epoch_ = 0;
  MaybeTriggerProactive();
  SetTimer(opts_.epoch, kEpochTimer);
}

void Site::MaybeTriggerProactive() {
  if (!opts_.enable_prediction || !opts_.enable_redistribution) return;
  if (frozen() || predictor_ == nullptr) return;
  if (Now() < abort_backoff_until_) return;
  const double predicted = predictor_->PredictNext();
  if (predicted > static_cast<double>(tokens_left_)) {
    // Eq. 4's trigger: the next epoch's demand cannot be met locally. The
    // request is sized for the provisioning horizon so one redistribution
    // covers a whole demand ramp instead of one epoch at a time.
    const double provision =
        predicted * static_cast<double>(opts_.prediction_horizon_epochs);
    tokens_wanted_ = static_cast<int64_t>(provision) - tokens_left_;
    ++stats_.proactive_redistributions;
    StartInstance();
  }
}

void Site::TriggerReactive(int64_t needed) {
  // Eq. 5: TokensWanted = m (plus any predicted shortfall already pending).
  tokens_wanted_ = std::max(tokens_wanted_, needed);
  ++stats_.reactive_redistributions;
  StartInstance();
}

void Site::TriggerRedistributionForTest(int64_t wanted) {
  tokens_wanted_ = wanted;
  StartInstance();
}

void Site::StartInstance() {
  if (frozen() || !opts_.enable_redistribution) return;
  if (IsAnyMode()) {
    StartAnyElection();
  } else {
    StartMajorityElection(next_instance_, /*recovery=*/false);
  }
}

// --------------------------------------------------------------------------
// Global-snapshot reads (§5.8)
// --------------------------------------------------------------------------

void Site::StartGlobalRead(sim::NodeId client, const TokenRequest& req) {
  if (opts_.sites.size() == 1) {
    ++stats_.committed_reads;
    Respond(client, req.request_id, TokenStatus::kCommitted, tokens_left_);
    return;
  }
  const uint64_t read_id = next_read_id_++;
  PendingRead& pending = reads_[read_id];
  pending.client = client;
  pending.request_id = req.request_id;
  pending.timer = SetTimer(opts_.read_timeout, ReadTimerToken(read_id));
  BufferWriter w;
  ReadQuery{read_id}.EncodeTo(w);
  for (sim::NodeId site : opts_.sites) {
    if (site != id()) Send(site, kMsgReadQuery, w);
  }
}

void Site::OnReadQuery(sim::NodeId from, const ReadQuery& m) {
  BufferWriter w;
  ReadReply{m.read_id, tokens_left_}.EncodeTo(w);
  Send(from, kMsgReadReply, w);
}

void Site::OnReadReply(const ReadReply& m) {
  auto it = reads_.find(m.read_id);
  if (it == reads_.end()) return;
  it->second.sum += m.tokens_left;
  ++it->second.replies;
  if (it->second.replies == opts_.sites.size() - 1) {
    CancelTimer(it->second.timer);
    CompleteRead(m.read_id);
  }
}

void Site::CompleteRead(uint64_t read_id) {
  auto it = reads_.find(read_id);
  if (it == reads_.end()) return;
  ++stats_.committed_reads;
  Respond(it->second.client, it->second.request_id, TokenStatus::kCommitted,
          it->second.sum + tokens_left_);
  reads_.erase(it);
}

// --------------------------------------------------------------------------
// Shared helpers
// --------------------------------------------------------------------------

void Site::SendDecisionTo(sim::NodeId to, InstanceId instance,
                          const StateList& value) {
  BufferWriter w;
  DecisionMsg{instance, ballot_, value}.EncodeTo(w);
  Send(to, kMsgDecision, w);
}

void Site::BroadcastToOthers(uint32_t type, const BufferWriter& w,
                             const std::vector<sim::NodeId>& targets) {
  for (sim::NodeId site : targets) {
    if (site != id()) Send(site, type, w);
  }
}

void Site::RememberWrite(uint64_t request_id, int64_t value) {
  if (committed_writes_.size() >= kDedupGenerationSize) {
    committed_writes_prev_ = std::move(committed_writes_);
    committed_writes_ = {};
  }
  if (committed_writes_.bucket_count() < kDedupGenerationSize) {
    // Pre-size once per generation: without this the map re-grows through
    // every intermediate bucket count, and each rehash of ~128k entries
    // stalls the request hot path for a millisecond.
    committed_writes_.reserve(kDedupGenerationSize);
  }
  committed_writes_[request_id] = value;
}

const int64_t* Site::LookupWrite(uint64_t request_id) const {
  auto it = committed_writes_.find(request_id);
  if (it != committed_writes_.end()) return &it->second;
  it = committed_writes_prev_.find(request_id);
  if (it != committed_writes_prev_.end()) return &it->second;
  return nullptr;
}

void Site::Engage(InstanceId instance) {
  if (!engaged_.has_value()) freeze_started_ = Now();
  engaged_ = instance;
  // A leader opens its own instance span before engaging; everyone else
  // (cohorts engaging on an incoming protocol message) gets an engage span
  // parented under the ambient context — the leader's phase span, carried
  // across the network hop — so the whole round hangs off one trace.
  if (tracer_ != nullptr && !instance_span_.valid()) {
    instance_span_ = tracer_->BeginSpan(Now(), id(), "avantan.engage",
                                        "round", tracer_->current());
    tracer_->SetSpanArg(instance_span_, 0, "instance", instance);
  }
}

void Site::AccountUnfreeze() {
  if (engaged_.has_value()) stats_.time_frozen += Now() - freeze_started_;
}

EntityState Site::BuildInitVal() {
  return EntityState{id(), tokens_left_, tokens_wanted_};
}

void Site::ResetInstanceState() {
  accept_val_ = StateList{};
  accept_num_ = Ballot{};
  decision_ = false;
  election_responses_.clear();
  status_replies_.clear();
  accept_ok_from_.clear();
  role_ = Role::kNone;
  leader_phase_ = LeaderPhase::kIdle;
  recovery_mode_ = false;
  cohort_leader_ = sim::kInvalidNode;
  CancelTimer(leader_timer_);
  CancelTimer(watchdog_timer_);
}

}  // namespace samya::core
