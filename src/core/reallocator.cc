#include "core/reallocator.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include <functional>

namespace samya::core {

namespace {

/// Shared skeleton of RedistributeTokens + AllocateTokens: `reject` decides
/// which requests to drop when TotalTW > S_t.
std::vector<Allocation> RunAlgorithm2(
    const StateList& list,
    const std::function<void(std::vector<EntityState>&, int64_t)>& reject) {
  std::vector<EntityState> states = list.entries;
  // Lines 4-6: pooled spare tokens and total tokens wanted.
  int64_t spare = 0;
  int64_t total_wanted = 0;
  for (const auto& s : states) {
    SAMYA_CHECK_GE(s.tokens_left, 0);
    SAMYA_CHECK_GE(s.tokens_wanted, 0);
    spare += s.tokens_left;
    total_wanted += s.tokens_wanted;
  }

  std::vector<Allocation> out(states.size());
  for (size_t i = 0; i < states.size(); ++i) out[i].site = states[i].site;

  // Lines 7-8: RejectSomeRequests when demand exceeds the pooled spare.
  if (total_wanted > spare) {
    std::vector<int64_t> before(states.size());
    for (size_t i = 0; i < states.size(); ++i) before[i] = states[i].tokens_wanted;
    reject(states, spare);
    for (size_t i = 0; i < states.size(); ++i) {
      out[i].wanted_rejected = states[i].tokens_wanted < before[i];
    }
  }

  // Lines 18-23: AllocateTokens. Every surviving request is granted in full,
  // then the remaining spare is split equally across all participants.
  int64_t remaining = spare;
  for (size_t i = 0; i < states.size(); ++i) {
    out[i].tokens_granted = states[i].tokens_wanted;
    remaining -= states[i].tokens_wanted;
  }
  SAMYA_CHECK_GE(remaining, 0);
  const int64_t n = static_cast<int64_t>(states.size());
  const int64_t share = n > 0 ? remaining / n : 0;
  int64_t leftover = n > 0 ? remaining % n : 0;
  // Deterministic remainder placement: ascending site id.
  std::vector<size_t> order(states.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return states[a].site < states[b].site;
  });
  for (size_t idx : order) {
    out[idx].tokens_granted += share;
    if (leftover > 0) {
      ++out[idx].tokens_granted;
      --leftover;
    }
  }
  return out;
}

}  // namespace

std::vector<Allocation> GreedyReallocator::Reallocate(
    const StateList& list) const {
  return RunAlgorithm2(list, [](std::vector<EntityState>& states,
                                int64_t spare) {
    // Lines 10-17: reject requests in ascending order of TokensWanted until
    // the surviving demand fits in the pooled spare. (The paper's pseudocode
    // grows S_t by the rejected site's TokensLeft, which double-counts a
    // quantity already pooled in lines 4-6; we implement the stated intent —
    // "reject requests with least tokens wanted first" until Total TW <=
    // S_t — which conserves tokens.)
    std::vector<size_t> order(states.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (states[a].tokens_wanted != states[b].tokens_wanted) {
        return states[a].tokens_wanted < states[b].tokens_wanted;
      }
      return states[a].site < states[b].site;
    });
    int64_t total_wanted = 0;
    for (const auto& s : states) total_wanted += s.tokens_wanted;
    for (size_t idx : order) {
      if (total_wanted <= spare) break;
      total_wanted -= states[idx].tokens_wanted;
      states[idx].tokens_wanted = 0;
    }
  });
}

std::vector<Allocation> MaxRequestsReallocator::Reallocate(
    const StateList& list) const {
  return RunAlgorithm2(list, [](std::vector<EntityState>& states,
                                int64_t spare) {
    // Reject the largest requests first, keeping as many distinct requests
    // satisfied as possible.
    std::vector<size_t> order(states.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (states[a].tokens_wanted != states[b].tokens_wanted) {
        return states[a].tokens_wanted > states[b].tokens_wanted;
      }
      return states[a].site < states[b].site;
    });
    int64_t total_wanted = 0;
    for (const auto& s : states) total_wanted += s.tokens_wanted;
    for (size_t idx : order) {
      if (total_wanted <= spare) break;
      total_wanted -= states[idx].tokens_wanted;
      states[idx].tokens_wanted = 0;
    }
  });
}

std::vector<Allocation> ProportionalReallocator::Reallocate(
    const StateList& list) const {
  return RunAlgorithm2(list, [](std::vector<EntityState>& states,
                                int64_t spare) {
    int64_t total_wanted = 0;
    for (const auto& s : states) total_wanted += s.tokens_wanted;
    if (total_wanted <= 0) return;
    // Scale every request down pro rata; floor keeps the sum within spare.
    int64_t granted_sum = 0;
    for (auto& s : states) {
      s.tokens_wanted = s.tokens_wanted * spare / total_wanted;
      granted_sum += s.tokens_wanted;
    }
    SAMYA_CHECK_LE(granted_sum, spare);
  });
}

std::unique_ptr<Reallocator> MakeGreedyReallocator() {
  return std::make_unique<GreedyReallocator>();
}

}  // namespace samya::core
