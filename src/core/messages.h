#ifndef SAMYA_CORE_MESSAGES_H_
#define SAMYA_CORE_MESSAGES_H_

#include <cstdint>

#include "core/types.h"

namespace samya::core {

/// \file
/// Wire messages of the Avantan redistribution protocol (types 200-229) and
/// Samya's site-internal read fan-out (230-239). See common/token_api.h for
/// the global type registry.
///
/// Every message carries an *instance id* in addition to the paper's ballot:
/// in Avantan[n+1/2] instances form the global sequence of redistributions
/// (the paper's "t-th redistribution"), in Avantan[*] an instance is named by
/// its initiating leader and a per-leader sequence number. Keying protocol
/// state by instance is what lets a recovering site distinguish "this
/// redistribution already finished" from "this redistribution is still
/// undecided" — without it, a recovery could re-apply an old AcceptVal over
/// tokens that have since moved (see DESIGN.md §4).

inline constexpr uint32_t kMsgElectionGetValue = 200;
inline constexpr uint32_t kMsgElectionOkValue = 201;
inline constexpr uint32_t kMsgAcceptValue = 202;
inline constexpr uint32_t kMsgAcceptOk = 203;
inline constexpr uint32_t kMsgDecision = 204;
inline constexpr uint32_t kMsgDiscard = 205;
inline constexpr uint32_t kMsgStatusQuery = 206;
inline constexpr uint32_t kMsgStatusReply = 207;

inline constexpr uint32_t kMsgReadQuery = 230;
inline constexpr uint32_t kMsgReadReply = 231;

/// Instance identifier. Majority mode: the redistribution sequence number.
/// Any mode: (leader id << 32) | leader-local sequence.
using InstanceId = int64_t;

InstanceId MakeAnyInstance(sim::NodeId leader, uint32_t seq);

/// Phase-1 request: "elect me and give me your state" (Algorithm 1 line 4).
///
/// `recovery` distinguishes a fresh redistribution from a failure-recovery
/// election. Responding to a fresh election with one's InitVal freezes the
/// responder's pool (its snapshot may end up in the value); a recovery
/// election must not drag new sites into the instance, so un-engaged
/// responders contribute only their acceptor state, keep serving, and stay
/// out of any freshly-constructed value.
struct ElectionGetValue {
  InstanceId instance = 0;
  Ballot ballot;
  bool recovery = false;

  void EncodeTo(BufferWriter& w) const;
  static Result<ElectionGetValue> DecodeFrom(BufferReader& r);
};

/// Phase-1 response (Algorithm 1 line 13), extended with the catch-up
/// variants a sequenced implementation needs.
struct ElectionOkValue {
  enum class Kind : uint8_t {
    kOk = 1,              ///< normal participation: init_val + recovery state
    kAlreadyDecided = 2,  ///< this instance decided earlier; value attached
    kBehind = 3,          ///< responder hasn't applied earlier instances yet
  };

  InstanceId instance = 0;
  Ballot ballot;
  Kind kind = Kind::kOk;
  /// False when an un-engaged site answers a recovery election: it shares
  /// acceptor state but does not offer its tokens (and does not freeze).
  bool has_init_val = true;
  EntityState init_val;     // kOk, meaningful iff has_init_val
  StateList accept_val;     // kOk: non-empty only during failure recovery
  Ballot accept_num;        // kOk
  bool decision = false;    // kOk
  StateList decided_value;  // kAlreadyDecided
  int64_t next_instance = 0;  // kBehind: responder's first unapplied instance

  void EncodeTo(BufferWriter& w) const;
  static Result<ElectionOkValue> DecodeFrom(BufferReader& r);
};

/// Phase-2 request (Algorithm 1 line 24).
struct AcceptValue {
  InstanceId instance = 0;
  Ballot ballot;
  StateList value;
  bool decision = false;

  void EncodeTo(BufferWriter& w) const;
  static Result<AcceptValue> DecodeFrom(BufferReader& r);
};

/// Phase-2 ack (Algorithm 1 line 31).
struct AcceptOk {
  InstanceId instance = 0;
  Ballot ballot;

  void EncodeTo(BufferWriter& w) const;
  static Result<AcceptOk> DecodeFrom(BufferReader& r);
};

/// Phase-3 broadcast (Algorithm 1 line 35). Carries the decided value so a
/// cohort that missed Accept-Value can still terminate and reallocate.
struct DecisionMsg {
  InstanceId instance = 0;
  Ballot ballot;
  StateList value;

  void EncodeTo(BufferWriter& w) const;
  static Result<DecisionMsg> DecodeFrom(BufferReader& r);
};

/// Avantan[*]: leader tells a non-participant (or an aborted instance's
/// cohort) to discard the instance and unfreeze.
struct Discard {
  InstanceId instance = 0;
  Ballot ballot;

  void EncodeTo(BufferWriter& w) const;
  static Result<Discard> DecodeFrom(BufferReader& r);
};

/// Avantan[*] failure recovery: a blocked cohort asks R_t members where the
/// instance stands (§4.3.2 recovery case ii).
struct StatusQuery {
  InstanceId instance = 0;

  void EncodeTo(BufferWriter& w) const;
  static Result<StatusQuery> DecodeFrom(BufferReader& r);
};

struct StatusReply {
  enum class Kind : uint8_t {
    kDecided = 1,   ///< instance decided; value attached
    kAborted = 2,   ///< responder aborted/discarded the instance
    kAccepted = 3,  ///< responder holds AcceptVal but no decision
    kUnknown = 4,   ///< responder never saw the instance
  };

  InstanceId instance = 0;
  Kind kind = Kind::kUnknown;
  StateList value;  // kDecided / kAccepted

  void EncodeTo(BufferWriter& w) const;
  static Result<StatusReply> DecodeFrom(BufferReader& r);
};

/// Global-snapshot read fan-out (§5.8).
struct ReadQuery {
  uint64_t read_id = 0;

  void EncodeTo(BufferWriter& w) const;
  static Result<ReadQuery> DecodeFrom(BufferReader& r);
};

struct ReadReply {
  uint64_t read_id = 0;
  int64_t tokens_left = 0;

  void EncodeTo(BufferWriter& w) const;
  static Result<ReadReply> DecodeFrom(BufferReader& r);
};

}  // namespace samya::core

#endif  // SAMYA_CORE_MESSAGES_H_
