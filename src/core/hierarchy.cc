#include "core/hierarchy.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace samya::core {

QuotaHierarchy::QuotaHierarchy(std::string root_name, int64_t root_limit) {
  Node root;
  root.name = std::move(root_name);
  root.limit = root_limit;
  nodes_.push_back(std::move(root));
}

Result<OrgNodeId> QuotaHierarchy::AddNode(const std::string& name,
                                          OrgNodeId parent,
                                          std::optional<int64_t> limit) {
  if (!Valid(parent)) return Status::NotFound("parent org node");
  if (limit.has_value() && *limit < 0) {
    return Status::InvalidArgument("limit must be non-negative");
  }
  const OrgNodeId id = static_cast<OrgNodeId>(nodes_.size());
  Node node;
  node.name = name;
  node.parent = parent;
  node.limit = limit;
  nodes_.push_back(std::move(node));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

Status QuotaHierarchy::Charge(OrgNodeId leaf, int64_t n) {
  if (!Valid(leaf)) return Status::NotFound("org node");
  if (n <= 0) return Status::InvalidArgument("charge must be positive");
  // First pass: verify every limit on the path to the root.
  for (OrgNodeId cur = leaf; cur != kInvalidOrgNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    if (node.limit.has_value() && node.usage + n > *node.limit) {
      return Status::ResourceExhausted(node.name + " would exceed its limit");
    }
  }
  // Second pass: apply (all-or-nothing by construction).
  for (OrgNodeId cur = leaf; cur != kInvalidOrgNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    nodes_[static_cast<size_t>(cur)].usage += n;
  }
  return Status::OK();
}

Status QuotaHierarchy::Refund(OrgNodeId leaf, int64_t n) {
  if (!Valid(leaf)) return Status::NotFound("org node");
  if (n <= 0) return Status::InvalidArgument("refund must be positive");
  if (nodes_[static_cast<size_t>(leaf)].usage < n) {
    return Status::InvalidArgument("refund exceeds the node's usage");
  }
  for (OrgNodeId cur = leaf; cur != kInvalidOrgNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    Node& node = nodes_[static_cast<size_t>(cur)];
    SAMYA_CHECK_GE(node.usage, n);
    node.usage -= n;
  }
  return Status::OK();
}

Result<int64_t> QuotaHierarchy::Usage(OrgNodeId node) const {
  if (!Valid(node)) return Status::NotFound("org node");
  return nodes_[static_cast<size_t>(node)].usage;
}

Result<int64_t> QuotaHierarchy::Headroom(OrgNodeId node) const {
  if (!Valid(node)) return Status::NotFound("org node");
  int64_t headroom = std::numeric_limits<int64_t>::max();
  for (OrgNodeId cur = node; cur != kInvalidOrgNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    if (n.limit.has_value()) {
      headroom = std::min(headroom, *n.limit - n.usage);
    }
  }
  return headroom;
}

Result<std::string> QuotaHierarchy::Name(OrgNodeId node) const {
  if (!Valid(node)) return Status::NotFound("org node");
  return nodes_[static_cast<size_t>(node)].name;
}

Result<std::vector<OrgNodeId>> QuotaHierarchy::Children(OrgNodeId node) const {
  if (!Valid(node)) return Status::NotFound("org node");
  return nodes_[static_cast<size_t>(node)].children;
}

std::string QuotaHierarchy::ToString() const {
  std::string out;
  // Depth-first with indentation; iterative to keep stack use flat.
  std::vector<std::pair<OrgNodeId, int>> stack = {{root(), 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(id)];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += node.name + ": " + std::to_string(node.usage);
    if (node.limit.has_value()) {
      out += " / " + std::to_string(*node.limit);
    }
    out += "\n";
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

}  // namespace samya::core
