#include "core/types.h"

namespace samya::core {

void EntityState::EncodeTo(BufferWriter& w) const {
  w.PutVarintSigned(site);
  w.PutVarintSigned(tokens_left);
  w.PutVarintSigned(tokens_wanted);
}

Result<EntityState> EntityState::DecodeFrom(BufferReader& r) {
  EntityState s;
  SAMYA_ASSIGN_OR_RETURN(int64_t site, r.GetVarintSigned());
  s.site = static_cast<sim::NodeId>(site);
  SAMYA_ASSIGN_OR_RETURN(s.tokens_left, r.GetVarintSigned());
  SAMYA_ASSIGN_OR_RETURN(s.tokens_wanted, r.GetVarintSigned());
  return s;
}

std::vector<sim::NodeId> StateList::Participants() const {
  std::vector<sim::NodeId> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.site);
  return ids;
}

bool StateList::Contains(sim::NodeId site) const {
  for (const auto& e : entries) {
    if (e.site == site) return true;
  }
  return false;
}

void StateList::EncodeTo(BufferWriter& w) const {
  w.PutVarint(entries.size());
  for (const auto& e : entries) e.EncodeTo(w);
}

Result<StateList> StateList::DecodeFrom(BufferReader& r) {
  StateList list;
  SAMYA_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  list.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SAMYA_ASSIGN_OR_RETURN(EntityState e, EntityState::DecodeFrom(r));
    list.entries.push_back(e);
  }
  return list;
}

std::string StateList::ToString() const {
  std::string s = "[";
  for (const auto& e : entries) {
    s += "(" + std::to_string(e.site) + ":" + std::to_string(e.tokens_left) +
         "/" + std::to_string(e.tokens_wanted) + ")";
  }
  s += "]";
  return s;
}

}  // namespace samya::core
