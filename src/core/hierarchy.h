#ifndef SAMYA_CORE_HIERARCHY_H_
#define SAMYA_CORE_HIERARCHY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace samya::core {

/// Identifies a node in an organization's quota hierarchy.
using OrgNodeId = int32_t;
inline constexpr OrgNodeId kInvalidOrgNode = -1;

/// \brief The paper's Fig 1 hierarchical org structure: usage is tracked at
/// leaf teams and aggregates up to the root, where the admin-set limit
/// applies; intermediate nodes may carry their own sub-limits.
///
/// This is the *application-side* structure a resource-tracking service
/// maintains per customer. The root-level constraint is the quantity a Samya
/// deployment dis-aggregates; `QuotaHierarchy` enforces the sub-limits and
/// aggregation locally and tells the caller how many root-level tokens a
/// charge needs (always `n` — every leaf consumption percolates to the root,
/// §1: "Any update to an intermediary unit must percolate to the root").
///
/// Charging is all-or-nothing: a charge at a leaf succeeds only if every
/// node on the path to the root stays within its limit.
class QuotaHierarchy {
 public:
  /// Creates the hierarchy with its root (e.g. "eCommerce.com") and the
  /// root limit M_e.
  QuotaHierarchy(std::string root_name, int64_t root_limit);

  /// Adds an org unit or team under `parent`; `limit` is optional (teams
  /// without a sub-limit are bounded only by their ancestors).
  Result<OrgNodeId> AddNode(const std::string& name, OrgNodeId parent,
                            std::optional<int64_t> limit = std::nullopt);

  OrgNodeId root() const { return 0; }
  size_t size() const { return nodes_.size(); }

  /// Charges `n` units of usage at `leaf`, checking every limit on the path
  /// to the root. On success every ancestor's aggregate usage grows by `n`.
  Status Charge(OrgNodeId leaf, int64_t n);

  /// Returns `n` units of usage from `leaf` (never below zero anywhere).
  Status Refund(OrgNodeId leaf, int64_t n);

  /// Aggregate usage at a node (its own plus all descendants').
  Result<int64_t> Usage(OrgNodeId node) const;

  /// Remaining headroom at a node: how much more could be charged beneath it
  /// before *some* limit on the path from `node` to the root is hit.
  Result<int64_t> Headroom(OrgNodeId node) const;

  Result<std::string> Name(OrgNodeId node) const;
  Result<std::vector<OrgNodeId>> Children(OrgNodeId node) const;

  /// Renders the tree with usage/limit per node (for CLIs and examples).
  std::string ToString() const;

 private:
  struct Node {
    std::string name;
    OrgNodeId parent = kInvalidOrgNode;
    std::optional<int64_t> limit;
    int64_t usage = 0;  // aggregate: own + descendants
    std::vector<OrgNodeId> children;
  };

  bool Valid(OrgNodeId id) const {
    return id >= 0 && static_cast<size_t>(id) < nodes_.size();
  }

  std::vector<Node> nodes_;
};

}  // namespace samya::core

#endif  // SAMYA_CORE_HIERARCHY_H_
