#ifndef SAMYA_CORE_DIRECTORY_H_
#define SAMYA_CORE_DIRECTORY_H_

#include <map>
#include <vector>

#include "common/token_api.h"
#include "sim/node.h"

namespace samya::core {

/// \brief Directory service for multi-entity deployments (§3.1: "a run-time
/// library can provide lookup and directory services to identify the sites
/// that maintain a specific resource data").
///
/// Each entity (resource type) is value-partitioned across its own group of
/// sites; the directory records, per entity, the service endpoints (app
/// managers or sites) in each region.
class EntityDirectory {
 public:
  struct EntityInfo {
    uint32_t entity = 0;
    /// Endpoint to contact per region index (0..4); kInvalidNode when the
    /// entity has no presence in that region.
    std::vector<sim::NodeId> endpoint_by_region;
  };

  /// Registers (or replaces) an entity's endpoints.
  void Register(uint32_t entity, std::vector<sim::NodeId> endpoint_by_region);

  /// Endpoint of `entity` in `region_index`, or kInvalidNode when unknown.
  sim::NodeId Lookup(uint32_t entity, int region_index) const;

  bool Knows(uint32_t entity) const { return entries_.count(entity) > 0; }
  std::vector<uint32_t> Entities() const;

 private:
  std::map<uint32_t, EntityInfo> entries_;
};

struct EntityRouterOptions {
  /// Shared directory (owned by the deployment harness; must outlive the
  /// router).
  const EntityDirectory* directory = nullptr;
  /// This router's region index (picks the per-region endpoint column).
  int region_index = 0;
  Duration endpoint_timeout = Seconds(2);
};

/// \brief Stateless front door for multi-entity deployments: routes each
/// token request to the entity's endpoint in this region and relays the
/// response back. Requests for unknown entities are rejected immediately.
class EntityRouter : public sim::Node {
 public:
  EntityRouter(sim::NodeId id, sim::Region region, EntityRouterOptions opts);

  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override { inflight_.clear(); }

  uint64_t routed() const { return routed_; }
  uint64_t unknown_entity() const { return unknown_entity_; }

 private:
  EntityRouterOptions opts_;
  std::map<uint64_t, sim::NodeId> inflight_;  // request id -> client
  uint64_t routed_ = 0;
  uint64_t unknown_entity_ = 0;
};

}  // namespace samya::core

#endif  // SAMYA_CORE_DIRECTORY_H_
