#ifndef SAMYA_CORE_SITE_H_
#define SAMYA_CORE_SITE_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/histogram.h"
#include "common/token_api.h"
#include "core/messages.h"
#include "core/reallocator.h"
#include "core/types.h"
#include "obs/trace.h"
#include "predict/predictor.h"
#include "sim/node.h"
#include "storage/stable_storage.h"

namespace samya::core {

/// Which Avantan variant a deployment runs (§4.3).
enum class Protocol {
  kAvantanMajority,  ///< Avantan[(n+1)/2]: majority quorum, total order
  kAvantanAny,       ///< Avantan[*]: any subset, concurrent instances
};

/// Configuration of a Samya site. The ablation flags correspond directly to
/// the paper's experiment variants (Figs 3e/3f).
struct SiteOptions {
  Protocol protocol = Protocol::kAvantanMajority;
  std::vector<sim::NodeId> sites;  ///< all sites, including self
  int64_t initial_tokens = 1000;   ///< this site's share of M_e

  // --- Ablation axes -------------------------------------------------------
  bool enforce_constraint = true;    ///< false = "No Constraints" (Fig 3e)
  bool enable_redistribution = true; ///< false = "No Redistribution" (Fig 3e)
  bool enable_prediction = true;     ///< false = reactive-only (Fig 3f)

  // --- Prediction Module (§4.2) -------------------------------------------
  Duration epoch = Seconds(5);  ///< look-ahead unit (compressed 5 minutes)
  /// Provisioning horizon: a proactive trigger sizes TokensWanted for this
  /// many epochs of predicted demand (the paper leaves the look-ahead to the
  /// workload: "5 or 10 minutes... depending on the workload pattern"; a
  /// longer horizon amortizes redistributions over a whole demand ramp).
  int prediction_horizon_epochs = 1;
  /// Factory for the pluggable predictor; defaults to a seasonal-naive
  /// predictor over one compressed day. Benches plug in the trained LSTM.
  std::function<std::unique_ptr<predict::DemandPredictor>()> predictor_factory;
  std::vector<double> training_series;  ///< optional warm-start history
  size_t seasonal_period = 288;         ///< epochs per season (one day)

  // --- Redistribution Module (§4.4) ---------------------------------------
  std::shared_ptr<Reallocator> reallocator;  ///< defaults to GreedyReallocator

  // --- Protocol timers -----------------------------------------------------
  Duration election_timeout = Millis(350);  ///< leader phase-1 wait
  Duration accept_timeout = Millis(350);    ///< leader phase-2 wait
  Duration watchdog_timeout = Millis(900);  ///< cohort leader-failure detect
  Duration abort_backoff = Millis(300);     ///< reactive-retrigger suppression
  Duration read_timeout = Millis(400);      ///< global-snapshot read fan-out
};

/// Counters the experiment harness reads per site.
struct SiteStats {
  uint64_t committed_acquires = 0;
  uint64_t committed_releases = 0;
  uint64_t committed_reads = 0;
  uint64_t rejected = 0;
  uint64_t proactive_redistributions = 0;  ///< instances this site initiated
  uint64_t reactive_redistributions = 0;
  uint64_t instances_completed = 0;  ///< decisions applied (any role)
  uint64_t instances_aborted = 0;
  uint64_t requests_queued = 0;      ///< requests delayed by a redistribution
  Duration time_frozen = 0;          ///< total time spent engaged/frozen
};

/// \brief A Samya site (§4.1.1): Request Handling, Prediction, Protocol and
/// Redistribution modules over a dis-aggregated token pool.
///
/// Serves acquire/release transactions from its local `TokensLeft`; when its
/// pool cannot cover (observed or predicted) demand, runs Avantan with the
/// other sites to re-balance spare tokens. While participating in an
/// instance, the site's pool is frozen and incoming write transactions queue
/// (§4.3); reads are served from the frozen snapshot. Global-snapshot reads
/// (§5.8) fan out to all sites and aggregate availability.
///
/// Both protocol variants are implemented here, selected by
/// `SiteOptions::protocol`; see messages.h for the instance-id design that
/// makes recovery exactly-once.
class Site : public sim::Node {
 public:
  Site(sim::NodeId id, sim::Region region, SiteOptions opts);
  ~Site() override;

  /// Wires durable storage (call before Start; the cluster owns it).
  void set_storage(storage::StableStorage* storage) { storage_ = storage; }

  void Start() override;
  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override;
  void HandleTimer(uint64_t token) override;
  void HandleCrash() override;
  void HandleRecover() override;

  // Introspection for tests and experiment harnesses.
  int64_t tokens_left() const { return tokens_left_; }
  int64_t tokens_wanted() const { return tokens_wanted_; }
  bool frozen() const { return engaged_.has_value(); }
  const SiteStats& stats() const { return stats_; }
  size_t queue_depth() const { return queue_.size(); }

  /// Forces a redistribution wanting `wanted` tokens (test hook; normal
  /// triggers are Eq. 4 / Eq. 5).
  void TriggerRedistributionForTest(int64_t wanted);

  /// Decided-instance log (instance id -> agreed StateList). Exposed so the
  /// Theorem 1/2 property tests can assert that no two sites ever decide
  /// different values for the same instance.
  const std::map<InstanceId, StateList>& decided_outcomes() const {
    return outcomes_;
  }

  /// When the current freeze began (meaningful iff `frozen()`); lets an
  /// auditor flag a site stuck engaged long after the network healed.
  SimTime frozen_since() const { return freeze_started_; }

  /// Observation hook for continuous invariant auditing: fires whenever this
  /// site locally applies a decided outcome (`value` non-null) or aborts an
  /// instance it was engaged in (`value == nullptr`). Fires after the
  /// decision/abort is fully applied and persisted, before queued requests
  /// drain. Not part of the protocol; pass nullptr to remove.
  using InstanceObserver = std::function<void(
      const Site& site, InstanceId instance, const StateList* value)>;
  void set_instance_observer(InstanceObserver obs) {
    instance_observer_ = std::move(obs);
  }

  /// History tap for linearizability checking: fires in `Respond` with every
  /// final outcome this site sends (including dedup-cache replays). A
  /// `kCommitted` write outcome means the site has applied the transaction,
  /// whether or not the client ever observes the response. Not part of the
  /// protocol; pass nullptr to remove.
  using HistoryTap = std::function<void(uint64_t request_id, TokenStatus)>;
  void set_history_tap(HistoryTap tap) { history_tap_ = std::move(tap); }

 private:
  enum class Role { kNone, kLeader, kCohort };
  enum class LeaderPhase { kIdle, kElection, kAccept };

  struct QueuedRequest {
    sim::NodeId client = sim::kInvalidNode;
    TokenRequest request;
  };

  struct PendingRead {
    sim::NodeId client = sim::kInvalidNode;
    uint64_t request_id = 0;
    int64_t sum = 0;
    size_t replies = 0;
    uint64_t timer = 0;
  };

  size_t Majority() const { return opts_.sites.size() / 2 + 1; }
  bool IsAnyMode() const { return opts_.protocol == Protocol::kAvantanAny; }

  /// Marks this site engaged in `instance` (freezing its pool) and starts
  /// the freeze-time clock; idempotent while already engaged.
  void Engage(InstanceId instance);
  void AccountUnfreeze();

  // --- Request handling ----------------------------------------------------
  void OnClientRequest(sim::NodeId from, BufferReader& r);
  void ServeOrQueue(sim::NodeId client, const TokenRequest& req);
  /// Serves a request against the local pool. Returns false when an acquire
  /// cannot be satisfied locally (caller decides: redistribute or reject).
  bool ServeLocally(sim::NodeId client, const TokenRequest& req);
  void Respond(sim::NodeId client, uint64_t request_id, TokenStatus status,
               int64_t value);
  void DrainQueue();

  // --- Prediction / triggering (§4.2) --------------------------------------
  void OnEpochTick();
  void MaybeTriggerProactive();
  void TriggerReactive(int64_t needed);
  void StartInstance();

  // --- Avantan common ------------------------------------------------------
  void ApplyDecision(InstanceId instance, const StateList& value);
  void FinishInstanceLocally(InstanceId instance, const StateList& value);
  void AbortInstance(InstanceId instance);
  EntityState BuildInitVal();
  void ResetInstanceState();
  void Persist();
  void LoadDurable();

  void OnElectionGetValue(sim::NodeId from, const ElectionGetValue& m);
  void OnElectionOkValue(sim::NodeId from, const ElectionOkValue& m);
  void OnAcceptValue(sim::NodeId from, const AcceptValue& m);
  void OnAcceptOk(sim::NodeId from, const AcceptOk& m);
  void OnDecisionMsg(sim::NodeId from, const DecisionMsg& m);
  void OnDiscard(sim::NodeId from, const Discard& m);
  void OnStatusQuery(sim::NodeId from, const StatusQuery& m);
  void OnStatusReply(sim::NodeId from, const StatusReply& m);

  // --- Avantan[(n+1)/2] ----------------------------------------------------
  void StartMajorityElection(InstanceId instance, bool recovery);
  void MajorityChooseAndAccept();
  void SendCatchUp(sim::NodeId to, int64_t from_instance);
  void ApplyConsecutiveDecisions();

  // --- Avantan[*] ----------------------------------------------------------
  void StartAnyElection();
  void AnyProceedToAccept();
  void StartAnyRecovery();
  void ConcludeAnyRecovery();

  // --- Reads (§5.8) --------------------------------------------------------
  void StartGlobalRead(sim::NodeId client, const TokenRequest& req);
  void OnReadQuery(sim::NodeId from, const ReadQuery& m);
  void OnReadReply(const ReadReply& m);
  void CompleteRead(uint64_t read_id);

  void SendDecisionTo(sim::NodeId to, InstanceId instance,
                      const StateList& value);
  void BroadcastToOthers(uint32_t type, const BufferWriter& w,
                         const std::vector<sim::NodeId>& targets);

  SiteOptions opts_;
  storage::StableStorage* storage_ = nullptr;
  InstanceObserver instance_observer_;  // audit hook; not protocol state
  HistoryTap history_tap_;              // checker hook; not protocol state

  // --- Token state (the dis-aggregated data) -------------------------------
  int64_t tokens_left_ = 0;
  int64_t tokens_wanted_ = 0;

  // --- Request queue (frozen during redistribution) ------------------------
  std::deque<QueuedRequest> queue_;
  std::unordered_set<uint64_t> queued_ids_;  // duplicate-arrival guard

  // --- Prediction ----------------------------------------------------------
  std::unique_ptr<predict::DemandPredictor> predictor_;
  double demand_this_epoch_ = 0;
  SimTime abort_backoff_until_ = 0;

  // --- Protocol state (Table 1c, keyed by the current instance) ------------
  Ballot ballot_;                      // BallotNum (durable, monotonic)
  std::optional<InstanceId> engaged_;  // instance being participated in
  SimTime freeze_started_ = 0;
  Role role_ = Role::kNone;
  LeaderPhase leader_phase_ = LeaderPhase::kIdle;
  sim::NodeId cohort_leader_ = sim::kInvalidNode;
  StateList accept_val_;   // AcceptVal (durable while engaged)
  Ballot accept_num_;      // AcceptNum
  bool decision_ = false;  // Decision

  // Leader bookkeeping for the in-flight instance.
  bool recovery_mode_ = false;  ///< this election is failure recovery
  std::map<sim::NodeId, ElectionOkValue> election_responses_;
  size_t accept_acks_ = 0;
  std::set<sim::NodeId> accept_ok_from_;
  bool retrigger_after_instance_ = false;

  // Majority mode: the global redistribution sequence.
  int64_t next_instance_ = 0;  // durable
  /// Decided log (durable). Trimmed to the most recent kOutcomeLogSize
  /// instances; sites lagging further behind are fast-forwarded (they cannot
  /// have participated in any instance they missed, so skipping is safe —
  /// see SendCatchUp).
  static constexpr int64_t kOutcomeLogSize = 512;
  std::map<InstanceId, StateList> outcomes_;          // decided log (durable)
  std::map<InstanceId, StateList> pending_decisions_; // future instances

  // Any mode.
  uint32_t any_seq_ = 0;  // durable
  std::set<InstanceId> aborted_;  // discarded instances (durable)
  std::map<sim::NodeId, StatusReply> status_replies_;
  int any_retransmits_ = 0;

  // At-most-once guard: committed write transactions by request id, so a
  // client/app-manager retry of an already-applied request is answered from
  // this cache instead of double-applying (retries happen when a queued
  // request outlives the client's timeout, e.g. across a partition).
  // Bounded via two-generation rotation: retries arrive within seconds, so
  // only the most recent ~2x kDedupGenerationSize ids need to be remembered.
  static constexpr size_t kDedupGenerationSize = 1 << 17;
  std::unordered_map<uint64_t, int64_t> committed_writes_;
  std::unordered_map<uint64_t, int64_t> committed_writes_prev_;
  void RememberWrite(uint64_t request_id, int64_t value);
  const int64_t* LookupWrite(uint64_t request_id) const;

  // Reused by Persist (runs per commit) so it stops allocating per call.
  BufferWriter persist_scratch_;
  // Reused by Respond (runs per client request); distinct from
  // persist_scratch_ because Persist can run inside the same call chain.
  BufferWriter send_scratch_;

  // Reads.
  uint64_t next_read_id_ = 1;
  std::map<uint64_t, PendingRead> reads_;

  // Timers.
  uint64_t leader_timer_ = 0;
  uint64_t watchdog_timer_ = 0;

  SiteStats stats_;

  // --- Observability (DESIGN.md §8) ----------------------------------------
  // All pointers cached from the network at Start; null when disabled, which
  // reduces every instrumentation site to one predictable branch.
  const char* ProtocolName() const {
    return IsAnyMode() ? "any" : "majority";
  }
  obs::Tracer* tracer_ = nullptr;
  /// Open request spans by request id: begun at arrival, ended in Respond.
  /// Requests queued behind a freeze keep their span open across the drain.
  std::unordered_map<uint64_t, obs::TraceContext> request_spans_;
  /// Round span for the instance this site is engaged in (any role): the
  /// leader's "avantan.<variant>.instance" or a cohort's "avantan.engage".
  obs::TraceContext instance_span_;
  /// Leader's current phase sub-span (election / accept / recovery).
  obs::TraceContext phase_span_;
  SimTime phase_started_ = 0;
  Histogram* hist_election_us_ = nullptr;  ///< leader election-phase duration
  Histogram* hist_accept_us_ = nullptr;    ///< leader accept-phase duration
  Histogram* hist_instance_us_ = nullptr;  ///< engage -> finish, engaged sites
};

}  // namespace samya::core

#endif  // SAMYA_CORE_SITE_H_
