#include "obs/trace_export.h"

#include <cstdio>

namespace samya::obs {

namespace {

JsonValue SpanArgs(const Span& s) {
  JsonValue args = JsonValue::MakeObject();
  args.Set("span", s.span_id);
  args.Set("parent", s.parent_span_id);
  for (int i = 0; i < 2; ++i) {
    if (s.arg_name[i] != nullptr) args.Set(s.arg_name[i], s.arg_value[i]);
  }
  return args;
}

const char* FateName(MsgFate fate) {
  switch (fate) {
    case MsgFate::kInFlight: return "in_flight";
    case MsgFate::kDelivered: return "delivered";
    case MsgFate::kDroppedAtSend: return "dropped_at_send";
    case MsgFate::kDroppedAtDelivery: return "dropped_at_delivery";
  }
  return "unknown";
}

}  // namespace

JsonValue TraceToChromeJson(const Tracer& tracer) {
  JsonValue events = JsonValue::MakeArray();

  for (const auto& [pid, name] : tracer.process_names()) {
    JsonValue m = JsonValue::MakeObject();
    m.Set("name", "process_name");
    m.Set("ph", "M");
    m.Set("pid", int64_t{pid});
    JsonValue args = JsonValue::MakeObject();
    args.Set("name", name);
    m.Set("args", std::move(args));
    events.Append(std::move(m));
  }

  for (const Span& s : tracer.spans()) {
    // Async-nestable pair keyed by (cat, id): one stacked track per
    // (process, trace), which is what makes overlapping requests readable.
    JsonValue b = JsonValue::MakeObject();
    b.Set("name", s.name);
    b.Set("cat", s.category);
    b.Set("ph", "b");
    b.Set("id", s.trace_id);
    b.Set("pid", int64_t{s.site});
    b.Set("tid", int64_t{0});
    b.Set("ts", s.start);
    b.Set("args", SpanArgs(s));
    events.Append(std::move(b));

    JsonValue e = JsonValue::MakeObject();
    e.Set("name", s.name);
    e.Set("cat", s.category);
    e.Set("ph", "e");
    e.Set("id", s.trace_id);
    e.Set("pid", int64_t{s.site});
    e.Set("tid", int64_t{0});
    e.Set("ts", s.end >= 0 ? s.end : s.start);
    events.Append(std::move(e));
  }

  for (const Span& s : tracer.instants()) {
    JsonValue i = JsonValue::MakeObject();
    i.Set("name", s.name);
    i.Set("cat", s.category);
    i.Set("ph", "i");
    i.Set("s", "p");
    i.Set("pid", int64_t{s.site});
    i.Set("tid", int64_t{0});
    i.Set("ts", s.start);
    if (s.trace_id != 0) {
      JsonValue args = JsonValue::MakeObject();
      args.Set("trace", s.trace_id);
      args.Set("parent", s.parent_span_id);
      i.Set("args", std::move(args));
    }
    events.Append(std::move(i));
  }

  for (const MessageRecord& r : tracer.messages()) {
    JsonValue x = JsonValue::MakeObject();
    x.Set("name", MessageTypeName(r.type));
    x.Set("cat", "msg");
    x.Set("ph", "X");
    x.Set("pid", int64_t{r.from});
    x.Set("tid", int64_t{1});
    x.Set("ts", r.sent);
    int64_t dur = r.delivered >= r.sent ? r.delivered - r.sent : 0;
    x.Set("dur", dur);
    JsonValue args = JsonValue::MakeObject();
    args.Set("to", int64_t{r.to});
    args.Set("type", int64_t{r.type});
    args.Set("bytes", int64_t{r.bytes});
    args.Set("fate", FateName(r.fate));
    if (r.ctx.valid()) {
      args.Set("trace", r.ctx.trace_id);
      args.Set("parent", r.ctx.span_id);
    }
    x.Set("args", std::move(args));
    events.Append(std::move(x));
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::string text = JsonDump(TraceToChromeJson(tracer));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_err = std::fclose(f);
  if (written != text.size() || close_err != 0) {
    return Status::Unavailable("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace samya::obs
