#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/trace.h"

namespace samya::obs {

namespace {

struct TypeRow {
  uint32_t type;
  uint64_t count;
  int64_t ns;
};

}  // namespace

void EventLoopProfiler::Merge(const EventLoopProfiler& other) {
  events_ += other.events_;
  loop_ns_ += other.loop_ns_;
  timer_count_ += other.timer_count_;
  timer_ns_ += other.timer_ns_;
  for (uint32_t i = 0; i < kTypeSlots; ++i) {
    type_count_[i] += other.type_count_[i];
    type_ns_[i] += other.type_ns_[i];
  }
}

static std::vector<TypeRow> SortedRows(const uint64_t* counts,
                                       const int64_t* ns, uint32_t slots) {
  std::vector<TypeRow> rows;
  for (uint32_t i = 0; i < slots; ++i) {
    if (counts[i] > 0) rows.push_back({i, counts[i], ns[i]});
  }
  std::sort(rows.begin(), rows.end(), [](const TypeRow& a, const TypeRow& b) {
    if (a.ns != b.ns) return a.ns > b.ns;
    return a.type < b.type;
  });
  return rows;
}

JsonValue EventLoopProfiler::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("events", static_cast<int64_t>(events_));
  out.Set("loop_ns", loop_ns_);
  out.Set("timer_count", static_cast<int64_t>(timer_count_));
  out.Set("timer_ns", timer_ns_);

  int64_t attributed = timer_ns_;
  JsonValue by_type = JsonValue::MakeArray();
  for (const TypeRow& row : SortedRows(type_count_, type_ns_, kTypeSlots)) {
    attributed += row.ns;
    JsonValue t = JsonValue::MakeObject();
    t.Set("type", static_cast<int64_t>(row.type));
    t.Set("name", MessageTypeName(row.type));
    t.Set("count", static_cast<int64_t>(row.count));
    t.Set("ns", row.ns);
    by_type.Append(std::move(t));
  }
  out.Set("other_ns", loop_ns_ > attributed ? loop_ns_ - attributed : 0);
  out.Set("by_type", std::move(by_type));
  return out;
}

std::string EventLoopProfiler::Report() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "event loop: %llu events, %.1f ms wall (%.0f ns/event)\n",
                static_cast<unsigned long long>(events_), loop_ns_ / 1e6,
                events_ > 0 ? static_cast<double>(loop_ns_) / events_ : 0.0);
  out += line;
  std::snprintf(line, sizeof(line), "  %-24s %12s %12s %10s\n", "handler",
                "count", "wall ms", "ns/call");
  out += line;

  auto row_line = [&](const char* name, uint64_t count, int64_t ns) {
    std::snprintf(line, sizeof(line), "  %-24s %12llu %12.2f %10.0f\n", name,
                  static_cast<unsigned long long>(count), ns / 1e6,
                  count > 0 ? static_cast<double>(ns) / count : 0.0);
    out += line;
  };

  int64_t attributed = timer_ns_;
  for (const TypeRow& row : SortedRows(type_count_, type_ns_, kTypeSlots)) {
    attributed += row.ns;
    row_line(MessageTypeName(row.type), row.count, row.ns);
  }
  if (timer_count_ > 0) row_line("timer", timer_count_, timer_ns_);
  int64_t other = loop_ns_ - attributed;
  if (other > 0 && events_ > 0) {
    std::snprintf(line, sizeof(line), "  %-24s %12s %12.2f %10s\n", "other",
                  "-", other / 1e6, "-");
    out += line;
  }
  return out;
}

}  // namespace samya::obs
