#include "obs/trace.h"

namespace samya::obs {

TraceContext Tracer::BeginSpan(SimTime now, int32_t site, const char* name,
                               const char* category, TraceContext parent) {
  Span s;
  s.trace_id = parent.valid() ? parent.trace_id : next_trace_id_++;
  s.span_id = next_span_id_++;
  s.parent_span_id = parent.valid() ? parent.span_id : 0;
  s.site = site;
  s.name = name;
  s.category = category;
  s.start = now;
  open_.emplace(s.span_id, spans_.size());
  spans_.push_back(s);
  return TraceContext{s.trace_id, s.span_id};
}

void Tracer::SetSpanArg(TraceContext span, int slot, const char* name,
                        int64_t value) {
  auto it = open_.find(span.span_id);
  if (it == open_.end() || slot < 0 || slot > 1) return;
  spans_[it->second].arg_name[slot] = name;
  spans_[it->second].arg_value[slot] = value;
}

void Tracer::EndSpan(SimTime now, TraceContext span) {
  auto it = open_.find(span.span_id);
  if (it == open_.end()) return;
  spans_[it->second].end = now;
  open_.erase(it);
}

void Tracer::Instant(SimTime now, int32_t site, const char* name,
                     const char* category, TraceContext ctx) {
  Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = 0;
  s.parent_span_id = ctx.span_id;
  s.site = site;
  s.name = name;
  s.category = category;
  s.start = now;
  s.end = now;
  instants_.push_back(s);
}

void Tracer::CloseOpenSpans(SimTime now) {
  for (const auto& [id, index] : open_) spans_[index].end = now;
  open_.clear();
}

uint64_t Tracer::OnMessageSent(SimTime now, int32_t from, int32_t to,
                               uint32_t type, size_t bytes, TraceContext ctx) {
  MessageRecord r;
  r.sent = now;
  r.from = from;
  r.to = to;
  r.type = type;
  r.bytes = static_cast<uint32_t>(bytes);
  r.fate = MsgFate::kInFlight;
  r.ctx = ctx;
  messages_.push_back(r);
  return messages_.size() - 1;
}

void Tracer::OnMessageDroppedAtSend(SimTime now, int32_t from, int32_t to,
                                    uint32_t type, size_t bytes,
                                    TraceContext ctx) {
  size_t handle = OnMessageSent(now, from, to, type, bytes, ctx);
  messages_[handle].fate = MsgFate::kDroppedAtSend;
  messages_[handle].delivered = now;
}

void Tracer::OnMessageDelivered(uint64_t handle, SimTime now) {
  messages_[handle].fate = MsgFate::kDelivered;
  messages_[handle].delivered = now;
}

void Tracer::OnMessageDroppedAtDelivery(uint64_t handle, SimTime now) {
  messages_[handle].fate = MsgFate::kDroppedAtDelivery;
  messages_[handle].delivered = now;
}

void Tracer::SetProcessName(int32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

const char* MessageTypeName(uint32_t type) {
  switch (type) {
    case 10: return "token_request";
    case 11: return "token_response";
    case 100: return "mp_prepare";
    case 101: return "mp_promise";
    case 102: return "mp_accept";
    case 103: return "mp_accepted";
    case 104: return "mp_commit";
    case 105: return "mp_heartbeat";
    case 120: return "raft_request_vote";
    case 121: return "raft_vote_response";
    case 122: return "raft_append_entries";
    case 123: return "raft_append_response";
    case 140: return "paxos_prepare";
    case 141: return "paxos_promise";
    case 142: return "paxos_accept";
    case 143: return "paxos_accepted";
    case 144: return "paxos_learn";
    case 200: return "election_get_value";
    case 201: return "election_ok_value";
    case 202: return "accept_value";
    case 203: return "accept_ok";
    case 204: return "decision";
    case 205: return "discard";
    case 206: return "status_query";
    case 207: return "status_reply";
    case 230: return "read_query";
    case 231: return "read_reply";
    case 250: return "borrow_request";
    case 251: return "borrow_reply";
    case 260: return "gossip";
    case 261: return "escrow_transfer_request";
    case 262: return "escrow_transfer_reply";
    default: return "msg";
  }
}

}  // namespace samya::obs
