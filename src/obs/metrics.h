#ifndef SAMYA_OBS_METRICS_H_
#define SAMYA_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "common/histogram.h"
#include "common/json.h"

namespace samya::obs {

/// \file
/// Metrics registry of the observability layer (DESIGN.md §8).
///
/// Every measurement the paper's evaluation reads off a run — per-protocol
/// message counts (Table 3), latency CDFs (Fig 3), redistribution round
/// durations — is a named counter/gauge/histogram with a small fixed label
/// set, registered here instead of scraped ad hoc from component structs.
/// A registry is single-threaded (it belongs to one simulation), snapshots
/// to JSON via `common/json`, and merges across `parallel_runner` workers
/// (each worker's experiment owns its own registry; sweep tools merge the
/// per-run registries after the join).

/// Label set shared by all metric families. `site` / `peer` are node ids
/// (-1 = not site-scoped); `protocol` and `round` are static strings (e.g.
/// "majority" / "any", "election" / "accept" / "reactive"). Pointers must be
/// string literals or otherwise outlive the registry.
struct MetricLabels {
  int32_t site = -1;
  int32_t peer = -1;
  const char* protocol = "";
  const char* round = "";
};

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  int64_t value_ = 0;
};

/// \brief Registry of named, labeled metrics with stable pointers.
///
/// `GetX(name, labels)` is find-or-create; the returned pointer stays valid
/// for the registry's lifetime, so hot paths resolve their metric once and
/// increment through the cached pointer. Lookups keep an ordered map keyed
/// by (name, labels) so `ToJson` output is deterministic and diffs cleanly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const char* name, MetricLabels labels = {});
  Gauge* GetGauge(const char* name, MetricLabels labels = {});
  Histogram* GetHistogram(const char* name, MetricLabels labels = {});

  /// Folds `other` into this registry: counters add, histograms merge,
  /// gauges keep the maximum (the only cross-run reduction that is
  /// order-independent, which the parallel-runner determinism contract
  /// needs). Metrics absent locally are created.
  void Merge(const MetricsRegistry& other);

  /// Snapshot: an array of {name, labels..., kind, value | histogram}.
  /// Deterministic order (sorted by name, then labels).
  JsonValue ToJson() const;

  size_t size() const { return entries_.size(); }

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  using Key = std::tuple<std::string, int32_t, int32_t, std::string,
                         std::string>;  // name, site, peer, protocol, round

  struct Entry {
    Kind kind;
    MetricLabels labels;  // strings re-pointed into the key for safety
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;  // only for kHistogram
  };

  static Key MakeKey(const char* name, const MetricLabels& labels) {
    return Key(name, labels.site, labels.peer, labels.protocol, labels.round);
  }

  Entry* FindOrCreate(const char* name, const MetricLabels& labels,
                      Kind kind);

  std::map<Key, std::unique_ptr<Entry>> entries_;
};

}  // namespace samya::obs

#endif  // SAMYA_OBS_METRICS_H_
