#ifndef SAMYA_OBS_OBSERVABILITY_H_
#define SAMYA_OBS_OBSERVABILITY_H_

#include <memory>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace samya::obs {

/// Which observability components a run should carry. Everything defaults to
/// off: the simulator then sees null component pointers and every
/// instrumentation site reduces to a single predictable branch.
struct ObsOptions {
  bool metrics = false;   ///< MetricsRegistry snapshot in the result
  bool tracing = false;   ///< causal spans + message records (Perfetto export)
  bool profiler = false;  ///< event-loop wall-clock accounting

  bool any() const { return metrics || tracing || profiler; }

  static ObsOptions All() { return ObsOptions{true, true, true}; }
};

/// \brief Bundle of the per-run observability components.
///
/// One per simulation, created by `Experiment::Setup` when any component is
/// requested and shared (by pointer) with the Network/SimEnvironment. Held
/// by `shared_ptr` in results so parallel sweeps can move results around
/// without copying trace buffers.
class Observability {
 public:
  explicit Observability(const ObsOptions& options) : options_(options) {
    if (options.metrics) metrics_ = std::make_unique<MetricsRegistry>();
    if (options.tracing) tracer_ = std::make_unique<Tracer>();
    if (options.profiler) profiler_ = std::make_unique<EventLoopProfiler>();
  }

  const ObsOptions& options() const { return options_; }

  /// Component accessors: null when the component is disabled.
  MetricsRegistry* metrics() const { return metrics_.get(); }
  Tracer* tracer() const { return tracer_.get(); }
  EventLoopProfiler* profiler() const { return profiler_.get(); }

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<EventLoopProfiler> profiler_;
};

}  // namespace samya::obs

#endif  // SAMYA_OBS_OBSERVABILITY_H_
