#ifndef SAMYA_OBS_PROFILER_H_
#define SAMYA_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/json.h"

namespace samya::obs {

/// \file
/// Event-loop profiler (DESIGN.md §8).
///
/// Answers "where does wall-clock time go?" for one simulation: total events
/// executed by `SimEnvironment::Step`, and within that, handler wall-time
/// broken down by message type (attributed by `Network::Deliver`) and by
/// timer callbacks. Everything not attributed to a message or timer —
/// queue manipulation, client closures, scheduling overhead — shows up as
/// the "other" residue, which keeps the accounting honest without tagging
/// every queue entry.
///
/// This is the one obs component that reads wall-clock time; it never feeds
/// anything back into the simulation, so determinism is untouched.
class EventLoopProfiler {
 public:
  EventLoopProfiler() = default;
  EventLoopProfiler(const EventLoopProfiler&) = delete;
  EventLoopProfiler& operator=(const EventLoopProfiler&) = delete;

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// One event popped and executed by the loop (any kind).
  void AccountEvent(int64_t ns) {
    events_ += 1;
    loop_ns_ += ns;
  }

  /// Wall-time spent inside a message handler, by wire type.
  void AccountMessage(uint32_t type, int64_t ns) {
    uint32_t slot = type < kTypeSlots ? type : kTypeSlots - 1;
    type_count_[slot] += 1;
    type_ns_[slot] += ns;
  }

  /// Wall-time spent inside a timer callback.
  void AccountTimer(int64_t ns) {
    timer_count_ += 1;
    timer_ns_ += ns;
  }

  uint64_t events() const { return events_; }
  int64_t loop_ns() const { return loop_ns_; }

  /// Folds another run's accounting into this one (parallel sweeps).
  void Merge(const EventLoopProfiler& other);

  /// {events, loop_ns, timers:{...}, other_ns, by_type:[{type,name,count,ns}]}
  /// sorted by descending ns; zero-count types omitted.
  JsonValue ToJson() const;

  /// Human-readable table of the top handlers by wall-time.
  std::string Report() const;

 private:
  // Message-type registry tops out below 270 (common/token_api.h); the last
  // slot collects any out-of-range stragglers.
  static constexpr uint32_t kTypeSlots = 280;

  uint64_t events_ = 0;
  int64_t loop_ns_ = 0;
  uint64_t timer_count_ = 0;
  int64_t timer_ns_ = 0;
  uint64_t type_count_[kTypeSlots] = {};
  int64_t type_ns_[kTypeSlots] = {};
};

}  // namespace samya::obs

#endif  // SAMYA_OBS_PROFILER_H_
