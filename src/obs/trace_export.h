#ifndef SAMYA_OBS_TRACE_EXPORT_H_
#define SAMYA_OBS_TRACE_EXPORT_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "obs/trace.h"

namespace samya::obs {

/// \file
/// Chrome trace-event export (DESIGN.md §8).
///
/// Converts a `Tracer` into the Chrome trace-event JSON format, loadable in
/// Perfetto (ui.perfetto.dev) and chrome://tracing. Mapping:
///  - `ts` is sim-time in microseconds (SimTime is already µs).
///  - Each node is a trace "process"; "M" metadata events carry its name.
///  - Spans are async-nestable "b"/"e" pairs with `id` = trace id, so all
///    spans of one causal chain stack on one per-site track even when many
///    requests overlap. `args` carries span/parent ids for samya_inspect.
///  - Messages are "X" complete events on the sender's process (tid 1),
///    `dur` = flight time; drops get a zero/cut duration plus a `fate` arg.
///  - Instants are "i" events with process scope.

/// Builds the full document: {"traceEvents": [...], "displayTimeUnit": "ms"}.
JsonValue TraceToChromeJson(const Tracer& tracer);

/// Writes `TraceToChromeJson` to `path` (compact, one line). Returns an
/// error status if the file cannot be written.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace samya::obs

#endif  // SAMYA_OBS_TRACE_EXPORT_H_
