#include "obs/metrics.h"

#include "common/macros.h"

namespace samya::obs {

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const char* name, const MetricLabels& labels, Kind kind) {
  Key key = MakeKey(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    SAMYA_CHECK_MSG(it->second->kind == kind,
                    "metric '%s' registered with a different kind", name);
    return it->second.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->labels = labels;
  if (kind == Kind::kHistogram) {
    entry->histogram = std::make_unique<Histogram>();
  }
  Entry* raw = entry.get();
  entries_.emplace(std::move(key), std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const char* name, MetricLabels labels) {
  return &FindOrCreate(name, labels, Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(const char* name, MetricLabels labels) {
  return &FindOrCreate(name, labels, Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const char* name,
                                         MetricLabels labels) {
  return FindOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [key, entry] : other.entries_) {
    MetricLabels labels;
    labels.site = std::get<1>(key);
    labels.peer = std::get<2>(key);
    // Point the merged entry's label strings at the other registry's
    // originals; both sides required them to outlive the registries.
    labels.protocol = entry->labels.protocol;
    labels.round = entry->labels.round;
    Entry* mine = FindOrCreate(std::get<0>(key).c_str(), labels, entry->kind);
    switch (entry->kind) {
      case Kind::kCounter:
        mine->counter.Add(entry->counter.value());
        break;
      case Kind::kGauge:
        if (entry->gauge.value() > mine->gauge.value()) {
          mine->gauge.Set(entry->gauge.value());
        }
        break;
      case Kind::kHistogram:
        mine->histogram->Merge(*entry->histogram);
        break;
    }
  }
}

JsonValue MetricsRegistry::ToJson() const {
  JsonValue out = JsonValue::MakeArray();
  for (const auto& [key, entry] : entries_) {
    JsonValue m = JsonValue::MakeObject();
    m.Set("name", std::get<0>(key));
    if (std::get<1>(key) >= 0) m.Set("site", int64_t{std::get<1>(key)});
    if (std::get<2>(key) >= 0) m.Set("peer", int64_t{std::get<2>(key)});
    if (!std::get<3>(key).empty()) m.Set("protocol", std::get<3>(key));
    if (!std::get<4>(key).empty()) m.Set("round", std::get<4>(key));
    switch (entry->kind) {
      case Kind::kCounter:
        m.Set("kind", "counter");
        m.Set("value", entry->counter.value());
        break;
      case Kind::kGauge:
        m.Set("kind", "gauge");
        m.Set("value", entry->gauge.value());
        break;
      case Kind::kHistogram:
        m.Set("kind", "histogram");
        m.Set("value", entry->histogram->ToJson());
        break;
    }
    out.Append(std::move(m));
  }
  return out;
}

}  // namespace samya::obs
