#ifndef SAMYA_OBS_TRACE_H_
#define SAMYA_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace samya::obs {

/// \file
/// Causal protocol tracing (DESIGN.md §8).
///
/// A *trace* is one causal story — typically an acquire request and every
/// Avantan round, cohort engagement, and message it triggers. A *span* is a
/// named sim-time interval on one node, with a parent span. Trace and span
/// ids come from plain counters — never from the simulation RNG — and the
/// context rides an out-of-band envelope header on the simulated network
/// (`sim::Network` captures the sender's current context at Send and
/// installs it around the receiver's handler), so tracing on vs. off leaves
/// payload bytes, RNG draws, and event ordering bit-identical.

/// Propagated context: the trace a causal chain belongs to plus the span
/// that is its immediate parent. Zero trace id = no context.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// A finished (or still open, end < 0) sim-time interval.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = trace root
  int32_t site = -1;            ///< node id; "process" in the export
  const char* name = "";        ///< static string
  const char* category = "";    ///< "request" | "round" | ...
  SimTime start = 0;
  SimTime end = -1;  ///< -1 while open
  /// Up to two named integer arguments (instance id, token amounts, ...).
  const char* arg_name[2] = {nullptr, nullptr};
  int64_t arg_value[2] = {0, 0};
};

/// Message lifecycle fates mirrored from `sim::TapEvent`.
enum class MsgFate : uint8_t {
  kInFlight = 0,
  kDelivered,
  kDroppedAtSend,
  kDroppedAtDelivery,
};

/// One simulated message observed while tracing: send/delivery sim-times,
/// endpoints, wire type, and the causal context it carried.
struct MessageRecord {
  SimTime sent = 0;
  SimTime delivered = -1;  ///< meaningful when fate == kDelivered/kDropped...
  int32_t from = -1;
  int32_t to = -1;
  uint32_t type = 0;
  uint32_t bytes = 0;
  MsgFate fate = MsgFate::kInFlight;
  TraceContext ctx;  ///< sender's context at Send time
};

/// \brief Span and message recorder for one simulation.
///
/// Single-threaded, owned by the experiment alongside the SimEnvironment.
/// Components reach it through `sim::Network`; a null tracer pointer means
/// tracing is disabled and every call site reduces to one branch.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- Ambient context ------------------------------------------------------

  TraceContext current() const { return current_; }
  void set_current(TraceContext ctx) { current_ = ctx; }

  /// RAII: installs `ctx` as the current context for the enclosing scope.
  /// Tolerates a null tracer (no-op), so call sites stay unconditional.
  class ContextGuard {
   public:
    ContextGuard(Tracer* tracer, TraceContext ctx) : tracer_(tracer) {
      if (tracer_ != nullptr) {
        saved_ = tracer_->current_;
        tracer_->current_ = ctx;
      }
    }
    ~ContextGuard() {
      if (tracer_ != nullptr) tracer_->current_ = saved_;
    }
    ContextGuard(const ContextGuard&) = delete;
    ContextGuard& operator=(const ContextGuard&) = delete;

   private:
    Tracer* tracer_;
    TraceContext saved_;
  };

  // --- Spans ----------------------------------------------------------------

  /// Opens a span. With a valid `parent` the span joins the parent's trace;
  /// otherwise it roots a fresh trace. Returns the context naming the new
  /// span (use it as a parent, for sends, and to close the span).
  TraceContext BeginSpan(SimTime now, int32_t site, const char* name,
                         const char* category, TraceContext parent);

  /// Attaches a named integer argument to an open span (slot 0 or 1).
  void SetSpanArg(TraceContext span, int slot, const char* name,
                  int64_t value);

  /// Closes a span. Idempotent: closing an unknown/already-closed span id is
  /// a no-op, which lets protocol code end spans from multiple exit paths.
  void EndSpan(SimTime now, TraceContext span);

  /// Zero-duration marker (exported as an instant event).
  void Instant(SimTime now, int32_t site, const char* name,
               const char* category, TraceContext ctx);

  /// Closes every still-open span at `now` (end of run, crashes).
  void CloseOpenSpans(SimTime now);

  // --- Messages (called by sim::Network) ------------------------------------

  /// Records an accepted-for-transmission message; returns a handle for the
  /// delivery-time update.
  uint64_t OnMessageSent(SimTime now, int32_t from, int32_t to, uint32_t type,
                         size_t bytes, TraceContext ctx);

  /// Records a message cut at send time (no handle: no future event).
  void OnMessageDroppedAtSend(SimTime now, int32_t from, int32_t to,
                              uint32_t type, size_t bytes, TraceContext ctx);

  void OnMessageDelivered(uint64_t handle, SimTime now);
  void OnMessageDroppedAtDelivery(uint64_t handle, SimTime now);

  /// Context the message carried (for installing around the receiver's
  /// handler).
  TraceContext MessageContext(uint64_t handle) const {
    return messages_[handle].ctx;
  }

  // --- Export surface -------------------------------------------------------

  /// Names the exported "process" for a node id (site/app-manager/client).
  void SetProcessName(int32_t pid, std::string name);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Span>& instants() const { return instants_; }
  const std::vector<MessageRecord>& messages() const { return messages_; }
  const std::map<int32_t, std::string>& process_names() const {
    return process_names_;
  }

 private:
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  TraceContext current_;
  std::vector<Span> spans_;
  std::vector<Span> instants_;
  std::unordered_map<uint64_t, size_t> open_;  // span id -> index in spans_
  std::vector<MessageRecord> messages_;
  std::map<int32_t, std::string> process_names_;
};

/// Human name of a wire message type (registry in common/token_api.h).
/// Returns a static string; unknown types map to "msg".
const char* MessageTypeName(uint32_t type);

}  // namespace samya::obs

#endif  // SAMYA_OBS_TRACE_H_
