#include "sim/network.h"

#include "common/logging.h"
#include "common/macros.h"

namespace samya::sim {

const char* TapEventName(TapEvent ev) {
  switch (ev) {
    case TapEvent::kSent:
      return "sent";
    case TapEvent::kDroppedAtSend:
      return "dropped_at_send";
    case TapEvent::kDelivered:
      return "delivered";
    case TapEvent::kDroppedAtDelivery:
      return "dropped_at_delivery";
  }
  return "unknown";
}

Network::Network(SimEnvironment* env, LatencyModel model)
    : env_(env), model_(model), rng_(env->rng().Fork(0x6e657477)) {}

void Network::Register(Node* node) {
  SAMYA_CHECK_EQ(node->id(), static_cast<NodeId>(nodes_.size()));
  node->network_ = this;
  node->env_ = env_;
  node->rng_ = rng_.Fork(0x6e6f6465 + static_cast<uint64_t>(node->id()));
  nodes_.push_back(node);
  partition_group_.push_back(0);
}

Node* Network::node(NodeId id) const {
  SAMYA_CHECK_GE(id, 0);
  SAMYA_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

bool Network::IsAlive(NodeId id) const { return node(id)->alive(); }

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  return partition_group_[static_cast<size_t>(a)] ==
         partition_group_[static_cast<size_t>(b)];
}

bool Network::LinkCut(NodeId from, NodeId to) const {
  return cut_links_.contains(LinkKey(from, to));
}

void Network::CutLink(NodeId from, NodeId to) {
  cut_links_.insert(LinkKey(from, to));
  SAMYA_LOG_INFO("t=%s link %d->%d CUT", FormatDuration(env_->Now()).c_str(),
                 from, to);
}

void Network::RestoreLink(NodeId from, NodeId to) {
  cut_links_.erase(LinkKey(from, to));
  SAMYA_LOG_INFO("t=%s link %d->%d restored",
                 FormatDuration(env_->Now()).c_str(), from, to);
}

void Network::SetLinkDelayFactor(NodeId from, NodeId to, double factor) {
  SAMYA_CHECK_GT(factor, 0.0);
  if (factor == 1.0) {
    link_delay_factor_.erase(LinkKey(from, to));
  } else {
    link_delay_factor_[LinkKey(from, to)] = factor;
  }
}

void Network::ClearLinkFaults() {
  cut_links_.clear();
  link_delay_factor_.clear();
}

Duration Network::ScaledLatency(Node* sender, Node* receiver) {
  const Duration base = model_.Sample(sender->region(), receiver->region(), rng_);
  double factor = delay_factor_;
  if (!link_delay_factor_.empty()) {
    auto it = link_delay_factor_.find(LinkKey(sender->id(), receiver->id()));
    if (it != link_delay_factor_.end()) factor *= it->second;
  }
  if (factor == 1.0) return base;
  const double scaled = static_cast<double>(base) * factor;
  return scaled < 1.0 ? Duration{1} : static_cast<Duration>(scaled);
}

void Network::Deliver(NodeId from, NodeId to, uint32_t type,
                      std::vector<uint8_t> payload) {
  Node* recv = node(to);
  if (!recv->alive()) {
    ++stats_.messages_dropped_crashed;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtDelivery);
    }
  } else if (partitioned_ && !CanCommunicate(from, to)) {
    // A partition that formed while the message was in flight also cuts it.
    ++stats_.messages_dropped_partition;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtDelivery);
    }
  } else if (!cut_links_.empty() && LinkCut(from, to)) {
    // Same rule for a link cut that formed mid-flight.
    ++stats_.messages_dropped_link;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtDelivery);
    }
  } else {
    ++stats_.messages_delivered;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(), TapEvent::kDelivered);
    }
    BufferReader reader(payload);
    recv->HandleMessage(from, type, reader);
  }
  pool_.Release(std::move(payload));
}

void Network::Send(NodeId from, NodeId to, uint32_t type,
                   std::vector<uint8_t> payload) {
  Node* sender = node(from);
  Node* receiver = node(to);
  if (!sender->alive()) return;  // a crashed node sends nothing
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (partitioned_ && !CanCommunicate(from, to)) {
    ++stats_.messages_dropped_partition;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtSend);
    }
    pool_.Release(std::move(payload));
    return;
  }
  if (!cut_links_.empty() && LinkCut(from, to)) {
    ++stats_.messages_dropped_link;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtSend);
    }
    pool_.Release(std::move(payload));
    return;
  }
  if (loss_rate_ > 0 && rng_.Bernoulli(loss_rate_)) {
    ++stats_.messages_dropped_loss;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtSend);
    }
    pool_.Release(std::move(payload));
    return;
  }
  if (tap_) tap_(env_->Now(), from, to, type, payload.size(), TapEvent::kSent);

  if (duplicate_rate_ > 0 && rng_.Bernoulli(duplicate_rate_)) {
    // Inject a copy with an independently sampled latency; it races the
    // original and may arrive first (duplication implies reordering).
    ++stats_.messages_duplicated;
    std::vector<uint8_t> copy = pool_.Acquire();
    copy.assign(payload.begin(), payload.end());
    const Duration dup_latency = ScaledLatency(sender, receiver);
    env_->Schedule(dup_latency, [this, from, to, type,
                                 payload = std::move(copy)]() mutable {
      Deliver(from, to, type, std::move(payload));
    });
  }

  const Duration latency = ScaledLatency(sender, receiver);
  // The delivery closure (48 bytes: this + ids + type + the payload vector)
  // fits SimCallback's inline buffer, and the payload returns to the pool
  // whether the message is delivered or dropped in flight.
  env_->Schedule(latency, [this, from, to, type,
                           payload = std::move(payload)]() mutable {
    Deliver(from, to, type, std::move(payload));
  });
}

void Network::Crash(NodeId id) {
  Node* n = node(id);
  if (!n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) CRASHED", FormatDuration(env_->Now()).c_str(),
                 id, RegionName(n->region()));
  n->alive_ = false;
  ++n->epoch_;
  n->active_timers_.clear();
  n->HandleCrash();
}

void Network::Recover(NodeId id) {
  Node* n = node(id);
  if (n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) RECOVERED",
                 FormatDuration(env_->Now()).c_str(), id,
                 RegionName(n->region()));
  n->alive_ = true;
  ++n->epoch_;
  n->HandleRecover();
}

void Network::SetPartition(const std::vector<std::vector<NodeId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(),
            static_cast<int>(groups.size()));
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) {
      SAMYA_CHECK_GE(id, 0);
      SAMYA_CHECK_LT(static_cast<size_t>(id), partition_group_.size());
      partition_group_[static_cast<size_t>(id)] = static_cast<int>(g);
    }
  }
  SAMYA_LOG_INFO("t=%s network partitioned into %zu group(s)",
                 FormatDuration(env_->Now()).c_str(), groups.size());
}

void Network::ClearPartition() {
  partitioned_ = false;
  SAMYA_LOG_INFO("t=%s network partition healed",
                 FormatDuration(env_->Now()).c_str());
}

uint64_t Network::ArmTimer(Node* n, Duration delay, uint64_t token) {
  const uint64_t timer_id = n->next_timer_id_++;
  n->active_timers_.insert(timer_id);
  const uint64_t epoch = n->epoch_;
  env_->Schedule(delay, [n, timer_id, token, epoch]() {
    if (!n->alive()) return;
    if (n->epoch_ != epoch) return;  // node crashed/recovered since arming
    if (n->active_timers_.erase(timer_id) == 0) return;  // cancelled
    n->HandleTimer(token);
  });
  return timer_id;
}

}  // namespace samya::sim
