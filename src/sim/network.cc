#include "sim/network.h"

#include "common/logging.h"
#include "common/macros.h"

namespace samya::sim {

Network::Network(SimEnvironment* env, LatencyModel model)
    : env_(env), model_(model), rng_(env->rng().Fork(0x6e657477)) {}

void Network::Register(Node* node) {
  SAMYA_CHECK_EQ(node->id(), static_cast<NodeId>(nodes_.size()));
  node->network_ = this;
  node->env_ = env_;
  node->rng_ = rng_.Fork(0x6e6f6465 + static_cast<uint64_t>(node->id()));
  nodes_.push_back(node);
  partition_group_.push_back(0);
}

Node* Network::node(NodeId id) const {
  SAMYA_CHECK_GE(id, 0);
  SAMYA_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

bool Network::IsAlive(NodeId id) const { return node(id)->alive(); }

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  return partition_group_[static_cast<size_t>(a)] ==
         partition_group_[static_cast<size_t>(b)];
}

void Network::Send(NodeId from, NodeId to, uint32_t type,
                   std::vector<uint8_t> payload) {
  Node* sender = node(from);
  Node* receiver = node(to);
  if (!sender->alive()) return;  // a crashed node sends nothing
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (partitioned_ && !CanCommunicate(from, to)) {
    ++stats_.messages_dropped_partition;
    if (tap_) tap_(env_->Now(), from, to, type, payload.size(), false);
    pool_.Release(std::move(payload));
    return;
  }
  if (loss_rate_ > 0 && rng_.Bernoulli(loss_rate_)) {
    ++stats_.messages_dropped_loss;
    if (tap_) tap_(env_->Now(), from, to, type, payload.size(), false);
    pool_.Release(std::move(payload));
    return;
  }
  if (tap_) tap_(env_->Now(), from, to, type, payload.size(), true);

  const Duration latency =
      model_.Sample(sender->region(), receiver->region(), rng_);
  // The delivery closure (48 bytes: this + ids + type + the payload vector)
  // fits SimCallback's inline buffer, and the payload returns to the pool
  // whether the message is delivered or dropped in flight.
  env_->Schedule(latency, [this, from, to, type,
                           payload = std::move(payload)]() mutable {
    Node* recv = node(to);
    if (!recv->alive()) {
      ++stats_.messages_dropped_crashed;
    } else if (partitioned_ && !CanCommunicate(from, to)) {
      // A partition that formed while the message was in flight also cuts it.
      ++stats_.messages_dropped_partition;
    } else {
      ++stats_.messages_delivered;
      BufferReader reader(payload);
      recv->HandleMessage(from, type, reader);
    }
    pool_.Release(std::move(payload));
  });
}

void Network::Crash(NodeId id) {
  Node* n = node(id);
  if (!n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) CRASHED", FormatDuration(env_->Now()).c_str(),
                 id, RegionName(n->region()));
  n->alive_ = false;
  ++n->epoch_;
  n->active_timers_.clear();
  n->HandleCrash();
}

void Network::Recover(NodeId id) {
  Node* n = node(id);
  if (n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) RECOVERED",
                 FormatDuration(env_->Now()).c_str(), id,
                 RegionName(n->region()));
  n->alive_ = true;
  ++n->epoch_;
  n->HandleRecover();
}

void Network::SetPartition(const std::vector<std::vector<NodeId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(),
            static_cast<int>(groups.size()));
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) {
      SAMYA_CHECK_GE(id, 0);
      SAMYA_CHECK_LT(static_cast<size_t>(id), partition_group_.size());
      partition_group_[static_cast<size_t>(id)] = static_cast<int>(g);
    }
  }
  SAMYA_LOG_INFO("t=%s network partitioned into %zu group(s)",
                 FormatDuration(env_->Now()).c_str(), groups.size());
}

void Network::ClearPartition() {
  partitioned_ = false;
  SAMYA_LOG_INFO("t=%s network partition healed",
                 FormatDuration(env_->Now()).c_str());
}

uint64_t Network::ArmTimer(Node* n, Duration delay, uint64_t token) {
  const uint64_t timer_id = n->next_timer_id_++;
  n->active_timers_.insert(timer_id);
  const uint64_t epoch = n->epoch_;
  env_->Schedule(delay, [n, timer_id, token, epoch]() {
    if (!n->alive()) return;
    if (n->epoch_ != epoch) return;  // node crashed/recovered since arming
    if (n->active_timers_.erase(timer_id) == 0) return;  // cancelled
    n->HandleTimer(token);
  });
  return timer_id;
}

}  // namespace samya::sim
