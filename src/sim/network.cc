#include "sim/network.h"

#include "common/logging.h"
#include "common/macros.h"

namespace samya::sim {

const char* TapEventName(TapEvent ev) {
  switch (ev) {
    case TapEvent::kSent:
      return "sent";
    case TapEvent::kDroppedAtSend:
      return "dropped_at_send";
    case TapEvent::kDelivered:
      return "delivered";
    case TapEvent::kDroppedAtDelivery:
      return "dropped_at_delivery";
  }
  return "unknown";
}

Network::Network(SimEnvironment* env, LatencyModel model)
    : env_(env), model_(model), rng_(env->rng().Fork(0x6e657477)) {}

void Network::Register(Node* node) {
  SAMYA_CHECK_EQ(node->id(), static_cast<NodeId>(nodes_.size()));
  node->network_ = this;
  node->env_ = env_;
  node->rng_ = rng_.Fork(0x6e6f6465 + static_cast<uint64_t>(node->id()));
  nodes_.push_back(node);
  partition_group_.push_back(0);
}

Node* Network::node(NodeId id) const {
  SAMYA_CHECK_GE(id, 0);
  SAMYA_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

bool Network::IsAlive(NodeId id) const { return node(id)->alive(); }

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  return partition_group_[static_cast<size_t>(a)] ==
         partition_group_[static_cast<size_t>(b)];
}

bool Network::LinkCut(NodeId from, NodeId to) const {
  return cut_links_.contains(LinkKey(from, to));
}

void Network::CutLink(NodeId from, NodeId to) {
  cut_links_.insert(LinkKey(from, to));
  SAMYA_LOG_INFO("t=%s link %d->%d CUT", FormatDuration(env_->Now()).c_str(),
                 from, to);
}

void Network::RestoreLink(NodeId from, NodeId to) {
  cut_links_.erase(LinkKey(from, to));
  SAMYA_LOG_INFO("t=%s link %d->%d restored",
                 FormatDuration(env_->Now()).c_str(), from, to);
}

void Network::SetLinkDelayFactor(NodeId from, NodeId to, double factor) {
  SAMYA_CHECK_GT(factor, 0.0);
  if (factor == 1.0) {
    link_delay_factor_.erase(LinkKey(from, to));
  } else {
    link_delay_factor_[LinkKey(from, to)] = factor;
  }
}

void Network::ClearLinkFaults() {
  cut_links_.clear();
  link_delay_factor_.clear();
}

Duration Network::ScaledLatency(Node* sender, Node* receiver) {
  const Duration base = model_.Sample(sender->region(), receiver->region(), rng_);
  double factor = delay_factor_;
  if (!link_delay_factor_.empty()) {
    auto it = link_delay_factor_.find(LinkKey(sender->id(), receiver->id()));
    if (it != link_delay_factor_.end()) factor *= it->second;
  }
  if (factor == 1.0) return base;
  const double scaled = static_cast<double>(base) * factor;
  return scaled < 1.0 ? Duration{1} : static_cast<Duration>(scaled);
}

void Network::InvokeHandler(Node* recv, NodeId from, uint32_t type,
                            BufferReader& reader) {
  if (profiler_ == nullptr) {
    recv->HandleMessage(from, type, reader);
  } else {
    const int64_t t0 = obs::EventLoopProfiler::NowNs();
    recv->HandleMessage(from, type, reader);
    profiler_->AccountMessage(type, obs::EventLoopProfiler::NowNs() - t0);
  }
}

void Network::Deliver(NodeId from, NodeId to, uint32_t type,
                      std::vector<uint8_t> payload, uint64_t rec) {
  Node* recv = node(to);
  LinkCounters* lc =
      metrics_ != nullptr ? &link_counters_[LinkKey(from, to)] : nullptr;
  bool dropped = true;
  if (!recv->alive()) {
    ++stats_.messages_dropped_crashed;
  } else if (partitioned_ && !CanCommunicate(from, to)) {
    // A partition that formed while the message was in flight also cuts it.
    ++stats_.messages_dropped_partition;
  } else if (!cut_links_.empty() && LinkCut(from, to)) {
    // Same rule for a link cut that formed mid-flight.
    ++stats_.messages_dropped_link;
  } else {
    dropped = false;
  }

  if (dropped) {
    if (lc != nullptr) ++lc->dropped_at_delivery;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtDelivery);
    }
    if (rec != kNoMsgRecord) {
      tracer_->OnMessageDroppedAtDelivery(rec, env_->Now());
    }
  } else {
    ++stats_.messages_delivered;
    if (lc != nullptr) ++lc->delivered;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(), TapEvent::kDelivered);
    }
    BufferReader reader(payload);
    if (rec != kNoMsgRecord) {
      tracer_->OnMessageDelivered(rec, env_->Now());
      // Install the sender's context around the handler so spans the
      // receiver opens parent correctly across the network hop.
      obs::Tracer::ContextGuard guard(tracer_, tracer_->MessageContext(rec));
      InvokeHandler(recv, from, type, reader);
    } else {
      InvokeHandler(recv, from, type, reader);
    }
  }
  pool_.Release(std::move(payload));
}

void Network::Send(NodeId from, NodeId to, uint32_t type,
                   std::vector<uint8_t> payload) {
  Node* sender = node(from);
  Node* receiver = node(to);
  if (!sender->alive()) return;  // a crashed node sends nothing
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  LinkCounters* lc =
      metrics_ != nullptr ? &link_counters_[LinkKey(from, to)] : nullptr;
  if (lc != nullptr) {
    ++lc->attempts;
    lc->bytes += payload.size();
  }

  bool dropped_at_send = false;
  if (partitioned_ && !CanCommunicate(from, to)) {
    ++stats_.messages_dropped_partition;
    dropped_at_send = true;
  } else if (!cut_links_.empty() && LinkCut(from, to)) {
    ++stats_.messages_dropped_link;
    dropped_at_send = true;
  } else if (loss_rate_ > 0 && rng_.Bernoulli(loss_rate_)) {
    ++stats_.messages_dropped_loss;
    dropped_at_send = true;
  }
  if (dropped_at_send) {
    if (lc != nullptr) ++lc->dropped_at_send;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtSend);
    }
    if (tracer_ != nullptr) {
      tracer_->OnMessageDroppedAtSend(env_->Now(), from, to, type,
                                      payload.size(), tracer_->current());
    }
    pool_.Release(std::move(payload));
    return;
  }
  if (tap_) tap_(env_->Now(), from, to, type, payload.size(), TapEvent::kSent);

  if (duplicate_rate_ > 0 && rng_.Bernoulli(duplicate_rate_)) {
    // Inject a copy with an independently sampled latency; it races the
    // original and may arrive first (duplication implies reordering).
    ++stats_.messages_duplicated;
    if (lc != nullptr) ++lc->duplicated;
    std::vector<uint8_t> copy = pool_.Acquire();
    copy.assign(payload.begin(), payload.end());
    const Duration dup_latency = ScaledLatency(sender, receiver);
    if (tracer_ == nullptr) {
      env_->ScheduleMessage(dup_latency, from, to, type,
                            [this, from, to, type,
                             payload = std::move(copy)]() mutable {
                              Deliver(from, to, type, std::move(payload));
                            });
    } else {
      // The duplicate gets its own message record (it fires its own
      // terminal tap event) carrying the same causal context.
      const uint64_t rec = tracer_->OnMessageSent(
          env_->Now(), from, to, type, copy.size(), tracer_->current());
      env_->ScheduleMessage(dup_latency, from, to, type,
                            [this, from, to, type, rec,
                             payload = std::move(copy)]() mutable {
                              Deliver(from, to, type, std::move(payload), rec);
                            });
    }
  }

  const Duration latency = ScaledLatency(sender, receiver);
  if (tracer_ == nullptr) {
    // The delivery closure (48 bytes: this + ids + type + the payload vector)
    // fits SimCallback's inline buffer, and the payload returns to the pool
    // whether the message is delivered or dropped in flight. Deliveries go
    // through ScheduleMessage so an attached schedule oracle may reorder
    // them; with no oracle it is a plain Schedule.
    env_->ScheduleMessage(latency, from, to, type,
                          [this, from, to, type,
                           payload = std::move(payload)]() mutable {
                            Deliver(from, to, type, std::move(payload));
                          });
  } else {
    // Traced sends carry the sender's context out-of-band: the record id
    // rides the (heap-fallback) closure, never the payload bytes, so the
    // wire format and every RNG draw are identical with tracing off.
    const uint64_t rec = tracer_->OnMessageSent(
        env_->Now(), from, to, type, payload.size(), tracer_->current());
    env_->ScheduleMessage(latency, from, to, type,
                          [this, from, to, type, rec,
                           payload = std::move(payload)]() mutable {
                            Deliver(from, to, type, std::move(payload), rec);
                          });
  }
}

void Network::Crash(NodeId id) {
  Node* n = node(id);
  if (!n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) CRASHED", FormatDuration(env_->Now()).c_str(),
                 id, RegionName(n->region()));
  n->alive_ = false;
  ++n->epoch_;
  n->active_timers_.clear();
  n->HandleCrash();
}

void Network::Recover(NodeId id) {
  Node* n = node(id);
  if (n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) RECOVERED",
                 FormatDuration(env_->Now()).c_str(), id,
                 RegionName(n->region()));
  n->alive_ = true;
  ++n->epoch_;
  n->HandleRecover();
}

void Network::SetPartition(const std::vector<std::vector<NodeId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(),
            static_cast<int>(groups.size()));
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) {
      SAMYA_CHECK_GE(id, 0);
      SAMYA_CHECK_LT(static_cast<size_t>(id), partition_group_.size());
      partition_group_[static_cast<size_t>(id)] = static_cast<int>(g);
    }
  }
  SAMYA_LOG_INFO("t=%s network partitioned into %zu group(s)",
                 FormatDuration(env_->Now()).c_str(), groups.size());
}

void Network::ClearPartition() {
  partitioned_ = false;
  SAMYA_LOG_INFO("t=%s network partition healed",
                 FormatDuration(env_->Now()).c_str());
}

uint64_t Network::ArmTimer(Node* n, Duration delay, uint64_t token) {
  const uint64_t timer_id = n->next_timer_id_++;
  n->active_timers_.insert(timer_id);
  const uint64_t epoch = n->epoch_;
  // The arming context travels into the timer so causality survives
  // self-scheduled continuations (e.g. Avantan retry timers). The 16-byte
  // POD context lands the closure at exactly 48 bytes: still inline, still
  // trivially copyable. The network is reached via n->network_ (not a
  // captured `this`) to stay inside that budget.
  const obs::TraceContext ctx =
      tracer_ != nullptr ? tracer_->current() : obs::TraceContext{};
  env_->Schedule(delay, [n, timer_id, token, epoch, ctx]() {
    if (!n->alive()) return;
    if (n->epoch_ != epoch) return;  // node crashed/recovered since arming
    if (n->active_timers_.erase(timer_id) == 0) return;  // cancelled
    Network* net = n->network_;
    obs::Tracer::ContextGuard guard(ctx.valid() ? net->tracer_ : nullptr,
                                    ctx);
    if (net->profiler_ == nullptr) {
      n->HandleTimer(token);
    } else {
      const int64_t t0 = obs::EventLoopProfiler::NowNs();
      n->HandleTimer(token);
      net->profiler_->AccountTimer(obs::EventLoopProfiler::NowNs() - t0);
    }
  });
  return timer_id;
}

}  // namespace samya::sim
