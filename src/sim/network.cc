#include "sim/network.h"

#include "common/logging.h"
#include "common/macros.h"
#include "sim/pdes.h"

namespace samya::sim {

const char* TapEventName(TapEvent ev) {
  switch (ev) {
    case TapEvent::kSent:
      return "sent";
    case TapEvent::kDroppedAtSend:
      return "dropped_at_send";
    case TapEvent::kDelivered:
      return "delivered";
    case TapEvent::kDroppedAtDelivery:
      return "dropped_at_delivery";
  }
  return "unknown";
}

Network::Network(SimEnvironment* env, LatencyModel model)
    : env_(env), model_(model), rng_(env->rng().Fork(0x6e657477)),
      shards_(1) {}

void Network::Register(Node* node, SimEnvironment* env, uint32_t shard) {
  SAMYA_CHECK_EQ(node->id(), static_cast<NodeId>(nodes_.size()));
  node->network_ = this;
  node->env_ = env;
  node->rng_ = rng_.Fork(0x6e6f6465 + static_cast<uint64_t>(node->id()));
  // The per-sender network stream: every loss/duplication/latency draw for
  // this node's sends comes from here, in the node's own send order.
  send_rngs_.push_back(rng_.Fork(0x736e6472 + static_cast<uint64_t>(node->id())));
  shard_of_.push_back(shard);
  nodes_.push_back(node);
  partition_group_.push_back(0);
}

void Network::ForceSerial() {
  coord_ = nullptr;
  std::fill(shard_of_.begin(), shard_of_.end(), 0u);
  for (Node* n : nodes_) n->env_ = env_;
}

void Network::EnablePdes(PdesCoordinator* coord, size_t num_partitions) {
  SAMYA_CHECK(coord != nullptr);
  SAMYA_CHECK_GE(num_partitions, 1u);
  // Before the first message: shard 0's counters must still be zero, so
  // splitting state now loses nothing.
  SAMYA_CHECK_EQ(shards_[0].stats.messages_sent, 0u);
  coord_ = coord;
  shards_.resize(num_partitions);
}

Node* Network::node(NodeId id) const {
  SAMYA_CHECK_GE(id, 0);
  SAMYA_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

bool Network::IsAlive(NodeId id) const { return node(id)->alive(); }

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  return partition_group_[static_cast<size_t>(a)] ==
         partition_group_[static_cast<size_t>(b)];
}

bool Network::LinkCut(NodeId from, NodeId to) const {
  return cut_links_.contains(LinkKey(from, to));
}

void Network::CutLink(NodeId from, NodeId to) {
  cut_links_.insert(LinkKey(from, to));
  SAMYA_LOG_INFO("t=%s link %d->%d CUT", FormatDuration(env_->Now()).c_str(),
                 from, to);
}

void Network::RestoreLink(NodeId from, NodeId to) {
  cut_links_.erase(LinkKey(from, to));
  SAMYA_LOG_INFO("t=%s link %d->%d restored",
                 FormatDuration(env_->Now()).c_str(), from, to);
}

void Network::SetLinkDelayFactor(NodeId from, NodeId to, double factor) {
  SAMYA_CHECK_GT(factor, 0.0);
  if (factor == 1.0) {
    link_delay_factor_.erase(LinkKey(from, to));
  } else {
    link_delay_factor_[LinkKey(from, to)] = factor;
  }
}

void Network::ClearLinkFaults() {
  cut_links_.clear();
  link_delay_factor_.clear();
}

Duration Network::ScaledLatency(Node* sender, Node* receiver, Rng& rng) {
  const Duration base = model_.Sample(sender->region(), receiver->region(), rng);
  double factor = delay_factor_;
  if (!link_delay_factor_.empty()) {
    auto it = link_delay_factor_.find(LinkKey(sender->id(), receiver->id()));
    if (it != link_delay_factor_.end()) factor *= it->second;
  }
  if (factor == 1.0) return base;
  const double scaled = static_cast<double>(base) * factor;
  return scaled < 1.0 ? Duration{1} : static_cast<Duration>(scaled);
}

void Network::InvokeHandler(Node* recv, NodeId from, uint32_t type,
                            BufferReader& reader,
                            obs::EventLoopProfiler* profiler) {
  if (profiler == nullptr) {
    recv->HandleMessage(from, type, reader);
  } else {
    const int64_t t0 = obs::EventLoopProfiler::NowNs();
    recv->HandleMessage(from, type, reader);
    profiler->AccountMessage(type, obs::EventLoopProfiler::NowNs() - t0);
  }
}

void Network::Deliver(NodeId from, NodeId to, uint32_t type,
                      std::vector<uint8_t> payload, uint64_t rec) {
  Node* recv = node(to);
  // Entering node code: subsequent Schedule/Send key allocations belong to
  // the receiver's causal stream (see StreamKeyTable).
  recv->env_->SetCurrentStream(static_cast<uint32_t>(to) + 1);
  NetShard& shard = shards_[shard_of_[static_cast<size_t>(to)]];
  LinkCounters* lc =
      shard.metrics != nullptr ? &shard.link_counters[LinkKey(from, to)]
                               : nullptr;
  bool dropped = true;
  if (!recv->alive()) {
    ++shard.stats.messages_dropped_crashed;
  } else if (partitioned_ && !CanCommunicate(from, to)) {
    // A partition that formed while the message was in flight also cuts it.
    ++shard.stats.messages_dropped_partition;
  } else if (!cut_links_.empty() && LinkCut(from, to)) {
    // Same rule for a link cut that formed mid-flight.
    ++shard.stats.messages_dropped_link;
  } else {
    dropped = false;
  }

  if (dropped) {
    if (lc != nullptr) ++lc->dropped_at_delivery;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtDelivery);
    }
    if (rec != kNoMsgRecord) {
      tracer_->OnMessageDroppedAtDelivery(rec, env_->Now());
    }
  } else {
    ++shard.stats.messages_delivered;
    if (lc != nullptr) ++lc->delivered;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(), TapEvent::kDelivered);
    }
    BufferReader reader(payload);
    if (rec != kNoMsgRecord) {
      tracer_->OnMessageDelivered(rec, env_->Now());
      // Install the sender's context around the handler so spans the
      // receiver opens parent correctly across the network hop.
      obs::Tracer::ContextGuard guard(tracer_, tracer_->MessageContext(rec));
      InvokeHandler(recv, from, type, reader, shard.profiler);
    } else {
      InvokeHandler(recv, from, type, reader, shard.profiler);
    }
  }
  shard.pool.Release(std::move(payload));
}

void Network::DispatchDelivery(Node* sender, Node* receiver, uint32_t type,
                               std::vector<uint8_t> payload, uint64_t rec,
                               Duration latency) {
  SimEnvironment* env = sender->env_;
  const NodeId from = sender->id();
  const NodeId to = receiver->id();
  if (shard_of_[static_cast<size_t>(from)] ==
      shard_of_[static_cast<size_t>(to)]) {
    // Same partition (always, for serial clusters): straight onto the
    // sender's event loop. The delivery closure (48 bytes: this + ids +
    // type + the payload vector) fits SimCallback's inline buffer, and the
    // payload returns to the pool whether the message is delivered or
    // dropped in flight. Deliveries go through ScheduleMessage so an
    // attached schedule oracle may reorder them; with no oracle it is a
    // plain Schedule.
    if (rec == kNoMsgRecord) {
      env->ScheduleMessage(latency, from, to, type,
                           [this, from, to, type,
                            payload = std::move(payload)]() mutable {
                             Deliver(from, to, type, std::move(payload));
                           });
    } else {
      // Traced sends carry the sender's context out-of-band: the record id
      // rides the (heap-fallback) closure, never the payload bytes, so the
      // wire format and every RNG draw are identical with tracing off.
      env->ScheduleMessage(latency, from, to, type,
                           [this, from, to, type, rec,
                            payload = std::move(payload)]() mutable {
                             Deliver(from, to, type, std::move(payload), rec);
                           });
    }
    return;
  }
  // Cross-partition: key the event on the sender's stream *now* (so the key
  // sequence matches the serial run exactly) and hand it to the receiving
  // partition's mailbox; the window barrier guarantees it arrives before
  // the receiver's clock reaches it. Tracing forces the serial path, so
  // only the untraced closure shape exists here.
  SAMYA_CHECK_EQ(rec, kNoMsgRecord);
  if (latency < 0) latency = 0;
  Event e;
  e.time = env->Now() + latency;
  e.seq = env->AllocKey();
  e.fn = [this, from, to, type, payload = std::move(payload)]() mutable {
    Deliver(from, to, type, std::move(payload));
  };
  coord_->EnqueueRemote(shard_of_[static_cast<size_t>(from)],
                        shard_of_[static_cast<size_t>(to)], std::move(e));
}

void Network::Send(NodeId from, NodeId to, uint32_t type,
                   std::vector<uint8_t> payload) {
  Node* sender = node(from);
  Node* receiver = node(to);
  if (!sender->alive()) return;  // a crashed node sends nothing
  NetShard& shard = shards_[shard_of_[static_cast<size_t>(from)]];
  Rng& send_rng = send_rngs_[static_cast<size_t>(from)];
  ++shard.stats.messages_sent;
  shard.stats.bytes_sent += payload.size();
  LinkCounters* lc =
      shard.metrics != nullptr ? &shard.link_counters[LinkKey(from, to)]
                               : nullptr;
  if (lc != nullptr) {
    ++lc->attempts;
    lc->bytes += payload.size();
  }

  bool dropped_at_send = false;
  if (partitioned_ && !CanCommunicate(from, to)) {
    ++shard.stats.messages_dropped_partition;
    dropped_at_send = true;
  } else if (!cut_links_.empty() && LinkCut(from, to)) {
    ++shard.stats.messages_dropped_link;
    dropped_at_send = true;
  } else if (loss_rate_ > 0 && send_rng.Bernoulli(loss_rate_)) {
    ++shard.stats.messages_dropped_loss;
    dropped_at_send = true;
  }
  if (dropped_at_send) {
    if (lc != nullptr) ++lc->dropped_at_send;
    if (tap_) {
      tap_(env_->Now(), from, to, type, payload.size(),
           TapEvent::kDroppedAtSend);
    }
    if (tracer_ != nullptr) {
      tracer_->OnMessageDroppedAtSend(env_->Now(), from, to, type,
                                      payload.size(), tracer_->current());
    }
    shard.pool.Release(std::move(payload));
    return;
  }
  if (tap_) tap_(env_->Now(), from, to, type, payload.size(), TapEvent::kSent);

  if (duplicate_rate_ > 0 && send_rng.Bernoulli(duplicate_rate_)) {
    // Inject a copy with an independently sampled latency; it races the
    // original and may arrive first (duplication implies reordering).
    ++shard.stats.messages_duplicated;
    if (lc != nullptr) ++lc->duplicated;
    std::vector<uint8_t> copy = shard.pool.Acquire();
    copy.assign(payload.begin(), payload.end());
    const Duration dup_latency = ScaledLatency(sender, receiver, send_rng);
    uint64_t dup_rec = kNoMsgRecord;
    if (tracer_ != nullptr) {
      // The duplicate gets its own message record (it fires its own
      // terminal tap event) carrying the same causal context.
      dup_rec = tracer_->OnMessageSent(env_->Now(), from, to, type,
                                       copy.size(), tracer_->current());
    }
    DispatchDelivery(sender, receiver, type, std::move(copy), dup_rec,
                     dup_latency);
  }

  const Duration latency = ScaledLatency(sender, receiver, send_rng);
  uint64_t rec = kNoMsgRecord;
  if (tracer_ != nullptr) {
    rec = tracer_->OnMessageSent(env_->Now(), from, to, type, payload.size(),
                                 tracer_->current());
  }
  DispatchDelivery(sender, receiver, type, std::move(payload), rec, latency);
}

void Network::Crash(NodeId id) {
  Node* n = node(id);
  if (!n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) CRASHED", FormatDuration(env_->Now()).c_str(),
                 id, RegionName(n->region()));
  n->alive_ = false;
  ++n->epoch_;
  n->active_timers_.clear();
  // Crash handling is node code: anything it schedules keys on the node's
  // causal stream, whether the crash came from the serial loop or a PDES
  // barrier.
  n->env_->SetCurrentStream(static_cast<uint32_t>(id) + 1);
  n->HandleCrash();
}

void Network::Recover(NodeId id) {
  Node* n = node(id);
  if (n->alive()) return;
  SAMYA_LOG_INFO("t=%s node %d (%s) RECOVERED",
                 FormatDuration(env_->Now()).c_str(), id,
                 RegionName(n->region()));
  n->alive_ = true;
  ++n->epoch_;
  n->env_->SetCurrentStream(static_cast<uint32_t>(id) + 1);
  n->HandleRecover();
}

void Network::SetPartition(const std::vector<std::vector<NodeId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(),
            static_cast<int>(groups.size()));
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) {
      SAMYA_CHECK_GE(id, 0);
      SAMYA_CHECK_LT(static_cast<size_t>(id), partition_group_.size());
      partition_group_[static_cast<size_t>(id)] = static_cast<int>(g);
    }
  }
  SAMYA_LOG_INFO("t=%s network partitioned into %zu group(s)",
                 FormatDuration(env_->Now()).c_str(), groups.size());
}

void Network::ClearPartition() {
  partitioned_ = false;
  SAMYA_LOG_INFO("t=%s network partition healed",
                 FormatDuration(env_->Now()).c_str());
}

uint64_t Network::ArmTimer(Node* n, Duration delay, uint64_t token) {
  const uint64_t timer_id = n->next_timer_id_++;
  n->active_timers_.insert(timer_id);
  const uint64_t epoch = n->epoch_;
  // The arming context travels into the timer so causality survives
  // self-scheduled continuations (e.g. Avantan retry timers). The 16-byte
  // POD context lands the closure at exactly 48 bytes: still inline, still
  // trivially copyable. The network is reached via n->network_ (not a
  // captured `this`) to stay inside that budget.
  const obs::TraceContext ctx =
      tracer_ != nullptr ? tracer_->current() : obs::TraceContext{};
  n->env_->Schedule(delay, [n, timer_id, token, epoch, ctx]() {
    if (!n->alive()) return;
    if (n->epoch_ != epoch) return;  // node crashed/recovered since arming
    if (n->active_timers_.erase(timer_id) == 0) return;  // cancelled
    Network* net = n->network_;
    // Timer fire is an entry into node code: key allocations inside the
    // handler belong to the node's causal stream.
    n->env_->SetCurrentStream(static_cast<uint32_t>(n->id()) + 1);
    obs::Tracer::ContextGuard guard(ctx.valid() ? net->tracer_ : nullptr,
                                    ctx);
    obs::EventLoopProfiler* prof =
        net->shards_[net->shard_of_[static_cast<size_t>(n->id())]].profiler;
    if (prof == nullptr) {
      n->HandleTimer(token);
    } else {
      const int64_t t0 = obs::EventLoopProfiler::NowNs();
      n->HandleTimer(token);
      prof->AccountTimer(obs::EventLoopProfiler::NowNs() - t0);
    }
  });
  return timer_id;
}

}  // namespace samya::sim
