#include "sim/pdes.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/macros.h"
#include "sim/network.h"
#include "sim/node.h"

namespace samya::sim {
namespace {

constexpr SimTime kMaxSimTime = std::numeric_limits<SimTime>::max();

/// Smallest lookahead worth parallelizing: below this, windows are so short
/// that barrier overhead dominates and the serial loop wins anyway.
constexpr Duration kMinUsableLookahead = 2000;  // 2 ms simulated

}  // namespace

PdesCoordinator::PdesCoordinator(SimEnvironment* primary, uint64_t seed,
                                 int workers)
    : primary_(primary), seed_(seed), workers_(workers) {
  SAMYA_CHECK_GE(workers_, 2);
}

PdesCoordinator::~PdesCoordinator() = default;

std::pair<SimEnvironment*, uint32_t> PdesCoordinator::PartitionFor(
    Region region) {
  SAMYA_CHECK(!finalized_);
  for (size_t p = 0; p < partition_region_.size(); ++p) {
    if (partition_region_[p] == region) {
      return {envs_[p], static_cast<uint32_t>(p)};
    }
  }
  partition_region_.push_back(region);
  if (envs_.empty()) {
    envs_.push_back(primary_);
  } else {
    // The partition environment's own RNG is never drawn from (node and
    // network streams fork from the primary's root), but seed it
    // distinctly anyway.
    auto env = std::make_unique<SimEnvironment>(
        seed_ ^ (0x9e3779b97f4a7c15ull * envs_.size()));
    env->ShareStreamTable(primary_->stream_table());
    env->set_global_sink(this);
    envs_.push_back(env.get());
    extra_envs_.push_back(std::move(env));
  }
  return {envs_.back(), static_cast<uint32_t>(envs_.size() - 1)};
}

void PdesCoordinator::ScheduleGlobal(SimTime t, uint64_t key,
                                     SimCallback&& fn) {
  global_queue_.Push(t, key, std::move(fn));
}

void PdesCoordinator::EnqueueRemote(uint32_t src, uint32_t dst, Event&& e) {
  // Exclusive access: either the claim holder of partition `src` during a
  // phase, or the main thread at a barrier (workers quiescent).
  rt_[src]->outbox[dst].push_back(std::move(e));
}

void PdesCoordinator::EnsureSerial(std::string reason) {
  if (!fallback_reason_.empty()) return;
  SAMYA_CHECK(!reason.empty());
  fallback_reason_ = std::move(reason);
  SAMYA_LOG_INFO("pdes: running serial: %s", fallback_reason_.c_str());
  primary_->set_global_sink(nullptr);
  for (auto& env : extra_envs_) env->set_global_sink(nullptr);
  // Move every diverted driver event back onto the primary loop; the keys
  // travel with the events, so ordering is untouched.
  std::vector<Event> pending;
  global_queue_.ExtractUntil(kMaxSimTime, &pending);
  if (finalized_) {
    // Between-runs barrier: every environment agrees on the clock and no
    // claim is live, so partition queues and mailboxes can be folded back
    // into the primary loop wholesale.
    for (auto& env : extra_envs_) {
      env->ExtractEventsUntil(kMaxSimTime, &pending);
    }
    for (auto& rt : rt_) {
      for (auto& box : rt->inbox) {
        if (box == nullptr) continue;
        for (Event& e : box->events) pending.push_back(std::move(e));
        box->events.clear();
      }
      for (auto& ob : rt->outbox) {
        for (Event& e : ob) pending.push_back(std::move(e));
        ob.clear();
      }
    }
  }
  primary_->InjectEvents(&pending);
  if (net_ != nullptr) net_->ForceSerial();
}

void PdesCoordinator::Finalize(size_t num_nodes) {
  SAMYA_CHECK(!finalized_);
  finalized_ = true;
  // Pre-size the shared key table: worker threads must never grow it.
  primary_->stream_table()->Reserve(num_nodes + 1);
  if (net_ == nullptr) {
    EnsureSerial("no network attached");
    return;
  }
  if (primary_->oracle() != nullptr) {
    EnsureSerial("schedule oracle attached: exploration needs the serial loop");
    return;
  }
  if (net_->tracer() != nullptr || net_->has_message_tap()) {
    EnsureSerial("a tracer or message tap observes global event order");
    return;
  }
  if (envs_.size() < 2) {
    EnsureSerial("fewer than two region partitions");
    return;
  }
  if (net_->AnyDelayFactorBelowOne()) {
    EnsureSerial("a delay factor below 1 undercuts the latency lower bound");
    return;
  }
  Duration l_min = kMaxSimTime;
  for (size_t i = 0; i < partition_region_.size(); ++i) {
    for (size_t j = 0; j < partition_region_.size(); ++j) {
      if (i == j) continue;
      l_min = std::min(
          l_min, net_->latency_model()->Base(partition_region_[i],
                                             partition_region_[j]));
    }
  }
  if (l_min < kMinUsableLookahead) {
    EnsureSerial("cross-partition base latency too small for a window");
    return;
  }
  // Conservative window: cross-partition messages take >= l_min of
  // simulated time, so with W = l_min / 2 a send from window k arrives in
  // window >= k + 2 — a partition may run `lead = 2` windows past the
  // slowest other partition and still never receive from its past.
  window_ = l_min / 2;
  lead_ = 2;
  workers_ = std::min(workers_, static_cast<int>(envs_.size()));
  net_->EnablePdes(this, envs_.size());

  const bool want_metrics = net_->metrics() != nullptr;
  const bool want_profiler = primary_->profiler() != nullptr;
  part_metrics_.resize(envs_.size());
  part_profilers_.resize(envs_.size());
  for (size_t p = 1; p < envs_.size(); ++p) {
    obs::MetricsRegistry* metrics = nullptr;
    obs::EventLoopProfiler* profiler = nullptr;
    if (want_metrics) {
      part_metrics_[p] = std::make_unique<obs::MetricsRegistry>();
      metrics = part_metrics_[p].get();
    }
    if (want_profiler) {
      part_profilers_[p] = std::make_unique<obs::EventLoopProfiler>();
      profiler = part_profilers_[p].get();
      envs_[p]->set_profiler(profiler);
    }
    net_->set_shard_observability(static_cast<uint32_t>(p), metrics, profiler);
  }

  rt_.clear();
  for (size_t p = 0; p < envs_.size(); ++p) {
    auto rt = std::make_unique<PartitionRuntime>();
    rt->inbox.resize(envs_.size());
    for (size_t s = 0; s < envs_.size(); ++s) {
      if (s != p) rt->inbox[s] = std::make_unique<Mailbox>();
    }
    rt->outbox.resize(envs_.size());
    rt_.push_back(std::move(rt));
  }
  SAMYA_LOG_INFO(
      "pdes: %zu partitions, %d workers, window %s (lead %lld)",
      envs_.size(), workers_, FormatDuration(window_).c_str(),
      static_cast<long long>(lead_));
}

uint64_t PdesCoordinator::TotalEventsExecuted() const {
  uint64_t total = primary_->events_executed();
  for (const auto& env : extra_envs_) total += env->events_executed();
  return total;
}

void PdesCoordinator::FinishRun() {
  if (obs_merged_) return;
  obs_merged_ = true;
  obs::MetricsRegistry* primary_metrics =
      net_ != nullptr ? net_->metrics() : nullptr;
  obs::EventLoopProfiler* primary_profiler = primary_->profiler();
  // Partition order: deterministic merge, independent of which worker ran
  // which partition when.
  for (size_t p = 1; p < part_metrics_.size(); ++p) {
    if (part_metrics_[p] != nullptr && primary_metrics != nullptr) {
      primary_metrics->Merge(*part_metrics_[p]);
    }
  }
  for (size_t p = 1; p < part_profilers_.size(); ++p) {
    if (part_profilers_[p] != nullptr && primary_profiler != nullptr) {
      primary_profiler->Merge(*part_profilers_[p]);
    }
  }
}

void PdesCoordinator::RunUntil(SimTime t) {
  SAMYA_CHECK(finalized_);
  if (active()) {
    // Conditions can change between Setup and Run (or between runs): a tap
    // or tracer attached late, or a delay factor dropped below 1, each
    // invalidate parallel execution from here on.
    if (net_->tracer() != nullptr || net_->has_message_tap()) {
      EnsureSerial("a tracer or message tap observes global event order");
    } else if (primary_->oracle() != nullptr) {
      EnsureSerial("schedule oracle attached: exploration needs the serial loop");
    } else if (net_->AnyDelayFactorBelowOne()) {
      EnsureSerial("a delay factor below 1 undercuts the latency lower bound");
    }
  }
  if (!active()) {
    primary_->RunUntil(t);
    return;
  }
  SAMYA_CHECK(!obs_merged_);  // FinishRun already folded partition obs
  SAMYA_CHECK_GE(t, primary_->Now());
  SimTime phase_from = primary_->Now();
  for (;;) {
    const SimTime next_global =
        global_queue_.empty() ? kMaxSimTime : global_queue_.NextTime();
    if (next_global <= t) {
      // Serial sub-time order at equal times is: stream-0 (driver) events
      // first — their keys sort below every node stream — then node
      // events. The phase below runs node events strictly *before* the
      // barrier time, the barrier runs the driver events, and the next
      // phase starts at the barrier time: exactly the serial order.
      RunPhase(phase_from, next_global);
      RunGlobalOpsAt(next_global);
      phase_from = next_global;
      if (net_->AnyDelayFactorBelowOne()) {
        EnsureSerial("a delay factor below 1 undercuts the latency lower bound");
        primary_->RunUntil(t);
        return;
      }
    } else {
      RunPhase(phase_from, t + 1);  // events at exactly t run (serial rule)
      break;
    }
  }
  for (SimEnvironment* env : envs_) env->AdvanceNowTo(t);
}

void PdesCoordinator::RunGlobalOpsAt(SimTime t) {
  for (SimEnvironment* env : envs_) {
    env->AdvanceNowTo(t);
    env->SetCurrentStream(0);
  }
  while (!global_queue_.empty() && global_queue_.NextTime() <= t) {
    Event e = global_queue_.Pop();
    SAMYA_CHECK_EQ(e.time, t);
    // Same accounting as a popped event on the serial loop.
    primary_->RunExternal(std::move(e.fn));
  }
  // A barrier op may have sent cross-partition messages (e.g. a recovery
  // protocol kicking off). Workers are quiescent, so flush the outboxes
  // straight into the mailboxes; the next phase's first drains pick them
  // up, and the heap restores (time, key) order.
  for (size_t p = 0; p < rt_.size(); ++p) {
    for (size_t d = 0; d < rt_.size(); ++d) {
      std::vector<Event>& outbox = rt_[p]->outbox[d];
      if (outbox.empty()) continue;
      Mailbox& box = *rt_[d]->inbox[p];
      for (Event& e : outbox) box.events.push_back(std::move(e));
      outbox.clear();
    }
  }
}

void PdesCoordinator::RunPhase(SimTime start, SimTime end_exclusive) {
  if (end_exclusive <= start) return;
  phase_start_ = start;
  phase_end_ = end_exclusive;
  const int64_t span = end_exclusive - start;
  last_window_ = (span + window_ - 1) / window_ - 1;
  for (auto& rt : rt_) {
    rt->completed.store(-1, std::memory_order_relaxed);
    rt->claimed.store(false, std::memory_order_relaxed);
  }
  done_count_.store(0, std::memory_order_relaxed);
  // Spawn-per-phase: thread creation/join gives happens-before for all the
  // barrier's single-threaded mutations (fault state, phase bounds, node
  // state touched by global ops) without any per-window locking.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    pool.emplace_back([this] { WorkerLoop(); });
  }
  WorkerLoop();  // the main thread is a worker too
  for (std::thread& th : pool) th.join();
  Logger::SetThreadSimClock(primary_->now_ptr());
}

void PdesCoordinator::WorkerLoop() {
  const int num_parts = static_cast<int>(envs_.size());
  int idle = 0;
  while (done_count_.load(std::memory_order_acquire) < num_parts) {
    // Claim the laggard: the unclaimed, unfinished partition with the
    // least progress — it gates everyone else's bound.
    int best = -1;
    int64_t best_completed = std::numeric_limits<int64_t>::max();
    for (int p = 0; p < num_parts; ++p) {
      PartitionRuntime& rt = *rt_[p];
      if (rt.claimed.load(std::memory_order_relaxed)) continue;
      const int64_t c = rt.completed.load(std::memory_order_relaxed);
      if (c >= last_window_) continue;
      if (c < best_completed) {
        best_completed = c;
        best = p;
      }
    }
    if (best < 0) {
      if (++idle > 64) {
        std::this_thread::yield();
        idle = 0;
      }
      continue;
    }
    PartitionRuntime& rt = *rt_[best];
    bool expected = false;
    // Acquire pairs with the previous holder's release: this worker sees
    // every mutation the last claim made to the partition's environment.
    if (!rt.claimed.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire)) {
      continue;
    }
    const int64_t cur = rt.completed.load(std::memory_order_relaxed);
    if (cur >= last_window_) {  // raced with the finishing claim
      rt.claimed.store(false, std::memory_order_release);
      continue;
    }
    int64_t min_other = std::numeric_limits<int64_t>::max();
    for (int q = 0; q < num_parts; ++q) {
      if (q == best) continue;
      min_other =
          std::min(min_other, rt_[q]->completed.load(std::memory_order_acquire));
    }
    const int64_t bound =
        min_other == std::numeric_limits<int64_t>::max()
            ? last_window_
            : std::min(last_window_, min_other + lead_);
    if (bound <= cur) {
      rt.claimed.store(false, std::memory_order_release);
      if (++idle > 64) {
        std::this_thread::yield();
        idle = 0;
      }
      continue;
    }
    idle = 0;
    ExecuteClaim(best, cur, bound);
    // Publish progress only after the claim's outboxes are flushed: a
    // reader seeing completed == bound may rely on every message from
    // windows <= bound being in its mailbox.
    rt.completed.store(bound, std::memory_order_release);
    if (bound >= last_window_) {
      done_count_.fetch_add(1, std::memory_order_acq_rel);
    }
    rt.claimed.store(false, std::memory_order_release);
  }
}

void PdesCoordinator::ExecuteClaim(int p, int64_t from, int64_t bound) {
  SimEnvironment* env = envs_[p];
  Logger::SetThreadSimClock(env->now_ptr());
  PartitionRuntime& rt = *rt_[static_cast<size_t>(p)];
  const int num_parts = static_cast<int>(envs_.size());
  // Drain mailboxes *after* computing the bound: everything senders
  // flushed for windows <= bound is in by now, and the conservative
  // condition guarantees nothing can still arrive for them.
  for (int s = 0; s < num_parts; ++s) {
    if (s == p) continue;
    Mailbox& box = *rt.inbox[s];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      if (!box.events.empty()) box.events.swap(rt.drain_scratch);
    }
    if (!rt.drain_scratch.empty()) {
      for (const Event& e : rt.drain_scratch) {
        // Conservative invariant: nothing arrives for a window that
        // already ran.
        SAMYA_CHECK_GE(e.time, phase_start_ + (from + 1) * window_);
      }
      env->InjectEvents(&rt.drain_scratch);  // clears the scratch
    }
  }
  for (int64_t j = from + 1; j <= bound; ++j) {
    const SimTime horizon =
        j == last_window_ ? phase_end_ : phase_start_ + (j + 1) * window_;
    env->RunWindow(horizon);
  }
  // Flush this claim's cross-partition sends before publishing progress.
  for (int d = 0; d < num_parts; ++d) {
    std::vector<Event>& outbox = rt.outbox[d];
    if (outbox.empty()) continue;
    Mailbox& box = *rt_[static_cast<size_t>(d)]->inbox[static_cast<size_t>(p)];
    std::lock_guard<std::mutex> lock(box.mu);
    for (Event& e : outbox) box.events.push_back(std::move(e));
    outbox.clear();
  }
}

}  // namespace samya::sim
