#include "sim/latency_model.h"

#include <cmath>

#include "common/macros.h"

namespace samya::sim {

const char* RegionName(Region r) {
  switch (r) {
    case Region::kUsWest1:
      return "us-west1";
    case Region::kUsCentral1:
      return "us-central1";
    case Region::kUsEast1:
      return "us-east1";
    case Region::kEuropeWest2:
      return "europe-west2";
    case Region::kAsiaEast2:
      return "asia-east2";
    case Region::kAustraliaSoutheast1:
      return "australia-southeast1";
    case Region::kSouthAmericaEast1:
      return "southamerica-east1";
  }
  return "?";
}

namespace {

// One-way latencies in milliseconds, approximately half of publicly measured
// GCP inter-region RTTs. Symmetric; diagonal is intra-region.
constexpr double kOneWayMs[kNumRegions][kNumRegions] = {
    //           usw1   usc1   use1   euw2  asia2   aus1   sa1
    /*usw1*/ {   0.3,  17.0,  30.0,  65.0,  75.0,  70.0,  95.0},
    /*usc1*/ {  17.0,   0.3,  15.0,  50.0,  85.0,  88.0,  73.0},
    /*use1*/ {  30.0,  15.0,   0.3,  40.0, 100.0, 100.0,  60.0},
    /*euw2*/ {  65.0,  50.0,  40.0,   0.3, 125.0, 132.0, 100.0},
    /*asia2*/{  75.0,  85.0, 100.0, 125.0,   0.3,  65.0, 150.0},
    /*aus1*/ {  70.0,  88.0, 100.0, 132.0,  65.0,   0.3, 150.0},
    /*sa1*/  {  95.0,  73.0,  60.0, 100.0, 150.0, 150.0,   0.3},
};

}  // namespace

LatencyModel::LatencyModel() {
  for (int i = 0; i < kNumRegions; ++i) {
    for (int j = 0; j < kNumRegions; ++j) {
      base_[i][j] = static_cast<Duration>(kOneWayMs[i][j] * kMillisecond);
      SAMYA_CHECK_EQ(kOneWayMs[i][j], kOneWayMs[j][i]);
    }
  }
}

}  // namespace samya::sim
