#ifndef SAMYA_SIM_NETWORK_H_
#define SAMYA_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/buffer_pool.h"
#include "sim/environment.h"
#include "sim/latency_model.h"
#include "sim/node.h"

namespace samya::sim {

/// Observation hook: called for every message send attempt. `delivered` is
/// false when the message was dropped at send time (loss/partition); drops
/// at delivery time (crashed receiver) are not re-reported.
using MessageTap = std::function<void(SimTime at, NodeId from, NodeId to,
                                      uint32_t type, size_t bytes,
                                      bool delivered)>;

/// Counters exposed for tests and experiment reports.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped_loss = 0;
  uint64_t messages_dropped_partition = 0;
  uint64_t messages_dropped_crashed = 0;
  uint64_t bytes_sent = 0;
};

/// \brief Simulated asynchronous geo-distributed network (§3.1's model:
/// messages may be delayed, dropped, or reordered; crash faults; partitions).
///
/// Messages are byte buffers; delivery latency is drawn from the
/// `LatencyModel` for the sender/receiver region pair. Partition groups cut
/// all communication between groups. Loss is Bernoulli per message.
class Network {
 public:
  Network(SimEnvironment* env, LatencyModel model);

  /// Registers a node; the node's id must equal its registration order.
  void Register(Node* node);

  /// Sends an encoded message. Called via Node::Send. The payload vector is
  /// recycled through `buffer_pool()` after delivery (or drop), so callers
  /// on the hot path should acquire it from the pool.
  void Send(NodeId from, NodeId to, uint32_t type,
            std::vector<uint8_t> payload);

  /// Crashes a node: invalidates its timers, runs HandleCrash, and drops all
  /// of its future deliveries until recovery.
  void Crash(NodeId id);

  /// Recovers a crashed node (runs HandleRecover).
  void Recover(NodeId id);

  /// Installs a partition: nodes in different groups cannot communicate.
  /// Nodes absent from every group land in an implicit final group together.
  void SetPartition(const std::vector<std::vector<NodeId>>& groups);

  /// Heals any partition.
  void ClearPartition();

  bool Partitioned() const { return partitioned_; }
  bool CanCommunicate(NodeId a, NodeId b) const;

  /// Probability in [0,1] that any given message is silently lost.
  void set_loss_rate(double p) { loss_rate_ = p; }
  double loss_rate() const { return loss_rate_; }

  Node* node(NodeId id) const;
  size_t num_nodes() const { return nodes_.size(); }
  bool IsAlive(NodeId id) const;

  SimEnvironment* env() { return env_; }
  LatencyModel* latency_model() { return &model_; }
  const NetworkStats& stats() const { return stats_; }
  BufferPool* buffer_pool() { return &pool_; }

  /// Installs a message tap (analysis/debugging; pass nullptr to remove).
  void set_message_tap(MessageTap tap) { tap_ = std::move(tap); }

  // Internal: used by Node to arm timers on the shared event loop.
  uint64_t ArmTimer(Node* node, Duration delay, uint64_t token);

 private:
  SimEnvironment* env_;
  LatencyModel model_;
  std::vector<Node*> nodes_;
  std::vector<int> partition_group_;  // per node; meaningful iff partitioned_
  bool partitioned_ = false;
  double loss_rate_ = 0.0;
  Rng rng_;
  NetworkStats stats_;
  BufferPool pool_;
  MessageTap tap_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_NETWORK_H_
