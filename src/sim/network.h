#ifndef SAMYA_SIM_NETWORK_H_
#define SAMYA_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/buffer_pool.h"
#include "common/flat_set64.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/environment.h"
#include "sim/latency_model.h"
#include "sim/node.h"

namespace samya::sim {

/// Lifecycle stage reported through the `MessageTap`.
///
/// Every `Send` from an alive sender fires exactly one of `kSent` (accepted
/// for transmission) or `kDroppedAtSend` (cut at send time by a partition,
/// link cut, or Bernoulli loss). A `kSent` message later fires exactly one of
/// `kDelivered` or `kDroppedAtDelivery` (receiver crashed, or a partition /
/// link cut formed while it was in flight). Duplicated copies fire their own
/// terminal event but no extra `kSent`.
enum class TapEvent : uint8_t {
  kSent,
  kDroppedAtSend,
  kDelivered,
  kDroppedAtDelivery,
};

const char* TapEventName(TapEvent ev);

/// Observation hook: called at each message lifecycle stage (see TapEvent).
using MessageTap = std::function<void(SimTime at, NodeId from, NodeId to,
                                      uint32_t type, size_t bytes,
                                      TapEvent event)>;

/// Counters exposed for tests and experiment reports.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped_loss = 0;
  uint64_t messages_dropped_partition = 0;
  uint64_t messages_dropped_crashed = 0;
  uint64_t messages_dropped_link = 0;  ///< one-way link cuts (send + in-flight)
  uint64_t messages_duplicated = 0;    ///< extra copies injected
  uint64_t bytes_sent = 0;
};

/// Per-directed-link counters, kept only while a `MetricsRegistry` is
/// attached (see `Network::set_observability`). Accounting is exclusive:
/// attempts + duplicated == dropped_at_send + delivered + dropped_at_delivery
/// once the queue drains (duplicate copies skip `attempts` but share the
/// terminal counters, mirroring the `MessageTap` contract).
struct LinkCounters {
  uint64_t attempts = 0;  ///< Sends from an alive sender (copies excluded)
  uint64_t duplicated = 0;
  uint64_t dropped_at_send = 0;
  uint64_t delivered = 0;
  uint64_t dropped_at_delivery = 0;
  uint64_t bytes = 0;  ///< payload bytes attempted on this link
};

class PdesCoordinator;

/// \brief Simulated asynchronous geo-distributed network (§3.1's model:
/// messages may be delayed, dropped, duplicated, or reordered; crash faults;
/// partitions; asymmetric link cuts; delay storms).
///
/// Messages are byte buffers; delivery latency is drawn from the
/// `LatencyModel` for the sender/receiver region pair, then scaled by the
/// global delay factor and any per-link factor. Partition groups cut all
/// communication between groups. A link cut severs one direction only. Loss
/// and duplication are Bernoulli per message.
///
/// Under conservative-window PDES (sim/pdes.h, DESIGN.md §11) the network's
/// mutable hot state — stats, buffer pool, link counters, obs sinks — lives
/// in per-partition *shards* so concurrent windows never share a cache line,
/// and latency/loss/duplication draws come from per-sender RNG streams so
/// the draw sequence depends only on each node's own send order, never on
/// how partitions interleave. A serial cluster is the degenerate single-
/// shard case and takes no extra branches on the send/deliver path.
class Network {
 public:
  Network(SimEnvironment* env, LatencyModel model);

  /// Registers a node; the node's id must equal its registration order.
  /// Events for the node run on `env` (the primary environment for serial
  /// clusters, its partition's environment under PDES) and its network-side
  /// state lives in shard `shard`.
  void Register(Node* node, SimEnvironment* env, uint32_t shard);
  void Register(Node* node) { Register(node, env_, 0); }

  /// Sends an encoded message. Called via Node::Send. The payload vector is
  /// recycled through `buffer_pool()` after delivery (or drop), so callers
  /// on the hot path should acquire it from the pool.
  void Send(NodeId from, NodeId to, uint32_t type,
            std::vector<uint8_t> payload);

  /// Crashes a node: invalidates its timers, runs HandleCrash, and drops all
  /// of its future deliveries until recovery.
  void Crash(NodeId id);

  /// Recovers a crashed node (runs HandleRecover).
  void Recover(NodeId id);

  /// Installs a partition: nodes in different groups cannot communicate.
  /// Nodes absent from every group land in an implicit final group together.
  void SetPartition(const std::vector<std::vector<NodeId>>& groups);

  /// Heals any partition.
  void ClearPartition();

  bool Partitioned() const { return partitioned_; }
  bool CanCommunicate(NodeId a, NodeId b) const;

  /// Cuts the directed link `from -> to`: messages in that direction drop
  /// (at send time, and in flight at delivery time). The reverse direction
  /// is unaffected, which models an asymmetric partition.
  void CutLink(NodeId from, NodeId to);

  /// Restores a previously cut directed link (no-op if not cut).
  void RestoreLink(NodeId from, NodeId to);

  /// True iff the directed link `from -> to` is currently cut.
  bool LinkCut(NodeId from, NodeId to) const;

  /// Multiplies the sampled latency of the directed link `from -> to` by
  /// `factor` (a "delay storm" on one link). `factor == 1.0` removes the
  /// override. Composes multiplicatively with the global delay factor.
  void SetLinkDelayFactor(NodeId from, NodeId to, double factor);

  /// Removes every link cut and per-link delay override.
  void ClearLinkFaults();

  /// Multiplies every sampled latency by `f` (global delay storm).
  void set_delay_factor(double f) { delay_factor_ = f; }
  double delay_factor() const { return delay_factor_; }

  /// Probability in [0,1] that any given message is silently lost.
  void set_loss_rate(double p) { loss_rate_ = p; }
  double loss_rate() const { return loss_rate_; }

  /// Probability in [0,1] that a transmitted message is delivered twice;
  /// the copy takes an independently sampled latency, so it may arrive
  /// before the original (reordering) or be dropped independently.
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }
  double duplicate_rate() const { return duplicate_rate_; }

  Node* node(NodeId id) const;
  size_t num_nodes() const { return nodes_.size(); }
  bool IsAlive(NodeId id) const;

  SimEnvironment* env() { return env_; }
  LatencyModel* latency_model() { return &model_; }

  /// Network-wide counters, summed across shards. Returned by value (the
  /// per-shard counters are the source of truth); `const auto&` binding at
  /// call sites still works via lifetime extension.
  NetworkStats stats() const {
    NetworkStats total = shards_[0].stats;
    for (size_t i = 1; i < shards_.size(); ++i) {
      const NetworkStats& s = shards_[i].stats;
      total.messages_sent += s.messages_sent;
      total.messages_delivered += s.messages_delivered;
      total.messages_dropped_loss += s.messages_dropped_loss;
      total.messages_dropped_partition += s.messages_dropped_partition;
      total.messages_dropped_crashed += s.messages_dropped_crashed;
      total.messages_dropped_link += s.messages_dropped_link;
      total.messages_duplicated += s.messages_duplicated;
      total.bytes_sent += s.bytes_sent;
    }
    return total;
  }

  /// Shard-0 buffer pool (the only pool for serial clusters).
  BufferPool* buffer_pool() { return &shards_[0].pool; }

  /// Acquires a send buffer from the sender's shard pool (Node::Send).
  std::vector<uint8_t> AcquireSendBuffer(NodeId from) {
    return shards_[shard_of_[static_cast<size_t>(from)]].pool.Acquire();
  }

  /// Installs a message tap (analysis/debugging; pass nullptr to remove).
  void set_message_tap(MessageTap tap) { tap_ = std::move(tap); }

  /// Attaches observability components (DESIGN.md §8); any may be null.
  ///  - tracer: records every message (out-of-band trace context; payload
  ///    bytes and RNG draws are untouched) and carries the sender's ambient
  ///    context to the receiver's handler and into armed timers.
  ///  - metrics: enables per-directed-link `LinkCounters`.
  ///  - profiler: attributes handler wall-time by message type / timer.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                         obs::EventLoopProfiler* profiler) {
    tracer_ = tracer;
    shards_[0].metrics = metrics;
    shards_[0].profiler = profiler;
  }

  obs::Tracer* tracer() const { return tracer_; }
  bool has_message_tap() const { return static_cast<bool>(tap_); }
  obs::MetricsRegistry* metrics() const { return shards_[0].metrics; }

  /// Metrics registry a node should record into: its shard's registry under
  /// PDES, the primary one otherwise. Null when metrics are off.
  obs::MetricsRegistry* metrics_for(NodeId id) const {
    return shards_[shard_of_[static_cast<size_t>(id)]].metrics;
  }

  /// Per-link counters keyed by `LinkKey`, merged across shards (each
  /// directed link is counted by exactly one shard — the sender's for send-
  /// side events, the receiver's for delivery — so merging just sums).
  /// Empty unless a metrics registry is attached. Returned by value; decode
  /// keys with `LinkKeyFrom` / `LinkKeyTo`.
  std::unordered_map<uint64_t, LinkCounters> link_counters() const {
    std::unordered_map<uint64_t, LinkCounters> total = shards_[0].link_counters;
    for (size_t i = 1; i < shards_.size(); ++i) {
      for (const auto& [key, lc] : shards_[i].link_counters) {
        LinkCounters& t = total[key];
        t.attempts += lc.attempts;
        t.duplicated += lc.duplicated;
        t.dropped_at_send += lc.dropped_at_send;
        t.delivered += lc.delivered;
        t.dropped_at_delivery += lc.dropped_at_delivery;
        t.bytes += lc.bytes;
      }
    }
    return total;
  }
  static NodeId LinkKeyFrom(uint64_t key) {
    return static_cast<NodeId>(key >> 32) - 1;
  }
  static NodeId LinkKeyTo(uint64_t key) {
    return static_cast<NodeId>(key & 0xffffffffu) - 1;
  }

  // Internal: used by Node to arm timers on the shared event loop.
  uint64_t ArmTimer(Node* node, Duration delay, uint64_t token);

  // --- PDES wiring (sim/pdes.h) ---------------------------------------------

  /// Splits hot state into `num_partitions` shards and routes cross-
  /// partition sends through `coord`'s mailboxes. Called once by the
  /// coordinator at finalize, before any message flows.
  void EnablePdes(PdesCoordinator* coord, size_t num_partitions);

  /// Serial fallback: re-points every node at the primary environment and
  /// collapses shard routing to shard 0. Installed obs shard pointers stay
  /// valid (the coordinator still merges them at run end).
  void ForceSerial();

  /// True iff the global factor or any per-link factor is below 1 — then
  /// observed latency can undercut the model's base, which invalidates the
  /// conservative-window lookahead.
  bool AnyDelayFactorBelowOne() const {
    if (delay_factor_ < 1.0) return true;
    for (const auto& [key, factor] : link_delay_factor_) {
      if (factor < 1.0) return true;
    }
    return false;
  }

  /// Installs partition `shard`'s obs sinks (coordinator-owned registries
  /// that merge into the primary ones in partition order at run end).
  void set_shard_observability(uint32_t shard, obs::MetricsRegistry* metrics,
                               obs::EventLoopProfiler* profiler) {
    shards_[shard].metrics = metrics;
    shards_[shard].profiler = profiler;
  }

  uint32_t shard_of(NodeId id) const {
    return shard_of_[static_cast<size_t>(id)];
  }
  size_t num_shards() const { return shards_.size(); }

 private:
  static uint64_t LinkKey(NodeId from, NodeId to) {
    // +1 keeps the key nonzero for every valid (from, to) pair, since
    // FlatSet64 reserves key 0 as its empty sentinel.
    return (static_cast<uint64_t>(static_cast<uint32_t>(from + 1)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(to + 1));
  }

  /// No traced message record: sentinel for the untraced delivery path.
  static constexpr uint64_t kNoMsgRecord = ~uint64_t{0};

  /// Per-partition slice of the network's mutable hot state. Cache-line
  /// aligned so concurrent partition windows never false-share. A serial
  /// cluster has exactly one shard.
  struct alignas(64) NetShard {
    NetworkStats stats;
    BufferPool pool;
    std::unordered_map<uint64_t, LinkCounters> link_counters;
    obs::MetricsRegistry* metrics = nullptr;
    obs::EventLoopProfiler* profiler = nullptr;
  };

  /// Samples link latency from `rng` (the sender's stream) and applies
  /// global and per-link delay factors.
  Duration ScaledLatency(Node* sender, Node* receiver, Rng& rng);

  /// Schedules a delivery closure: locally when sender and receiver share a
  /// partition, through the coordinator's mailboxes otherwise.
  void DispatchDelivery(Node* sender, Node* receiver, uint32_t type,
                        std::vector<uint8_t> payload, uint64_t rec,
                        Duration latency);

  /// Delivery-time half of `Send`: runs when a scheduled copy arrives.
  /// `rec` is the tracer's message record (kNoMsgRecord when untraced).
  void Deliver(NodeId from, NodeId to, uint32_t type,
               std::vector<uint8_t> payload,
               uint64_t rec = kNoMsgRecord);

  /// Runs the receiver's handler, timed when the profiler is attached.
  void InvokeHandler(Node* recv, NodeId from, uint32_t type,
                     BufferReader& reader, obs::EventLoopProfiler* profiler);

  SimEnvironment* env_;
  LatencyModel model_;
  std::vector<Node*> nodes_;
  std::vector<int> partition_group_;  // per node; meaningful iff partitioned_
  bool partitioned_ = false;
  double loss_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  double delay_factor_ = 1.0;
  FlatSet64 cut_links_;  // directed cuts, keyed by LinkKey(from, to)
  std::unordered_map<uint64_t, double> link_delay_factor_;
  Rng rng_;  ///< forking parent only; no per-message draws (see send_rngs_)
  /// Per-sender RNG streams for loss/duplication/latency draws. Draw order
  /// depends only on the sender's own send sequence, which is what makes
  /// parallel partition execution bit-identical to the serial loop.
  std::vector<Rng> send_rngs_;
  std::vector<uint32_t> shard_of_;  ///< per node; all 0 for serial clusters
  std::vector<NetShard> shards_;    ///< size 1 until EnablePdes
  PdesCoordinator* coord_ = nullptr;
  MessageTap tap_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_NETWORK_H_
