#ifndef SAMYA_SIM_EVENT_QUEUE_H_
#define SAMYA_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/macros.h"
#include "common/time.h"

namespace samya::sim {

/// Callback type for everything scheduled on the simulation loop. Move-only
/// with 48 bytes of inline storage: every closure the simulator's hot path
/// schedules (message delivery, timers, client arrivals) fits without a heap
/// allocation.
using SimCallback = InlineFunction<void()>;

/// A scheduled callback. Events at equal times fire in scheduling order
/// (FIFO by sequence number), which keeps runs deterministic.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  SimCallback fn;
};

/// \brief Min-heap of events ordered by (time, seq).
///
/// The heap itself holds only 16-byte POD keys — `{time, seq<<24|slot}` —
/// while the callbacks live in a parallel slot table that never moves.
/// Sift-downs, the dominant operation of a discrete-event loop, therefore
/// shuffle trivially-copyable keys (four per cache line) instead of ~90-byte
/// move-only events, and never touch a callback's move constructor. Freed
/// slots are recycled via a free list, so the steady-state pop-push cadence
/// allocates nothing.
///
/// Layout is a flat 4-ary heap rather than `std::priority_queue`'s binary
/// heap: half the tree depth, and the four children of a node share a cache
/// line. Sifts use hole-percolation — one move per level instead of a
/// three-move swap.
///
/// The simulation loop uses the two-phase `PopEntry` + `InvokeAndRecycle`
/// path; `Pop` (move the event out) remains for callers that want to hold
/// the event. Either way a callback is moved exactly twice in its lifetime:
/// into its slot at `Push`, out of it just before it runs.
class EventQueue {
 public:
  /// `seq` must be < 2^40 and unique per queue; ties in `time` fire in
  /// `seq` order.
  void Push(SimTime time, uint64_t seq, SimCallback&& fn) {
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      SAMYA_CHECK(slot < (1u << kSlotBits));
      slots_.push_back(std::move(fn));
    }
    SAMYA_CHECK(seq < (1ull << (64 - kSlotBits)));
    heap_.emplace_back();  // open a hole at the end
    SiftUp(heap_.size() - 1, Entry{time, (seq << kSlotBits) | slot});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  SimTime NextTime() const {
    SAMYA_CHECK(!heap_.empty());
    return heap_[0].time;
  }

  /// Removes the top event and moves it out.
  Event Pop() {
    const Popped p = PopEntry();
    Event out{p.time, p.seq, std::move(slots_[p.slot])};
    free_slots_.push_back(p.slot);
    return out;
  }

  /// First phase of a pop: removes the top entry from the heap but leaves
  /// the callback parked in its slot. The caller must follow up with
  /// `InvokeAndRecycle(slot)` (or move `slots_` content out itself).
  struct Popped {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
  };
  Popped PopEntry() {
    SAMYA_CHECK(!heap_.empty());
    const Entry top = heap_[0];
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0, last);
    return Popped{top.time, top.key >> kSlotBits,
                  static_cast<uint32_t>(top.key & kSlotMask)};
  }

  /// Second phase: moves the parked callback out, recycles the slot, and
  /// runs it. The move to a local is mandatory, not an optimization miss:
  /// a reentrant `Push` from inside the callback may grow `slots_` and
  /// relocate it, so the callable must not execute inside the table.
  void InvokeAndRecycle(uint32_t slot) {
    SimCallback fn = std::move(slots_[slot]);
    free_slots_.push_back(slot);
    fn();
  }

 private:
  static constexpr size_t kArity = 4;
  static constexpr unsigned kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  /// Heap key: everything ordering needs, nothing that is expensive to
  /// move. `key` packs (seq, slot); comparing raw `key`s compares seqs,
  /// because seqs are unique.
  struct Entry {
    SimTime time;
    uint64_t key;
  };

  static bool Before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  /// Moves `e` toward the root from the hole at `i`.
  void SiftUp(size_t i, Entry e) {
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Moves `e` toward the leaves from the hole at `i`.
  void SiftDown(size_t i, Entry e) {
    const size_t n = heap_.size();
    for (;;) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (!Before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
  std::vector<SimCallback> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_EVENT_QUEUE_H_
