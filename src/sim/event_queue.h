#ifndef SAMYA_SIM_EVENT_QUEUE_H_
#define SAMYA_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace samya::sim {

/// A scheduled callback. Events at equal times fire in scheduling order
/// (FIFO by sequence number), which keeps runs deterministic.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  std::function<void()> fn;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  void Push(SimTime time, uint64_t seq, std::function<void()> fn);
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime NextTime() const;
  Event Pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_EVENT_QUEUE_H_
