#ifndef SAMYA_SIM_EVENT_QUEUE_H_
#define SAMYA_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/macros.h"
#include "common/time.h"

namespace samya::sim {

/// Callback type for everything scheduled on the simulation loop. Move-only
/// with 48 bytes of inline storage: every closure the simulator's hot path
/// schedules (message delivery, timers, client arrivals) fits without a heap
/// allocation.
using SimCallback = InlineFunction<void()>;

/// A scheduled callback. Events at equal times fire in scheduling order
/// (FIFO by sequence number), which keeps runs deterministic.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  SimCallback fn;
};

/// \brief Min-heap of events ordered by (time, seq).
///
/// The heap itself holds only 16-byte POD keys — `{time, seq<<24|slot}` —
/// while the callbacks live in a parallel slot table that never moves.
/// Sift-downs, the dominant operation of a discrete-event loop, therefore
/// shuffle trivially-copyable keys (four per cache line) instead of ~90-byte
/// move-only events, and never touch a callback's move constructor. Freed
/// slots are recycled via a free list, so the steady-state pop-push cadence
/// allocates nothing.
///
/// Layout is a flat 4-ary heap rather than `std::priority_queue`'s binary
/// heap: half the tree depth, and the four children of a node share a cache
/// line. Sifts use hole-percolation — one move per level instead of a
/// three-move swap.
///
/// The simulation loop uses the two-phase `PopEntry` + `InvokeAndRecycle`
/// path; `Pop` (move the event out) remains for callers that want to hold
/// the event. Either way a callback is moved exactly twice in its lifetime:
/// into its slot at `Push`, out of it just before it runs.
class EventQueue {
 public:
  /// Message identity carried per slot when meta tracking is on (schedule
  /// exploration); `from < 0` marks a non-message (timer/internal) event.
  struct MsgMeta {
    int32_t from = -1;
    int32_t to = -1;
    uint32_t type = 0;
  };

  /// `seq` must be < 2^40 and unique per queue; ties in `time` fire in
  /// `seq` order.
  void Push(SimTime time, uint64_t seq, SimCallback&& fn) {
    const uint32_t slot = PushSlot(time, seq, std::move(fn));
    if (track_meta_) metas_[slot] = MsgMeta{};  // mark non-message
  }

  /// Push tagged as a message delivery (requires `EnableMetaTracking`); the
  /// schedule oracle may reorder it against other deliveries in its window.
  void PushMessage(SimTime time, uint64_t seq, SimCallback&& fn,
                   MsgMeta meta) {
    SAMYA_CHECK(track_meta_);
    const uint32_t slot = PushSlot(time, seq, std::move(fn));
    metas_[slot] = meta;
  }

  /// Turns on per-slot message metadata. Off (the default), `Push` does no
  /// extra work; on, each push writes one 12-byte meta record. Enable before
  /// the first push of a run (the schedule oracle needs every slot tagged).
  void EnableMetaTracking() { track_meta_ = true; }
  bool meta_tracking() const { return track_meta_; }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  SimTime NextTime() const {
    SAMYA_CHECK(!heap_.empty());
    return heap_[0].time;
  }

  uint64_t NextSeq() const {
    SAMYA_CHECK(!heap_.empty());
    return heap_[0].key >> kSlotBits;
  }

  /// Removes the top event and moves it out.
  Event Pop() {
    const Popped p = PopEntry();
    Event out{p.time, p.seq, std::move(slots_[p.slot])};
    free_slots_.push_back(p.slot);
    return out;
  }

  /// Appends every pending event with `time <= horizon` to `out` in exact
  /// pop order — (time, seq), the serial tie-break — and removes them from
  /// the queue. The PDES window barrier uses this to hand a partition's
  /// boundary-crossing events to its mailbox without disturbing ordering.
  void ExtractUntil(SimTime horizon, std::vector<Event>* out) {
    while (!heap_.empty() && heap_[0].time <= horizon) {
      out->push_back(Pop());
    }
  }

  /// Pushes a batch of events carrying pre-assigned (time, seq) keys, e.g.
  /// a drained mailbox. Order of `*evs` is irrelevant: the heap re-imposes
  /// the total (time, seq) order, so a drain/`PushBatch` round trip is
  /// invisible to the pop sequence. The batch is consumed (moved from).
  void PushBatch(std::vector<Event>* evs) {
    for (Event& e : *evs) {
      Push(e.time, e.seq, std::move(e.fn));
    }
    evs->clear();
  }

  /// First phase of a pop: removes the top entry from the heap but leaves
  /// the callback parked in its slot. The caller must follow up with
  /// `InvokeAndRecycle(slot)` (or move `slots_` content out itself).
  struct Popped {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
  };
  Popped PopEntry() {
    SAMYA_CHECK(!heap_.empty());
    const Entry top = heap_[0];
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0, last);
    return Popped{top.time, top.key >> kSlotBits,
                  static_cast<uint32_t>(top.key & kSlotMask)};
  }

  /// Second phase: moves the parked callback out, recycles the slot, and
  /// runs it. The move to a local is mandatory, not an optimization miss:
  /// a reentrant `Push` from inside the callback may grow `slots_` and
  /// relocate it, so the callable must not execute inside the table.
  void InvokeAndRecycle(uint32_t slot) {
    SimCallback fn = std::move(slots_[slot]);
    free_slots_.push_back(slot);
    fn();
  }

  // --- Schedule-oracle support (cold paths; never touched by the default
  // --- FIFO loop) ----------------------------------------------------------

  /// A pending entry surfaced to the schedule oracle.
  struct PendingRef {
    SimTime time;
    uint64_t seq;
    uint64_t key;  ///< packed (seq << kSlotBits) | slot, for PopByKey
    MsgMeta meta;
  };

  /// Appends every pending *message* event with `time <= horizon` to `out`
  /// (unsorted; linear scan of the flat heap array). Requires meta tracking.
  void CollectMessagesUntil(SimTime horizon,
                            std::vector<PendingRef>* out) const {
    SAMYA_CHECK(track_meta_);
    for (const Entry& e : heap_) {
      if (e.time > horizon) continue;
      const uint32_t slot = static_cast<uint32_t>(e.key & kSlotMask);
      const MsgMeta& m = metas_[slot];
      if (m.from < 0) continue;
      out->push_back(PendingRef{e.time, e.key >> kSlotBits, e.key, m});
    }
  }

  /// Removes the entry with packed key `key` (from a `PendingRef`) wherever
  /// it sits in the heap; the callback stays parked for `InvokeAndRecycle`.
  /// Linear search + one sift — O(n), fine for oracle-driven runs.
  Popped PopByKey(uint64_t key) {
    for (size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].key != key) continue;
      const Entry found = heap_[i];
      const Entry last = heap_.back();
      heap_.pop_back();
      if (i < heap_.size()) {
        // The hole may need to move either way relative to `last`.
        if (i > 0 && Before(last, heap_[(i - 1) / kArity])) {
          SiftUp(i, last);
        } else {
          SiftDown(i, last);
        }
      }
      return Popped{found.time, found.key >> kSlotBits,
                    static_cast<uint32_t>(found.key & kSlotMask)};
    }
    SAMYA_CHECK(false);  // key not pending — oracle/driver bug
    return Popped{};
  }

 private:
  uint32_t PushSlot(SimTime time, uint64_t seq, SimCallback&& fn) {
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      SAMYA_CHECK(slot < (1u << kSlotBits));
      slots_.push_back(std::move(fn));
      if (track_meta_) metas_.emplace_back();
    }
    SAMYA_CHECK(seq < (1ull << (64 - kSlotBits)));
    heap_.emplace_back();  // open a hole at the end
    SiftUp(heap_.size() - 1, Entry{time, (seq << kSlotBits) | slot});
    return slot;
  }
  static constexpr size_t kArity = 4;
  static constexpr unsigned kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  /// Heap key: everything ordering needs, nothing that is expensive to
  /// move. `key` packs (seq, slot); comparing raw `key`s compares seqs,
  /// because seqs are unique.
  struct Entry {
    SimTime time;
    uint64_t key;
  };

  static bool Before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  /// Moves `e` toward the root from the hole at `i`.
  void SiftUp(size_t i, Entry e) {
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Moves `e` toward the leaves from the hole at `i`.
  void SiftDown(size_t i, Entry e) {
    const size_t n = heap_.size();
    for (;;) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (!Before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
  std::vector<SimCallback> slots_;
  std::vector<uint32_t> free_slots_;
  bool track_meta_ = false;
  std::vector<MsgMeta> metas_;  ///< parallel to slots_ when track_meta_
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_EVENT_QUEUE_H_
