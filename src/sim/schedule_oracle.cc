#include "sim/schedule_oracle.h"

#include <algorithm>

#include "common/macros.h"

namespace samya::sim {

namespace {

/// FNV-1a over a stream of 64-bit words.
inline uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

}  // namespace

uint64_t ScheduleOracle::HashCandidates(
    const std::vector<ScheduleCandidate>& c) {
  // Candidates arrive sorted by (time, seq); hashing times relative to the
  // earliest keeps the fingerprint stable when the same decision context
  // recurs at a different absolute clock (e.g. across DFS branches).
  uint64_t h = 0xcbf29ce484222325ull;
  const SimTime base = c.empty() ? 0 : c.front().time;
  for (const ScheduleCandidate& e : c) {
    h = Mix(h, static_cast<uint64_t>(e.time - base));
    h = Mix(h, (static_cast<uint64_t>(static_cast<uint32_t>(e.from)) << 32) |
                   static_cast<uint32_t>(e.to));
    h = Mix(h, e.type);
  }
  return h;
}

uint32_t ScheduleOracle::ChooseAndRecord(
    const std::vector<ScheduleCandidate>& candidates) {
  SAMYA_CHECK_GE(candidates.size(), 2u);
  const uint32_t chosen = Choose(candidates);
  SAMYA_CHECK_LT(chosen, candidates.size());
  uint64_t h = HashCandidates(candidates);
  if (state_fn_) h = Mix(h, state_fn_());
  trace_.push_back(ChoicePoint{chosen,
                               static_cast<uint32_t>(candidates.size()), h});
  return chosen;
}

PctOracle::PctOracle(uint64_t seed, int depth, uint64_t expected_decisions)
    : rng_(seed) {
  SAMYA_CHECK_GE(depth, 0);
  if (expected_decisions == 0) expected_decisions = 1;
  for (int i = 0; i < depth; ++i) {
    change_points_.push_back(rng_.NextUint64(expected_decisions));
  }
  // Descending, so the next change point to fire is always at the back.
  std::sort(change_points_.rbegin(), change_points_.rend());
}

uint64_t PctOracle::PriorityOf(int32_t chain) {
  auto it = priorities_.find(chain);
  if (it != priorities_.end()) return it->second;
  // Fresh chains draw a high random priority; demotions hand out values
  // below every initial draw (initial >= 2^32, demoted < 2^32 descending).
  const uint64_t p = (1ull << 32) + rng_.Next() % (1ull << 32);
  priorities_[chain] = p;
  return p;
}

uint32_t PctOracle::Choose(const std::vector<ScheduleCandidate>& c) {
  ++decision_count_;
  uint32_t best = 0;
  uint64_t best_priority = 0;
  for (uint32_t i = 0; i < c.size(); ++i) {
    const uint64_t p = PriorityOf(c[i].from);
    if (i == 0 || p > best_priority) {
      best = i;
      best_priority = p;
    }
  }
  if (!change_points_.empty() && decision_count_ >= change_points_.back()) {
    change_points_.pop_back();
    // Preemption point: demote the winning chain below everything else and
    // re-pick, so a different chain takes over mid-protocol.
    priorities_[c[best].from] = (1ull << 32) - 1 - next_low_priority_++;
    best = 0;
    best_priority = 0;
    for (uint32_t i = 0; i < c.size(); ++i) {
      const uint64_t p = PriorityOf(c[i].from);
      if (i == 0 || p > best_priority) {
        best = i;
        best_priority = p;
      }
    }
  }
  return best;
}

}  // namespace samya::sim
