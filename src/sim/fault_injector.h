#ifndef SAMYA_SIM_FAULT_INJECTOR_H_
#define SAMYA_SIM_FAULT_INJECTOR_H_

#include <algorithm>
#include <vector>

#include "sim/network.h"

namespace samya::sim {

/// \brief Schedules scripted faults against a cluster's network: the crash
/// cadence of Fig 3c, the 3-2 partition of Fig 3d, or randomized
/// crash/recover churn for property tests.
class FaultInjector {
 public:
  explicit FaultInjector(Network* net) : net_(net) {}

  /// Crash node `id` at absolute simulated time `t`.
  void CrashAt(SimTime t, NodeId id) {
    net_->env()->ScheduleAt(t, [this, id] { net_->Crash(id); });
  }

  /// Recover node `id` at absolute simulated time `t`.
  void RecoverAt(SimTime t, NodeId id) {
    net_->env()->ScheduleAt(t, [this, id] { net_->Recover(id); });
  }

  /// Install a partition at time `t`.
  void PartitionAt(SimTime t, std::vector<std::vector<NodeId>> groups) {
    net_->env()->ScheduleAt(
        t, [this, groups = std::move(groups)] { net_->SetPartition(groups); });
  }

  /// Heal all partitions at time `t`.
  void HealAt(SimTime t) {
    net_->env()->ScheduleAt(t, [this] { net_->ClearPartition(); });
  }

  /// Random crash/recover churn over [0, horizon): each listed node
  /// crashes `crashes_per_node` times and stays down for up to `downtime`.
  /// Per-node windows are disjoint and strictly ordered — the horizon is
  /// split into `crashes_per_node` equal strata and each crash/recover pair
  /// is confined to its own stratum, so a node is never crashed while
  /// already down or recovered out of order. Deterministic for a given
  /// `rng` state. Useful for protocol property tests.
  void RandomChurn(const std::vector<NodeId>& nodes, SimTime horizon,
                   int crashes_per_node, Duration downtime, Rng& rng) {
    if (crashes_per_node <= 0) return;
    const SimTime stratum = horizon / crashes_per_node;
    for (NodeId id : nodes) {
      for (int k = 0; k < crashes_per_node; ++k) {
        const SimTime lo = stratum * k;
        // Leave at least 1 tick after recovery before the stratum ends so
        // adjacent windows never touch, even with maximal downtime.
        const Duration down = std::min<Duration>(downtime, stratum - 2);
        if (down <= 0) continue;  // stratum too small to fit a window
        const SimTime start = lo + rng.UniformInt(0, stratum - down - 2);
        CrashAt(start, id);
        RecoverAt(start + down, id);
      }
    }
  }

 private:
  Network* net_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_FAULT_INJECTOR_H_
