#ifndef SAMYA_SIM_FAULT_INJECTOR_H_
#define SAMYA_SIM_FAULT_INJECTOR_H_

#include <vector>

#include "sim/network.h"

namespace samya::sim {

/// \brief Schedules scripted faults against a cluster's network: the crash
/// cadence of Fig 3c, the 3-2 partition of Fig 3d, or randomized
/// crash/recover churn for property tests.
class FaultInjector {
 public:
  explicit FaultInjector(Network* net) : net_(net) {}

  /// Crash node `id` at absolute simulated time `t`.
  void CrashAt(SimTime t, NodeId id) {
    net_->env()->ScheduleAt(t, [this, id] { net_->Crash(id); });
  }

  /// Recover node `id` at absolute simulated time `t`.
  void RecoverAt(SimTime t, NodeId id) {
    net_->env()->ScheduleAt(t, [this, id] { net_->Recover(id); });
  }

  /// Install a partition at time `t`.
  void PartitionAt(SimTime t, std::vector<std::vector<NodeId>> groups) {
    net_->env()->ScheduleAt(
        t, [this, groups = std::move(groups)] { net_->SetPartition(groups); });
  }

  /// Heal all partitions at time `t`.
  void HealAt(SimTime t) {
    net_->env()->ScheduleAt(t, [this] { net_->ClearPartition(); });
  }

  /// Random crash/recover churn over [0, horizon): each listed node
  /// independently crashes ~`crashes_per_node` times and stays down for
  /// `downtime`. Useful for protocol property tests.
  void RandomChurn(const std::vector<NodeId>& nodes, SimTime horizon,
                   int crashes_per_node, Duration downtime, Rng& rng) {
    for (NodeId id : nodes) {
      for (int k = 0; k < crashes_per_node; ++k) {
        const SimTime t = rng.UniformInt(0, horizon - downtime - 1);
        CrashAt(t, id);
        RecoverAt(t + downtime, id);
      }
    }
  }

 private:
  Network* net_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_FAULT_INJECTOR_H_
