#ifndef SAMYA_SIM_LATENCY_MODEL_H_
#define SAMYA_SIM_LATENCY_MODEL_H_

#include <array>
#include <cmath>
#include <string>

#include "common/random.h"
#include "common/time.h"

namespace samya::sim {

/// GCP regions used by the paper's evaluation (§5.2), plus the two extra US
/// regions MultiPaxSys uses for its 3-of-5-in-the-US placement.
enum class Region {
  kUsWest1 = 0,
  kUsCentral1,
  kUsEast1,
  kEuropeWest2,
  kAsiaEast2,
  kAustraliaSoutheast1,
  kSouthAmericaEast1,
};

inline constexpr int kNumRegions = 7;

const char* RegionName(Region r);

/// The five geo-distributed regions Samya's sites occupy in the paper.
inline constexpr std::array<Region, 5> kPaperRegions = {
    Region::kUsWest1, Region::kAsiaEast2, Region::kEuropeWest2,
    Region::kAustraliaSoutheast1, Region::kSouthAmericaEast1};

/// \brief One-way network latency model between GCP regions.
///
/// Base latencies are half of published inter-region RTT measurements;
/// `Sample` adds a small truncated-Gaussian jitter plus an exponential tail,
/// which reproduces the long-tailed per-message latency that drives the p95
/// and p99 columns of Table 2b.
class LatencyModel {
 public:
  LatencyModel();

  /// Deterministic base one-way latency between two regions.
  Duration Base(Region from, Region to) const {
    return base_[static_cast<int>(from)][static_cast<int>(to)];
  }

  /// Base latency plus stochastic jitter drawn from `rng`. Inline: sampled
  /// once per message sent.
  Duration Sample(Region from, Region to, Rng& rng) const {
    const Duration base = Base(from, to);
    Duration jitter = 0;
    if (jitter_fraction_ > 0) {
      jitter = static_cast<Duration>(static_cast<double>(base) *
                                     jitter_fraction_ *
                                     std::abs(rng.NextGaussian()));
    }
    Duration tail = 0;
    if (tail_mean_ > 0) {
      tail = static_cast<Duration>(
          rng.Exponential(static_cast<double>(tail_mean_)));
    }
    return base + jitter + tail;
  }

  /// Scales jitter magnitude; 0 disables jitter entirely (useful in tests).
  void set_jitter_fraction(double f) { jitter_fraction_ = f; }
  /// Mean of the exponential tail component, microseconds.
  void set_tail_mean(Duration d) { tail_mean_ = d; }

 private:
  std::array<std::array<Duration, kNumRegions>, kNumRegions> base_;
  double jitter_fraction_ = 0.05;
  Duration tail_mean_ = Millis(1) / 2;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_LATENCY_MODEL_H_
