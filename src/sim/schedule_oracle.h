#ifndef SAMYA_SIM_SCHEDULE_ORACLE_H_
#define SAMYA_SIM_SCHEDULE_ORACLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/time.h"

namespace samya::sim {

/// One deliverable message event the oracle may fire next. Candidates are
/// presented sorted by (time, seq); index 0 is the event the default FIFO
/// loop would pop.
struct ScheduleCandidate {
  SimTime time = 0;   ///< originally scheduled delivery time
  uint64_t seq = 0;   ///< queue sequence number (unique per run)
  int32_t from = -1;  ///< sending node
  int32_t to = -1;    ///< receiving node
  uint32_t type = 0;  ///< message type (common/token_api.h registry)
};

/// One recorded scheduling decision: how many candidates commuted and which
/// fired. `state_hash` fingerprints the decision context (candidate multiset
/// plus, when the driver installs a state function, a digest of system
/// state) — the DFS explorer uses it to prune revisited subtrees.
struct ChoicePoint {
  uint32_t chosen = 0;
  uint32_t num_candidates = 0;
  uint64_t state_hash = 0;
};

/// \brief Scheduling decision hook of the simulation event loop.
///
/// When attached to a `SimEnvironment`, the loop consults the oracle
/// whenever the next event is a message delivery and at least one other
/// delivery is pending within `window()` of it: the oracle picks which of
/// those commuting deliveries fires next. The chosen message is delivered at
/// the earliest candidate's time — i.e. the oracle reorders deliveries
/// within the window, which is exactly the nondeterminism a real
/// asynchronous network exhibits (a reordering is indistinguishable from a
/// different draw of link latencies). The simulated clock advances exactly
/// as under FIFO; only the payload executed at each instant differs.
///
/// Timers and other internal events are never reordered: they are
/// deterministic local computation, not network nondeterminism.
///
/// A null oracle (the default) leaves the event loop on its untouched FIFO
/// hot path — runs are bit-identical to an oracle-less build.
///
/// Every decision is recorded into `trace()` so a run can be replayed
/// (`ReplayOracle`), minimized (ddmin over choices), or branched (DFS).
class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;

  /// Two deliveries commute when their scheduled times are within this
  /// window of each other. 0 restricts reordering to exactly-equal times.
  Duration window() const { return window_; }
  void set_window(Duration w) { window_ = w; }

  /// Optional state digest supplied by the exploration driver; folded into
  /// every recorded `ChoicePoint::state_hash` for DFS pruning.
  void set_state_hash_fn(std::function<uint64_t()> fn) {
    state_fn_ = std::move(fn);
  }

  /// Called by the event loop. Records the decision, then returns the index
  /// of the candidate to fire. `candidates.size() >= 2`.
  uint32_t ChooseAndRecord(const std::vector<ScheduleCandidate>& candidates);

  /// The run's decision log, in decision order.
  const std::vector<ChoicePoint>& trace() const { return trace_; }
  uint64_t decisions() const { return trace_.size(); }

  /// Order-insensitive fingerprint of a candidate set (times taken relative
  /// to the earliest so it is stable across runs with shifted clocks).
  static uint64_t HashCandidates(const std::vector<ScheduleCandidate>& c);

 protected:
  /// Implementation hook: pick a candidate index in [0, candidates.size()).
  virtual uint32_t Choose(const std::vector<ScheduleCandidate>& candidates) = 0;

 private:
  Duration window_ = Millis(5);
  std::function<uint64_t()> state_fn_;
  std::vector<ChoicePoint> trace_;
};

/// Always picks index 0 — behaviourally identical to a null oracle (the
/// determinism guard asserts exactly that), while still exercising the
/// candidate-collection path and recording choice points.
class FifoOracle : public ScheduleOracle {
 protected:
  uint32_t Choose(const std::vector<ScheduleCandidate>& c) override {
    (void)c;
    return 0;
  }
};

/// Uniformly random walk over the schedule space; the cheapest way to vary
/// interleavings across seeds.
class RandomWalkOracle : public ScheduleOracle {
 public:
  explicit RandomWalkOracle(uint64_t seed) : rng_(seed) {}

 protected:
  uint32_t Choose(const std::vector<ScheduleCandidate>& c) override {
    return static_cast<uint32_t>(rng_.NextUint64(c.size()));
  }

 private:
  Rng rng_;
};

/// \brief PCT-style random-priority scheduler (Burckhardt et al.,
/// "A Randomized Scheduler with Probabilistic Guarantees of Finding Bugs").
///
/// Each communication chain — here keyed by the sending node, the analogue
/// of a thread — gets a random priority; every decision fires the pending
/// delivery from the highest-priority chain. `depth` priority-change points
/// are sampled over the expected decision count: when the decision counter
/// crosses one, the currently highest-priority chain among the candidates
/// is demoted below every other, forcing a preemption. With d change points
/// the schedule detects any bug of preemption depth <= d with probability
/// >= 1/(n * k^d) — cheap probabilistic coverage of deep interleavings.
class PctOracle : public ScheduleOracle {
 public:
  /// `expected_decisions` scales where the `depth` change points land; it
  /// need not be exact (PCT's guarantee degrades gracefully).
  PctOracle(uint64_t seed, int depth, uint64_t expected_decisions);

 protected:
  uint32_t Choose(const std::vector<ScheduleCandidate>& c) override;

 private:
  uint64_t PriorityOf(int32_t chain);

  Rng rng_;
  std::unordered_map<int32_t, uint64_t> priorities_;
  std::vector<uint64_t> change_points_;  ///< decision counts, descending
  uint64_t decision_count_ = 0;
  uint64_t next_low_priority_ = 0;  ///< demotions count down below all others
};

/// Replays a recorded choice trace: decision i fires `choices[i]` (clamped
/// to the candidate count, so ddmin-mutated traces stay runnable); decisions
/// past the end of the trace fall back to FIFO. The deterministic simulator
/// guarantees the same trace reproduces the same run bit-for-bit.
class ReplayOracle : public ScheduleOracle {
 public:
  explicit ReplayOracle(std::vector<uint32_t> choices)
      : choices_(std::move(choices)) {}

 protected:
  uint32_t Choose(const std::vector<ScheduleCandidate>& c) override {
    if (next_ >= choices_.size()) return 0;
    const uint32_t raw = choices_[next_++];
    const uint32_t max = static_cast<uint32_t>(c.size()) - 1;
    return raw > max ? max : raw;
  }

 private:
  std::vector<uint32_t> choices_;
  size_t next_ = 0;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_SCHEDULE_ORACLE_H_
