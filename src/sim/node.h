#ifndef SAMYA_SIM_NODE_H_
#define SAMYA_SIM_NODE_H_

#include <cstdint>

#include "common/codec.h"
#include "common/flat_set64.h"
#include "common/random.h"
#include "common/time.h"
#include "sim/environment.h"
#include "sim/latency_model.h"

namespace samya::sim {

class Network;

/// Identifies a process (site, app manager, client, replica) in a cluster.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// \brief Base class for every simulated process.
///
/// Subclasses implement message and timer handlers; the base provides the
/// runtime: `Send` (bytes over the simulated network), `SetTimer` /
/// `CancelTimer`, `Now`, and a per-node RNG stream.
///
/// Crash semantics: when the network crashes a node, all pending timers are
/// invalidated (an epoch counter guards stragglers), in-flight messages to it
/// are dropped at delivery, and `HandleCrash` runs so the subclass can clear
/// volatile state. On recovery `HandleRecover` runs; subclasses reload
/// durable state from their `StableStorage` there.
class Node {
 public:
  Node(NodeId id, Region region) : id_(id), region_(region) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Region region() const { return region_; }
  bool alive() const { return alive_; }

  /// Called once by the cluster after all nodes are registered.
  virtual void Start() {}

  /// Delivers a decoded message envelope. `reader` is positioned at the
  /// start of the type-specific payload.
  virtual void HandleMessage(NodeId from, uint32_t type,
                             BufferReader& reader) = 0;

  /// Fires for a timer armed with `SetTimer(delay, token)`.
  virtual void HandleTimer(uint64_t token);

  /// Node crashed: drop volatile state. Durable state survives in storage.
  virtual void HandleCrash() {}

  /// Node recovered: reconstruct state from stable storage, re-arm timers.
  virtual void HandleRecover() {}

 protected:
  /// Sends `payload` to `to`; delivery is scheduled by the network with
  /// geo latency, jitter, loss and partition rules applied.
  void Send(NodeId to, uint32_t type, const BufferWriter& payload);

  /// Same, for already-encoded bytes (e.g. a relay forwarding a request
  /// verbatim) — skips the intermediate `BufferWriter`.
  void Send(NodeId to, uint32_t type, const uint8_t* data, size_t n);

  /// Arms a timer; `HandleTimer(token)` fires after `delay` unless the timer
  /// is cancelled or the node crashes first. Returns an id for cancellation.
  uint64_t SetTimer(Duration delay, uint64_t token);
  void CancelTimer(uint64_t timer_id);

  /// Current simulated time. Reads the environment clock through a pointer
  /// cached at registration: handlers consult the clock several times per
  /// event, so this stays a single inlined load.
  SimTime Now() const {
    SAMYA_CHECK(env_ != nullptr);
    return env_->Now();
  }
  Rng& rng() { return rng_; }
  Network* network() { return network_; }

 private:
  friend class Network;
  friend class Cluster;

  NodeId id_;
  Region region_;
  bool alive_ = true;
  uint64_t epoch_ = 0;  // bumped on crash & recover to kill stale timers
  uint64_t next_timer_id_ = 1;
  // Armed-timer ids. Every request and every Avantan round arms and cancels
  // a timer, so this sits on the hot path; FlatSet64 keeps it a flat probe
  // instead of a node allocation per insert.
  FlatSet64 active_timers_;
  Network* network_ = nullptr;
  SimEnvironment* env_ = nullptr;  // cached from the network at Register
  Rng rng_{0};
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_NODE_H_
