#ifndef SAMYA_SIM_CLUSTER_H_
#define SAMYA_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/environment.h"
#include "sim/network.h"
#include "sim/pdes.h"
#include "storage/stable_storage.h"

namespace samya::sim {

/// \brief Owns a complete simulated deployment: environment, network, nodes,
/// and per-node crash-surviving stable storage.
///
/// Node ids are assigned in `AddNode` order. Node constructors receive
/// `(NodeId, Region, args...)`; after construction the node is registered
/// with the network so its `Send`/`SetTimer` helpers work.
///
/// With `PdesOptions::workers > 1` the cluster builds a conservative-window
/// PDES deployment (sim/pdes.h, DESIGN.md §11): nodes are partitioned by
/// region onto separate event loops and `RunUntil` executes windows on a
/// worker pool, bit-identical to the serial loop. The coordinator may still
/// fall back to serial (see `pdes_fallback_reason`).
class Cluster {
 public:
  explicit Cluster(uint64_t seed, LatencyModel model = LatencyModel(),
                   PdesOptions pdes = PdesOptions())
      : env_(seed), network_(&env_, model) {
    if (pdes.workers > 1) {
      coordinator_ =
          std::make_unique<PdesCoordinator>(&env_, seed, pdes.workers);
      coordinator_->AttachNetwork(&network_);
      env_.set_global_sink(coordinator_.get());
    }
  }

  template <typename T, typename... Args>
  T* AddNode(Region region, Args&&... args) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    auto node = std::make_unique<T>(id, region, std::forward<Args>(args)...);
    T* ptr = node.get();
    nodes_.push_back(std::move(node));
    storages_.push_back(std::make_unique<storage::InMemoryStableStorage>());
    if (coordinator_ != nullptr) {
      const auto [env, shard] = coordinator_->PartitionFor(region);
      network_.Register(ptr, env, shard);
    } else {
      network_.Register(ptr);
    }
    return ptr;
  }

  /// Stable storage for node `id`; survives the node's crashes. Nodes fetch
  /// this at Start/Recover time.
  storage::StableStorage* StorageFor(NodeId id) {
    return storages_[static_cast<size_t>(id)].get();
  }

  /// Calls Start() on every node (after all registrations). Under PDES this
  /// first locks the partition layout and computes the window.
  void StartAll() {
    if (coordinator_ != nullptr) coordinator_->Finalize(nodes_.size());
    for (auto& n : nodes_) {
      // Start() is node code: its scheduling keys on the node's stream.
      n->env_->SetCurrentStream(static_cast<uint32_t>(n->id()) + 1);
      n->Start();
    }
    for (auto& n : nodes_) n->env_->SetCurrentStream(0);
  }

  /// Runs the simulation to `t` inclusive — the PDES coordinator when one
  /// is active, the plain serial loop otherwise.
  void RunUntil(SimTime t) {
    if (coordinator_ != nullptr) {
      coordinator_->RunUntil(t);
    } else {
      env_.RunUntil(t);
    }
  }

  /// Events executed across all partition environments (== the primary
  /// environment's count for serial clusters).
  uint64_t TotalEventsExecuted() const {
    return coordinator_ != nullptr ? coordinator_->TotalEventsExecuted()
                                   : env_.events_executed();
  }

  /// Call once after the last `RunUntil`, before reading merged metrics or
  /// profiler state: folds per-partition obs into the primary registries in
  /// partition order. No-op for serial clusters.
  void FinishRun() {
    if (coordinator_ != nullptr) coordinator_->FinishRun();
  }

  bool pdes_active() const {
    return coordinator_ != nullptr && coordinator_->active();
  }
  std::string pdes_fallback_reason() const {
    return coordinator_ != nullptr ? coordinator_->fallback_reason()
                                   : std::string("pdes not requested");
  }
  const PdesCoordinator* pdes() const { return coordinator_.get(); }

  SimEnvironment& env() { return env_; }
  Network& net() { return network_; }
  size_t num_nodes() const { return nodes_.size(); }
  Node* node(NodeId id) { return network_.node(id); }

 private:
  SimEnvironment env_;
  Network network_;
  std::unique_ptr<PdesCoordinator> coordinator_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<storage::InMemoryStableStorage>> storages_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_CLUSTER_H_
