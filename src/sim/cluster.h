#ifndef SAMYA_SIM_CLUSTER_H_
#define SAMYA_SIM_CLUSTER_H_

#include <memory>
#include <utility>
#include <vector>

#include "sim/environment.h"
#include "sim/network.h"
#include "storage/stable_storage.h"

namespace samya::sim {

/// \brief Owns a complete simulated deployment: environment, network, nodes,
/// and per-node crash-surviving stable storage.
///
/// Node ids are assigned in `AddNode` order. Node constructors receive
/// `(NodeId, Region, args...)`; after construction the node is registered
/// with the network so its `Send`/`SetTimer` helpers work.
class Cluster {
 public:
  explicit Cluster(uint64_t seed, LatencyModel model = LatencyModel())
      : env_(seed), network_(&env_, model) {}

  template <typename T, typename... Args>
  T* AddNode(Region region, Args&&... args) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    auto node = std::make_unique<T>(id, region, std::forward<Args>(args)...);
    T* ptr = node.get();
    nodes_.push_back(std::move(node));
    storages_.push_back(std::make_unique<storage::InMemoryStableStorage>());
    network_.Register(ptr);
    return ptr;
  }

  /// Stable storage for node `id`; survives the node's crashes. Nodes fetch
  /// this at Start/Recover time.
  storage::StableStorage* StorageFor(NodeId id) {
    return storages_[static_cast<size_t>(id)].get();
  }

  /// Calls Start() on every node (after all registrations).
  void StartAll() {
    for (auto& n : nodes_) n->Start();
  }

  SimEnvironment& env() { return env_; }
  Network& net() { return network_; }
  size_t num_nodes() const { return nodes_.size(); }
  Node* node(NodeId id) { return network_.node(id); }

 private:
  SimEnvironment env_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<storage::InMemoryStableStorage>> storages_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_CLUSTER_H_
