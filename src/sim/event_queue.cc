#include "sim/event_queue.h"

#include "common/macros.h"

namespace samya::sim {

void EventQueue::Push(SimTime time, uint64_t seq, std::function<void()> fn) {
  heap_.push(Event{time, seq, std::move(fn)});
}

SimTime EventQueue::NextTime() const {
  SAMYA_CHECK(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::Pop() {
  SAMYA_CHECK(!heap_.empty());
  // std::priority_queue::top() is const; the move is safe because we pop
  // immediately after.
  Event e = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return e;
}

}  // namespace samya::sim
