#include "sim/environment.h"

#include "common/macros.h"

namespace samya::sim {

void SimEnvironment::Schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  ScheduleAt(now_ + delay, std::move(fn));
}

void SimEnvironment::ScheduleAt(SimTime t, std::function<void()> fn) {
  SAMYA_CHECK_GE(t, now_);
  queue_.Push(t, next_seq_++, std::move(fn));
}

bool SimEnvironment::Step() {
  if (queue_.empty()) return false;
  Event e = queue_.Pop();
  SAMYA_CHECK_GE(e.time, now_);
  now_ = e.time;
  ++events_executed_;
  e.fn();
  return true;
}

void SimEnvironment::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.NextTime() <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void SimEnvironment::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace samya::sim
