#include "sim/environment.h"

#include "common/macros.h"

namespace samya::sim {

void SimEnvironment::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.NextTime() <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void SimEnvironment::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace samya::sim
