#include "sim/environment.h"

#include <algorithm>

#include "common/macros.h"

namespace samya::sim {

bool SimEnvironment::OracleStep() {
  const SimTime t0 = queue_.NextTime();
  const uint64_t top_seq = queue_.NextSeq();
  pending_scratch_.clear();
  queue_.CollectMessagesUntil(t0 + oracle_->window(), &pending_scratch_);

  // Reordering applies only when the FIFO-next event is itself a message
  // delivery and at least one other delivery commutes with it. Timers and
  // internal events always fire in FIFO order — they are deterministic
  // local computation, not network nondeterminism.
  bool top_is_message = false;
  for (const EventQueue::PendingRef& p : pending_scratch_) {
    if (p.time == t0 && p.seq == top_seq) {
      top_is_message = true;
      break;
    }
  }
  if (!top_is_message || pending_scratch_.size() < 2) {
    const EventQueue::Popped p = queue_.PopEntry();
    now_ = p.time;
    ++events_executed_;
    Invoke(p.slot);
    return true;
  }

  std::sort(pending_scratch_.begin(), pending_scratch_.end(),
            [](const EventQueue::PendingRef& a, const EventQueue::PendingRef& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  candidates_scratch_.clear();
  for (const EventQueue::PendingRef& p : pending_scratch_) {
    candidates_scratch_.push_back(ScheduleCandidate{
        p.time, p.seq, p.meta.from, p.meta.to, p.meta.type});
  }
  const uint32_t choice = oracle_->ChooseAndRecord(candidates_scratch_);
  const EventQueue::Popped p = choice == 0
                                   ? queue_.PopEntry()
                                   : queue_.PopByKey(pending_scratch_[choice].key);
  // The chosen delivery fires at the earliest candidate's time: reordering
  // within the window is indistinguishable from an alternate latency draw,
  // and the simulated clock skeleton stays identical to the FIFO run.
  now_ = t0;
  ++events_executed_;
  Invoke(p.slot);
  return true;
}

void SimEnvironment::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.NextTime() <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void SimEnvironment::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace samya::sim
