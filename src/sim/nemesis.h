#ifndef SAMYA_SIM_NEMESIS_H_
#define SAMYA_SIM_NEMESIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "common/time.h"
#include "sim/network.h"

namespace samya::sim {

/// \brief One timed fault operation against a `Network`.
///
/// A `FaultSchedule` is a time-sorted list of these; every field is plain
/// data so a schedule serializes to JSON, replays bit-identically, and can
/// be delta-debugged op by op.
struct FaultOp {
  enum class Kind : uint8_t {
    kCrash,               ///< crash node `a`
    kRecover,             ///< recover node `a`
    kPartition,           ///< install partition `groups`
    kHeal,                ///< clear any partition
    kCutLink,             ///< cut directed link `a -> b`
    kRestoreLink,         ///< restore directed link `a -> b`
    kSetLossRate,         ///< global Bernoulli loss <- `value`
    kSetDelayFactor,      ///< global latency multiplier <- `value`
    kSetLinkDelayFactor,  ///< latency multiplier for `a -> b` <- `value`
    kSetDuplicateRate,    ///< global duplication probability <- `value`
    kClearLinkFaults,     ///< drop all link cuts + per-link delay overrides
  };

  SimTime at = 0;
  Kind kind = Kind::kCrash;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double value = 0.0;
  std::vector<std::vector<NodeId>> groups;

  bool operator==(const FaultOp& o) const {
    return at == o.at && kind == o.kind && a == o.a && b == o.b &&
           value == o.value && groups == o.groups;
  }
};

const char* FaultKindName(FaultOp::Kind kind);

/// Renders "t=12.5s crash node 3" style lines for violation reports.
std::string FormatFaultOp(const FaultOp& op);

/// \brief A serializable, replayable fault schedule.
struct FaultSchedule {
  std::vector<FaultOp> ops;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }

  /// Stable-sorts ops by time, preserving generation order within a tick so
  /// replay matches generation exactly.
  void SortByTime();

  JsonValue ToJson() const;
  static Result<FaultSchedule> FromJson(const JsonValue& v);
};

/// Applies every op at its scheduled time. Call after nodes are registered
/// and before the run starts; current env time must be <= the first op's
/// time. The schedule object may be destroyed after this returns (ops are
/// copied into the event closures).
void ApplySchedule(const FaultSchedule& schedule, Network* net);

/// Tuning knobs for `GenerateSchedule`. Counts scale linearly with
/// `intensity`; severities (loss rate, delay factor, downtime) interpolate
/// toward their maxima.
struct NemesisOptions {
  SimTime horizon = Seconds(45);   ///< faults occur in [0, horizon - heal_margin)
  double intensity = 1.0;          ///< 0 disables everything; ~3 is brutal
  Duration heal_margin = Seconds(8);  ///< quiet tail: all faults healed

  // Baseline event counts at intensity 1.0 (scaled and rounded).
  double crash_cycles = 2.0;       ///< crash/recover pairs per node (expected)
  double partition_waves = 1.5;    ///< partition/heal pairs across the run
  double link_cut_waves = 2.0;     ///< one-way cut/restore pairs
  double loss_spikes = 1.5;        ///< loss-rate raise/drop pairs
  double delay_storms = 1.0;       ///< delay-factor raise/drop pairs
  double duplicate_spikes = 1.0;   ///< duplicate-rate raise/drop pairs

  Duration min_downtime = Millis(800);
  Duration max_downtime = Seconds(6);
  double max_loss = 0.4;
  double max_delay_factor = 12.0;
  double max_duplicate = 0.3;

  /// Nodes eligible for crash churn / partitions / link cuts. Typically the
  /// Samya sites; app managers and clients stay up so load keeps arriving.
  std::vector<NodeId> nodes;
};

/// \brief Derives a fault schedule from (options, seed) deterministically.
///
/// The same (options, seed) pair always yields the identical schedule, and
/// the schedule alone is sufficient to replay the faults — the generator
/// RNG is independent of the simulation RNG, so shrinking a schedule does
/// not perturb the workload it runs against.
///
/// Structure: each fault class books disjoint windows inside
/// [0, horizon - heal_margin) (crash windows are per-node disjoint, in the
/// `RandomChurn` style); a deterministic terminal heal block at
/// `horizon - heal_margin` recovers every node, heals partitions, restores
/// links, and zeroes loss/delay/duplication so liveness-after-heal is always
/// checkable.
FaultSchedule GenerateSchedule(const NemesisOptions& opts, uint64_t seed);

}  // namespace samya::sim

#endif  // SAMYA_SIM_NEMESIS_H_
