#include "sim/nemesis.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/macros.h"

namespace samya::sim {

const char* FaultKindName(FaultOp::Kind kind) {
  switch (kind) {
    case FaultOp::Kind::kCrash: return "crash";
    case FaultOp::Kind::kRecover: return "recover";
    case FaultOp::Kind::kPartition: return "partition";
    case FaultOp::Kind::kHeal: return "heal";
    case FaultOp::Kind::kCutLink: return "cut_link";
    case FaultOp::Kind::kRestoreLink: return "restore_link";
    case FaultOp::Kind::kSetLossRate: return "set_loss_rate";
    case FaultOp::Kind::kSetDelayFactor: return "set_delay_factor";
    case FaultOp::Kind::kSetLinkDelayFactor: return "set_link_delay_factor";
    case FaultOp::Kind::kSetDuplicateRate: return "set_duplicate_rate";
    case FaultOp::Kind::kClearLinkFaults: return "clear_link_faults";
  }
  return "unknown";
}

namespace {

struct KindNameEntry {
  const char* name;
  FaultOp::Kind kind;
};

constexpr KindNameEntry kKindNames[] = {
    {"crash", FaultOp::Kind::kCrash},
    {"recover", FaultOp::Kind::kRecover},
    {"partition", FaultOp::Kind::kPartition},
    {"heal", FaultOp::Kind::kHeal},
    {"cut_link", FaultOp::Kind::kCutLink},
    {"restore_link", FaultOp::Kind::kRestoreLink},
    {"set_loss_rate", FaultOp::Kind::kSetLossRate},
    {"set_delay_factor", FaultOp::Kind::kSetDelayFactor},
    {"set_link_delay_factor", FaultOp::Kind::kSetLinkDelayFactor},
    {"set_duplicate_rate", FaultOp::Kind::kSetDuplicateRate},
    {"clear_link_faults", FaultOp::Kind::kClearLinkFaults},
};

bool KindFromName(const std::string& name, FaultOp::Kind* out) {
  for (const auto& e : kKindNames) {
    if (name == e.name) {
      *out = e.kind;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FormatFaultOp(const FaultOp& op) {
  std::string s = "t=" + FormatDuration(op.at) + " " + FaultKindName(op.kind);
  switch (op.kind) {
    case FaultOp::Kind::kCrash:
    case FaultOp::Kind::kRecover:
      s += " node " + std::to_string(op.a);
      break;
    case FaultOp::Kind::kCutLink:
    case FaultOp::Kind::kRestoreLink:
      s += " " + std::to_string(op.a) + "->" + std::to_string(op.b);
      break;
    case FaultOp::Kind::kSetLinkDelayFactor:
      s += " " + std::to_string(op.a) + "->" + std::to_string(op.b) + " x" +
           std::to_string(op.value);
      break;
    case FaultOp::Kind::kSetLossRate:
    case FaultOp::Kind::kSetDelayFactor:
    case FaultOp::Kind::kSetDuplicateRate:
      s += " = " + std::to_string(op.value);
      break;
    case FaultOp::Kind::kPartition: {
      s += " {";
      for (size_t g = 0; g < op.groups.size(); ++g) {
        if (g > 0) s += " | ";
        for (size_t i = 0; i < op.groups[g].size(); ++i) {
          if (i > 0) s += ",";
          s += std::to_string(op.groups[g][i]);
        }
      }
      s += "}";
      break;
    }
    case FaultOp::Kind::kHeal:
    case FaultOp::Kind::kClearLinkFaults:
      break;
  }
  return s;
}

void FaultSchedule::SortByTime() {
  std::stable_sort(ops.begin(), ops.end(),
                   [](const FaultOp& x, const FaultOp& y) { return x.at < y.at; });
}

JsonValue FaultSchedule::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("format", "samya-fault-schedule-v1");
  JsonValue arr = JsonValue::MakeArray();
  for (const FaultOp& op : ops) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("at", op.at);
    o.Set("kind", FaultKindName(op.kind));
    if (op.a != kInvalidNode) o.Set("a", static_cast<int64_t>(op.a));
    if (op.b != kInvalidNode) o.Set("b", static_cast<int64_t>(op.b));
    if (op.value != 0.0) o.Set("value", op.value);
    if (!op.groups.empty()) {
      JsonValue gs = JsonValue::MakeArray();
      for (const auto& group : op.groups) {
        JsonValue g = JsonValue::MakeArray();
        for (NodeId id : group) g.Append(static_cast<int64_t>(id));
        gs.Append(std::move(g));
      }
      o.Set("groups", std::move(gs));
    }
    arr.Append(std::move(o));
  }
  doc.Set("ops", std::move(arr));
  return doc;
}

Result<FaultSchedule> FaultSchedule::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("fault schedule: not an object");
  }
  const std::string format = v.GetString("format", "");
  if (format != "samya-fault-schedule-v1") {
    return Status::InvalidArgument("fault schedule: unknown format '" +
                                   format + "'");
  }
  const JsonValue* ops = v.Find("ops");
  if (ops == nullptr || !ops->is_array()) {
    return Status::InvalidArgument("fault schedule: missing ops array");
  }
  FaultSchedule out;
  out.ops.reserve(ops->as_array().size());
  for (const JsonValue& o : ops->as_array()) {
    if (!o.is_object()) {
      return Status::InvalidArgument("fault schedule: op is not an object");
    }
    FaultOp op;
    op.at = o.GetInt("at", -1);
    if (op.at < 0) return Status::InvalidArgument("fault op: bad 'at'");
    const std::string kind = o.GetString("kind", "");
    if (!KindFromName(kind, &op.kind)) {
      return Status::InvalidArgument("fault op: unknown kind '" + kind + "'");
    }
    op.a = static_cast<NodeId>(o.GetInt("a", kInvalidNode));
    op.b = static_cast<NodeId>(o.GetInt("b", kInvalidNode));
    op.value = o.GetDouble("value", 0.0);
    if (const JsonValue* gs = o.Find("groups"); gs != nullptr) {
      if (!gs->is_array()) {
        return Status::InvalidArgument("fault op: groups is not an array");
      }
      for (const JsonValue& g : gs->as_array()) {
        if (!g.is_array()) {
          return Status::InvalidArgument("fault op: group is not an array");
        }
        std::vector<NodeId> group;
        for (const JsonValue& id : g.as_array()) {
          if (!id.is_int()) {
            return Status::InvalidArgument("fault op: group id not an int");
          }
          group.push_back(static_cast<NodeId>(id.as_int()));
        }
        op.groups.push_back(std::move(group));
      }
    }
    out.ops.push_back(std::move(op));
  }
  return out;
}

namespace {

void ApplyOp(const FaultOp& op, Network* net) {
  switch (op.kind) {
    case FaultOp::Kind::kCrash:
      net->Crash(op.a);
      break;
    case FaultOp::Kind::kRecover:
      net->Recover(op.a);
      break;
    case FaultOp::Kind::kPartition:
      net->SetPartition(op.groups);
      break;
    case FaultOp::Kind::kHeal:
      net->ClearPartition();
      break;
    case FaultOp::Kind::kCutLink:
      net->CutLink(op.a, op.b);
      break;
    case FaultOp::Kind::kRestoreLink:
      net->RestoreLink(op.a, op.b);
      break;
    case FaultOp::Kind::kSetLossRate:
      net->set_loss_rate(op.value);
      break;
    case FaultOp::Kind::kSetDelayFactor:
      net->set_delay_factor(op.value);
      break;
    case FaultOp::Kind::kSetLinkDelayFactor:
      net->SetLinkDelayFactor(op.a, op.b, op.value);
      break;
    case FaultOp::Kind::kSetDuplicateRate:
      net->set_duplicate_rate(op.value);
      break;
    case FaultOp::Kind::kClearLinkFaults:
      net->ClearLinkFaults();
      break;
  }
}

}  // namespace

void ApplySchedule(const FaultSchedule& schedule, Network* net) {
  for (const FaultOp& op : schedule.ops) {
    // The op is copied into the closure (a ~80-byte capture with the groups
    // vector, so this takes InlineFunction's heap fallback — fine for the
    // handful of fault events per run).
    net->env()->ScheduleAt(op.at, [net, op] { ApplyOp(op, net); });
  }
}

FaultSchedule GenerateSchedule(const NemesisOptions& opts, uint64_t seed) {
  FaultSchedule out;
  if (opts.intensity <= 0.0 || opts.nodes.empty()) return out;

  Rng rng = Rng(seed).Fork(0x6e656d65);  // "neme": independent of sim streams
  const SimTime end = opts.horizon - opts.heal_margin;
  SAMYA_CHECK_GT(end, 0);
  const auto count = [&](double baseline) {
    return static_cast<int>(std::lround(baseline * opts.intensity));
  };
  // Severity knob: intensity 1 draws mid-range values, higher intensities
  // push toward the configured maxima.
  const double sev = std::min(1.0, 0.35 + 0.25 * opts.intensity);
  const auto severity = [&](double max_value, double floor_value) {
    const double hi = floor_value + (max_value - floor_value) * sev;
    return rng.Uniform(floor_value, hi);
  };

  // --- Crash churn: per-node stratified windows (disjoint, ordered).
  const int cycles = count(opts.crash_cycles);
  if (cycles > 0) {
    const SimTime stratum = end / cycles;
    for (NodeId id : opts.nodes) {
      for (int k = 0; k < cycles; ++k) {
        const SimTime lo = stratum * k;
        const Duration max_down =
            std::min<Duration>(opts.max_downtime, stratum - 2);
        if (max_down <= 0) continue;
        const Duration min_down = std::min(opts.min_downtime, max_down);
        const Duration down = rng.UniformInt(min_down, max_down);
        const SimTime start = lo + rng.UniformInt(0, stratum - down - 2);
        out.ops.push_back({start, FaultOp::Kind::kCrash, id});
        out.ops.push_back({start + down, FaultOp::Kind::kRecover, id});
      }
    }
  }

  // Window helper for the global fault classes: stratify [0, end) so each
  // wave gets its own slot and waves of the same class never overlap.
  const auto window = [&](int i, int n, SimTime* start, Duration* dur) {
    const SimTime stratum = end / n;
    const SimTime lo = stratum * i;
    *dur = rng.UniformInt(stratum / 4, (3 * stratum) / 4);
    *start = lo + rng.UniformInt(0, stratum - *dur - 1);
  };

  // --- Rolling partitions: random bipartition of the eligible nodes.
  const int waves = count(opts.partition_waves);
  for (int i = 0; i < waves; ++i) {
    SimTime start;
    Duration dur;
    window(i, waves, &start, &dur);
    std::vector<NodeId> shuffled = opts.nodes;
    for (size_t j = shuffled.size(); j > 1; --j) {
      std::swap(shuffled[j - 1],
                shuffled[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(j) - 1))]);
    }
    const size_t cut = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(shuffled.size()) - 1));
    FaultOp op{start, FaultOp::Kind::kPartition};
    op.groups.emplace_back(shuffled.begin(), shuffled.begin() + cut);
    op.groups.emplace_back(shuffled.begin() + cut, shuffled.end());
    out.ops.push_back(std::move(op));
    out.ops.push_back({start + dur, FaultOp::Kind::kHeal});
  }

  // --- Asymmetric link cuts: one direction of a random pair.
  const int cuts = count(opts.link_cut_waves);
  for (int i = 0; i < cuts; ++i) {
    SimTime start;
    Duration dur;
    window(i, cuts, &start, &dur);
    const size_t n = opts.nodes.size();
    if (n < 2) break;
    const NodeId from =
        opts.nodes[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    NodeId to = from;
    while (to == from) {
      to = opts.nodes[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    }
    out.ops.push_back({start, FaultOp::Kind::kCutLink, from, to});
    out.ops.push_back({start + dur, FaultOp::Kind::kRestoreLink, from, to});
  }

  // --- Loss spikes.
  const int spikes = count(opts.loss_spikes);
  for (int i = 0; i < spikes; ++i) {
    SimTime start;
    Duration dur;
    window(i, spikes, &start, &dur);
    FaultOp up{start, FaultOp::Kind::kSetLossRate};
    up.value = severity(opts.max_loss, 0.05);
    out.ops.push_back(std::move(up));
    out.ops.push_back({start + dur, FaultOp::Kind::kSetLossRate});
  }

  // --- Delay storms: alternate global and per-link storms.
  const int storms = count(opts.delay_storms);
  for (int i = 0; i < storms; ++i) {
    SimTime start;
    Duration dur;
    window(i, storms, &start, &dur);
    const double factor = severity(opts.max_delay_factor, 2.0);
    if (i % 2 == 0 || opts.nodes.size() < 2) {
      FaultOp up{start, FaultOp::Kind::kSetDelayFactor};
      up.value = factor;
      out.ops.push_back(std::move(up));
      FaultOp down{start + dur, FaultOp::Kind::kSetDelayFactor};
      down.value = 1.0;
      out.ops.push_back(std::move(down));
    } else {
      const size_t n = opts.nodes.size();
      const NodeId from =
          opts.nodes[static_cast<size_t>(rng.UniformInt(0, n - 1))];
      NodeId to = from;
      while (to == from) {
        to = opts.nodes[static_cast<size_t>(rng.UniformInt(0, n - 1))];
      }
      FaultOp up{start, FaultOp::Kind::kSetLinkDelayFactor, from, to};
      up.value = factor;
      out.ops.push_back(std::move(up));
      FaultOp down{start + dur, FaultOp::Kind::kSetLinkDelayFactor, from, to};
      down.value = 1.0;
      out.ops.push_back(std::move(down));
    }
  }

  // --- Duplication spikes.
  const int dups = count(opts.duplicate_spikes);
  for (int i = 0; i < dups; ++i) {
    SimTime start;
    Duration dur;
    window(i, dups, &start, &dur);
    FaultOp up{start, FaultOp::Kind::kSetDuplicateRate};
    up.value = severity(opts.max_duplicate, 0.05);
    out.ops.push_back(std::move(up));
    out.ops.push_back({start + dur, FaultOp::Kind::kSetDuplicateRate});
  }

  // --- Terminal heal block: everything healthy by `end` so the tail of the
  // run can drain and liveness-after-heal is meaningful.
  out.ops.push_back({end, FaultOp::Kind::kHeal});
  out.ops.push_back({end, FaultOp::Kind::kClearLinkFaults});
  for (NodeId id : opts.nodes) {
    out.ops.push_back({end, FaultOp::Kind::kRecover, id});
  }
  out.ops.push_back({end, FaultOp::Kind::kSetLossRate});
  FaultOp delay_reset{end, FaultOp::Kind::kSetDelayFactor};
  delay_reset.value = 1.0;
  out.ops.push_back(std::move(delay_reset));
  out.ops.push_back({end, FaultOp::Kind::kSetDuplicateRate});

  out.SortByTime();
  return out;
}

}  // namespace samya::sim
