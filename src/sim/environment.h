#ifndef SAMYA_SIM_ENVIRONMENT_H_
#define SAMYA_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/time.h"
#include "obs/profiler.h"
#include "sim/event_queue.h"
#include "sim/schedule_oracle.h"

namespace samya::sim {

/// \brief Deterministic discrete-event simulation driver.
///
/// Owns the simulated clock and the event heap. All concurrency in the
/// repository is expressed as events on this single-threaded loop: message
/// deliveries, timer expirations, client arrivals, and fault injections.
/// Given the same seed and the same schedule of `Schedule` calls, a run is
/// bit-for-bit reproducible.
class SimEnvironment {
 public:
  explicit SimEnvironment(uint64_t seed) : rng_(seed) {}

  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  /// Current simulated time (microseconds since simulation start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to 0
  /// (the event still runs strictly after the current one). `SimCallback`
  /// is move-only with inline storage; any callable up to 48 bytes of
  /// captures is scheduled without a heap allocation.
  void Schedule(Duration delay, SimCallback&& fn) {
    if (delay < 0) delay = 0;
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute simulated time `t` (>= Now()).
  void ScheduleAt(SimTime t, SimCallback&& fn) {
    SAMYA_CHECK_GE(t, now_);
    queue_.Push(t, next_seq_++, std::move(fn));
  }

  /// Schedules a message delivery `delay` from now, tagged with its network
  /// identity. With no oracle attached this is exactly `Schedule`; with one,
  /// the tag makes the delivery eligible for reordering against other
  /// deliveries in the oracle's window.
  void ScheduleMessage(Duration delay, int32_t from, int32_t to, uint32_t type,
                       SimCallback&& fn) {
    if (delay < 0) delay = 0;
    if (oracle_ == nullptr) {
      queue_.Push(now_ + delay, next_seq_++, std::move(fn));
    } else {
      queue_.PushMessage(now_ + delay, next_seq_++, std::move(fn),
                         EventQueue::MsgMeta{from, to, type});
    }
  }

  /// Runs a single event; returns false when the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    if (oracle_ != nullptr) return OracleStep();
    const EventQueue::Popped p = queue_.PopEntry();
    SAMYA_CHECK_GE(p.time, now_);
    now_ = p.time;
    ++events_executed_;
    Invoke(p.slot);
    return true;
  }

  /// Runs events until the clock reaches `t` (events at exactly `t` run).
  void RunUntil(SimTime t);

  /// Runs events for `d` of simulated time from now.
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Drains the queue completely.
  void RunUntilIdle();

  /// Root RNG for the run; components should `Fork` child streams.
  Rng& rng() { return rng_; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  /// Attaches the event-loop profiler (nullptr = disabled, the default; the
  /// loop then takes a single never-taken branch per event).
  void set_profiler(obs::EventLoopProfiler* profiler) { profiler_ = profiler; }
  obs::EventLoopProfiler* profiler() const { return profiler_; }

  /// Attaches a schedule oracle (nullptr = disabled, the default: the loop
  /// stays on its untouched FIFO hot path). Must be attached before any
  /// event is scheduled — the queue needs every slot meta-tagged.
  void set_oracle(ScheduleOracle* oracle) {
    oracle_ = oracle;
    if (oracle_ != nullptr) {
      SAMYA_CHECK_EQ(next_seq_, 0u);
      queue_.EnableMetaTracking();
    }
  }
  ScheduleOracle* oracle() const { return oracle_; }

  /// Stable pointer to the simulated clock, for out-of-loop readers like
  /// `Logger::SetThreadSimClock`. Valid for this environment's lifetime.
  const SimTime* now_ptr() const { return &now_; }

 private:
  void Invoke(uint32_t slot) {
    if (profiler_ == nullptr) {
      queue_.InvokeAndRecycle(slot);
    } else {
      const int64_t t0 = obs::EventLoopProfiler::NowNs();
      queue_.InvokeAndRecycle(slot);
      profiler_->AccountEvent(obs::EventLoopProfiler::NowNs() - t0);
    }
  }

  /// Oracle-mediated step (out of line; runs only with an oracle attached).
  bool OracleStep();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  EventQueue queue_;
  Rng rng_;
  obs::EventLoopProfiler* profiler_ = nullptr;
  ScheduleOracle* oracle_ = nullptr;
  std::vector<EventQueue::PendingRef> pending_scratch_;
  std::vector<ScheduleCandidate> candidates_scratch_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_ENVIRONMENT_H_
