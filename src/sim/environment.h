#ifndef SAMYA_SIM_ENVIRONMENT_H_
#define SAMYA_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/time.h"
#include "obs/profiler.h"
#include "sim/event_queue.h"
#include "sim/schedule_oracle.h"

namespace samya::sim {

/// \brief Allocator of causal event keys: (stream << 28) | counter.
///
/// Every scheduled event carries a 40-bit key that doubles as the heap
/// tie-break at equal times. Keys used to come from one global counter,
/// which made the tie-break depend on global scheduling order — fine for a
/// serial loop, fatal for parallel execution. A *stream* is a causal
/// source: stream 0 is the driver (harness setup, fault schedules), stream
/// `id + 1` is node `id`. Each stream's counter advances only when that
/// stream schedules, so the key sequence is a pure function of per-node
/// behaviour and identical whether partitions run serially or in parallel.
///
/// Stream 0 sorts below every node stream, so at equal times driver events
/// fire before node events — exactly the order the PDES barrier replays
/// them in (DESIGN.md §11).
///
/// Not internally synchronized: under PDES the table is shared across
/// partition environments, but each stream is only ever advanced by the
/// worker that owns its node's partition, and `Reserve` pre-sizes the
/// table before workers start so the vector never reallocates in parallel.
class StreamKeyTable {
 public:
  static constexpr unsigned kCtrBits = 28;

  /// Next key for `stream`. Growth only happens single-threaded (serial
  /// runs, or PDES setup before `Reserve`).
  uint64_t Next(uint32_t stream) {
    if (stream >= ctrs_.size()) ctrs_.resize(stream + 1, 0);
    const uint64_t ctr = ctrs_[stream]++;
    SAMYA_CHECK_LT(ctr, 1ull << kCtrBits);  // 2^28 events per source
    return (static_cast<uint64_t>(stream) << kCtrBits) | ctr;
  }

  /// Pre-sizes the table so `Next` never reallocates (call before workers
  /// start touching it).
  void Reserve(size_t streams) {
    if (streams > ctrs_.size()) ctrs_.resize(streams, 0);
  }

  bool AnyAllocated() const {
    for (uint64_t c : ctrs_) {
      if (c != 0) return true;
    }
    return false;
  }

 private:
  std::vector<uint64_t> ctrs_ = std::vector<uint64_t>(1, 0);
};

/// \brief Diversion target for driver-stream events under PDES.
///
/// When a sink is attached, events scheduled from stream 0 (fault
/// schedules, harness hooks) leave the per-partition queues and go to the
/// coordinator, which runs them at a global barrier so every partition
/// observes them at the same simulated instant.
class GlobalEventSink {
 public:
  virtual ~GlobalEventSink() = default;
  virtual void ScheduleGlobal(SimTime t, uint64_t key, SimCallback&& fn) = 0;
};

/// \brief Deterministic discrete-event simulation driver.
///
/// Owns the simulated clock and the event heap. All concurrency in the
/// repository is expressed as events on this single-threaded loop: message
/// deliveries, timer expirations, client arrivals, and fault injections.
/// Given the same seed and the same schedule of `Schedule` calls, a run is
/// bit-for-bit reproducible.
///
/// Under conservative-window PDES (sim/pdes.h) one environment exists per
/// partition; each is still strictly single-threaded *within* a window, and
/// ownership hands between workers only at barrier synchronization points.
class SimEnvironment {
 public:
  explicit SimEnvironment(uint64_t seed) : rng_(seed) {}

  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  /// Current simulated time (microseconds since simulation start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to 0
  /// (the event still runs strictly after the current one). `SimCallback`
  /// is move-only with inline storage; any callable up to 48 bytes of
  /// captures is scheduled without a heap allocation.
  void Schedule(Duration delay, SimCallback&& fn) {
    if (delay < 0) delay = 0;
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute simulated time `t` (>= Now()). With a
  /// global sink attached (PDES), driver-stream events divert to the
  /// coordinator's barrier queue; everything else lands in this
  /// environment's own heap.
  void ScheduleAt(SimTime t, SimCallback&& fn) {
    SAMYA_CHECK_GE(t, now_);
    const uint64_t key = streams_->Next(current_stream_);
    if (global_sink_ != nullptr && current_stream_ == 0) {
      global_sink_->ScheduleGlobal(t, key, std::move(fn));
      return;
    }
    queue_.Push(t, key, std::move(fn));
  }

  /// Schedules a message delivery `delay` from now, tagged with its network
  /// identity. With no oracle attached this is exactly `Schedule`; with one,
  /// the tag makes the delivery eligible for reordering against other
  /// deliveries in the oracle's window.
  void ScheduleMessage(Duration delay, int32_t from, int32_t to, uint32_t type,
                       SimCallback&& fn) {
    if (delay < 0) delay = 0;
    if (oracle_ == nullptr) {
      queue_.Push(now_ + delay, streams_->Next(current_stream_),
                  std::move(fn));
    } else {
      queue_.PushMessage(now_ + delay, streams_->Next(current_stream_),
                         std::move(fn), EventQueue::MsgMeta{from, to, type});
    }
  }

  /// Runs a single event; returns false when the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    if (oracle_ != nullptr) return OracleStep();
    const EventQueue::Popped p = queue_.PopEntry();
    SAMYA_CHECK_GE(p.time, now_);
    now_ = p.time;
    ++events_executed_;
    Invoke(p.slot);
    return true;
  }

  /// Runs events until the clock reaches `t` (events at exactly `t` run).
  void RunUntil(SimTime t);

  /// Runs events for `d` of simulated time from now.
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Drains the queue completely.
  void RunUntilIdle();

  // --- Causal key streams ---------------------------------------------------

  /// Sets the causal stream that subsequent `Schedule*` calls allocate keys
  /// from. The simulator's entry points into node code (message delivery,
  /// timer fire, crash/recover, Start) each set the target node's stream
  /// (`id + 1`) before invoking it, and driver code runs on stream 0 — so
  /// key sequences depend only on per-node behaviour, never on how node
  /// executions interleave globally.
  void SetCurrentStream(uint32_t stream) { current_stream_ = stream; }
  uint32_t current_stream() const { return current_stream_; }

  /// Shares another environment's stream table (PDES: all partitions draw
  /// from one table so keys stay globally unique and serial-identical).
  void ShareStreamTable(StreamKeyTable* table) { streams_ = table; }
  StreamKeyTable* stream_table() { return streams_; }

  /// Allocates the next causal key on the current stream without scheduling
  /// (cross-partition sends key the event here, deliver it elsewhere).
  uint64_t AllocKey() { return streams_->Next(current_stream_); }

  // --- Conservative-window PDES hooks (sim/pdes.h) --------------------------

  /// Diverts stream-0 events to `sink` (nullptr detaches; see ScheduleAt).
  void set_global_sink(GlobalEventSink* sink) { global_sink_ = sink; }

  /// Runs every event with time strictly below `horizon`. The clock is left
  /// at the last executed event (callers advance it at barriers).
  void RunWindow(SimTime horizon) {
    while (!queue_.empty() && queue_.NextTime() < horizon) Step();
  }

  /// Advances the clock to a barrier time without running anything.
  void AdvanceNowTo(SimTime t) {
    SAMYA_CHECK_GE(t, now_);
    now_ = t;
  }

  /// Runs a callback as if it had been popped from this queue at Now():
  /// same event accounting, same profiler treatment. The PDES barrier uses
  /// this to execute diverted driver events.
  void RunExternal(SimCallback&& fn) {
    ++events_executed_;
    if (profiler_ == nullptr) {
      fn();
    } else {
      const int64_t t0 = obs::EventLoopProfiler::NowNs();
      fn();
      profiler_->AccountEvent(obs::EventLoopProfiler::NowNs() - t0);
    }
  }

  /// Bulk-pushes events that already carry keys (mailbox drains, or a
  /// dismantled global queue on serial fallback).
  void InjectEvents(std::vector<Event>* evs) { queue_.PushBatch(evs); }

  /// Drains this queue into `out` in pop order, keys intact (serial
  /// fallback moves partition queues back into the primary environment).
  void ExtractEventsUntil(SimTime horizon, std::vector<Event>* out) {
    queue_.ExtractUntil(horizon, out);
  }

  /// Root RNG for the run; components should `Fork` child streams.
  Rng& rng() { return rng_; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  /// Attaches the event-loop profiler (nullptr = disabled, the default; the
  /// loop then takes a single never-taken branch per event).
  void set_profiler(obs::EventLoopProfiler* profiler) { profiler_ = profiler; }
  obs::EventLoopProfiler* profiler() const { return profiler_; }

  /// Attaches a schedule oracle (nullptr = disabled, the default: the loop
  /// stays on its untouched FIFO hot path). Must be attached before any
  /// event is scheduled — the queue needs every slot meta-tagged.
  void set_oracle(ScheduleOracle* oracle) {
    oracle_ = oracle;
    if (oracle_ != nullptr) {
      SAMYA_CHECK(queue_.empty() && !streams_->AnyAllocated());
      queue_.EnableMetaTracking();
    }
  }
  ScheduleOracle* oracle() const { return oracle_; }

  /// Stable pointer to the simulated clock, for out-of-loop readers like
  /// `Logger::SetThreadSimClock`. Valid for this environment's lifetime.
  const SimTime* now_ptr() const { return &now_; }

 private:
  void Invoke(uint32_t slot) {
    if (profiler_ == nullptr) {
      queue_.InvokeAndRecycle(slot);
    } else {
      const int64_t t0 = obs::EventLoopProfiler::NowNs();
      queue_.InvokeAndRecycle(slot);
      profiler_->AccountEvent(obs::EventLoopProfiler::NowNs() - t0);
    }
  }

  /// Oracle-mediated step (out of line; runs only with an oracle attached).
  bool OracleStep();

  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  uint32_t current_stream_ = 0;
  EventQueue queue_;
  StreamKeyTable own_streams_;
  StreamKeyTable* streams_ = &own_streams_;
  GlobalEventSink* global_sink_ = nullptr;
  Rng rng_;
  obs::EventLoopProfiler* profiler_ = nullptr;
  ScheduleOracle* oracle_ = nullptr;
  std::vector<EventQueue::PendingRef> pending_scratch_;
  std::vector<ScheduleCandidate> candidates_scratch_;
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_ENVIRONMENT_H_
