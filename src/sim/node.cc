#include "sim/node.h"

#include "common/macros.h"
#include "sim/network.h"

namespace samya::sim {

void Node::HandleTimer(uint64_t token) {
  (void)token;
  SAMYA_CHECK_MSG(false, "node %d received unexpected timer", id_);
}

void Node::Send(NodeId to, uint32_t type, const BufferWriter& payload) {
  Send(to, type, payload.buffer().data(), payload.buffer().size());
}

void Node::Send(NodeId to, uint32_t type, const uint8_t* data, size_t n) {
  SAMYA_CHECK(network_ != nullptr);
  // Copy the encoded bytes into a pooled buffer rather than allocating a
  // fresh vector per message; the network recycles it after delivery.
  std::vector<uint8_t> buf = network_->AcquireSendBuffer(id_);
  buf.assign(data, data + n);
  network_->Send(id_, to, type, std::move(buf));
}

uint64_t Node::SetTimer(Duration delay, uint64_t token) {
  SAMYA_CHECK(network_ != nullptr);
  return network_->ArmTimer(this, delay, token);
}

void Node::CancelTimer(uint64_t timer_id) { active_timers_.erase(timer_id); }

}  // namespace samya::sim
