#include "sim/node.h"

#include "common/macros.h"
#include "sim/network.h"

namespace samya::sim {

void Node::HandleTimer(uint64_t token) {
  (void)token;
  SAMYA_CHECK_MSG(false, "node %d received unexpected timer", id_);
}

void Node::Send(NodeId to, uint32_t type, const BufferWriter& payload) {
  SAMYA_CHECK(network_ != nullptr);
  network_->Send(id_, to, type, payload.buffer());
}

uint64_t Node::SetTimer(Duration delay, uint64_t token) {
  SAMYA_CHECK(network_ != nullptr);
  return network_->ArmTimer(this, delay, token);
}

void Node::CancelTimer(uint64_t timer_id) { active_timers_.erase(timer_id); }

SimTime Node::Now() const {
  SAMYA_CHECK(network_ != nullptr);
  return network_->env()->Now();
}

}  // namespace samya::sim
