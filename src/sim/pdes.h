#ifndef SAMYA_SIM_PDES_H_
#define SAMYA_SIM_PDES_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/environment.h"
#include "sim/event_queue.h"
#include "sim/latency_model.h"

namespace samya::sim {

class Network;

/// Knobs for conservative-window parallel discrete-event simulation.
struct PdesOptions {
  /// Worker threads executing partition windows. <= 1 selects the plain
  /// serial loop (zero PDES machinery on the hot path); clamped to the
  /// number of partitions (co-located region groups) at finalize.
  int workers = 1;
};

/// \brief Conservative-window PDES coordinator (DESIGN.md §11).
///
/// Splits a cluster into one partition per region: a node's messages to
/// co-located nodes stay on the partition's own event loop, while
/// cross-region messages take at least `L_min` — the minimum one-way
/// latency between any two occupied regions under the `LatencyModel` —
/// of simulated time to arrive. That lookahead is the classic conservative
/// PDES safety argument: with window `W = L_min / 2`, a partition executing
/// window `j` can only receive cross-partition messages sent in windows
/// `<= j - 2`, so it may run up to `lead = 2` windows past the slowest
/// other partition without ever seeing an event from its past.
///
/// Bit-identity with the serial loop comes from three invariants:
///  - every event's heap tie-break key is a causal (stream, counter) pair
///    (`StreamKeyTable`) whose sequence depends only on per-node behaviour;
///  - every latency/loss/duplication draw comes from a per-sender RNG
///    stream, so draw order depends only on each node's own send order;
///  - driver-stream events (fault schedules, harness hooks) divert to a
///    global queue and run at inter-window barriers, where every partition
///    clock agrees — the same instant, and the same sub-time ordering
///    (stream 0 sorts first), as in the serial run.
///
/// When parallel execution cannot be bit-identical — a schedule oracle is
/// attached, a nemesis shrinks delay factors below 1 (which would shrink
/// the lookahead mid-run), a message tap or tracer observes global order,
/// or there are not enough partitions — the coordinator falls back to the
/// serial loop and records why (`fallback_reason`).
class PdesCoordinator final : public GlobalEventSink {
 public:
  PdesCoordinator(SimEnvironment* primary, uint64_t seed, int workers);
  ~PdesCoordinator() override;

  PdesCoordinator(const PdesCoordinator&) = delete;
  PdesCoordinator& operator=(const PdesCoordinator&) = delete;

  /// Called once by the cluster that owns both objects.
  void AttachNetwork(Network* net) { net_ = net; }

  /// Environment + shard for a node in `region`; first sight of a region
  /// opens a new partition. Registration-time only (single-threaded).
  std::pair<SimEnvironment*, uint32_t> PartitionFor(Region region);

  /// GlobalEventSink: a driver-stream (stream-0) event diverted from a
  /// partition queue to the barrier queue.
  void ScheduleGlobal(SimTime t, uint64_t key, SimCallback&& fn) override;

  /// Locks the partition layout, computes the window from the latency
  /// model, splits network state into shards, and creates per-partition
  /// obs registries. Called by `Cluster::StartAll` before any node starts.
  /// May conclude with a serial fallback instead (see `fallback_reason`).
  void Finalize(size_t num_nodes);

  /// Runs the simulation to `t` (inclusive, like SimEnvironment::RunUntil):
  /// alternating parallel phases and global-event barriers when active, the
  /// primary loop otherwise.
  void RunUntil(SimTime t);

  /// Cross-partition delivery handoff (Network::DispatchDelivery). The
  /// event carries its final (time, key); the receiving partition drains it
  /// through `EventQueue::PushBatch` at a window boundary, where the heap
  /// re-imposes the serial (time, seq) order.
  void EnqueueRemote(uint32_t src, uint32_t dst, Event&& e);

  /// Merges per-partition metrics/profilers into the primary ones, in
  /// partition order. Idempotent; must precede reading merged obs. Further
  /// parallel `RunUntil` calls are rejected afterwards (sites cache
  /// histogram pointers, so a second merge would double-count).
  void FinishRun();

  /// Sum of events executed across all partition environments (equals the
  /// serial loop's single-environment count bit-for-bit).
  uint64_t TotalEventsExecuted() const;

  /// True once finalized with parallel execution in effect.
  bool active() const { return finalized_ && fallback_reason_.empty(); }

  /// Why execution is serial; empty while (potentially) parallel.
  const std::string& fallback_reason() const { return fallback_reason_; }

  size_t num_partitions() const { return envs_.size(); }
  int workers() const { return workers_; }
  Duration window() const { return window_; }

 private:
  /// Cross-partition mailbox for one (receiver, sender) pair. Heap-
  /// allocated (held by unique_ptr) so the mutex never moves.
  struct Mailbox {
    std::mutex mu;
    std::vector<Event> events;
  };

  /// Per-partition execution state, cache-line aligned: `completed` and
  /// `claimed` are the claim protocol's shared atomics, everything else is
  /// touched only by the current claim holder.
  struct alignas(64) PartitionRuntime {
    /// Highest window index completed this phase (-1 = none). A release
    /// store after the claim's outboxes are flushed; acquire loads bound
    /// other partitions' progress.
    std::atomic<int64_t> completed{-1};
    std::atomic<bool> claimed{false};
    std::vector<std::unique_ptr<Mailbox>> inbox;  ///< indexed by sender
    std::vector<std::vector<Event>> outbox;       ///< indexed by receiver
    std::vector<Event> drain_scratch;
  };

  /// Collapses to the serial loop: drains the global queue (and, after
  /// finalize, every partition queue and mailbox) back into the primary
  /// environment with keys intact, and re-points nodes at it. Safe before
  /// the run or at any inter-run barrier.
  void EnsureSerial(std::string reason);

  /// Executes all partition events in [start, end_exclusive) in parallel.
  void RunPhase(SimTime start, SimTime end_exclusive);

  /// Barrier: advances every clock to `t` and runs the global events due.
  void RunGlobalOpsAt(SimTime t);

  /// Claim-the-laggard scheduling loop, run by every worker of a phase.
  void WorkerLoop();

  /// Runs partition `p` from window `from + 1` through `bound` (drain
  /// mailboxes, execute windows, flush outboxes). Caller holds the claim.
  void ExecuteClaim(int p, int64_t from, int64_t bound);

  SimEnvironment* primary_;
  Network* net_ = nullptr;
  const uint64_t seed_;
  int workers_;
  bool finalized_ = false;
  bool obs_merged_ = false;
  std::string fallback_reason_;

  std::vector<Region> partition_region_;        ///< partition -> region
  std::vector<SimEnvironment*> envs_;           ///< [0] == primary_
  std::vector<std::unique_ptr<SimEnvironment>> extra_envs_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> part_metrics_;
  std::vector<std::unique_ptr<obs::EventLoopProfiler>> part_profilers_;
  std::vector<std::unique_ptr<PartitionRuntime>> rt_;

  EventQueue global_queue_;  ///< diverted stream-0 events, (time, key) order

  Duration window_ = 0;
  int64_t lead_ = 2;

  // Per-phase state (set by RunPhase, read by workers).
  SimTime phase_start_ = 0;
  SimTime phase_end_ = 0;
  int64_t last_window_ = -1;
  std::atomic<int> done_count_{0};
};

}  // namespace samya::sim

#endif  // SAMYA_SIM_PDES_H_
