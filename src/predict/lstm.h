#ifndef SAMYA_PREDICT_LSTM_H_
#define SAMYA_PREDICT_LSTM_H_

#include <memory>
#include <vector>

#include "predict/matrix.h"
#include "predict/optimizer.h"
#include "predict/predictor.h"

namespace samya::predict {

/// Configuration for `LstmPredictor`.
struct LstmOptions {
  size_t window = 32;       ///< input sequence length (epochs of history)
  size_t hidden = 24;       ///< LSTM hidden units
  size_t period = 288;      ///< seasonal period fed as sin/cos features
  int epochs = 4;           ///< training passes over the series
  size_t stride = 3;        ///< subsampling stride between training sequences
  double learning_rate = 5e-3;
  double clip_norm = 5.0;   ///< global gradient-norm clip
  uint64_t seed = 1;        ///< weight init + shuffle seed
};

/// \brief From-scratch single-layer LSTM forecaster (the paper's chosen
/// Prediction Module; Table 2a).
///
/// Input features per timestep: the z-normalized demand value plus
/// sin/cos of the position within the seasonal period — the phase features
/// let the recurrent model key on time-of-day, which is what beats ARIMA on
/// periodic cloud demand. Trained with truncated BPTT over fixed windows and
/// Adam, gradient-norm clipped. Deterministic given `seed`.
class LstmPredictor : public DemandPredictor {
 public:
  explicit LstmPredictor(LstmOptions opts = {});

  Status Train(const std::vector<double>& series) override;
  void Observe(double value) override;
  double PredictNext() override;
  std::string name() const override { return "lstm"; }

  /// Training MSE (normalized units) of the final epoch, for inspection.
  double final_train_mse() const { return final_train_mse_; }

 private:
  static constexpr size_t kInputDim = 3;

  struct StepCache {
    Vector x, i, f, o, g, c, h, tanh_c;
  };

  Vector FeaturesAt(size_t abs_index, double normalized_value) const;
  /// Runs the forward pass over a feature sequence; fills `cache` when given.
  double Forward(const std::vector<Vector>& xs,
                 std::vector<StepCache>* cache) const;
  /// Backprop of d(loss)/d(output)=dy through the cached forward pass.
  void Backward(const std::vector<StepCache>& cache, double dy);
  void ApplyGradients();
  double Normalize(double v) const { return (v - mean_) / std_; }
  double Denormalize(double z) const { return z * std_ + mean_; }

  LstmOptions opts_;
  Rng rng_;

  // Parameters. Gates are packed [i; f; o; g] along rows (4H x *).
  Matrix wx_, wh_;
  Vector b_;
  Vector wy_;
  double by_ = 0.0;

  // Gradient accumulators (same shapes).
  Matrix gwx_, gwh_;
  Vector gb_, gwy_;
  double gby_ = 0.0;

  // Adam state per tensor.
  std::unique_ptr<AdamState> adam_wx_, adam_wh_, adam_b_, adam_wy_, adam_by_;

  double mean_ = 0.0, std_ = 1.0;
  bool trained_ = false;
  double final_train_mse_ = 0.0;
  std::vector<double> history_;
};

std::unique_ptr<DemandPredictor> MakeLstm(LstmOptions opts = {});

}  // namespace samya::predict

#endif  // SAMYA_PREDICT_LSTM_H_
