#include "predict/arima.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace samya::predict {

ArimaPredictor::ArimaPredictor(ArimaOptions opts) : opts_(opts) {}

std::vector<double> ArimaPredictor::Difference(const std::vector<double>& raw,
                                               int d) {
  std::vector<double> w = raw;
  for (int k = 0; k < d; ++k) {
    std::vector<double> next;
    next.reserve(w.size() > 0 ? w.size() - 1 : 0);
    for (size_t i = 1; i < w.size(); ++i) next.push_back(w[i] - w[i - 1]);
    w = std::move(next);
  }
  return w;
}

double ArimaPredictor::Css(const Vector& params,
                           const std::vector<double>& w) const {
  const int p = opts_.p, q = opts_.q;
  const size_t start = static_cast<size_t>(std::max(p, q));
  if (w.size() <= start) return 0.0;

  const double c = params[0];
  const double* phi = params.data() + 1;
  const double* theta = params.data() + 1 + p;

  std::vector<double> e(w.size(), 0.0);
  double acc = 0.0;
  for (size_t t = start; t < w.size(); ++t) {
    double pred = c;
    for (int i = 1; i <= p; ++i) pred += phi[i - 1] * w[t - static_cast<size_t>(i)];
    for (int j = 1; j <= q; ++j) pred += theta[j - 1] * e[t - static_cast<size_t>(j)];
    e[t] = w[t] - pred;
    acc += opts_.robust_loss ? std::abs(e[t]) : e[t] * e[t];
  }
  // Soft penalty pushing AR/MA weights toward the stationary region; CSS
  // alone can wander into explosive parameterizations on short series.
  double penalty = 0.0;
  double ar_mass = 0.0, ma_mass = 0.0;
  for (int i = 0; i < p; ++i) ar_mass += std::abs(phi[i]);
  for (int j = 0; j < q; ++j) ma_mass += std::abs(theta[j]);
  if (ar_mass > 1.5) penalty += (ar_mass - 1.5) * (ar_mass - 1.5);
  if (ma_mass > 1.5) penalty += (ma_mass - 1.5) * (ma_mass - 1.5);
  const double n = static_cast<double>(w.size() - start);
  return acc / n * (1.0 + penalty);
}

Status ArimaPredictor::Train(const std::vector<double>& series) {
  if (opts_.p < 0 || opts_.q < 0 || opts_.d < 0 || opts_.d > 1) {
    return Status::InvalidArgument("arima: need p,q >= 0 and d in {0,1}");
  }
  const size_t min_len =
      static_cast<size_t>(std::max(opts_.p, opts_.q) + opts_.d + 8);
  if (series.size() < min_len) {
    return Status::InvalidArgument("arima: series too short to fit");
  }
  raw_ = series;
  w_ = Difference(raw_, opts_.d);

  Vector x0(1 + static_cast<size_t>(opts_.p + opts_.q), 0.0);
  // Warm start: small positive lag-1 AR weight.
  if (opts_.p > 0) x0[1] = 0.3;
  auto objective = [this](const Vector& x) { return Css(x, w_); };
  NelderMeadResult res = NelderMead(objective, x0, opts_.fit);
  params_ = res.x;
  fit_css_ = res.fx;
  trained_ = true;
  RefreshResiduals();
  return Status::OK();
}

void ArimaPredictor::RefreshResiduals() {
  const int p = opts_.p, q = opts_.q;
  const size_t start = static_cast<size_t>(std::max(p, q));
  resid_.assign(w_.size(), 0.0);
  if (!trained_ || w_.size() <= start) return;
  const double c = params_[0];
  const double* phi = params_.data() + 1;
  const double* theta = params_.data() + 1 + p;
  for (size_t t = start; t < w_.size(); ++t) {
    double pred = c;
    for (int i = 1; i <= p; ++i) pred += phi[i - 1] * w_[t - static_cast<size_t>(i)];
    for (int j = 1; j <= q; ++j) pred += theta[j - 1] * resid_[t - static_cast<size_t>(j)];
    resid_[t] = w_[t] - pred;
  }
}

void ArimaPredictor::Observe(double value) {
  raw_.push_back(value);
  if (opts_.d == 0) {
    w_.push_back(value);
  } else if (raw_.size() >= 2) {
    w_.push_back(raw_[raw_.size() - 1] - raw_[raw_.size() - 2]);
  } else {
    return;
  }
  // Incremental residual for the newly appended w_.
  const int p = opts_.p, q = opts_.q;
  const size_t t = w_.size() - 1;
  resid_.resize(w_.size(), 0.0);
  if (!trained_ || t < static_cast<size_t>(std::max(p, q))) return;
  const double c = params_[0];
  const double* phi = params_.data() + 1;
  const double* theta = params_.data() + 1 + p;
  double pred = c;
  for (int i = 1; i <= p; ++i) pred += phi[i - 1] * w_[t - static_cast<size_t>(i)];
  for (int j = 1; j <= q; ++j) pred += theta[j - 1] * resid_[t - static_cast<size_t>(j)];
  resid_[t] = w_[t] - pred;
}

double ArimaPredictor::PredictNext() {
  if (!trained_ || w_.size() < static_cast<size_t>(std::max(opts_.p, opts_.q))) {
    return raw_.empty() ? 0.0 : std::max(0.0, raw_.back());
  }
  const int p = opts_.p, q = opts_.q;
  const double c = params_[0];
  const double* phi = params_.data() + 1;
  const double* theta = params_.data() + 1 + p;
  const size_t n = w_.size();
  double w_hat = c;
  for (int i = 1; i <= p; ++i) {
    if (n >= static_cast<size_t>(i)) w_hat += phi[i - 1] * w_[n - static_cast<size_t>(i)];
  }
  for (int j = 1; j <= q; ++j) {
    if (n >= static_cast<size_t>(j)) w_hat += theta[j - 1] * resid_[n - static_cast<size_t>(j)];
  }
  double next = opts_.d == 0 ? w_hat : raw_.back() + w_hat;
  return next < 0 ? 0 : next;
}

std::unique_ptr<DemandPredictor> MakeArima(ArimaOptions opts) {
  return std::make_unique<ArimaPredictor>(opts);
}

}  // namespace samya::predict
