#ifndef SAMYA_PREDICT_PREDICTOR_H_
#define SAMYA_PREDICT_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace samya::predict {

/// \brief Pluggable Prediction Module (§4.1.1, §4.2).
///
/// A site trains a predictor on historical per-epoch demand (number of tokens
/// requested per epoch), feeds it each completed epoch's actual demand via
/// `Observe`, and calls `PredictNext` to estimate the next epoch's demand —
/// the `PredictedValue` of Eq. 4. Implementations must be deterministic given
/// their construction seed.
class DemandPredictor {
 public:
  virtual ~DemandPredictor() = default;

  /// Fits the model to a historical series. Called once before use; the
  /// series also seeds the observation history.
  virtual Status Train(const std::vector<double>& series) = 0;

  /// Appends the actual demand of the epoch that just ended.
  virtual void Observe(double value) = 0;

  /// One-step-ahead forecast of next epoch's demand, in tokens (>= 0).
  virtual double PredictNext() = 0;

  virtual std::string name() const = 0;
};

/// Naive baseline: tomorrow equals today (Table 2a's "Random Walk").
class RandomWalkPredictor : public DemandPredictor {
 public:
  Status Train(const std::vector<double>& series) override;
  void Observe(double value) override { last_ = value; }
  double PredictNext() override { return last_ < 0 ? 0 : last_; }
  std::string name() const override { return "random_walk"; }

 private:
  double last_ = 0;
};

/// Exponentially weighted moving average; cheap online predictor.
class EwmaPredictor : public DemandPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3) : alpha_(alpha) {}
  Status Train(const std::vector<double>& series) override;
  void Observe(double value) override;
  double PredictNext() override { return ewma_ < 0 ? 0 : ewma_; }
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double ewma_ = 0;
  bool seeded_ = false;
};

/// Seasonal naive: next value equals the value one season ago, blended with
/// a short EWMA of the recent level. Strong on periodic cloud demand and
/// cheap enough to run per-epoch on every site.
class SeasonalNaivePredictor : public DemandPredictor {
 public:
  explicit SeasonalNaivePredictor(size_t period, double blend = 0.6)
      : period_(period), blend_(blend) {
    ring_.reserve(period_);
  }
  Status Train(const std::vector<double>& series) override;
  void Observe(double value) override;
  double PredictNext() override;
  std::string name() const override { return "seasonal_naive"; }

  /// Observations currently held; never exceeds `period` (steady-state
  /// memory is O(period) regardless of how long the site runs).
  size_t history_size() const { return ring_.size(); }
  size_t history_capacity() const { return ring_.capacity(); }

 private:
  size_t period_;
  double blend_;
  /// Ring of the last `period_` observations: only the value one season
  /// back is ever read, so older history would just leak on long runs.
  /// `oldest_` indexes the season-old value (the next slot to overwrite).
  std::vector<double> ring_;
  size_t oldest_ = 0;
  EwmaPredictor level_{0.4};
};

/// Factory helpers used by SamyaOptions.
std::unique_ptr<DemandPredictor> MakeRandomWalk();
std::unique_ptr<DemandPredictor> MakeEwma(double alpha = 0.3);
std::unique_ptr<DemandPredictor> MakeSeasonalNaive(size_t period);

}  // namespace samya::predict

#endif  // SAMYA_PREDICT_PREDICTOR_H_
