#ifndef SAMYA_PREDICT_MATRIX_H_
#define SAMYA_PREDICT_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace samya::predict {

using Vector = std::vector<double>;

/// \brief Minimal dense row-major matrix for the from-scratch LSTM.
///
/// Only the kernels the trainer needs: matrix-vector products (plain and
/// transposed), rank-1 updates, and elementwise/axpy helpers on `Vector`.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  Vector& data() { return data_; }
  const Vector& data() const { return data_; }

  /// Fills with U(-scale, scale) (Glorot-style when scale=sqrt(6/(in+out))).
  void RandomInit(Rng& rng, double scale);
  void Zero();

  /// y += this * x  (len(x)=cols, len(y)=rows)
  void MultiplyAdd(const Vector& x, Vector& y) const;

  /// y += this^T * x  (len(x)=rows, len(y)=cols)
  void TransposeMultiplyAdd(const Vector& x, Vector& y) const;

  /// this += scale * a b^T  (len(a)=rows, len(b)=cols)
  void AddOuter(const Vector& a, const Vector& b, double scale = 1.0);

  /// this += scale * other (same shape)
  void Axpy(const Matrix& other, double scale);

  /// Sum of squared entries (for gradient-norm clipping).
  double SquaredNorm() const;

  void Scale(double s);

 private:
  size_t rows_, cols_;
  Vector data_;
};

// Vector helpers.
void AxpyV(const Vector& x, double scale, Vector& y);  // y += scale*x
double Dot(const Vector& a, const Vector& b);
double SquaredNormV(const Vector& v);
void ScaleV(Vector& v, double s);

}  // namespace samya::predict

#endif  // SAMYA_PREDICT_MATRIX_H_
