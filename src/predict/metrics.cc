#include "predict/metrics.h"

#include <cmath>

#include "common/macros.h"

namespace samya::predict {

Split TrainTestSplit(const std::vector<double>& series,
                     double train_fraction) {
  SAMYA_CHECK_GT(train_fraction, 0.0);
  SAMYA_CHECK_LT(train_fraction, 1.0);
  const size_t cut = static_cast<size_t>(
      static_cast<double>(series.size()) * train_fraction);
  Split s;
  s.train.assign(series.begin(), series.begin() + static_cast<long>(cut));
  s.test.assign(series.begin() + static_cast<long>(cut), series.end());
  return s;
}

Result<ForecastMetrics> EvaluateOneStepAhead(DemandPredictor& predictor,
                                             const Split& split) {
  SAMYA_RETURN_IF_ERROR(predictor.Train(split.train));
  ForecastMetrics m;
  double abs_acc = 0.0, sq_acc = 0.0;
  for (double actual : split.test) {
    const double pred = predictor.PredictNext();
    const double err = pred - actual;
    abs_acc += std::abs(err);
    sq_acc += err * err;
    ++m.n;
    predictor.Observe(actual);
  }
  if (m.n > 0) {
    m.mae = abs_acc / static_cast<double>(m.n);
    m.rmse = std::sqrt(sq_acc / static_cast<double>(m.n));
  }
  return m;
}

}  // namespace samya::predict
