#ifndef SAMYA_PREDICT_METRICS_H_
#define SAMYA_PREDICT_METRICS_H_

#include <vector>

#include "predict/predictor.h"

namespace samya::predict {

/// Train/test partition of a series (first `train_fraction` trains).
struct Split {
  std::vector<double> train;
  std::vector<double> test;
};

Split TrainTestSplit(const std::vector<double>& series, double train_fraction);

/// Result of a walk-forward one-step-ahead evaluation.
struct ForecastMetrics {
  double mae = 0.0;   ///< mean absolute error (tokens) — the Table 2a metric
  double rmse = 0.0;
  size_t n = 0;
};

/// Walk-forward evaluation: the predictor is trained on `split.train`, then
/// for each test point we predict one step ahead and feed the true value via
/// `Observe` — exactly how a Samya site consumes its Prediction Module.
Result<ForecastMetrics> EvaluateOneStepAhead(DemandPredictor& predictor,
                                             const Split& split);

}  // namespace samya::predict

#endif  // SAMYA_PREDICT_METRICS_H_
