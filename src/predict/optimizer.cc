#include "predict/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace samya::predict {

NelderMeadResult NelderMead(const std::function<double(const Vector&)>& f,
                            Vector x0, const NelderMeadOptions& opts) {
  const size_t n = x0.size();
  SAMYA_CHECK_GT(n, 0u);

  // Standard coefficients: reflection, expansion, contraction, shrink.
  const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;

  // Initial simplex: x0 plus a step along each axis.
  std::vector<Vector> xs(n + 1, x0);
  for (size_t i = 0; i < n; ++i) {
    xs[i + 1][i] += (x0[i] != 0.0 ? std::abs(x0[i]) * opts.initial_step
                                  : opts.initial_step);
  }
  std::vector<double> fs(n + 1);
  for (size_t i = 0; i <= n; ++i) fs[i] = f(xs[i]);

  NelderMeadResult result;
  int iter = 0;
  for (; iter < opts.max_iterations; ++iter) {
    // Order vertices by objective.
    std::vector<size_t> idx(n + 1);
    for (size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return fs[a] < fs[b]; });
    const size_t best = idx[0], worst = idx[n], second_worst = idx[n - 1];

    if (fs[worst] - fs[best] < opts.tolerance) break;

    // Centroid of all but the worst.
    Vector centroid(n, 0.0);
    for (size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      AxpyV(xs[i], 1.0 / static_cast<double>(n), centroid);
    }

    auto blend = [&](double coeff) {
      Vector x(n);
      for (size_t j = 0; j < n; ++j) {
        x[j] = centroid[j] + coeff * (xs[worst][j] - centroid[j]);
      }
      return x;
    };

    Vector xr = blend(-alpha);
    const double fr = f(xr);
    if (fr < fs[best]) {
      Vector xe = blend(-gamma);
      const double fe = f(xe);
      if (fe < fr) {
        xs[worst] = std::move(xe);
        fs[worst] = fe;
      } else {
        xs[worst] = std::move(xr);
        fs[worst] = fr;
      }
    } else if (fr < fs[second_worst]) {
      xs[worst] = std::move(xr);
      fs[worst] = fr;
    } else {
      Vector xc = blend(fr < fs[worst] ? -rho : rho);
      const double fc = f(xc);
      if (fc < std::min(fr, fs[worst])) {
        xs[worst] = std::move(xc);
        fs[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (size_t j = 0; j < n; ++j) {
            xs[i][j] = xs[best][j] + sigma * (xs[i][j] - xs[best][j]);
          }
          fs[i] = f(xs[i]);
        }
      }
    }
  }

  size_t best = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (fs[i] < fs[best]) best = i;
  }
  result.x = xs[best];
  result.fx = fs[best];
  result.iterations = iter;
  return result;
}

void AdamState::Update(Vector& params, const Vector& grad) {
  SAMYA_CHECK_EQ(params.size(), m_.size());
  SAMYA_CHECK_EQ(grad.size(), m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1 - beta2_) * grad[i] * grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace samya::predict
