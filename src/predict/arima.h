#ifndef SAMYA_PREDICT_ARIMA_H_
#define SAMYA_PREDICT_ARIMA_H_

#include <deque>
#include <vector>

#include "predict/optimizer.h"
#include "predict/predictor.h"

namespace samya::predict {

/// Configuration for `ArimaPredictor`. Defaults match the evaluation in
/// EXPERIMENTS.md (ARIMA(3,1,2) on the resampled demand series).
struct ArimaOptions {
  int p = 3;  ///< autoregressive order
  int d = 1;  ///< differencing order (0 or 1 supported)
  int q = 2;  ///< moving-average order
  /// Minimize the conditional sum of |residuals| instead of squares: robust
  /// against the trace's heavy-tailed bursts, and aligned with the MAE
  /// metric Table 2a reports.
  bool robust_loss = false;
  NelderMeadOptions fit;
};

/// \brief ARIMA(p,d,q) forecaster fitted by conditional sum of squares.
///
/// The series is differenced `d` times; the ARMA(p,q) residual recursion
///   e_t = w_t - c - sum_i phi_i w_{t-i} - sum_j theta_j e_{t-j}
/// defines the CSS objective sum e_t^2, minimized with Nelder–Mead (the MA
/// terms make the gradient recursive, so a derivative-free fit is the
/// textbook route). One-step forecasts integrate the differencing back.
class ArimaPredictor : public DemandPredictor {
 public:
  explicit ArimaPredictor(ArimaOptions opts = {});

  Status Train(const std::vector<double>& series) override;
  void Observe(double value) override;
  double PredictNext() override;
  std::string name() const override { return "arima"; }

  /// Fitted parameters, for inspection: [c, phi_1..phi_p, theta_1..theta_q].
  const Vector& params() const { return params_; }
  double fit_css() const { return fit_css_; }

 private:
  /// Differenced view of a raw series.
  static std::vector<double> Difference(const std::vector<double>& raw, int d);

  /// CSS objective on the training (differenced) series.
  double Css(const Vector& params, const std::vector<double>& w) const;

  /// Recomputes the residual tail after new observations.
  void RefreshResiduals();

  ArimaOptions opts_;
  Vector params_;       // [c, phis..., thetas...]
  double fit_css_ = 0;
  bool trained_ = false;

  std::vector<double> raw_;   // full observed raw history
  std::vector<double> w_;     // differenced history
  std::vector<double> resid_; // residuals aligned with w_
};

std::unique_ptr<DemandPredictor> MakeArima(ArimaOptions opts = {});

}  // namespace samya::predict

#endif  // SAMYA_PREDICT_ARIMA_H_
