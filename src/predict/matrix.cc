#include "predict/matrix.h"

#include <algorithm>
#include <cmath>

namespace samya::predict {

void Matrix::RandomInit(Rng& rng, double scale) {
  for (double& v : data_) v = rng.Uniform(-scale, scale);
}

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::MultiplyAdd(const Vector& x, Vector& y) const {
  SAMYA_CHECK_EQ(x.size(), cols_);
  SAMYA_CHECK_EQ(y.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

void Matrix::TransposeMultiplyAdd(const Vector& x, Vector& y) const {
  SAMYA_CHECK_EQ(x.size(), rows_);
  SAMYA_CHECK_EQ(y.size(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::AddOuter(const Vector& a, const Vector& b, double scale) {
  SAMYA_CHECK_EQ(a.size(), rows_);
  SAMYA_CHECK_EQ(b.size(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = &data_[r * cols_];
    const double ar = a[r] * scale;
    if (ar == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Matrix::Axpy(const Matrix& other, double scale) {
  SAMYA_CHECK_EQ(rows_, other.rows_);
  SAMYA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void AxpyV(const Vector& x, double scale, Vector& y) {
  SAMYA_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += scale * x[i];
}

double Dot(const Vector& a, const Vector& b) {
  SAMYA_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double SquaredNormV(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return acc;
}

void ScaleV(Vector& v, double s) {
  for (double& x : v) x *= s;
}

}  // namespace samya::predict
