#include "predict/predictor.h"

namespace samya::predict {

Status RandomWalkPredictor::Train(const std::vector<double>& series) {
  if (!series.empty()) last_ = series.back();
  return Status::OK();
}

Status EwmaPredictor::Train(const std::vector<double>& series) {
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    return Status::InvalidArgument("ewma alpha must be in (0,1]");
  }
  for (double v : series) Observe(v);
  return Status::OK();
}

void EwmaPredictor::Observe(double value) {
  if (!seeded_) {
    ewma_ = value;
    seeded_ = true;
  } else {
    ewma_ = alpha_ * value + (1 - alpha_) * ewma_;
  }
}

Status SeasonalNaivePredictor::Train(const std::vector<double>& series) {
  if (period_ == 0) return Status::InvalidArgument("period must be positive");
  for (double v : series) Observe(v);
  return Status::OK();
}

void SeasonalNaivePredictor::Observe(double value) {
  if (ring_.size() < period_) {
    ring_.push_back(value);
  } else if (period_ > 0) {
    ring_[oldest_] = value;
    oldest_ = (oldest_ + 1) % period_;
  }
  level_.Observe(value);
}

double SeasonalNaivePredictor::PredictNext() {
  if (period_ == 0 || ring_.size() < period_) return level_.PredictNext();
  // The value one season ahead of now is the oldest one in the ring.
  const double seasonal = ring_[oldest_];
  const double level = level_.PredictNext();
  const double p = blend_ * seasonal + (1 - blend_) * level;
  return p < 0 ? 0 : p;
}

std::unique_ptr<DemandPredictor> MakeRandomWalk() {
  return std::make_unique<RandomWalkPredictor>();
}

std::unique_ptr<DemandPredictor> MakeEwma(double alpha) {
  return std::make_unique<EwmaPredictor>(alpha);
}

std::unique_ptr<DemandPredictor> MakeSeasonalNaive(size_t period) {
  return std::make_unique<SeasonalNaivePredictor>(period);
}

}  // namespace samya::predict
