#include "predict/lstm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace samya::predict {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

LstmPredictor::LstmPredictor(LstmOptions opts)
    : opts_(opts), rng_(opts.seed) {
  const size_t h = opts_.hidden;
  wx_ = Matrix(4 * h, kInputDim);
  wh_ = Matrix(4 * h, h);
  b_.assign(4 * h, 0.0);
  wy_.assign(h, 0.0);

  const double sx = std::sqrt(6.0 / static_cast<double>(kInputDim + h));
  const double sh = std::sqrt(6.0 / static_cast<double>(h + h));
  wx_.RandomInit(rng_, sx);
  wh_.RandomInit(rng_, sh);
  for (double& v : wy_) v = rng_.Uniform(-sh, sh);
  // Forget-gate bias starts positive: standard trick to preserve memory
  // early in training.
  for (size_t j = h; j < 2 * h; ++j) b_[j] = 1.0;

  gwx_ = Matrix(4 * h, kInputDim);
  gwh_ = Matrix(4 * h, h);
  gb_.assign(4 * h, 0.0);
  gwy_.assign(h, 0.0);

  adam_wx_ = std::make_unique<AdamState>(wx_.data().size(), opts_.learning_rate);
  adam_wh_ = std::make_unique<AdamState>(wh_.data().size(), opts_.learning_rate);
  adam_b_ = std::make_unique<AdamState>(b_.size(), opts_.learning_rate);
  adam_wy_ = std::make_unique<AdamState>(wy_.size(), opts_.learning_rate);
  adam_by_ = std::make_unique<AdamState>(1, opts_.learning_rate);
}

Vector LstmPredictor::FeaturesAt(size_t abs_index, double normalized) const {
  const double phase = 2.0 * M_PI *
                       static_cast<double>(abs_index % opts_.period) /
                       static_cast<double>(opts_.period);
  return {normalized, std::sin(phase), std::cos(phase)};
}

double LstmPredictor::Forward(const std::vector<Vector>& xs,
                              std::vector<StepCache>* cache) const {
  const size_t h = opts_.hidden;
  Vector hprev(h, 0.0), cprev(h, 0.0);
  if (cache != nullptr) cache->resize(xs.size());

  for (size_t t = 0; t < xs.size(); ++t) {
    Vector z = b_;
    wx_.MultiplyAdd(xs[t], z);
    wh_.MultiplyAdd(hprev, z);
    Vector i(h), f(h), o(h), g(h), c(h), hh(h), tc(h);
    for (size_t j = 0; j < h; ++j) {
      i[j] = Sigmoid(z[j]);
      f[j] = Sigmoid(z[h + j]);
      o[j] = Sigmoid(z[2 * h + j]);
      g[j] = std::tanh(z[3 * h + j]);
      c[j] = f[j] * cprev[j] + i[j] * g[j];
      tc[j] = std::tanh(c[j]);
      hh[j] = o[j] * tc[j];
    }
    if (cache != nullptr) {
      (*cache)[t] = StepCache{xs[t], i, f, o, g, c, hh, tc};
    }
    hprev = std::move(hh);
    cprev = std::move(c);
  }
  return Dot(wy_, hprev) + by_;
}

void LstmPredictor::Backward(const std::vector<StepCache>& cache, double dy) {
  const size_t h = opts_.hidden;
  const size_t L = cache.size();
  SAMYA_CHECK_GT(L, 0u);

  // Output layer gradients.
  for (size_t j = 0; j < h; ++j) gwy_[j] += dy * cache[L - 1].h[j];
  gby_ += dy;

  Vector dh(h, 0.0), dc(h, 0.0);
  for (size_t j = 0; j < h; ++j) dh[j] = dy * wy_[j];

  const Vector zeros(h, 0.0);
  for (size_t t = L; t-- > 0;) {
    const StepCache& s = cache[t];
    const Vector& cprev_vec = t > 0 ? cache[t - 1].c : zeros;
    const Vector& hprev_vec = t > 0 ? cache[t - 1].h : zeros;

    Vector dz(4 * h, 0.0);
    for (size_t j = 0; j < h; ++j) {
      const double do_ = dh[j] * s.tanh_c[j];
      const double dtc = dh[j] * s.o[j] * (1 - s.tanh_c[j] * s.tanh_c[j]) + dc[j];
      const double df = dtc * cprev_vec[j];
      const double di = dtc * s.g[j];
      const double dg = dtc * s.i[j];
      dc[j] = dtc * s.f[j];  // carry to t-1

      dz[j] = di * s.i[j] * (1 - s.i[j]);
      dz[h + j] = df * s.f[j] * (1 - s.f[j]);
      dz[2 * h + j] = do_ * s.o[j] * (1 - s.o[j]);
      dz[3 * h + j] = dg * (1 - s.g[j] * s.g[j]);
    }

    gwx_.AddOuter(dz, s.x);
    gwh_.AddOuter(dz, hprev_vec);
    AxpyV(dz, 1.0, gb_);

    // dh for the previous step: Wh^T dz.
    std::fill(dh.begin(), dh.end(), 0.0);
    wh_.TransposeMultiplyAdd(dz, dh);
  }
}

void LstmPredictor::ApplyGradients() {
  // Global norm clip across all tensors.
  double sq = gwx_.SquaredNorm() + gwh_.SquaredNorm() + SquaredNormV(gb_) +
              SquaredNormV(gwy_) + gby_ * gby_;
  const double norm = std::sqrt(sq);
  if (norm > opts_.clip_norm && norm > 0) {
    const double s = opts_.clip_norm / norm;
    gwx_.Scale(s);
    gwh_.Scale(s);
    ScaleV(gb_, s);
    ScaleV(gwy_, s);
    gby_ *= s;
  }
  adam_wx_->Update(wx_.data(), gwx_.data());
  adam_wh_->Update(wh_.data(), gwh_.data());
  adam_b_->Update(b_, gb_);
  adam_wy_->Update(wy_, gwy_);
  Vector by_vec = {by_}, gby_vec = {gby_};
  adam_by_->Update(by_vec, gby_vec);
  by_ = by_vec[0];

  gwx_.Zero();
  gwh_.Zero();
  std::fill(gb_.begin(), gb_.end(), 0.0);
  std::fill(gwy_.begin(), gwy_.end(), 0.0);
  gby_ = 0.0;
}

Status LstmPredictor::Train(const std::vector<double>& series) {
  if (series.size() < opts_.window + 2) {
    return Status::InvalidArgument("lstm: series shorter than window");
  }
  history_ = series;

  // Normalization statistics from the training series.
  mean_ = std::accumulate(series.begin(), series.end(), 0.0) /
          static_cast<double>(series.size());
  double var = 0.0;
  for (double v : series) var += (v - mean_) * (v - mean_);
  std_ = std::sqrt(var / static_cast<double>(series.size()));
  if (std_ < 1e-9) std_ = 1.0;

  // Training examples: window ending at t predicts t+1.
  std::vector<size_t> ends;  // index of last input element
  for (size_t t = opts_.window - 1; t + 1 < series.size(); t += opts_.stride) {
    ends.push_back(t);
  }

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (size_t i = ends.size(); i > 1; --i) {
      const size_t j = rng_.NextUint64(i);
      std::swap(ends[i - 1], ends[j]);
    }
    double mse = 0.0;
    for (size_t end : ends) {
      std::vector<Vector> xs(opts_.window);
      for (size_t k = 0; k < opts_.window; ++k) {
        const size_t idx = end - opts_.window + 1 + k;
        xs[k] = FeaturesAt(idx, Normalize(series[idx]));
      }
      std::vector<StepCache> cache;
      const double y = Forward(xs, &cache);
      const double target = Normalize(series[end + 1]);
      const double err = y - target;
      mse += err * err;
      Backward(cache, 2.0 * err);
      ApplyGradients();
    }
    final_train_mse_ = mse / static_cast<double>(ends.size());
  }
  trained_ = true;
  return Status::OK();
}

void LstmPredictor::Observe(double value) { history_.push_back(value); }

double LstmPredictor::PredictNext() {
  if (!trained_ || history_.size() < opts_.window) {
    return history_.empty() ? 0.0 : std::max(0.0, history_.back());
  }
  std::vector<Vector> xs(opts_.window);
  const size_t begin = history_.size() - opts_.window;
  for (size_t k = 0; k < opts_.window; ++k) {
    xs[k] = FeaturesAt(begin + k, Normalize(history_[begin + k]));
  }
  const double y = Forward(xs, nullptr);
  const double pred = Denormalize(y);
  return pred < 0 ? 0 : pred;
}

std::unique_ptr<DemandPredictor> MakeLstm(LstmOptions opts) {
  return std::make_unique<LstmPredictor>(opts);
}

}  // namespace samya::predict
