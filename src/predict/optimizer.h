#ifndef SAMYA_PREDICT_OPTIMIZER_H_
#define SAMYA_PREDICT_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "predict/matrix.h"

namespace samya::predict {

/// \brief Derivative-free Nelder–Mead simplex minimizer.
///
/// Used to fit the ARIMA conditional-sum-of-squares objective, whose gradient
/// is awkward because of the recursive MA terms.
struct NelderMeadOptions {
  int max_iterations = 500;
  double initial_step = 0.1;
  double tolerance = 1e-8;  // stop when simplex f-spread falls below this
};

struct NelderMeadResult {
  Vector x;
  double fx = 0.0;
  int iterations = 0;
};

NelderMeadResult NelderMead(const std::function<double(const Vector&)>& f,
                            Vector x0, const NelderMeadOptions& opts = {});

/// \brief Adam optimizer state for one parameter tensor (flat vector form).
///
/// The LSTM trainer keeps one `AdamState` per weight matrix/bias and calls
/// `Update` after each gradient computation.
class AdamState {
 public:
  AdamState(size_t n, double lr = 1e-3, double beta1 = 0.9,
            double beta2 = 0.999, double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        m_(n, 0.0), v_(n, 0.0) {}

  /// params -= adam_step(grad), updating first/second moment estimates.
  void Update(Vector& params, const Vector& grad);

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  Vector m_, v_;
};

}  // namespace samya::predict

#endif  // SAMYA_PREDICT_OPTIMIZER_H_
