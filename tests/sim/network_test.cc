#include "sim/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/fault_injector.h"

namespace samya::sim {
namespace {

constexpr uint32_t kPing = 1;
constexpr uint32_t kPong = 2;

/// Test node: replies kPong to kPing, records everything received.
class EchoNode : public Node {
 public:
  EchoNode(NodeId id, Region region) : Node(id, region) {}

  void HandleMessage(NodeId from, uint32_t type, BufferReader& r) override {
    std::string body = r.GetString().value();
    received.push_back({from, type, body, Now()});
    if (type == kPing) {
      BufferWriter w;
      w.PutString(body);
      Send(from, kPong, w);
    }
  }

  void SendPing(NodeId to, const std::string& body) {
    BufferWriter w;
    w.PutString(body);
    Send(to, kPing, w);
  }

  void HandleTimer(uint64_t token) override { timers.push_back(token); }
  void HandleCrash() override { ++crashes; }
  void HandleRecover() override { ++recoveries; }

  using Node::CancelTimer;
  using Node::SetTimer;

  struct Received {
    NodeId from;
    uint32_t type;
    std::string body;
    SimTime at;
  };
  std::vector<Received> received;
  std::vector<uint64_t> timers;
  int crashes = 0;
  int recoveries = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : cluster_(/*seed=*/99) {
    a_ = cluster_.AddNode<EchoNode>(Region::kUsWest1);
    b_ = cluster_.AddNode<EchoNode>(Region::kEuropeWest2);
    c_ = cluster_.AddNode<EchoNode>(Region::kAsiaEast2);
  }

  Cluster cluster_;
  EchoNode* a_;
  EchoNode* b_;
  EchoNode* c_;
};

TEST_F(NetworkTest, DeliversWithGeoLatency) {
  a_->SendPing(b_->id(), "hello");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  EXPECT_EQ(b_->received[0].from, a_->id());
  EXPECT_EQ(b_->received[0].body, "hello");
  // us-west1 -> europe-west2 one-way base is 65ms; jitter adds a bit.
  EXPECT_GE(b_->received[0].at, Millis(65));
  EXPECT_LE(b_->received[0].at, Millis(90));
  // And the pong came back.
  ASSERT_EQ(a_->received.size(), 1u);
  EXPECT_EQ(a_->received[0].type, kPong);
  EXPECT_GE(a_->received[0].at, Millis(130));
}

TEST_F(NetworkTest, IntraRegionIsSubMillisecondBase) {
  LatencyModel m;
  EXPECT_LT(m.Base(Region::kUsWest1, Region::kUsWest1), Millis(1));
  EXPECT_EQ(m.Base(Region::kUsWest1, Region::kAsiaEast2),
            m.Base(Region::kAsiaEast2, Region::kUsWest1));
}

TEST_F(NetworkTest, CrashedReceiverDropsMessages) {
  cluster_.net().Crash(b_->id());
  a_->SendPing(b_->id(), "x");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  // Liveness is checked at delivery time, so the drop is attributed there.
  EXPECT_EQ(cluster_.net().stats().messages_dropped_crashed, 1u);
  EXPECT_EQ(b_->crashes, 1);
}

TEST_F(NetworkTest, CrashedSenderSendsNothing) {
  cluster_.net().Crash(a_->id());
  a_->SendPing(b_->id(), "x");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_sent, 0u);
}

TEST_F(NetworkTest, RecoveryRestoresDelivery) {
  cluster_.net().Crash(b_->id());
  cluster_.net().Recover(b_->id());
  EXPECT_EQ(b_->recoveries, 1);
  a_->SendPing(b_->id(), "back");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
}

TEST_F(NetworkTest, InFlightMessageToCrashingNodeIsLost) {
  a_->SendPing(b_->id(), "doomed");
  // Crash b before the ~65ms delivery.
  cluster_.env().Schedule(Millis(10), [&] { cluster_.net().Crash(b_->id()); });
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_dropped_crashed, 1u);
}

TEST_F(NetworkTest, PartitionCutsCrossGroupTraffic) {
  cluster_.net().SetPartition({{a_->id(), c_->id()}, {b_->id()}});
  a_->SendPing(b_->id(), "cut");
  a_->SendPing(c_->id(), "ok");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  ASSERT_EQ(c_->received.size(), 1u);
  EXPECT_EQ(cluster_.net().stats().messages_dropped_partition, 1u);

  cluster_.net().ClearPartition();
  a_->SendPing(b_->id(), "healed");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  EXPECT_EQ(b_->received[0].body, "healed");
}

TEST_F(NetworkTest, UnlistedNodesShareImplicitGroup) {
  cluster_.net().SetPartition({{a_->id()}});
  // b and c were not listed: they end up together, cut off from a.
  b_->SendPing(c_->id(), "peers");
  b_->SendPing(a_->id(), "cut");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(c_->received.size(), 1u);
  EXPECT_TRUE(a_->received.empty());
}

TEST_F(NetworkTest, MessageLossRate) {
  cluster_.net().set_loss_rate(1.0);
  a_->SendPing(b_->id(), "lost");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_dropped_loss, 1u);

  cluster_.net().set_loss_rate(0.0);
  a_->SendPing(b_->id(), "found");
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(b_->received.size(), 1u);
}

TEST_F(NetworkTest, TimersFireWithToken) {
  a_->SetTimer(Millis(5), 42);
  a_->SetTimer(Millis(10), 43);
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(a_->timers, (std::vector<uint64_t>{42, 43}));
}

TEST_F(NetworkTest, CancelledTimerDoesNotFire) {
  uint64_t t = a_->SetTimer(Millis(5), 1);
  a_->CancelTimer(t);
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(a_->timers.empty());
}

TEST_F(NetworkTest, CrashKillsPendingTimers) {
  a_->SetTimer(Millis(50), 7);
  cluster_.env().Schedule(Millis(10), [&] { cluster_.net().Crash(a_->id()); });
  cluster_.env().Schedule(Millis(20), [&] { cluster_.net().Recover(a_->id()); });
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(a_->timers.empty());  // timer armed pre-crash must not fire
}

TEST_F(NetworkTest, FaultInjectorSchedules) {
  FaultInjector faults(&cluster_.net());
  faults.CrashAt(Millis(10), b_->id());
  faults.RecoverAt(Millis(30), b_->id());
  faults.PartitionAt(Millis(40), {{a_->id()}, {b_->id(), c_->id()}});
  faults.HealAt(Millis(50));

  cluster_.env().RunUntil(Millis(20));
  EXPECT_FALSE(b_->alive());
  cluster_.env().RunUntil(Millis(35));
  EXPECT_TRUE(b_->alive());
  cluster_.env().RunUntil(Millis(45));
  EXPECT_TRUE(cluster_.net().Partitioned());
  cluster_.env().RunUntil(Millis(55));
  EXPECT_FALSE(cluster_.net().Partitioned());
}

TEST_F(NetworkTest, StableStorageSurvivesCrash) {
  auto* store = cluster_.StorageFor(a_->id());
  ASSERT_TRUE(store->PutString("ballot", "7:1").ok());
  cluster_.net().Crash(a_->id());
  cluster_.net().Recover(a_->id());
  EXPECT_EQ(cluster_.StorageFor(a_->id())->GetString("ballot").value(), "7:1");
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  // Two identically-seeded clusters produce identical delivery timestamps.
  auto run = [](uint64_t seed) {
    Cluster c(seed);
    auto* x = c.AddNode<EchoNode>(Region::kUsWest1);
    auto* y = c.AddNode<EchoNode>(Region::kAsiaEast2);
    for (int i = 0; i < 20; ++i) x->SendPing(y->id(), std::to_string(i));
    c.env().RunUntilIdle();
    std::vector<SimTime> times;
    for (const auto& m : y->received) times.push_back(m.at);
    return times;
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(5678));
}

TEST_F(NetworkTest, MessageTapObservesSendsAndDrops) {
  struct Tapped {
    uint32_t type;
    bool delivered;
  };
  std::vector<Tapped> taps;
  cluster_.net().set_message_tap(
      [&](SimTime, sim::NodeId, sim::NodeId, uint32_t type, size_t bytes,
          bool delivered) {
        EXPECT_GT(bytes, 0u);
        taps.push_back({type, delivered});
      });
  a_->SendPing(b_->id(), "one");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(taps.size(), 2u);  // ping + pong
  EXPECT_EQ(taps[0].type, kPing);
  EXPECT_TRUE(taps[0].delivered);

  cluster_.net().set_loss_rate(1.0);
  a_->SendPing(b_->id(), "two");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(taps.size(), 3u);
  EXPECT_FALSE(taps[2].delivered);

  cluster_.net().set_message_tap(nullptr);
  cluster_.net().set_loss_rate(0.0);
  a_->SendPing(b_->id(), "three");
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(taps.size(), 3u);  // tap removed
}

TEST_F(NetworkTest, StatsCountBytes) {
  a_->SendPing(b_->id(), "12345");
  cluster_.env().RunUntilIdle();
  EXPECT_GT(cluster_.net().stats().bytes_sent, 5u);
  EXPECT_EQ(cluster_.net().stats().messages_sent, 2u);  // ping + pong
  EXPECT_EQ(cluster_.net().stats().messages_delivered, 2u);
}

}  // namespace
}  // namespace samya::sim
