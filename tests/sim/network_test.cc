#include "sim/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/fault_injector.h"

namespace samya::sim {
namespace {

constexpr uint32_t kPing = 1;
constexpr uint32_t kPong = 2;

/// Test node: replies kPong to kPing, records everything received.
class EchoNode : public Node {
 public:
  EchoNode(NodeId id, Region region) : Node(id, region) {}

  void HandleMessage(NodeId from, uint32_t type, BufferReader& r) override {
    std::string body = r.GetString().value();
    received.push_back({from, type, body, Now()});
    if (type == kPing) {
      BufferWriter w;
      w.PutString(body);
      Send(from, kPong, w);
    }
  }

  void SendPing(NodeId to, const std::string& body) {
    BufferWriter w;
    w.PutString(body);
    Send(to, kPing, w);
  }

  void HandleTimer(uint64_t token) override { timers.push_back(token); }
  void HandleCrash() override { ++crashes; }
  void HandleRecover() override { ++recoveries; }

  using Node::CancelTimer;
  using Node::SetTimer;

  struct Received {
    NodeId from;
    uint32_t type;
    std::string body;
    SimTime at;
  };
  std::vector<Received> received;
  std::vector<uint64_t> timers;
  int crashes = 0;
  int recoveries = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : cluster_(/*seed=*/99) {
    a_ = cluster_.AddNode<EchoNode>(Region::kUsWest1);
    b_ = cluster_.AddNode<EchoNode>(Region::kEuropeWest2);
    c_ = cluster_.AddNode<EchoNode>(Region::kAsiaEast2);
  }

  Cluster cluster_;
  EchoNode* a_;
  EchoNode* b_;
  EchoNode* c_;
};

TEST_F(NetworkTest, DeliversWithGeoLatency) {
  a_->SendPing(b_->id(), "hello");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  EXPECT_EQ(b_->received[0].from, a_->id());
  EXPECT_EQ(b_->received[0].body, "hello");
  // us-west1 -> europe-west2 one-way base is 65ms; jitter adds a bit.
  EXPECT_GE(b_->received[0].at, Millis(65));
  EXPECT_LE(b_->received[0].at, Millis(90));
  // And the pong came back.
  ASSERT_EQ(a_->received.size(), 1u);
  EXPECT_EQ(a_->received[0].type, kPong);
  EXPECT_GE(a_->received[0].at, Millis(130));
}

TEST_F(NetworkTest, IntraRegionIsSubMillisecondBase) {
  LatencyModel m;
  EXPECT_LT(m.Base(Region::kUsWest1, Region::kUsWest1), Millis(1));
  EXPECT_EQ(m.Base(Region::kUsWest1, Region::kAsiaEast2),
            m.Base(Region::kAsiaEast2, Region::kUsWest1));
}

TEST_F(NetworkTest, CrashedReceiverDropsMessages) {
  cluster_.net().Crash(b_->id());
  a_->SendPing(b_->id(), "x");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  // Liveness is checked at delivery time, so the drop is attributed there.
  EXPECT_EQ(cluster_.net().stats().messages_dropped_crashed, 1u);
  EXPECT_EQ(b_->crashes, 1);
}

TEST_F(NetworkTest, CrashedSenderSendsNothing) {
  cluster_.net().Crash(a_->id());
  a_->SendPing(b_->id(), "x");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_sent, 0u);
}

TEST_F(NetworkTest, RecoveryRestoresDelivery) {
  cluster_.net().Crash(b_->id());
  cluster_.net().Recover(b_->id());
  EXPECT_EQ(b_->recoveries, 1);
  a_->SendPing(b_->id(), "back");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
}

TEST_F(NetworkTest, InFlightMessageToCrashingNodeIsLost) {
  a_->SendPing(b_->id(), "doomed");
  // Crash b before the ~65ms delivery.
  cluster_.env().Schedule(Millis(10), [&] { cluster_.net().Crash(b_->id()); });
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_dropped_crashed, 1u);
}

TEST_F(NetworkTest, PartitionCutsCrossGroupTraffic) {
  cluster_.net().SetPartition({{a_->id(), c_->id()}, {b_->id()}});
  a_->SendPing(b_->id(), "cut");
  a_->SendPing(c_->id(), "ok");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  ASSERT_EQ(c_->received.size(), 1u);
  EXPECT_EQ(cluster_.net().stats().messages_dropped_partition, 1u);

  cluster_.net().ClearPartition();
  a_->SendPing(b_->id(), "healed");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  EXPECT_EQ(b_->received[0].body, "healed");
}

TEST_F(NetworkTest, UnlistedNodesShareImplicitGroup) {
  cluster_.net().SetPartition({{a_->id()}});
  // b and c were not listed: they end up together, cut off from a.
  b_->SendPing(c_->id(), "peers");
  b_->SendPing(a_->id(), "cut");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(c_->received.size(), 1u);
  EXPECT_TRUE(a_->received.empty());
}

TEST_F(NetworkTest, MessageLossRate) {
  cluster_.net().set_loss_rate(1.0);
  a_->SendPing(b_->id(), "lost");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_dropped_loss, 1u);

  cluster_.net().set_loss_rate(0.0);
  a_->SendPing(b_->id(), "found");
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(b_->received.size(), 1u);
}

TEST_F(NetworkTest, TimersFireWithToken) {
  a_->SetTimer(Millis(5), 42);
  a_->SetTimer(Millis(10), 43);
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(a_->timers, (std::vector<uint64_t>{42, 43}));
}

TEST_F(NetworkTest, CancelledTimerDoesNotFire) {
  uint64_t t = a_->SetTimer(Millis(5), 1);
  a_->CancelTimer(t);
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(a_->timers.empty());
}

TEST_F(NetworkTest, CrashKillsPendingTimers) {
  a_->SetTimer(Millis(50), 7);
  cluster_.env().Schedule(Millis(10), [&] { cluster_.net().Crash(a_->id()); });
  cluster_.env().Schedule(Millis(20), [&] { cluster_.net().Recover(a_->id()); });
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(a_->timers.empty());  // timer armed pre-crash must not fire
}

TEST_F(NetworkTest, FaultInjectorSchedules) {
  FaultInjector faults(&cluster_.net());
  faults.CrashAt(Millis(10), b_->id());
  faults.RecoverAt(Millis(30), b_->id());
  faults.PartitionAt(Millis(40), {{a_->id()}, {b_->id(), c_->id()}});
  faults.HealAt(Millis(50));

  cluster_.env().RunUntil(Millis(20));
  EXPECT_FALSE(b_->alive());
  cluster_.env().RunUntil(Millis(35));
  EXPECT_TRUE(b_->alive());
  cluster_.env().RunUntil(Millis(45));
  EXPECT_TRUE(cluster_.net().Partitioned());
  cluster_.env().RunUntil(Millis(55));
  EXPECT_FALSE(cluster_.net().Partitioned());
}

TEST_F(NetworkTest, StableStorageSurvivesCrash) {
  auto* store = cluster_.StorageFor(a_->id());
  ASSERT_TRUE(store->PutString("ballot", "7:1").ok());
  cluster_.net().Crash(a_->id());
  cluster_.net().Recover(a_->id());
  EXPECT_EQ(cluster_.StorageFor(a_->id())->GetString("ballot").value(), "7:1");
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  // Two identically-seeded clusters produce identical delivery timestamps.
  auto run = [](uint64_t seed) {
    Cluster c(seed);
    auto* x = c.AddNode<EchoNode>(Region::kUsWest1);
    auto* y = c.AddNode<EchoNode>(Region::kAsiaEast2);
    for (int i = 0; i < 20; ++i) x->SendPing(y->id(), std::to_string(i));
    c.env().RunUntilIdle();
    std::vector<SimTime> times;
    for (const auto& m : y->received) times.push_back(m.at);
    return times;
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(5678));
}

TEST_F(NetworkTest, MessageTapObservesSendsAndDrops) {
  struct Tapped {
    uint32_t type;
    TapEvent event;
  };
  std::vector<Tapped> taps;
  cluster_.net().set_message_tap(
      [&](SimTime, sim::NodeId, sim::NodeId, uint32_t type, size_t bytes,
          TapEvent ev) {
        EXPECT_GT(bytes, 0u);
        taps.push_back({type, ev});
      });
  a_->SendPing(b_->id(), "one");
  cluster_.env().RunUntilIdle();
  // Each delivered message taps twice: kSent then kDelivered. Ping + pong.
  ASSERT_EQ(taps.size(), 4u);
  EXPECT_EQ(taps[0].type, kPing);
  EXPECT_EQ(taps[0].event, TapEvent::kSent);
  EXPECT_EQ(taps[1].event, TapEvent::kDelivered);
  EXPECT_EQ(taps[2].type, kPong);

  cluster_.net().set_loss_rate(1.0);
  a_->SendPing(b_->id(), "two");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(taps.size(), 5u);  // a send-time drop taps exactly once
  EXPECT_EQ(taps[4].event, TapEvent::kDroppedAtSend);

  cluster_.net().set_message_tap(nullptr);
  cluster_.net().set_loss_rate(0.0);
  a_->SendPing(b_->id(), "three");
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(taps.size(), 5u);  // tap removed
}

TEST_F(NetworkTest, MessageTapReportsDeliveryTimeDrops) {
  std::vector<TapEvent> events;
  cluster_.net().set_message_tap(
      [&](SimTime, sim::NodeId, sim::NodeId, uint32_t, size_t, TapEvent ev) {
        events.push_back(ev);
      });
  a_->SendPing(b_->id(), "doomed");
  // Crash b before the ~65ms delivery: the drop happens at delivery time and
  // must be reported, not silently swallowed.
  cluster_.env().Schedule(Millis(10), [&] { cluster_.net().Crash(b_->id()); });
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], TapEvent::kSent);
  EXPECT_EQ(events[1], TapEvent::kDroppedAtDelivery);
  EXPECT_EQ(cluster_.net().stats().messages_dropped_crashed, 1u);
}

TEST_F(NetworkTest, OneWayLinkCutIsAsymmetric) {
  cluster_.net().CutLink(a_->id(), b_->id());
  EXPECT_TRUE(cluster_.net().LinkCut(a_->id(), b_->id()));
  EXPECT_FALSE(cluster_.net().LinkCut(b_->id(), a_->id()));

  a_->SendPing(b_->id(), "blocked");
  b_->SendPing(a_->id(), "open");
  cluster_.env().RunUntilIdle();
  // a->b cut at send time; b->a delivered, but a's pong back rides the cut
  // a->b direction and is dropped too.
  EXPECT_TRUE(b_->received.empty());
  ASSERT_EQ(a_->received.size(), 1u);
  EXPECT_EQ(a_->received[0].type, kPing);
  EXPECT_EQ(cluster_.net().stats().messages_dropped_link, 2u);

  cluster_.net().RestoreLink(a_->id(), b_->id());
  a_->SendPing(b_->id(), "restored");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  EXPECT_EQ(b_->received[0].body, "restored");
}

TEST_F(NetworkTest, LinkCutFormedMidFlightDropsAtDelivery) {
  a_->SendPing(b_->id(), "doomed");
  cluster_.env().Schedule(
      Millis(10), [&] { cluster_.net().CutLink(a_->id(), b_->id()); });
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(b_->received.empty());
  EXPECT_EQ(cluster_.net().stats().messages_dropped_link, 1u);
}

TEST_F(NetworkTest, GlobalDelayFactorStretchesLatency) {
  cluster_.net().set_delay_factor(10.0);
  a_->SendPing(b_->id(), "slow");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  // us-west1 -> europe-west2 base is 65ms; 10x puts it at >= 650ms.
  EXPECT_GE(b_->received[0].at, Millis(650));
}

TEST_F(NetworkTest, PerLinkDelayFactorIsDirectional) {
  cluster_.net().SetLinkDelayFactor(a_->id(), b_->id(), 10.0);
  a_->SendPing(b_->id(), "slow");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  ASSERT_EQ(a_->received.size(), 1u);
  EXPECT_GE(b_->received[0].at, Millis(650));  // a->b stretched 10x
  // The pong b->a is not stretched: it arrives well under 10x after the ping.
  EXPECT_LE(a_->received[0].at - b_->received[0].at, Millis(90));

  // Factor 1.0 removes the override.
  cluster_.net().SetLinkDelayFactor(a_->id(), b_->id(), 1.0);
  const SimTime t0 = cluster_.env().Now();
  a_->SendPing(b_->id(), "fast");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 2u);
  EXPECT_LE(b_->received[1].at - t0, Millis(90));
}

TEST_F(NetworkTest, DuplicateDeliveryCountsAndDelivers) {
  cluster_.net().set_duplicate_rate(1.0);
  a_->SendPing(b_->id(), "twice");
  cluster_.env().RunUntilIdle();
  // Ping duplicated -> b receives 2 pings, sends 2 pongs, each duplicated
  // -> a receives 4 pongs.
  EXPECT_EQ(b_->received.size(), 2u);
  EXPECT_EQ(a_->received.size(), 4u);
  EXPECT_EQ(cluster_.net().stats().messages_duplicated, 3u);  // 1 ping + 2 pongs
  EXPECT_EQ(cluster_.net().stats().messages_sent, 3u);        // dups not counted
  EXPECT_EQ(cluster_.net().stats().messages_delivered, 6u);
  for (const auto& m : b_->received) EXPECT_EQ(m.body, "twice");
}

TEST_F(NetworkTest, ClearLinkFaultsRemovesCutsAndDelays) {
  cluster_.net().CutLink(a_->id(), b_->id());
  cluster_.net().SetLinkDelayFactor(b_->id(), a_->id(), 50.0);
  cluster_.net().ClearLinkFaults();
  EXPECT_FALSE(cluster_.net().LinkCut(a_->id(), b_->id()));
  a_->SendPing(b_->id(), "ok");
  cluster_.env().RunUntilIdle();
  ASSERT_EQ(b_->received.size(), 1u);
  ASSERT_EQ(a_->received.size(), 1u);
  EXPECT_LE(a_->received[0].at, Millis(200));  // pong not stretched 50x
}

TEST_F(NetworkTest, DropStatAccountingIsExclusive) {
  // Partition drop, link drop, loss drop, and crashed-receiver drop each
  // land in exactly one counter.
  cluster_.net().SetPartition({{a_->id()}, {b_->id(), c_->id()}});
  a_->SendPing(b_->id(), "p");  // partition, at send
  cluster_.net().ClearPartition();

  cluster_.net().CutLink(a_->id(), b_->id());
  a_->SendPing(b_->id(), "l");  // link cut, at send
  cluster_.net().ClearLinkFaults();

  cluster_.net().set_loss_rate(1.0);
  a_->SendPing(b_->id(), "x");  // loss
  cluster_.net().set_loss_rate(0.0);

  cluster_.net().Crash(b_->id());
  a_->SendPing(b_->id(), "c");  // crashed receiver, at delivery
  cluster_.env().RunUntilIdle();

  const NetworkStats& s = cluster_.net().stats();
  EXPECT_EQ(s.messages_sent, 4u);
  EXPECT_EQ(s.messages_dropped_partition, 1u);
  EXPECT_EQ(s.messages_dropped_link, 1u);
  EXPECT_EQ(s.messages_dropped_loss, 1u);
  EXPECT_EQ(s.messages_dropped_crashed, 1u);
  EXPECT_EQ(s.messages_delivered, 0u);
}

TEST_F(NetworkTest, ImplicitFinalGroupCountsPartitionDrops) {
  // Only a is listed; b and c share the implicit final group.
  cluster_.net().SetPartition({{a_->id()}});
  EXPECT_TRUE(cluster_.net().CanCommunicate(b_->id(), c_->id()));
  EXPECT_FALSE(cluster_.net().CanCommunicate(a_->id(), b_->id()));
  EXPECT_FALSE(cluster_.net().CanCommunicate(a_->id(), c_->id()));
  a_->SendPing(b_->id(), "cut");
  a_->SendPing(c_->id(), "cut");
  b_->SendPing(c_->id(), "peers");
  cluster_.env().RunUntilIdle();
  EXPECT_EQ(cluster_.net().stats().messages_dropped_partition, 2u);
  ASSERT_EQ(c_->received.size(), 1u);
}

TEST_F(NetworkTest, RandomChurnWindowsAreDisjointPerNode) {
  FaultInjector faults(&cluster_.net());
  Rng rng(7);
  // Aggressive parameters that overlapped under the old implementation:
  // downtime comparable to horizon / crashes_per_node.
  faults.RandomChurn({a_->id(), b_->id()}, Seconds(10), /*crashes_per_node=*/8,
                     /*downtime=*/Millis(1200), rng);
  cluster_.env().RunUntilIdle();
  // Every crash must find the node alive and every recover must find it
  // crashed (Network::Crash/Recover are idempotent no-ops otherwise, which
  // would make the counts diverge from the schedule).
  EXPECT_EQ(a_->crashes, 8);
  EXPECT_EQ(a_->recoveries, 8);
  EXPECT_EQ(b_->crashes, 8);
  EXPECT_EQ(b_->recoveries, 8);
  EXPECT_TRUE(a_->alive());
  EXPECT_TRUE(b_->alive());
}

TEST_F(NetworkTest, StatsCountBytes) {
  a_->SendPing(b_->id(), "12345");
  cluster_.env().RunUntilIdle();
  EXPECT_GT(cluster_.net().stats().bytes_sent, 5u);
  EXPECT_EQ(cluster_.net().stats().messages_sent, 2u);  // ping + pong
  EXPECT_EQ(cluster_.net().stats().messages_delivered, 2u);
}

TEST_F(NetworkTest, LinkCountersAreOffWithoutMetrics) {
  a_->SendPing(b_->id(), "x");
  cluster_.env().RunUntilIdle();
  EXPECT_TRUE(cluster_.net().link_counters().empty());
}

TEST_F(NetworkTest, LinkCounterDropAccountingSumsToAttempts) {
  obs::MetricsRegistry metrics;
  cluster_.net().set_observability(nullptr, &metrics, nullptr);

  // Exercise every lifecycle outcome: plain deliveries, a send-time loss,
  // a send-time link cut, a delivery-time crash drop, and duplicates.
  a_->SendPing(b_->id(), "ok");  // + pong back
  cluster_.env().RunUntilIdle();

  cluster_.net().set_loss_rate(1.0);
  a_->SendPing(b_->id(), "lost");
  cluster_.net().set_loss_rate(0.0);

  cluster_.net().CutLink(a_->id(), c_->id());
  a_->SendPing(c_->id(), "cut");
  cluster_.net().ClearLinkFaults();

  a_->SendPing(b_->id(), "doomed");
  cluster_.env().Schedule(Millis(10), [&] { cluster_.net().Crash(b_->id()); });
  cluster_.env().RunUntilIdle();
  cluster_.net().Recover(b_->id());

  cluster_.net().set_duplicate_rate(1.0);
  a_->SendPing(b_->id(), "twice");
  cluster_.net().set_duplicate_rate(0.0);
  cluster_.env().RunUntilIdle();

  const auto& links = cluster_.net().link_counters();
  ASSERT_FALSE(links.empty());
  uint64_t attempts = 0;
  uint64_t terminal = 0;
  for (const auto& [key, lc] : links) {
    // The invariant per directed link: every attempted or duplicated copy
    // meets exactly one terminal fate.
    EXPECT_EQ(lc.attempts + lc.duplicated,
              lc.dropped_at_send + lc.delivered + lc.dropped_at_delivery)
        << "link " << Network::LinkKeyFrom(key) << "->"
        << Network::LinkKeyTo(key);
    attempts += lc.attempts;
    terminal += lc.dropped_at_send + lc.delivered + lc.dropped_at_delivery;
  }
  const NetworkStats& s = cluster_.net().stats();
  EXPECT_EQ(attempts, s.messages_sent);
  EXPECT_EQ(terminal, s.messages_sent + s.messages_duplicated);

  const auto a_to_b = links.find((static_cast<uint64_t>(a_->id() + 1) << 32) |
                                 static_cast<uint64_t>(b_->id() + 1));
  ASSERT_NE(a_to_b, links.end());
  EXPECT_EQ(a_to_b->second.dropped_at_send, 1u);      // the loss
  EXPECT_EQ(a_to_b->second.dropped_at_delivery, 1u);  // the crash drop
  EXPECT_EQ(a_to_b->second.duplicated, 1u);
  EXPECT_GT(a_to_b->second.bytes, 0u);
  EXPECT_EQ(Network::LinkKeyFrom(a_to_b->first), a_->id());
  EXPECT_EQ(Network::LinkKeyTo(a_to_b->first), b_->id());

  const auto a_to_c = links.find((static_cast<uint64_t>(a_->id() + 1) << 32) |
                                 static_cast<uint64_t>(c_->id() + 1));
  ASSERT_NE(a_to_c, links.end());
  EXPECT_EQ(a_to_c->second.dropped_at_send, 1u);  // the link cut
}

}  // namespace
}  // namespace samya::sim
