#include "sim/nemesis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/cluster.h"

namespace samya::sim {
namespace {

/// Minimal concrete node; the replay test only inspects network state.
class InertNode : public Node {
 public:
  InertNode(NodeId id, Region region) : Node(id, region) {}
  void HandleMessage(NodeId, uint32_t, BufferReader&) override {}
};

NemesisOptions SmallOptions(int nodes = 5) {
  NemesisOptions opts;
  opts.horizon = Seconds(40);
  opts.heal_margin = Seconds(8);
  for (int i = 0; i < nodes; ++i) opts.nodes.push_back(i);
  return opts;
}

TEST(NemesisTest, SameSeedYieldsIdenticalSchedule) {
  const NemesisOptions opts = SmallOptions();
  const FaultSchedule a = GenerateSchedule(opts, 7);
  const FaultSchedule b = GenerateSchedule(opts, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ops[i], b.ops[i]) << "op " << i;
  }
  // A different seed perturbs the schedule.
  const FaultSchedule c = GenerateSchedule(opts, 8);
  EXPECT_FALSE(a.size() == c.size() &&
               std::equal(a.ops.begin(), a.ops.end(), c.ops.begin()));
}

TEST(NemesisTest, ScheduleIsTimeSortedWithinHorizon) {
  const FaultSchedule s = GenerateSchedule(SmallOptions(), 3);
  ASSERT_FALSE(s.empty());
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s.ops[i - 1].at, s.ops[i].at) << "op " << i;
  }
  for (const FaultOp& op : s.ops) {
    EXPECT_GE(op.at, 0);
    EXPECT_LE(op.at, Seconds(32));  // horizon - heal_margin
  }
}

TEST(NemesisTest, IntensityScalesOpCount) {
  NemesisOptions opts = SmallOptions();
  opts.intensity = 0.5;
  const size_t low = GenerateSchedule(opts, 11).size();
  opts.intensity = 3.0;
  const size_t high = GenerateSchedule(opts, 11).size();
  EXPECT_GT(high, low);

  opts.intensity = 0.0;
  const FaultSchedule off = GenerateSchedule(opts, 11);
  // Zero intensity books no fault windows; only the terminal heal block
  // (which is harmless against a healthy cluster) remains.
  for (const FaultOp& op : off.ops) {
    EXPECT_GE(op.at, Seconds(32)) << FormatFaultOp(op);
  }
}

TEST(NemesisTest, TerminalHealBlockRestoresEverything) {
  const NemesisOptions opts = SmallOptions();
  const FaultSchedule s = GenerateSchedule(opts, 21);
  const SimTime heal_at = Seconds(32);  // horizon - heal_margin

  std::set<NodeId> recovered;
  bool healed = false, cleared = false;
  bool loss_zeroed = false, delay_reset = false, dup_zeroed = false;
  for (const FaultOp& op : s.ops) {
    if (op.at < heal_at) continue;
    EXPECT_EQ(op.at, heal_at) << FormatFaultOp(op);
    switch (op.kind) {
      case FaultOp::Kind::kRecover:
        recovered.insert(op.a);
        break;
      case FaultOp::Kind::kHeal:
        healed = true;
        break;
      case FaultOp::Kind::kClearLinkFaults:
        cleared = true;
        break;
      case FaultOp::Kind::kSetLossRate:
        loss_zeroed = op.value == 0.0;
        break;
      case FaultOp::Kind::kSetDelayFactor:
        delay_reset = op.value == 1.0;
        break;
      case FaultOp::Kind::kSetDuplicateRate:
        dup_zeroed = op.value == 0.0;
        break;
      default:
        ADD_FAILURE() << "unexpected op in heal block: " << FormatFaultOp(op);
    }
  }
  EXPECT_EQ(recovered.size(), opts.nodes.size());
  EXPECT_TRUE(healed);
  EXPECT_TRUE(cleared);
  EXPECT_TRUE(loss_zeroed);
  EXPECT_TRUE(delay_reset);
  EXPECT_TRUE(dup_zeroed);
}

TEST(NemesisTest, CrashWindowsAreDisjointPerNodeAndAlwaysRecover) {
  NemesisOptions opts = SmallOptions();
  opts.intensity = 3.0;
  const FaultSchedule s = GenerateSchedule(opts, 17);
  const SimTime heal_at = Seconds(32);
  for (NodeId node : opts.nodes) {
    SimTime last_end = -1;
    bool down = false;
    for (const FaultOp& op : s.ops) {
      if (op.a != node || op.at >= heal_at) continue;
      if (op.kind == FaultOp::Kind::kCrash) {
        EXPECT_FALSE(down) << "node " << node << " crashed twice";
        EXPECT_GT(op.at, last_end) << "node " << node << " windows overlap";
        down = true;
      } else if (op.kind == FaultOp::Kind::kRecover) {
        EXPECT_TRUE(down);
        down = false;
        last_end = op.at;
      }
    }
    EXPECT_FALSE(down) << "node " << node
                       << " left crashed before the heal block";
  }
}

TEST(NemesisTest, JsonRoundTripIsExact) {
  const FaultSchedule s = GenerateSchedule(SmallOptions(), 99);
  auto parsed = FaultSchedule::FromJson(
      JsonParse(JsonDump(s.ToJson(), /*indent=*/2)).value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(parsed.value().ops[i], s.ops[i]) << "op " << i;
  }
}

TEST(NemesisTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(FaultSchedule::FromJson(JsonValue(3)).ok());
  auto bad_kind =
      JsonParse(R"({"format":"samya-fault-schedule-v1",)"
                R"("ops":[{"at":5,"kind":"no_such_fault"}]})");
  ASSERT_TRUE(bad_kind.ok());
  EXPECT_FALSE(FaultSchedule::FromJson(bad_kind.value()).ok());
}

TEST(NemesisTest, ApplyScheduleReplaysOpsAtExactTimes) {
  Cluster cluster(/*seed=*/5);
  auto* a = cluster.AddNode<InertNode>(Region::kUsWest1);
  auto* b = cluster.AddNode<InertNode>(Region::kEuropeWest2);

  FaultSchedule s;
  s.ops.push_back({Millis(100), FaultOp::Kind::kCrash, a->id()});
  s.ops.push_back({Millis(200), FaultOp::Kind::kSetLossRate, kInvalidNode,
                   kInvalidNode, 0.25});
  s.ops.push_back({Millis(300), FaultOp::Kind::kCutLink, a->id(), b->id()});
  s.ops.push_back({Millis(400), FaultOp::Kind::kRecover, a->id()});
  s.ops.push_back(
      {Millis(500), FaultOp::Kind::kPartition, kInvalidNode, kInvalidNode,
       0.0, {{a->id()}, {b->id()}}});
  s.ops.push_back({Millis(600), FaultOp::Kind::kHeal});
  s.ops.push_back({Millis(700), FaultOp::Kind::kClearLinkFaults});
  ApplySchedule(s, &cluster.net());

  SimEnvironment& env = cluster.env();
  env.RunUntil(Millis(150));
  EXPECT_FALSE(a->alive());
  env.RunUntil(Millis(250));
  EXPECT_DOUBLE_EQ(cluster.net().loss_rate(), 0.25);
  env.RunUntil(Millis(350));
  EXPECT_TRUE(cluster.net().LinkCut(a->id(), b->id()));
  EXPECT_FALSE(cluster.net().LinkCut(b->id(), a->id()));
  env.RunUntil(Millis(450));
  EXPECT_TRUE(a->alive());
  env.RunUntil(Millis(550));
  EXPECT_FALSE(cluster.net().CanCommunicate(a->id(), b->id()));
  env.RunUntil(Millis(650));
  EXPECT_TRUE(cluster.net().CanCommunicate(a->id(), b->id()));
  EXPECT_TRUE(cluster.net().LinkCut(a->id(), b->id()));  // cut outlives heal
  env.RunUntil(Millis(750));
  EXPECT_FALSE(cluster.net().LinkCut(a->id(), b->id()));
}

TEST(NemesisTest, FormatFaultOpIsReadable) {
  FaultOp op;
  op.at = Millis(12500);
  op.kind = FaultOp::Kind::kCrash;
  op.a = 3;
  const std::string line = FormatFaultOp(op);
  EXPECT_NE(line.find("crash"), std::string::npos) << line;
  EXPECT_NE(line.find('3'), std::string::npos) << line;
}

}  // namespace
}  // namespace samya::sim
