#include "sim/environment.h"

#include <gtest/gtest.h>

#include <vector>

namespace samya::sim {
namespace {

TEST(SimEnvironmentTest, TimeStartsAtZero) {
  SimEnvironment env(1);
  EXPECT_EQ(env.Now(), 0);
}

TEST(SimEnvironmentTest, EventsRunInTimeOrder) {
  SimEnvironment env(1);
  std::vector<int> order;
  env.Schedule(Millis(30), [&] { order.push_back(3); });
  env.Schedule(Millis(10), [&] { order.push_back(1); });
  env.Schedule(Millis(20), [&] { order.push_back(2); });
  env.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.Now(), Millis(30));
}

TEST(SimEnvironmentTest, SameTimeEventsRunFifo) {
  SimEnvironment env(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    env.Schedule(Millis(5), [&order, i] { order.push_back(i); });
  }
  env.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimEnvironmentTest, RunUntilStopsAtBoundary) {
  SimEnvironment env(1);
  int fired = 0;
  env.Schedule(Millis(10), [&] { ++fired; });
  env.Schedule(Millis(20), [&] { ++fired; });
  env.RunUntil(Millis(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(env.Now(), Millis(15));  // clock advances to the boundary
  env.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SimEnvironmentTest, EventsCanScheduleEvents) {
  SimEnvironment env(1);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) env.Schedule(Millis(1), recurse);
  };
  env.Schedule(0, recurse);
  env.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(env.Now(), Millis(4));
}

TEST(SimEnvironmentTest, NegativeDelayClampsToNow) {
  SimEnvironment env(1);
  env.Schedule(Millis(10), [&] {
    env.Schedule(-Millis(5), [&] { EXPECT_EQ(env.Now(), Millis(10)); });
  });
  env.RunUntilIdle();
}

TEST(SimEnvironmentTest, CountsEvents) {
  SimEnvironment env(1);
  for (int i = 0; i < 7; ++i) env.Schedule(i, [] {});
  env.RunUntilIdle();
  EXPECT_EQ(env.events_executed(), 7u);
  EXPECT_EQ(env.pending_events(), 0u);
}

TEST(SimEnvironmentTest, RunForAdvancesRelative) {
  SimEnvironment env(1);
  env.RunFor(Seconds(3));
  EXPECT_EQ(env.Now(), Seconds(3));
  env.RunFor(Seconds(2));
  EXPECT_EQ(env.Now(), Seconds(5));
}

}  // namespace
}  // namespace samya::sim
