#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace samya::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(30, 0, [] {});
  q.Push(10, 1, [] {});
  q.Push(20, 2, [] {});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.NextTime(), 10);
  EXPECT_EQ(q.Pop().time, 10);
  EXPECT_EQ(q.Pop().time, 20);
  EXPECT_EQ(q.Pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakBySequence) {
  EventQueue q;
  for (uint64_t seq = 0; seq < 50; ++seq) q.Push(5, seq, [] {});
  for (uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_EQ(q.Pop().seq, seq);
  }
}

TEST(EventQueueTest, CallbacksSurviveHeapMoves) {
  EventQueue q;
  int sum = 0;
  for (int i = 1; i <= 10; ++i) {
    q.Push(100 - i, static_cast<uint64_t>(i), [&sum, i] { sum += i; });
  }
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(sum, 55);
}

// Regression test for the old std::priority_queue implementation, whose
// Pop() copied the closure out of top(). The counting functor proves the
// new heap never copies a callback: not on Push, not during sifts, not on
// Pop. (SimCallback is move-only, so a copy would also fail to compile —
// this asserts the runtime counts for the callable itself.)
TEST(EventQueueTest, PopMovesCallbacksWithoutCopying) {
  struct CountingFunctor {
    int* copies;
    int* moves;
    int* calls;
    CountingFunctor(int* c, int* m, int* k) : copies(c), moves(m), calls(k) {}
    CountingFunctor(const CountingFunctor& o)
        : copies(o.copies), moves(o.moves), calls(o.calls) {
      ++*copies;
    }
    CountingFunctor(CountingFunctor&& o) noexcept
        : copies(o.copies), moves(o.moves), calls(o.calls) {
      ++*moves;
    }
    void operator()() { ++*calls; }
  };

  int copies = 0, moves = 0, calls = 0;
  EventQueue q;
  // Reverse time order maximises sift traffic on push and pop.
  for (int i = 0; i < 64; ++i) {
    q.Push(64 - i, static_cast<uint64_t>(i),
           CountingFunctor(&copies, &moves, &calls));
  }
  while (!q.empty()) {
    Event e = q.Pop();
    e.fn();
  }
  EXPECT_EQ(calls, 64);
  EXPECT_EQ(copies, 0);
  EXPECT_GT(moves, 0);
}

TEST(EventQueueTest, RandomizedOrderingProperty) {
  Rng rng(21);
  EventQueue q;
  uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    q.Push(rng.UniformInt(0, 500), seq++, [] {});
  }
  SimTime prev = -1;
  uint64_t prev_seq = 0;
  while (!q.empty()) {
    Event e = q.Pop();
    ASSERT_GE(e.time, prev);
    if (e.time == prev) {
      ASSERT_GT(e.seq, prev_seq);
    }
    prev = e.time;
    prev_seq = e.seq;
  }
}

}  // namespace
}  // namespace samya::sim
