#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace samya::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(30, 0, [] {});
  q.Push(10, 1, [] {});
  q.Push(20, 2, [] {});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.NextTime(), 10);
  EXPECT_EQ(q.Pop().time, 10);
  EXPECT_EQ(q.Pop().time, 20);
  EXPECT_EQ(q.Pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakBySequence) {
  EventQueue q;
  for (uint64_t seq = 0; seq < 50; ++seq) q.Push(5, seq, [] {});
  for (uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_EQ(q.Pop().seq, seq);
  }
}

TEST(EventQueueTest, CallbacksSurviveHeapMoves) {
  EventQueue q;
  int sum = 0;
  for (int i = 1; i <= 10; ++i) {
    q.Push(100 - i, static_cast<uint64_t>(i), [&sum, i] { sum += i; });
  }
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(sum, 55);
}

// Regression test for the old std::priority_queue implementation, whose
// Pop() copied the closure out of top(). The counting functor proves the
// new heap never copies a callback: not on Push, not during sifts, not on
// Pop. (SimCallback is move-only, so a copy would also fail to compile —
// this asserts the runtime counts for the callable itself.)
TEST(EventQueueTest, PopMovesCallbacksWithoutCopying) {
  struct CountingFunctor {
    int* copies;
    int* moves;
    int* calls;
    CountingFunctor(int* c, int* m, int* k) : copies(c), moves(m), calls(k) {}
    CountingFunctor(const CountingFunctor& o)
        : copies(o.copies), moves(o.moves), calls(o.calls) {
      ++*copies;
    }
    CountingFunctor(CountingFunctor&& o) noexcept
        : copies(o.copies), moves(o.moves), calls(o.calls) {
      ++*moves;
    }
    void operator()() { ++*calls; }
  };

  int copies = 0, moves = 0, calls = 0;
  EventQueue q;
  // Reverse time order maximises sift traffic on push and pop.
  for (int i = 0; i < 64; ++i) {
    q.Push(64 - i, static_cast<uint64_t>(i),
           CountingFunctor(&copies, &moves, &calls));
  }
  while (!q.empty()) {
    Event e = q.Pop();
    e.fn();
  }
  EXPECT_EQ(calls, 64);
  EXPECT_EQ(copies, 0);
  EXPECT_GT(moves, 0);
}

// Equal-time ordering must be a property of the (time, seq) key alone, not
// of slot numbers: after pops recycle slots through the free list, freshly
// pushed events reuse *lower* slot indices than older pending ones, so any
// accidental slot-order dependence would fire the recycled events early.
TEST(EventQueueTest, TiesBreakBySequenceAcrossSlotRecycling) {
  EventQueue q;
  // Phase 1: fill slots 0..19, then pop the ten earliest (recycling their
  // slots) while ten equal-time events stay pending in slots 10..19.
  for (uint64_t seq = 0; seq < 10; ++seq) q.Push(1, seq, [] {});
  for (uint64_t seq = 10; seq < 20; ++seq) q.Push(5, seq, [] {});
  for (uint64_t seq = 0; seq < 10; ++seq) EXPECT_EQ(q.Pop().seq, seq);
  // Phase 2: new equal-time events land in the recycled slots 9..0 with
  // *later* sequence numbers than the pending ones.
  for (uint64_t seq = 20; seq < 30; ++seq) q.Push(5, seq, [] {});
  for (uint64_t seq = 10; seq < 30; ++seq) {
    EXPECT_EQ(q.Pop().seq, seq);
  }
  EXPECT_TRUE(q.empty());
}

// The simulation loop's two-phase path: PopEntry leaves the callback parked,
// InvokeAndRecycle moves it out, runs it, and recycles the slot — including
// when the callback reentrantly pushes (which may grow the slot table).
TEST(EventQueueTest, PopEntryInvokeAndRecycleFiresInOrder) {
  EventQueue q;
  std::vector<int> order;
  uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    q.Push(7, seq++, [&order, i] { order.push_back(i); });
  }
  // The first callback reentrantly schedules two more equal-time events;
  // they must fire after every already-pending one.
  int extra = 0;
  q.Push(3, seq++, [&] {
    q.Push(7, seq++, [&extra] { ++extra; });
    q.Push(7, seq++, [&extra] { ++extra; });
  });
  while (!q.empty()) {
    const EventQueue::Popped p = q.PopEntry();
    q.InvokeAndRecycle(p.slot);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(extra, 2);
}

// Meta tracking + PopByKey: removing an entry from the middle of the heap
// (the oracle's non-FIFO choice) must leave the remaining events in exact
// (time, seq) order, across both sift directions and slot reuse.
TEST(EventQueueTest, PopByKeyPreservesHeapOrder) {
  Rng rng(31);
  EventQueue q;
  q.EnableMetaTracking();
  uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    const SimTime t = rng.UniformInt(0, 50);
    if (i % 3 == 0) {
      q.Push(t, seq++, [] {});  // timer/internal: invisible to the oracle
    } else {
      q.PushMessage(t, seq++, [] {},
                    EventQueue::MsgMeta{static_cast<int32_t>(i % 5),
                                        static_cast<int32_t>(i % 7), 10});
    }
  }
  // Pull a handful of mid-heap messages by key, as OracleStep would.
  for (int round = 0; round < 20; ++round) {
    std::vector<EventQueue::PendingRef> pending;
    q.CollectMessagesUntil(25, &pending);
    if (pending.empty()) break;
    const EventQueue::PendingRef& pick =
        pending[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int>(pending.size()) - 1))];
    const EventQueue::Popped p = q.PopByKey(pick.key);
    EXPECT_EQ(p.seq, pick.seq);
    q.InvokeAndRecycle(p.slot);
    // Reuse the freed slot under meta tracking: the new push must carry its
    // own meta, not the removed message's.
    q.Push(60, seq++, [] {});
  }
  SimTime prev_time = -1;
  uint64_t prev_seq = 0;
  while (!q.empty()) {
    const Event e = q.Pop();
    ASSERT_GE(e.time, prev_time);
    if (e.time == prev_time) ASSERT_GT(e.seq, prev_seq);
    prev_time = e.time;
    prev_seq = e.seq;
  }
}

TEST(EventQueueTest, CollectMessagesSkipsTimersAndLateEvents) {
  EventQueue q;
  q.EnableMetaTracking();
  q.Push(10, 0, [] {});  // timer
  q.PushMessage(10, 1, [] {}, EventQueue::MsgMeta{1, 2, 10});
  q.PushMessage(15, 2, [] {}, EventQueue::MsgMeta{2, 3, 11});
  q.PushMessage(99, 3, [] {}, EventQueue::MsgMeta{3, 4, 12});
  std::vector<EventQueue::PendingRef> pending;
  q.CollectMessagesUntil(20, &pending);
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].seq + pending[1].seq, 3u);  // seqs 1 and 2, any order
}

TEST(EventQueueTest, ExtractUntilDrainsInOrderAndStopsAtHorizon) {
  EventQueue q;
  q.Push(30, 5, [] {});
  q.Push(10, 2, [] {});
  q.Push(20, 3, [] {});
  q.Push(10, 1, [] {});
  q.Push(40, 6, [] {});
  std::vector<Event> out;
  q.ExtractUntil(20, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(out[2].seq, 3u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.NextTime(), 30);
}

TEST(EventQueueTest, PushBatchMatchesIndividualPushes) {
  // Two queues fed the same events — one via Push, one via a PushBatch of
  // deliberately shuffled entries — must pop identically: the heap, not the
  // batch order, imposes (time, seq).
  EventQueue individual, batched;
  std::vector<Event> batch;
  Rng rng(5);
  uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = rng.UniformInt(0, 40);
    individual.Push(t, seq, [] {});
    batch.push_back(Event{t, seq, SimCallback([] {})});
    ++seq;
  }
  for (int i = 0; i < 500; ++i) {  // deterministic shuffle
    std::swap(batch[static_cast<size_t>(i)],
              batch[static_cast<size_t>(rng.UniformInt(0, 499))]);
  }
  batched.PushBatch(&batch);
  EXPECT_TRUE(batch.empty());
  while (!individual.empty()) {
    ASSERT_FALSE(batched.empty());
    const Event a = individual.Pop();
    const Event b = batched.Pop();
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(batched.empty());
}

TEST(EventQueueTest, BulkRoundTripPreservesTieBreaksAcrossSlotRecycling) {
  // Heavy same-time ties, cycled through extract/push-batch several times
  // with interleaved pops so slots recycle: the (time, seq) order must be
  // exactly the order of a queue that never did bulk ops.
  EventQueue q;
  uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) q.Push(i % 4, seq++, [] {});
  for (int round = 0; round < 3; ++round) {
    // Pop a few (recycles slots), then extract everything and re-inject.
    for (int i = 0; i < 5 && !q.empty(); ++i) q.Pop();
    std::vector<Event> out;
    q.ExtractUntil(1000, &out);
    EXPECT_TRUE(q.empty());
    q.PushBatch(&out);
    for (int i = 0; i < 8; ++i) q.Push(2, seq++, [] {});
  }
  SimTime prev_time = -1;
  uint64_t prev_seq = 0;
  while (!q.empty()) {
    const Event e = q.Pop();
    ASSERT_GE(e.time, prev_time);
    if (e.time == prev_time) ASSERT_GT(e.seq, prev_seq);
    prev_time = e.time;
    prev_seq = e.seq;
  }
}

TEST(EventQueueTest, RandomizedOrderingProperty) {
  Rng rng(21);
  EventQueue q;
  uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    q.Push(rng.UniformInt(0, 500), seq++, [] {});
  }
  SimTime prev = -1;
  uint64_t prev_seq = 0;
  while (!q.empty()) {
    Event e = q.Pop();
    ASSERT_GE(e.time, prev);
    if (e.time == prev) {
      ASSERT_GT(e.seq, prev_seq);
    }
    prev = e.time;
    prev_seq = e.seq;
  }
}

}  // namespace
}  // namespace samya::sim
