#include "common/timeseries.h"

#include <gtest/gtest.h>

namespace samya {
namespace {

TEST(RateSeriesTest, BucketsBySimTime) {
  RateSeries s(Seconds(1));
  s.Record(Millis(100));
  s.Record(Millis(900));
  s.Record(Millis(1500));
  EXPECT_EQ(s.bin(0), 2);
  EXPECT_EQ(s.bin(1), 1);
  EXPECT_EQ(s.bin(99), 0);
  EXPECT_EQ(s.total(), 3);
}

TEST(RateSeriesTest, CountedRecords) {
  RateSeries s(Seconds(1));
  s.Record(0, 10);
  s.Record(Millis(10), 5);
  EXPECT_EQ(s.bin(0), 15);
  EXPECT_DOUBLE_EQ(s.RatePerSecond(0), 15.0);
}

TEST(RateSeriesTest, MeanRateOverWindow) {
  RateSeries s(Seconds(1));
  for (int sec = 0; sec < 10; ++sec) s.Record(Seconds(sec), 100);
  EXPECT_DOUBLE_EQ(s.MeanRate(0, Seconds(10)), 100.0);
  EXPECT_DOUBLE_EQ(s.MeanRate(Seconds(5), Seconds(10)), 100.0);
  EXPECT_DOUBLE_EQ(s.MeanRate(Seconds(10), Seconds(20)), 0.0);
  EXPECT_DOUBLE_EQ(s.MeanRate(Seconds(5), Seconds(5)), 0.0);
}

TEST(RateSeriesTest, ResampleCoarse) {
  RateSeries s(Seconds(1));
  for (int sec = 0; sec < 60; ++sec) s.Record(Seconds(sec), sec < 30 ? 10 : 20);
  auto rates = s.Resample(Seconds(30));
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 20.0);
}

TEST(RateSeriesTest, CsvHasHeaderAndRows) {
  RateSeries s(Seconds(1));
  s.Record(0, 60);
  std::string csv = s.ToCsv(Seconds(1));
  EXPECT_NE(csv.find("minute,tps"), std::string::npos);
  EXPECT_NE(csv.find("0.00,60.0"), std::string::npos);
}

TEST(SeriesStatsTest, MeanAndStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(StdDev(xs), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

}  // namespace
}  // namespace samya
