#include "common/codec.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"

namespace samya {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutBool(true);
  w.PutBool(false);

  BufferReader r(w.buffer());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU16().value(), 0xbeef);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159);
  EXPECT_TRUE(r.GetBool().value());
  EXPECT_FALSE(r.GetBool().value());
  EXPECT_TRUE(r.Done());
}

TEST(CodecTest, VarintBoundaries) {
  const uint64_t cases[] = {0,      1,        127,        128,
                            16383,  16384,    (1ULL << 32) - 1,
                            1ULL << 32, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    BufferWriter w;
    w.PutVarint(v);
    BufferReader r(w.buffer());
    EXPECT_EQ(r.GetVarint().value(), v) << v;
    EXPECT_TRUE(r.Done());
  }
}

TEST(CodecTest, SignedVarintZigZag) {
  const int64_t cases[] = {0,  -1, 1,  -2, 2,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max(), -123456789};
  for (int64_t v : cases) {
    BufferWriter w;
    w.PutVarintSigned(v);
    BufferReader r(w.buffer());
    EXPECT_EQ(r.GetVarintSigned().value(), v) << v;
  }
}

TEST(CodecTest, SmallSignedValuesAreCompact) {
  BufferWriter w;
  w.PutVarintSigned(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(CodecTest, StringRoundTrip) {
  BufferWriter w;
  w.PutString("");
  w.PutString("hello");
  w.PutString(std::string(1000, 'x'));
  BufferReader r(w.buffer());
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), std::string(1000, 'x'));
  EXPECT_TRUE(r.Done());
}

TEST(CodecTest, UnderflowIsCorruptionNotUB) {
  BufferWriter w;
  w.PutU8(1);
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

TEST(CodecTest, TruncatedStringIsCorruption) {
  BufferWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8('a');
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(CodecTest, InvalidBoolIsCorruption) {
  BufferWriter w;
  w.PutU8(7);
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetBool().status().IsCorruption());
}

TEST(CodecTest, OverlongVarintIsCorruption) {
  BufferWriter w;
  for (int i = 0; i < 11; ++i) w.PutU8(0x80);
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetVarint().status().IsCorruption());
}

// Property sweep: random mixed-field messages round-trip exactly.
class CodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<int64_t> ints;
    std::vector<std::string> strs;
    BufferWriter w;
    const int n = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < n; ++i) {
      int64_t v = static_cast<int64_t>(rng.Next());
      ints.push_back(v);
      w.PutVarintSigned(v);
      std::string s;
      const int len = static_cast<int>(rng.UniformInt(0, 32));
      for (int j = 0; j < len; ++j)
        s.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      strs.push_back(s);
      w.PutString(s);
    }
    BufferReader r(w.buffer());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(r.GetVarintSigned().value(), ints[static_cast<size_t>(i)]);
      EXPECT_EQ(r.GetString().value(), strs[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(r.Done());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Values(1, 2, 3, 42, 999));

}  // namespace
}  // namespace samya
