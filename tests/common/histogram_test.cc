#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/json.h"
#include "common/random.h"

namespace samya {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_NEAR(h.Percentile(50), 1000, 50);
  EXPECT_NEAR(h.Percentile(99), 1000, 50);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, PercentilesWithinBucketError) {
  Histogram h;
  std::vector<int64_t> values;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    int64_t v = rng.UniformInt(1, 1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = static_cast<double>(
        values[static_cast<size_t>(p / 100.0 * (values.size() - 1))]);
    const double approx = h.Percentile(p);
    EXPECT_NEAR(approx, exact, exact * 0.06) << "p" << p;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.Record(i);
  for (int i = 1001; i <= 1100; ++i) b.Record(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 1100);
  EXPECT_GT(a.Percentile(75), 900);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(123);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, MonotonePercentiles) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i)
    h.Record(static_cast<int64_t>(rng.Exponential(10000)));
  double prev = 0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Record(5000);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.Percentile(0), 0.0);
  EXPECT_EQ(empty.Percentile(100), 0.0);

  Histogram single;
  single.Record(500);
  // A single sample pins every percentile to that value: interpolation
  // clamps the bucket to [min, max] = [500, 500].
  EXPECT_DOUBLE_EQ(single.Percentile(0), 500.0);
  EXPECT_DOUBLE_EQ(single.Percentile(50), 500.0);
  EXPECT_DOUBLE_EQ(single.Percentile(100), 500.0);
  // Out-of-range percentiles clamp rather than extrapolate.
  EXPECT_DOUBLE_EQ(single.Percentile(-10), 500.0);
  EXPECT_DOUBLE_EQ(single.Percentile(250), 500.0);

  Histogram two;
  two.Record(100);
  two.Record(10000);
  EXPECT_DOUBLE_EQ(two.Percentile(0), 100.0);
  EXPECT_DOUBLE_EQ(two.Percentile(100), 10000.0);
}

TEST(HistogramTest, ToJsonSnapshot) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const JsonValue j = h.ToJson();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.GetInt("count", -1), 1000);
  EXPECT_EQ(j.GetInt("min", -1), 1);
  EXPECT_EQ(j.GetInt("max", -1), 1000);
  EXPECT_NEAR(j.GetDouble("p50", 0), 500.0, 500.0 * 0.06);

  const JsonValue* cdf = j.Find("cdf");
  ASSERT_NE(cdf, nullptr);
  ASSERT_TRUE(cdf->is_array());
  ASSERT_FALSE(cdf->as_array().empty());
  // Cumulative counts are nondecreasing, bounds strictly increasing, and
  // the last row covers every sample with `le` clamped to the max.
  int64_t prev_le = -1;
  int64_t prev_count = 0;
  for (const JsonValue& row : cdf->as_array()) {
    EXPECT_GT(row.GetInt("le", -1), prev_le);
    EXPECT_GE(row.GetInt("count", -1), prev_count);
    prev_le = row.GetInt("le", -1);
    prev_count = row.GetInt("count", -1);
  }
  EXPECT_EQ(prev_count, 1000);
  EXPECT_EQ(prev_le, 1000);
}

TEST(HistogramTest, ToJsonEmpty) {
  const JsonValue j = Histogram().ToJson();
  EXPECT_EQ(j.GetInt("count", -1), 0);
  const JsonValue* cdf = j.Find("cdf");
  ASSERT_NE(cdf, nullptr);
  EXPECT_TRUE(cdf->as_array().empty());
}

}  // namespace
}  // namespace samya
