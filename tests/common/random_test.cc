#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace samya {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(17);
  for (double mean : {0.5, 3.0, 50.0, 200.0}) {
    const int n = 20000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, std::max(0.1, mean * 0.05)) << mean;
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(42);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(42), p2(42);
  Rng a = p1.Fork(5), b = p2.Fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace samya
