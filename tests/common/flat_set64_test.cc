#include "common/flat_set64.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.h"

namespace samya {
namespace {

TEST(FlatSet64Test, InsertContainsErase) {
  FlatSet64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));  // duplicate
  EXPECT_TRUE(set.insert(2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(1));
  EXPECT_TRUE(set.contains(2));
  EXPECT_FALSE(set.contains(3));
  EXPECT_EQ(set.erase(1), 1u);
  EXPECT_EQ(set.erase(1), 0u);
  EXPECT_FALSE(set.contains(1));
  EXPECT_TRUE(set.contains(2));
  EXPECT_EQ(set.size(), 1u);
}

// Regression: key 0 is the empty-slot sentinel. erase(0) used to match an
// empty slot and corrupt the table (losing armed timers in sim::Node, which
// calls CancelTimer(0) for never-armed timer ids). All ops on 0 must be
// harmless no-ops.
TEST(FlatSet64Test, KeyZeroIsReservedAndHarmless) {
  FlatSet64 set;
  EXPECT_FALSE(set.insert(0));
  EXPECT_FALSE(set.contains(0));
  EXPECT_EQ(set.erase(0), 0u);
  for (uint64_t i = 1; i <= 64; ++i) set.insert(i);
  EXPECT_EQ(set.erase(0), 0u);  // must not disturb the table
  EXPECT_FALSE(set.contains(0));
  EXPECT_EQ(set.size(), 64u);
  for (uint64_t i = 1; i <= 64; ++i) EXPECT_TRUE(set.contains(i));
}

TEST(FlatSet64Test, ClearRemovesEverything) {
  FlatSet64 set;
  for (uint64_t i = 1; i <= 100; ++i) set.insert(i);
  set.clear();
  EXPECT_TRUE(set.empty());
  for (uint64_t i = 1; i <= 100; ++i) EXPECT_FALSE(set.contains(i));
  // Reusable after clear.
  EXPECT_TRUE(set.insert(5));
  EXPECT_TRUE(set.contains(5));
}

TEST(FlatSet64Test, GrowsPastInitialCapacity) {
  FlatSet64 set;
  for (uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(set.insert(i));
  EXPECT_EQ(set.size(), 10000u);
  for (uint64_t i = 1; i <= 10000; ++i) EXPECT_TRUE(set.contains(i));
  EXPECT_FALSE(set.contains(10001));
}

TEST(FlatSet64Test, TimerLifecyclePattern) {
  // The sim::Node pattern: ids arm sequentially, most cancel promptly.
  FlatSet64 set;
  uint64_t next_id = 1;
  for (int round = 0; round < 1000; ++round) {
    const uint64_t armed = next_id++;
    EXPECT_TRUE(set.insert(armed));
    EXPECT_EQ(set.erase(armed), 1u);
  }
  EXPECT_TRUE(set.empty());
  EXPECT_LE(set.capacity(), 64u);  // churn must not grow the table
}

TEST(FlatSet64Test, MatchesUnorderedSetUnderRandomChurn) {
  Rng rng(99);
  FlatSet64 set;
  std::unordered_set<uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(1, 500));
    if (rng.Bernoulli(0.5)) {
      EXPECT_EQ(set.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), ref.erase(key));
    }
    ASSERT_EQ(set.size(), ref.size());
  }
  for (uint64_t key = 1; key <= 500; ++key) {
    ASSERT_EQ(set.contains(key), ref.count(key) > 0) << key;
  }
}

}  // namespace
}  // namespace samya
