#include "common/status.h"

#include <gtest/gtest.h>

namespace samya {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("entity VM");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "entity VM");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: entity VM");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_FALSE(Status::OK().IsUnavailable());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::TimedOut("no quorum");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SAMYA_ASSIGN_OR_RETURN(int h, Half(x));
  SAMYA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace samya
