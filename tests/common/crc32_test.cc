#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace samya {
namespace {

uint32_t CrcOf(const std::string& s) {
  return Crc32c(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(CrcOf(""), 0x00000000u);
  EXPECT_EQ(CrcOf("123456789"), 0xe3069283u);
  EXPECT_EQ(CrcOf(std::string(32, '\0')), 0x8a9136aau);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string a = "the quick brown fox";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(CrcOf(a), CrcOf(b));
}

TEST(Crc32Test, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, CrcOf("samya")}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);  // masking changes the value
  }
}

}  // namespace
}  // namespace samya
