#include "common/buffer_pool.h"

#include <gtest/gtest.h>

#include <utility>

namespace samya {
namespace {

TEST(BufferPoolTest, FirstAcquireAllocatesNothingFromPool) {
  BufferPool pool;
  auto buf = pool.Acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.stats().acquired, 1u);
  EXPECT_EQ(pool.stats().reused, 0u);
}

TEST(BufferPoolTest, ReleasedBufferCapacityIsReused) {
  BufferPool pool;
  auto buf = pool.Acquire();
  buf.assign(100, 0xab);
  const size_t cap = buf.capacity();
  pool.Release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);

  auto again = pool.Acquire();
  EXPECT_TRUE(again.empty());          // contents cleared
  EXPECT_GE(again.capacity(), cap);    // capacity retained
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(BufferPoolTest, ZeroCapacityReleasesAreDiscarded) {
  BufferPool pool;
  pool.Release({});
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.stats().discarded, 1u);
}

TEST(BufferPoolTest, OversizedBuffersAreNotPooled) {
  BufferPool pool(/*max_pooled=*/8, /*max_buffer_capacity=*/64);
  std::vector<uint8_t> big(1000, 1);
  pool.Release(std::move(big));
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.stats().discarded, 1u);
}

TEST(BufferPoolTest, PoolSizeIsBounded) {
  BufferPool pool(/*max_pooled=*/2, /*max_buffer_capacity=*/1024);
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> buf(16, 7);
    pool.Release(std::move(buf));
  }
  EXPECT_EQ(pool.pooled(), 2u);
  EXPECT_EQ(pool.stats().discarded, 3u);
}

TEST(BufferPoolTest, ReuseRateTracksSteadyState) {
  BufferPool pool;
  for (int i = 0; i < 10; ++i) {
    auto buf = pool.Acquire();
    buf.assign(32, 1);
    pool.Release(std::move(buf));
  }
  // First acquire misses, the other nine reuse.
  EXPECT_DOUBLE_EQ(pool.ReuseRate(), 0.9);
}

}  // namespace
}  // namespace samya
