#include "common/token_api.h"

#include <gtest/gtest.h>

namespace samya {
namespace {

TEST(TokenApiTest, RequestRoundTrip) {
  TokenRequest req;
  req.request_id = 0x1122334455667788ULL;
  req.entity = 42;
  req.op = TokenOp::kRelease;
  req.amount = 123456;
  BufferWriter w;
  req.EncodeTo(w);
  BufferReader r(w.buffer());
  auto d = TokenRequest::DecodeFrom(r);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->request_id, req.request_id);
  EXPECT_EQ(d->entity, 42u);
  EXPECT_EQ(static_cast<int>(d->op), static_cast<int>(TokenOp::kRelease));
  EXPECT_EQ(d->amount, 123456);
  EXPECT_TRUE(r.Done());
}

TEST(TokenApiTest, ResponseRoundTrip) {
  for (TokenStatus status :
       {TokenStatus::kCommitted, TokenStatus::kRejected,
        TokenStatus::kNotLeader, TokenStatus::kOverloaded}) {
    TokenResponse resp;
    resp.request_id = 7;
    resp.status = status;
    resp.value = -99;
    resp.leader_hint = 3;
    BufferWriter w;
    resp.EncodeTo(w);
    BufferReader r(w.buffer());
    auto d = TokenResponse::DecodeFrom(r);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(static_cast<int>(d->status), static_cast<int>(status));
    EXPECT_EQ(d->value, -99);
    EXPECT_EQ(d->leader_hint, 3);
    EXPECT_EQ(d->committed(), status == TokenStatus::kCommitted);
  }
}

TEST(TokenApiTest, RejectsCorruptOp) {
  TokenRequest req;
  BufferWriter w;
  req.EncodeTo(w);
  auto bytes = w.buffer();
  bytes[9] = 77;  // op byte (after 8-byte id + 1-byte entity varint)
  BufferReader r(bytes);
  EXPECT_FALSE(TokenRequest::DecodeFrom(r).ok());
}

TEST(TokenApiTest, RejectsCorruptStatus) {
  TokenResponse resp;
  BufferWriter w;
  resp.EncodeTo(w);
  auto bytes = w.buffer();
  bytes[8] = 0;  // status byte
  BufferReader r(bytes);
  EXPECT_FALSE(TokenResponse::DecodeFrom(r).ok());
}

TEST(TokenApiTest, DefaultEntityIsZero) {
  TokenRequest req;
  EXPECT_EQ(req.entity, 0u);
  BufferWriter w;
  req.EncodeTo(w);
  BufferReader r(w.buffer());
  EXPECT_EQ(TokenRequest::DecodeFrom(r)->entity, 0u);
}

}  // namespace
}  // namespace samya
