#include "common/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace samya {
namespace {

TEST(JsonTest, ScalarConstructionAndAccess) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).as_bool());
  EXPECT_EQ(JsonValue(7).as_int(), 7);
  EXPECT_EQ(JsonValue(int64_t{-5}).as_int(), -5);
  EXPECT_DOUBLE_EQ(JsonValue(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue(7).as_double(), 7.0);  // int promotes
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  EXPECT_TRUE(JsonValue(3).is_number());
  EXPECT_TRUE(JsonValue(3.0).is_number());
  EXPECT_FALSE(JsonValue(3).is_double());  // int stays int
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  obj.Set("mango", 3);
  EXPECT_EQ(JsonDump(obj), R"({"zebra":1,"apple":2,"mango":3})");
  ASSERT_NE(obj.Find("apple"), nullptr);
  EXPECT_EQ(obj.Find("apple")->as_int(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, TypedGettersWithFallbacks) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("n", 42);
  obj.Set("d", 1.5);
  obj.Set("s", "str");
  obj.Set("b", true);
  EXPECT_EQ(obj.GetInt("n", -1), 42);
  EXPECT_EQ(obj.GetInt("missing", -1), -1);
  EXPECT_DOUBLE_EQ(obj.GetDouble("d", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(obj.GetDouble("n", 0.0), 42.0);  // int readable as double
  EXPECT_EQ(obj.GetString("s", ""), "str");
  EXPECT_EQ(obj.GetString("n", "fb"), "fb");  // wrong type -> fallback
  EXPECT_TRUE(obj.GetBool("b", false));
  EXPECT_TRUE(obj.GetBool("missing", true));
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(JsonParse("null").value().is_null());
  EXPECT_TRUE(JsonParse("true").value().as_bool());
  EXPECT_FALSE(JsonParse("false").value().as_bool());
  EXPECT_EQ(JsonParse("-123").value().as_int(), -123);
  EXPECT_TRUE(JsonParse("123").value().is_int());
  EXPECT_TRUE(JsonParse("1.5").value().is_double());
  EXPECT_TRUE(JsonParse("1e3").value().is_double());
  EXPECT_DOUBLE_EQ(JsonParse("1e3").value().as_double(), 1000.0);
  EXPECT_EQ(JsonParse("\"abc\"").value().as_string(), "abc");
}

TEST(JsonTest, Int64RoundTripsExactly) {
  // SimTime microsecond values must not lose precision through a double.
  const int64_t big = (int64_t{1} << 62) + 12345;
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("at", big);
  auto parsed = JsonParse(JsonDump(obj));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().Find("at")->is_int());
  EXPECT_EQ(parsed.value().Find("at")->as_int(), big);
}

TEST(JsonTest, StringEscapes) {
  JsonValue v = std::string("a\"b\\c\n\t\x01z");
  const std::string dumped = JsonDump(v);
  EXPECT_EQ(dumped, R"("a\"b\\c\n\t\u0001z")");
  auto parsed = JsonParse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), v.as_string());
}

TEST(JsonTest, UnicodeEscapesAndSurrogatePairs) {
  auto snowman = JsonParse("\"\\u2603\"");
  ASSERT_TRUE(snowman.ok());
  EXPECT_EQ(snowman.value().as_string(), "\xE2\x98\x83");
  // U+1F600 encoded as a surrogate pair.
  auto emoji = JsonParse("\"\\uD83D\\uDE00\"");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji.value().as_string(), "\xF0\x9F\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(JsonParse("\"\\uD83D\"").ok());
}

TEST(JsonTest, NestedRoundTripCompactAndIndented) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", "case");
  doc.Set("pi", 3.25);
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append(JsonValue::MakeObject());
  arr.as_array()[1].Set("deep", false);
  doc.Set("items", std::move(arr));

  for (int indent : {0, 2, 4}) {
    auto parsed = JsonParse(JsonDump(doc, indent));
    ASSERT_TRUE(parsed.ok()) << "indent=" << indent;
    EXPECT_EQ(parsed.value(), doc) << "indent=" << indent;
  }
}

TEST(JsonTest, DoublesSurviveRoundTrip) {
  for (double d : {0.1, 1e-17, 1e17, -2.5, 1234.5678}) {
    auto parsed = JsonParse(JsonDump(JsonValue(d)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().as_double(), d);
  }
  // Whole-valued doubles keep a fractional marker so they re-parse as
  // doubles, not ints.
  auto two = JsonParse(JsonDump(JsonValue(2.0)));
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(two.value().is_double());
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("[1,]").ok());     // trailing comma
  EXPECT_FALSE(JsonParse("{'a':1}").ok());  // single quotes
  EXPECT_FALSE(JsonParse("[1] trailing").ok());
  EXPECT_FALSE(JsonParse("nul").ok());
  EXPECT_FALSE(JsonParse("\"unterminated").ok());
  EXPECT_FALSE(JsonParse("01").ok());  // leading zero
}

TEST(JsonTest, DepthLimitRejectsBombs) {
  std::string bomb(100, '[');
  bomb += std::string(100, ']');
  EXPECT_FALSE(JsonParse(bomb).ok());
  // 32 levels is comfortably within the limit.
  std::string fine(32, '[');
  fine += "1";
  fine += std::string(32, ']');
  EXPECT_TRUE(JsonParse(fine).ok());
}

TEST(JsonTest, EqualityIsDeep) {
  auto a = JsonParse(R"({"x":[1,2,{"y":true}]})").value();
  auto b = JsonParse(R"({"x":[1,2,{"y":true}]})").value();
  auto c = JsonParse(R"({"x":[1,2,{"y":false}]})").value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace samya
