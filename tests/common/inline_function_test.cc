#include "common/inline_function.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace samya {
namespace {

/// Counts constructions/destructions/copies/moves of its instances.
struct Counters {
  int constructed = 0;
  int destroyed = 0;
  int copies = 0;
  int moves = 0;
};

struct Tracked {
  explicit Tracked(Counters* c) : counters(c) { ++counters->constructed; }
  Tracked(const Tracked& o) : counters(o.counters) {
    ++counters->constructed;
    ++counters->copies;
  }
  Tracked(Tracked&& o) noexcept : counters(o.counters) {
    ++counters->constructed;
    ++counters->moves;
  }
  ~Tracked() { ++counters->destroyed; }
  Counters* counters;
};

TEST(InlineFunctionTest, InvokesSmallCallable) {
  int calls = 0;
  InlineFunction<void()> fn([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, ReturnsValuesAndTakesArguments) {
  InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, CaptureAtInlineThresholdStaysInline) {
  // 48 bytes of captures: exactly the inline budget.
  struct Fat {
    char bytes[48];
  } fat{};
  fat.bytes[0] = 7;
  InlineFunction<int()> fn([fat] { return static_cast<int>(fat.bytes[0]); });
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 7);
}

TEST(InlineFunctionTest, CaptureOverThresholdFallsBackToHeap) {
  struct TooFat {
    char bytes[49];
  } fat{};
  fat.bytes[48] = 9;
  InlineFunction<int()> fn([fat] { return static_cast<int>(fat.bytes[48]); });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 9);
}

TEST(InlineFunctionTest, MoveTransfersCallableWithoutCopying) {
  Counters c;
  {
    Tracked t(&c);
    InlineFunction<Counters*()> fn([t] { return t.counters; });
    const int copies_after_capture = c.copies;  // one copy into the lambda
    InlineFunction<Counters*()> moved = std::move(fn);
    EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(moved));
    EXPECT_EQ(moved(), &c);
    EXPECT_EQ(c.copies, copies_after_capture);  // moves never copy
  }
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(InlineFunctionTest, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  InlineFunction<int()> fn([p = std::move(p)] { return *p + 1; });
  InlineFunction<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 42);
}

TEST(InlineFunctionTest, DestructionCountsBalanceInline) {
  Counters c;
  {
    Tracked t(&c);
    InlineFunction<void()> fn([t] {});
    EXPECT_TRUE(fn.is_inline());
    InlineFunction<void()> other = std::move(fn);
    other();
  }
  EXPECT_GT(c.constructed, 0);
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(InlineFunctionTest, DestructionCountsBalanceHeap) {
  Counters c;
  {
    Tracked t(&c);
    char pad[64] = {0};
    InlineFunction<char()> fn([t, pad] { return pad[0]; });
    EXPECT_FALSE(fn.is_inline());
    InlineFunction<char()> other = std::move(fn);
    other();
  }
  EXPECT_GT(c.constructed, 0);
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(InlineFunctionTest, MoveAssignmentDestroysPreviousTarget) {
  Counters a, b;
  {
    Tracked ta(&a), tb(&b);
    InlineFunction<void()> fa([ta] {});
    InlineFunction<void()> fb([tb] {});
    fa = std::move(fb);  // destroys ta's copy inside fa
    fa();
  }
  EXPECT_EQ(a.constructed, a.destroyed);
  EXPECT_EQ(b.constructed, b.destroyed);
}

TEST(InlineFunctionTest, VectorCaptureSurvivesManyMoves) {
  std::vector<int> v{1, 2, 3, 4, 5};
  InlineFunction<int()> fn([v] {
    int sum = 0;
    for (int x : v) sum += x;
    return sum;
  });
  for (int i = 0; i < 16; ++i) {
    InlineFunction<int()> tmp = std::move(fn);
    fn = std::move(tmp);
  }
  EXPECT_EQ(fn(), 15);
}

}  // namespace
}  // namespace samya
