#include "harness/workload_client.h"

#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace samya::harness {
namespace {

using workload::Request;

/// Minimal token server: commits acquires up to a limit, releases always,
/// with a configurable artificial response delay.
class StubServer : public sim::Node {
 public:
  StubServer(sim::NodeId id, sim::Region region, int64_t tokens,
             Duration delay = 0)
      : Node(id, region), tokens_(tokens), delay_(delay) {}

  void HandleMessage(sim::NodeId from, uint32_t type,
                     BufferReader& r) override {
    ASSERT_EQ(type, kMsgTokenRequest);
    auto req = TokenRequest::DecodeFrom(r);
    ASSERT_TRUE(req.ok());
    ++requests;
    TokenResponse resp;
    resp.request_id = req->request_id;
    switch (req->op) {
      case TokenOp::kAcquire:
        if (tokens_ >= req->amount) {
          tokens_ -= req->amount;
          resp.status = TokenStatus::kCommitted;
        } else {
          resp.status = TokenStatus::kRejected;
        }
        break;
      case TokenOp::kRelease:
        tokens_ += req->amount;
        resp.status = TokenStatus::kCommitted;
        break;
      case TokenOp::kRead:
        resp.status = TokenStatus::kCommitted;
        resp.value = tokens_;
        break;
    }
    BufferWriter w;
    resp.EncodeTo(w);
    if (delay_ > 0) {
      // Defer the reply without blocking other requests.
      const auto payload = w.Release();
      pending_.push_back({from, payload});
      SetTimer(delay_, pending_.size() - 1);
    } else {
      Send(from, kMsgTokenResponse, w);
    }
  }

  void HandleTimer(uint64_t token) override {
    auto& [to, payload] = pending_[token];
    BufferWriter w;
    w.PutBytes(payload.data(), payload.size());
    Send(to, kMsgTokenResponse, w);
  }

  int64_t tokens_;
  Duration delay_;
  int requests = 0;
  std::vector<std::pair<sim::NodeId, std::vector<uint8_t>>> pending_;
};

TEST(WorkloadClientTest, OpenLoopFollowsScriptTimes) {
  sim::Cluster cluster(1);
  auto* server =
      cluster.AddNode<StubServer>(sim::Region::kUsWest1, /*tokens=*/100);
  WorkloadClientOptions copts;
  copts.servers = {server->id()};
  std::vector<Request> script = {{Seconds(1), Request::Type::kAcquire, 1},
                                 {Seconds(2), Request::Type::kAcquire, 1}};
  auto* client = cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts,
                                                 script);
  cluster.StartAll();
  cluster.env().RunUntil(Millis(1500));
  EXPECT_EQ(client->stats().sent, 1u);  // second request not due yet
  cluster.env().RunUntil(Seconds(5));
  EXPECT_EQ(client->stats().sent, 2u);
  EXPECT_EQ(client->stats().committed_acquires, 2u);
}

TEST(WorkloadClientTest, ClosedLoopKeepsWindowFull) {
  sim::Cluster cluster(2);
  auto* server = cluster.AddNode<StubServer>(sim::Region::kUsWest1, 1000000,
                                             /*delay=*/Millis(100));
  WorkloadClientOptions copts;
  copts.servers = {server->id()};
  copts.closed_loop = true;
  copts.window = 2;
  // 40 requests with arbitrary (ignored) timestamps.
  std::vector<Request> script(40, Request{0, Request::Type::kAcquire, 1});
  auto* client = cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts,
                                                 script);
  cluster.StartAll();
  cluster.env().RunFor(Seconds(10));
  EXPECT_EQ(client->stats().committed_acquires, 40u);
  // Throughput is window / per-request latency (~100ms + ~1ms network):
  // 40 requests at ~2 per 0.1s take ~2s, far less than the script's 0s
  // stamps would suggest if replayed open-loop all at once... but more
  // importantly, never more than `window` in flight:
  EXPECT_LE(client->outstanding(), 2u);
}

TEST(WorkloadClientTest, ClosedLoopThroughputIsLatencyBound) {
  // Two identical closed-loop clients against servers with different delays:
  // throughput ratio tracks the latency ratio.
  auto run = [](Duration delay) {
    sim::Cluster cluster(3);
    auto* server =
        cluster.AddNode<StubServer>(sim::Region::kUsWest1, 1000000, delay);
    WorkloadClientOptions copts;
    copts.servers = {server->id()};
    copts.closed_loop = true;
    copts.window = 1;
    std::vector<Request> script(10000, Request{0, Request::Type::kAcquire, 1});
    auto* client = cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1,
                                                   copts, script);
    cluster.StartAll();
    cluster.env().RunFor(Seconds(10));
    return client->stats().committed_acquires;
  };
  const auto slow = run(Millis(100));
  const auto fast = run(Millis(10));
  EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow), 10.0,
              2.0);
}

TEST(WorkloadClientTest, BalanceGuardSkipsOverdraftReleases) {
  sim::Cluster cluster(4);
  auto* server = cluster.AddNode<StubServer>(sim::Region::kUsWest1, 100);
  WorkloadClientOptions copts;
  copts.servers = {server->id()};
  std::vector<Request> script = {
      {Millis(1), Request::Type::kRelease, 5},   // nothing held: skipped
      {Millis(10), Request::Type::kAcquire, 3},
      {Millis(500), Request::Type::kRelease, 2},  // within balance: sent
      {Millis(600), Request::Type::kRelease, 2},  // exceeds balance: skipped
  };
  auto* client = cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts,
                                                 script);
  cluster.StartAll();
  cluster.env().RunFor(Seconds(2));
  EXPECT_EQ(client->stats().skipped_releases, 2u);
  EXPECT_EQ(client->stats().committed_releases, 1u);
  EXPECT_EQ(server->tokens_, 100 - 3 + 2);
}

TEST(WorkloadClientTest, RejectedReleaseRestoresBalance) {
  // A release that the server rejects leaves the client still holding the
  // tokens, so a later release is allowed.
  class RejectingServer : public StubServer {
   public:
    using StubServer::StubServer;
    void HandleMessage(sim::NodeId from, uint32_t type,
                       BufferReader& r) override {
      auto req = TokenRequest::DecodeFrom(r);
      ASSERT_TRUE(req.ok());
      TokenResponse resp;
      resp.request_id = req->request_id;
      resp.status = req->op == TokenOp::kRelease && reject_releases
                        ? TokenStatus::kRejected
                        : TokenStatus::kCommitted;
      (void)type;
      BufferWriter w;
      resp.EncodeTo(w);
      Send(from, kMsgTokenResponse, w);
    }
    bool reject_releases = true;
  };
  sim::Cluster cluster(5);
  auto* server = cluster.AddNode<RejectingServer>(sim::Region::kUsWest1, 0);
  WorkloadClientOptions copts;
  copts.servers = {server->id()};
  std::vector<Request> script = {
      {Millis(1), Request::Type::kAcquire, 4},
      {Millis(100), Request::Type::kRelease, 4},  // rejected: balance back
      {Millis(200), Request::Type::kRelease, 4},  // allowed again
  };
  auto* client = cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts,
                                                 script);
  cluster.StartAll();
  cluster.env().Schedule(Millis(150),
                         [&] { server->reject_releases = false; });
  cluster.env().RunFor(Seconds(2));
  EXPECT_EQ(client->stats().skipped_releases, 0u);
  EXPECT_EQ(client->stats().rejected, 1u);
  EXPECT_EQ(client->stats().committed_releases, 1u);
}

TEST(WorkloadClientTest, TimeoutFailsOverToNextServer) {
  sim::Cluster cluster(6);
  auto* dead = cluster.AddNode<StubServer>(sim::Region::kUsWest1, 100);
  auto* live = cluster.AddNode<StubServer>(sim::Region::kUsCentral1, 100);
  WorkloadClientOptions copts;
  copts.servers = {dead->id(), live->id()};
  copts.request_timeout = Millis(200);
  copts.max_attempts = 2;
  auto* client = cluster.AddNode<WorkloadClient>(
      sim::Region::kUsWest1, copts,
      std::vector<Request>{{Millis(1), Request::Type::kAcquire, 1}});
  cluster.StartAll();
  cluster.net().Crash(dead->id());
  cluster.env().RunFor(Seconds(2));
  EXPECT_EQ(client->stats().committed_acquires, 1u);
  EXPECT_EQ(live->tokens_, 99);
}

}  // namespace
}  // namespace samya::harness
