#include "harness/multi_entity.h"

#include <gtest/gtest.h>

#include "common/json.h"

namespace samya::harness {
namespace {

MultiEntityOptions SmallOptions() {
  MultiEntityOptions opts;
  opts.num_entities = 4;
  opts.sites_per_entity = 5;
  opts.tokens_per_entity = 2000;
  opts.duration = Minutes(2);
  opts.seed = 11;
  opts.trace.days = 1;
  opts.trace.mean_rate = 40;
  opts.site_template.enable_prediction = false;
  return opts;
}

TEST(MultiEntityTest, ShardsCommitAndConserveTokens) {
  MultiEntityOptions opts = SmallOptions();
  opts.threads = 1;
  MultiEntityResult result = RunMultiEntity(opts);
  ASSERT_EQ(result.per_entity.size(), 4u);
  for (const EntityShardResult& shard : result.per_entity) {
    EXPECT_GT(shard.clients.committed_acquires, 0u);
    EXPECT_EQ(shard.unknown_entity, 0u);
    // Eq. 1 per entity: tokens still at sites plus net client-held tokens
    // equal M_e (failure-free drained run; dropped requests are the only
    // slack, and this config has none).
    EXPECT_EQ(shard.clients.dropped, 0u);
    EXPECT_EQ(shard.tokens_left +
                  static_cast<int64_t>(shard.clients.committed_acquires) -
                  static_cast<int64_t>(shard.clients.committed_releases),
              opts.tokens_per_entity);
  }
  // Entities run distinct workload streams: at least one pair must differ.
  bool any_differ = false;
  for (size_t i = 1; i < result.per_entity.size(); ++i) {
    if (JsonDump(result.per_entity[i].ToJson()) !=
        JsonDump(result.per_entity[0].ToJson())) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(MultiEntityTest, ShardedRunIsBitIdenticalToSerial) {
  MultiEntityOptions opts = SmallOptions();
  opts.num_entities = 6;
  opts.threads = 1;
  MultiEntityResult serial = RunMultiEntity(opts);
  opts.threads = 4;
  MultiEntityResult sharded = RunMultiEntity(opts);

  ASSERT_EQ(serial.per_entity.size(), sharded.per_entity.size());
  for (size_t i = 0; i < serial.per_entity.size(); ++i) {
    EXPECT_EQ(JsonDump(serial.per_entity[i].ToJson()),
              JsonDump(sharded.per_entity[i].ToJson()))
        << "entity " << i << " diverged between serial and sharded runs";
  }
  EXPECT_EQ(serial.events_executed, sharded.events_executed);
  EXPECT_EQ(serial.messages_sent, sharded.messages_sent);
  EXPECT_EQ(serial.aggregate.committed_acquires,
            sharded.aggregate.committed_acquires);
}

TEST(MultiEntityTest, BatchingReducesMessagesPerRequest) {
  MultiEntityOptions opts = SmallOptions();
  opts.num_entities = 2;
  opts.trace.mean_rate = 400;  // enough fan-in to fill batch windows
  opts.threads = 2;
  MultiEntityResult unbatched = RunMultiEntity(opts);
  opts.batch_requests = true;
  opts.batch_window = Millis(5);
  MultiEntityResult batched = RunMultiEntity(opts);

  // Near-identical committed work either way: batching preserves
  // per-request semantics but delays delivery by up to the window, so a
  // handful of requests near rejection/timeout boundaries may land
  // differently. What must not change is the order of magnitude of
  // committed work — and the wire cost must strictly drop.
  const double committed_ratio =
      static_cast<double>(batched.aggregate.committed_acquires) /
      static_cast<double>(unbatched.aggregate.committed_acquires);
  EXPECT_GT(committed_ratio, 0.99);
  EXPECT_LT(committed_ratio, 1.01);
  EXPECT_GT(batched.batches_sent, 0u);
  EXPECT_GT(batched.batched_requests, batched.batches_sent);
  EXPECT_LT(batched.MessagesPerRequest(), unbatched.MessagesPerRequest());
}

TEST(MultiEntityTest, MetricsFoldAcrossShards) {
  MultiEntityOptions opts = SmallOptions();
  opts.num_entities = 3;
  opts.collect_metrics = true;
  opts.threads = 2;
  MultiEntityResult result = RunMultiEntity(opts);
  ASSERT_NE(result.metrics, nullptr);
  uint64_t from_metrics = 0;
  for (const EntityShardResult& shard : result.per_entity) {
    ASSERT_NE(shard.metrics, nullptr);
    obs::MetricLabels l;
    l.site = static_cast<int32_t>(shard.entity);
    // The folded registry carries each entity's counter unchanged.
    from_metrics += result.metrics
                        ->GetCounter("entity.committed_acquires", l)
                        ->value();
  }
  EXPECT_EQ(from_metrics, result.aggregate.committed_acquires);
}

TEST(MultiEntityTest, NonZeroEntityIdRoutesThroughDirectory) {
  // Clients stamp the shard's entity id on every request and the routers
  // resolve it through the directory — so a shard for entity 7 commits its
  // whole workload with zero unknown-entity rejections. (Rejection of a
  // genuinely unknown id is covered by tests/core/directory_test.cc.)
  MultiEntityOptions opts = SmallOptions();
  opts.num_entities = 1;
  EntityShardResult shard = RunEntityShard(opts, /*entity=*/7);
  EXPECT_GT(shard.clients.committed_acquires, 0u);
  EXPECT_GT(shard.routed, 0u);
  EXPECT_EQ(shard.unknown_entity, 0u);
  EXPECT_EQ(shard.entity, 7u);
}

}  // namespace
}  // namespace samya::harness
