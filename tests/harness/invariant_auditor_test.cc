#include "harness/invariant_auditor.h"

#include <gtest/gtest.h>

#include "harness/chaos.h"
#include "harness/experiment.h"

namespace samya::harness {
namespace {

ChaosCase SmallCase(SystemKind system = SystemKind::kSamyaMajority) {
  ChaosCase c;
  c.system = system;
  c.seed = 42;
  c.max_tokens = 1200;  // tight pool: redistributions must happen
  c.duration = Seconds(30);
  return c;
}

TEST(InvariantAuditorTest, CleanRunAuditsWithoutViolations) {
  for (SystemKind system :
       {SystemKind::kSamyaMajority, SystemKind::kSamyaAny}) {
    AuditOptions audit;
    const ExperimentResult r = RunChaosCase(SmallCase(system), audit);
    EXPECT_TRUE(r.violations.empty())
        << SystemName(system) << ": " << r.violations.front().check << " "
        << r.violations.front().detail;
    // The periodic tick actually ran throughout the load window.
    EXPECT_GE(r.audit_ticks, 30u) << SystemName(system);
  }
}

TEST(InvariantAuditorTest, ConservationHoldsAtQuiescenceAcrossCrashes) {
  // A crash + recover cycle with the guard on: the auditor skips the
  // non-quiescent window and the run must come out clean.
  ChaosCase c = SmallCase();
  c.schedule.ops.push_back({Seconds(5), sim::FaultOp::Kind::kCrash, 1});
  c.schedule.ops.push_back({Seconds(9), sim::FaultOp::Kind::kRecover, 1});
  AuditOptions audit;
  const ExperimentResult r = RunChaosCase(c, audit);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front().check << " " << r.violations.front().detail;
}

TEST(InvariantAuditorTest, GuardOffFlagsConservationDuringCrashWindow) {
  // With the quiescence guard disabled, the same crash makes the Eq. 1
  // equality fail deterministically while site 1's pool reads zero. This is
  // the manufactured-violation path the shrink pipeline relies on.
  ChaosCase c = SmallCase();
  c.quiescence_guard = false;
  c.schedule.ops.push_back({Seconds(5), sim::FaultOp::Kind::kCrash, 1});
  c.schedule.ops.push_back({Seconds(9), sim::FaultOp::Kind::kRecover, 1});
  AuditOptions audit;
  const ExperimentResult r = RunChaosCase(c, audit);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().check, "conservation");
  EXPECT_GE(r.violations.front().at, Seconds(5));
}

TEST(InvariantAuditorTest, LivenessFlagsSiteLeftCrashed) {
  ChaosCase c = SmallCase();
  c.schedule.ops.push_back({Seconds(5), sim::FaultOp::Kind::kCrash, 2});
  // No recover op: the final audit must call out the dead site.
  AuditOptions audit;
  const ExperimentResult r = RunChaosCase(c, audit);
  bool flagged = false;
  for (const AuditViolation& v : r.violations) {
    if (v.check == "liveness" &&
        v.detail.find("still crashed") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(InvariantAuditorTest, AuditedRunsAreDeterministic) {
  ChaosCase c = MakeNemesisCase(SystemKind::kSamyaAny, /*seed=*/3,
                                /*intensity=*/2.0);
  c.duration = Seconds(30);
  AuditOptions audit;
  const ExperimentResult a = RunChaosCase(c, audit);
  const ExperimentResult b = RunChaosCase(c, audit);
  EXPECT_EQ(a.aggregate.TotalCommitted(), b.aggregate.TotalCommitted());
  EXPECT_EQ(a.audit_ticks, b.audit_ticks);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].at, b.violations[i].at);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
  }
}

TEST(InvariantAuditorTest, ChaosCaseJsonRoundTrip) {
  ChaosCase c = MakeNemesisCase(SystemKind::kSamyaMajority, /*seed=*/9,
                                /*intensity=*/1.5, /*num_sites=*/7);
  c.quiescence_guard = false;
  c.violation_check = "conservation";
  c.note = "round trip";
  auto parsed =
      ChaosCase::FromJson(JsonParse(JsonDump(c.ToJson(), 2)).value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ChaosCase& d = parsed.value();
  EXPECT_EQ(d.system, c.system);
  EXPECT_EQ(d.seed, c.seed);
  EXPECT_EQ(d.num_sites, c.num_sites);
  EXPECT_EQ(d.max_tokens, c.max_tokens);
  EXPECT_EQ(d.duration, c.duration);
  EXPECT_EQ(d.quiescence_guard, c.quiescence_guard);
  EXPECT_EQ(d.violation_check, c.violation_check);
  EXPECT_EQ(d.note, c.note);
  ASSERT_EQ(d.schedule.size(), c.schedule.size());
  for (size_t i = 0; i < c.schedule.size(); ++i) {
    EXPECT_EQ(d.schedule.ops[i], c.schedule.ops[i]) << "op " << i;
  }
}

}  // namespace
}  // namespace samya::harness
