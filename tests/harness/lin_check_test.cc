// Direct unit tests for the Wing & Gong linearizability checker over
// hand-built token histories. The integration suites exercise the checker
// on recorded runs; these pin its verdicts on minimal histories where the
// correct answer is obvious by inspection — including the strictness knobs
// (reads/rejections) and the bounded-safety mode used for escrow systems.

#include "harness/lin_check.h"

#include <gtest/gtest.h>

#include <vector>

namespace samya::harness {
namespace {

HistoryOp Op(uint64_t id, TokenOp op, int64_t amount, SimTime invoke,
             SimTime respond, HistOutcome outcome) {
  HistoryOp h;
  h.request_id = id;
  h.client = static_cast<int32_t>(id % 3);
  h.op = op;
  h.amount = amount;
  h.invoke = invoke;
  h.respond = respond;
  h.outcome = outcome;
  return h;
}

HistoryOp Committed(uint64_t id, TokenOp op, int64_t amount, SimTime invoke,
                    SimTime respond) {
  return Op(id, op, amount, invoke, respond, HistOutcome::kCommitted);
}

TEST(LinCheckTest, AcceptsSequentialHistory) {
  // Non-overlapping committed ops in spec order: trivially linearizable.
  std::vector<HistoryOp> h = {
      Committed(1, TokenOp::kAcquire, 5, 10, 20),
      Committed(2, TokenOp::kAcquire, 5, 30, 40),
      Committed(3, TokenOp::kRelease, 5, 50, 60),
  };
  const CheckResult r = CheckHistory(h, CheckOptions::Replicated(10));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.states_explored, 0u);
}

TEST(LinCheckTest, RejectsOverdraw) {
  // Two committed acquires of 6 against M = 10 cannot both linearize, in
  // any order, with or without overlap.
  std::vector<HistoryOp> h = {
      Committed(1, TokenOp::kAcquire, 6, 10, 50),
      Committed(2, TokenOp::kAcquire, 6, 20, 40),
  };
  const CheckResult r = CheckHistory(h, CheckOptions::Samya(10));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violation.empty());
}

TEST(LinCheckTest, ConcurrentOpsMayLinearizeInEitherOrder) {
  // A release overlapping an acquire makes room for it: only the order
  // (release, acquire) explains the history, and the checker must find it
  // even though the acquire was *invoked* first.
  std::vector<HistoryOp> h = {
      Committed(1, TokenOp::kAcquire, 10, 0, 5),
      Committed(2, TokenOp::kAcquire, 4, 10, 40),   // needs the release first
      Committed(3, TokenOp::kRelease, 10, 12, 30),  // overlaps op 2
  };
  const CheckResult r = CheckHistory(h, CheckOptions::Replicated(10));
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(LinCheckTest, StrictReadsCatchStaleValue) {
  // After a committed acquire of 4 (M = 10), a later read must report 6.
  std::vector<HistoryOp> stale = {
      Committed(1, TokenOp::kAcquire, 4, 0, 10),
      Committed(2, TokenOp::kRead, 0, 20, 30),
  };
  stale[1].read_value = 10;  // pre-acquire availability: stale
  EXPECT_FALSE(CheckHistory(stale, CheckOptions::Replicated(10)).ok);
  // Samya's preset tolerates the same value (global reads are fuzzy sums),
  // as long as it stays within [0, M].
  EXPECT_TRUE(CheckHistory(stale, CheckOptions::Samya(10)).ok);
  std::vector<HistoryOp> impossible = stale;
  impossible[1].read_value = 11;  // > M: wrong under every preset
  EXPECT_FALSE(CheckHistory(impossible, CheckOptions::Samya(10)).ok);
  std::vector<HistoryOp> exact = stale;
  exact[1].read_value = 6;
  EXPECT_TRUE(CheckHistory(exact, CheckOptions::Replicated(10)).ok);
}

TEST(LinCheckTest, StrictRejectionsCatchSpuriousRejection) {
  // A rejected acquire of 3 while 9 tokens were free: unjustifiable for a
  // replicated system, routine for Samya (the local pool may have been dry).
  std::vector<HistoryOp> h = {
      Committed(1, TokenOp::kAcquire, 1, 0, 10),
      Op(2, TokenOp::kAcquire, 3, 20, 30, HistOutcome::kRejected),
  };
  EXPECT_FALSE(CheckHistory(h, CheckOptions::Replicated(10)).ok);
  EXPECT_TRUE(CheckHistory(h, CheckOptions::Samya(10)).ok);
  // With the pool genuinely exhausted the rejection is justified even
  // under the strict preset.
  std::vector<HistoryOp> full = {
      Committed(3, TokenOp::kAcquire, 10, 0, 10),
      Op(4, TokenOp::kAcquire, 3, 20, 30, HistOutcome::kRejected),
  };
  EXPECT_TRUE(CheckHistory(full, CheckOptions::Replicated(10)).ok);
}

TEST(LinCheckTest, OpenOpsMayOrMayNotHaveTakenEffect) {
  // An acquire with no observed response may have landed or not; the
  // checker must accept both explanations. Here the open acquire of 6
  // *cannot* have landed (op 2's committed acquire needs the room), so the
  // only valid explanation skips it — still linearizable.
  std::vector<HistoryOp> h = {
      Op(1, TokenOp::kAcquire, 6, 0, HistoryOp::kNoRespond, HistOutcome::kOpen),
      Committed(2, TokenOp::kAcquire, 6, 10, 20),
  };
  EXPECT_TRUE(CheckHistory(h, CheckOptions::Replicated(10)).ok);
  // But if a server tap confirmed the open op committed, its effect must be
  // placed, and then the two acquires of 6 overdraw M = 10.
  h[0].server_committed = true;
  EXPECT_FALSE(CheckHistory(h, CheckOptions::Replicated(10)).ok);
}

TEST(LinCheckTest, BoundedSafetyAcceptsSafePlacement) {
  // Bounded safety only demands that some placement of each committed
  // effect inside its [invoke, respond] window keeps the counter within
  // [0, M]; heavily overlapped commits that fit are fine.
  std::vector<HistoryOp> h = {
      Committed(1, TokenOp::kAcquire, 4, 0, 30),
      Committed(2, TokenOp::kAcquire, 4, 0, 30),
      Committed(3, TokenOp::kRelease, 4, 5, 25),
  };
  EXPECT_TRUE(CheckHistory(h, CheckOptions::Bounded(10)).ok);
}

TEST(LinCheckTest, BoundedSafetyRejectsReadOutsideRange) {
  // Even without read linearization, a committed read must report a value
  // in [0, M] — anything else is fabricated.
  std::vector<HistoryOp> h = {Committed(1, TokenOp::kRead, 0, 0, 10)};
  h[0].read_value = 11;
  EXPECT_FALSE(CheckHistory(h, CheckOptions::Bounded(10)).ok);
  h[0].read_value = 10;
  EXPECT_TRUE(CheckHistory(h, CheckOptions::Bounded(10)).ok);
}

TEST(LinCheckTest, BoundedSafetyRejectsOverdraw) {
  // Even with maximal placement freedom, three committed acquires of 4
  // against M = 10 with no overlap must exceed the cap.
  std::vector<HistoryOp> h = {
      Committed(1, TokenOp::kAcquire, 4, 0, 10),
      Committed(2, TokenOp::kAcquire, 4, 20, 30),
      Committed(3, TokenOp::kAcquire, 4, 40, 50),
  };
  const CheckResult r = CheckHistory(h, CheckOptions::Bounded(10));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violation.empty());
}

TEST(LinCheckTest, EmptyHistoryIsVacuouslyOk) {
  const CheckResult r = CheckHistory({}, CheckOptions::Samya(10));
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.complete);
}

}  // namespace
}  // namespace samya::harness
