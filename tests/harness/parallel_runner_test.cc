#include "harness/parallel_runner.h"

#include <gtest/gtest.h>

#include <vector>

namespace samya::harness {
namespace {

std::vector<ExperimentOptions> SweepUnderTest() {
  // A miniature robustness_seeds-shaped sweep: seeds x systems, short runs.
  std::vector<ExperimentOptions> sweep;
  for (uint64_t seed : {42u, 7u}) {
    for (SystemKind system :
         {SystemKind::kSamyaMajority, SystemKind::kMultiPaxSys}) {
      ExperimentOptions opts;
      opts.system = system;
      opts.duration = Minutes(2);
      opts.seed = seed;
      opts.trace.seed = seed * 31 + 5;
      sweep.push_back(opts);
    }
  }
  return sweep;
}

void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.aggregate.TotalCommitted(), b.aggregate.TotalCommitted());
  EXPECT_EQ(a.aggregate.committed_acquires, b.aggregate.committed_acquires);
  EXPECT_EQ(a.aggregate.committed_releases, b.aggregate.committed_releases);
  EXPECT_EQ(a.aggregate.rejected, b.aggregate.rejected);
  EXPECT_EQ(a.aggregate.dropped, b.aggregate.dropped);
  EXPECT_EQ(a.aggregate.sent, b.aggregate.sent);
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
  EXPECT_EQ(a.network.messages_delivered, b.network.messages_delivered);
  EXPECT_EQ(a.network.bytes_sent, b.network.bytes_sent);
  EXPECT_EQ(a.proactive_redistributions, b.proactive_redistributions);
  EXPECT_EQ(a.reactive_redistributions, b.reactive_redistributions);
  EXPECT_EQ(a.instances_completed, b.instances_completed);
}

// The determinism contract of harness/parallel_runner.h: RunAll on N
// threads must return, in input order, results bit-identical to running
// each experiment sequentially.
TEST(ParallelRunnerTest, ParallelMatchesSequential) {
  const auto options = SweepUnderTest();

  std::vector<ExperimentResult> sequential;
  for (const auto& opts : options) {
    Experiment experiment(opts);
    experiment.Setup();
    sequential.push_back(experiment.Run());
  }

  const auto parallel = RunAll(options, /*threads=*/4);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(sequential[i], parallel[i]);
  }
}

TEST(ParallelRunnerTest, RepeatedParallelRunsAreStable) {
  const auto options = SweepUnderTest();
  const auto first = RunAll(options, /*threads=*/3);
  const auto second = RunAll(options, /*threads=*/2);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(first[i], second[i]);
  }
}

TEST(ParallelRunnerTest, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(RunAll({}, 4).empty());
}

TEST(ParallelRunnerTest, DefaultThreadsIsPositive) {
  EXPECT_GE(DefaultRunnerThreads(), 1);
}

}  // namespace
}  // namespace samya::harness
