// End-to-end check of the chaos shrinking pipeline: manufacture a
// deterministic violation (quiescence guard off + crash window), ddmin the
// schedule to a minimal reproducer, and confirm the reproducer replays
// bit-identically.

#include <gtest/gtest.h>

#include "harness/chaos.h"

namespace samya::harness {
namespace {

TEST(ChaosShrinkTest, GuardOffViolationShrinksToMinimalReproducer) {
  // Full nemesis schedule; guard off makes conservation fire inside any
  // crash window, so ddmin can peel everything else away.
  ChaosCase c = MakeNemesisCase(SystemKind::kSamyaMajority, /*seed=*/12,
                                /*intensity=*/2.0);
  c.duration = Seconds(45);
  c.quiescence_guard = false;

  AuditOptions audit;
  const ExperimentResult full = RunChaosCase(c, audit);
  ASSERT_FALSE(full.violations.empty());
  c.violation_check = full.violations.front().check;
  EXPECT_EQ(c.violation_check, "conservation");

  int runs_used = 0;
  const ChaosCase minimized = ShrinkCase(c, audit, /*max_runs=*/200,
                                         &runs_used);
  EXPECT_LE(minimized.schedule.size(), 10u)
      << "ddmin left " << minimized.schedule.size() << " ops";
  EXPECT_LT(minimized.schedule.size(), c.schedule.size());
  EXPECT_GT(runs_used, 0);

  // The minimized case still reproduces, and deterministically so: two
  // replays yield the same first violation to the microsecond.
  const ExperimentResult a = RunChaosCase(minimized, audit);
  const ExperimentResult b = RunChaosCase(minimized, audit);
  ASSERT_FALSE(a.violations.empty());
  EXPECT_EQ(a.violations.front().check, c.violation_check);
  ASSERT_FALSE(b.violations.empty());
  EXPECT_EQ(a.violations.front().at, b.violations.front().at);
  EXPECT_EQ(a.violations.front().detail, b.violations.front().detail);
}

TEST(ChaosShrinkTest, ShrinkPreservesCaseIdentity) {
  ChaosCase c = MakeNemesisCase(SystemKind::kSamyaMajority, /*seed=*/12,
                                /*intensity=*/1.0);
  c.quiescence_guard = false;
  c.violation_check = "conservation";
  AuditOptions audit;
  const ChaosCase minimized = ShrinkCase(c, audit, /*max_runs=*/60);
  // Only the schedule shrinks; the workload configuration is untouched, so
  // the reproducer runs against the exact same simulated world.
  EXPECT_EQ(minimized.system, c.system);
  EXPECT_EQ(minimized.seed, c.seed);
  EXPECT_EQ(minimized.num_sites, c.num_sites);
  EXPECT_EQ(minimized.max_tokens, c.max_tokens);
  EXPECT_EQ(minimized.duration, c.duration);
  EXPECT_FALSE(minimized.quiescence_guard);
}

}  // namespace
}  // namespace samya::harness
