#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace samya::harness {
namespace {

ExperimentOptions FailureOptions(SystemKind system) {
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = Minutes(6);
  opts.seed = 99;
  opts.trace.days = 3;
  return opts;
}

/// Crashes region r's site and its client together (the Fig 3c protocol) at
/// time t.
void CrashRegion(Experiment& e, int region, SimTime t) {
  // Site ids are 0..num_sites-1 round-robin over regions; with 5 sites the
  // region's site id equals the region index. The matching client is the
  // region's entry in client_ids().
  e.faults().CrashAt(t, e.server_ids()[static_cast<size_t>(region)]);
  e.faults().CrashAt(t, e.client_ids()[static_cast<size_t>(region)]);
}

TEST(FailureTest, MultiPaxSysStopsAfterMajorityCrash) {
  Experiment e(FailureOptions(SystemKind::kMultiPaxSys));
  e.Setup();
  // Crash 3 of 5 replicas at t=2min.
  for (int i = 0; i < 3; ++i) {
    e.faults().CrashAt(Minutes(2), e.server_ids()[static_cast<size_t>(i)]);
  }
  auto result = e.Run();
  // Throughput before the crash, none after (allowing the election window).
  EXPECT_GT(result.throughput.MeanRate(0, Minutes(2)), 1.0);
  EXPECT_LT(result.throughput.MeanRate(Minutes(3), Minutes(6)), 0.5);
}

TEST(FailureTest, SamyaAnyKeepsServingWithOneSiteLeft) {
  Experiment e(FailureOptions(SystemKind::kSamyaAny));
  e.Setup();
  for (int r = 0; r < 4; ++r) {
    CrashRegion(e, r, Minutes(1) + Seconds(45) * r);
  }
  auto result = e.Run();
  // The last region keeps committing to the end.
  EXPECT_GT(result.throughput.MeanRate(Minutes(5), Minutes(6)), 1.0);
}

TEST(FailureTest, SamyaMajorityServesLocallyWithoutMajority) {
  Experiment e(FailureOptions(SystemKind::kSamyaMajority));
  e.Setup();
  for (int r = 0; r < 3; ++r) {
    CrashRegion(e, r, Minutes(1));
  }
  auto result = e.Run();
  // Redistribution is impossible (majority dead) but local serving persists.
  EXPECT_GT(result.throughput.MeanRate(Minutes(2), Minutes(6)), 1.0);
}

TEST(FailureTest, PartitionBehaviourMatchesPaper) {
  // Fig 3d: a 3-2 partition. MultiPaxSys serves only the majority side;
  // both Samya variants keep serving everywhere; Avantan[*] can even
  // redistribute inside the minority.
  auto run = [](SystemKind system) {
    Experiment e(FailureOptions(system));
    e.Setup();
    std::vector<sim::NodeId> group_a, group_b;
    // Regions 0,1,2 (+their clients/AMs) on one side; 3,4 on the other.
    for (size_t i = 0; i < e.cluster().num_nodes(); ++i) {
      const auto region = e.cluster().node(static_cast<sim::NodeId>(i))->region();
      const bool side_b = region == sim::Region::kAustraliaSoutheast1 ||
                          region == sim::Region::kSouthAmericaEast1;
      (side_b ? group_b : group_a).push_back(static_cast<sim::NodeId>(i));
    }
    e.faults().PartitionAt(Minutes(1), {group_a, group_b});
    return e.Run();
  };

  auto samya_any = run(SystemKind::kSamyaAny);
  auto multipax = run(SystemKind::kMultiPaxSys);
  // During the partitioned window Samya's committed throughput dwarfs
  // MultiPaxSys (which loses its minority-side clients entirely and is
  // replication-bound on the majority side).
  EXPECT_GT(samya_any.throughput.MeanRate(Minutes(2), Minutes(6)),
            5 * multipax.throughput.MeanRate(Minutes(2), Minutes(6)));
}

TEST(FailureTest, SamyaRecoversAfterCrashAndHeal) {
  Experiment e(FailureOptions(SystemKind::kSamyaMajority));
  e.Setup();
  // Crash one site mid-run and recover it; conservation must hold at the end.
  const sim::NodeId site = e.server_ids()[2];
  e.faults().CrashAt(Minutes(2), site);
  e.faults().RecoverAt(Minutes(3), site);
  auto result = e.Run();
  EXPECT_GT(result.aggregate.TotalCommitted(), 1000u);
  EXPECT_LE(e.TotalSiteTokens() + e.NetCommittedAcquires(), 5000);
  // Post-recovery, the full pool is accounted for again (instances settle).
  EXPECT_EQ(e.TotalSiteTokens() + e.NetCommittedAcquires(), 5000);
}

}  // namespace
}  // namespace samya::harness
