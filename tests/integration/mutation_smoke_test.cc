// Mutation smoke tests: resurrect two bugs this repo actually shipped and
// fixed, behind SAMYA_TESTONLY_MUTATION flags, and assert the checking
// machinery still catches each one within a bounded budget. If a checker
// regresses into leniency, these are the tests that notice.
//
//  - "alloc_remainder": the deployment builders once dropped the M_e % n
//    remainder when splitting an entity's tokens across sites, so pools
//    summed below M_e. The invariant auditor's conservation check must flag
//    it on the very first explorer run.
//  - "compact_before_apply": FileStableStorage once compacted the log from
//    the pre-op map during the Put that triggered compaction, silently
//    dropping the just-synced record across a reopen. A storage-vs-model
//    replay must see the divergence.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "common/testonly_mutation.h"
#include "harness/explore.h"
#include "storage/stable_storage.h"

namespace samya::harness {
namespace {

/// Arms a mutation for the enclosing scope; never leaks into other tests.
class ScopedMutation {
 public:
  explicit ScopedMutation(const char* name) : name_(name) {
    SetMutationForTest(name_, true);
  }
  ~ScopedMutation() { SetMutationForTest(name_, false); }

 private:
  const char* name_;
};

TEST(TestonlyMutationTest, DisabledByDefaultAndToggleable) {
  EXPECT_FALSE(MutationEnabled(kMutationAllocRemainder));
  EXPECT_FALSE(MutationEnabled(kMutationCompactBeforeApply));
  {
    ScopedMutation arm(kMutationAllocRemainder);
    EXPECT_TRUE(MutationEnabled(kMutationAllocRemainder));
    EXPECT_FALSE(MutationEnabled(kMutationCompactBeforeApply));
  }
  EXPECT_FALSE(MutationEnabled(kMutationAllocRemainder));
}

TEST(MutationSmokeTest, AllocRemainderCaughtByExplorerInOneRun) {
  // M = 31 over 3 sites leaves remainder 1; dropping it starts the pools at
  // 30, which the conservation ledger (pools + net acquires == M_e) sees at
  // the first quiescent audit tick. Budget: a single FIFO run — no schedule
  // search needed, the bug is unconditional.
  ExploreCase c;
  c.system = SystemKind::kSamyaMajority;
  c.mutation = kMutationAllocRemainder;
  const ExploreRunResult r = RunExploreCase(c);
  EXPECT_TRUE(r.violated());
  EXPECT_EQ(r.failed_check, "conservation");
}

TEST(MutationSmokeTest, AllocRemainderCleanRunStaysClean) {
  // Control: identical config without the mutation must not flag, i.e. the
  // smoke test above detects the bug, not the scenario.
  ExploreCase c;
  c.system = SystemKind::kSamyaMajority;
  const ExploreRunResult r = RunExploreCase(c);
  EXPECT_FALSE(r.violated()) << r.failed_check;
  EXPECT_GT(r.ops_recorded, 0u);
}

class CompactBeforeApplyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("samya_mutation_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "store.wal").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes 0..4 to one key with threshold 4 (the 5th Put triggers
  /// compaction), reopens, and replays the same ops against an in-memory
  /// model. Returns whether storage and model agree.
  bool StorageMatchesModel() {
    storage::InMemoryStableStorage model;
    {
      auto s = storage::FileStableStorage::Open(path_,
                                                /*compaction_threshold=*/4);
      EXPECT_TRUE(s.ok());
      for (int i = 0; i <= 4; ++i) {
        EXPECT_TRUE((*s)->PutString("k", std::to_string(i)).ok());
        EXPECT_TRUE(model.PutString("k", std::to_string(i)).ok());
      }
    }
    auto reopened = storage::FileStableStorage::Open(path_, 4);
    EXPECT_TRUE(reopened.ok());
    auto stored = (*reopened)->GetString("k");
    return stored.ok() && stored.value() == model.GetString("k").value();
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(CompactBeforeApplyTest, MutationCaughtByStorageModelCheck) {
  ScopedMutation arm(kMutationCompactBeforeApply);
  // The compaction triggered by the last Put rewrites the log from the
  // pre-op map, so the reopened store diverges from the model — exactly the
  // divergence the crash-cycle property test hunts for.
  EXPECT_FALSE(StorageMatchesModel());
}

TEST_F(CompactBeforeApplyTest, FixedCodeMatchesModel) {
  EXPECT_TRUE(StorageMatchesModel());
}

}  // namespace
}  // namespace samya::harness
