// Replays every committed chaos case in tests/integration/chaos_corpus/.
//
// Each corpus file is a fully serialized ChaosCase. Cases with an empty
// `violation_check` are regression guards: they encode fault schedules the
// search once swept (or that exercised past bugs) and must replay with zero
// invariant violations. Cases with a non-empty `violation_check` are known
// reproducers (today: guard-off conservation cases from the shrink
// pipeline) and must still produce that violation — if one goes quiet, the
// reproducer rotted and should be regenerated.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/chaos.h"

namespace samya::harness {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CHAOS_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

ChaosCase LoadCase(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = JsonParse(text.str());
  EXPECT_TRUE(doc.ok()) << path << ": " << doc.status().ToString();
  auto c = ChaosCase::FromJson(doc.value());
  EXPECT_TRUE(c.ok()) << path << ": " << c.status().ToString();
  return c.value();
}

TEST(ChaosCorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 4u)
      << "chaos corpus went missing from " << CHAOS_CORPUS_DIR;
}

TEST(ChaosCorpusTest, EveryCaseReplaysAsRecorded) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const ChaosCase c = LoadCase(path);
    AuditOptions audit;
    const ExperimentResult r = RunChaosCase(c, audit);
    if (c.violation_check.empty()) {
      EXPECT_TRUE(r.violations.empty())
          << r.violations.front().check << " at "
          << FormatDuration(r.violations.front().at) << ": "
          << r.violations.front().detail;
      EXPECT_GT(r.aggregate.TotalCommitted(), 0u);
    } else {
      bool reproduced = false;
      for (const AuditViolation& v : r.violations) {
        if (v.check == c.violation_check) reproduced = true;
      }
      EXPECT_TRUE(reproduced)
          << "expected a '" << c.violation_check << "' violation, got "
          << r.violations.size() << " violation(s)";
    }
  }
}

TEST(ChaosCorpusTest, CorpusFilesAreCanonicalJson) {
  // Committed files stay in JsonDump's canonical indent-2 form, so
  // regenerating a case produces a minimal diff.
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    auto doc = JsonParse(text.str());
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(text.str(), JsonDump(doc.value(), /*indent=*/2));
  }
}

}  // namespace
}  // namespace samya::harness
