// The schedule-oracle hook must be zero-cost *and* zero-effect when unused:
// a run with no oracle attached and a run with the FifoOracle (hook armed,
// but always choosing the event FIFO would pop) must be bit-identical — the
// oracle only ever changes behaviour when it actually deviates from choice
// 0. The same harness pins the repeatability contracts of the randomized
// schedulers: same seed, same schedule.

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"
#include "harness/explore.h"
#include "sim/schedule_oracle.h"

namespace samya::harness {
namespace {

using Digest = std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                          uint64_t, uint64_t, int64_t, uint64_t, double>;

Digest RunOnce(sim::ScheduleOracle* oracle) {
  ExperimentOptions opts;
  opts.system = SystemKind::kSamyaMajority;
  opts.duration = Seconds(10);
  opts.max_tokens = 300;  // scarce enough to trigger redistributions
  opts.seed = 11;
  opts.oracle = oracle;
  Experiment experiment(opts);
  experiment.Setup();
  const ExperimentResult r = experiment.Run();
  return Digest(r.events_executed, r.aggregate.committed_acquires,
                r.aggregate.committed_releases, r.aggregate.rejected,
                r.network.messages_sent, r.network.messages_delivered,
                r.network.bytes_sent, experiment.TotalSiteTokens(),
                r.aggregate.latency.count(),
                r.aggregate.latency.Percentile(99));
}

TEST(ScheduleDeterminismTest, FifoOracleMatchesNoOracleBitIdentical) {
  const Digest off = RunOnce(nullptr);
  sim::FifoOracle fifo;
  const Digest on = RunOnce(&fifo);
  EXPECT_EQ(off, on);
  // The hook must actually have been exercised, not silently bypassed: a
  // full Azure-trace run has plenty of in-window delivery pairs.
  EXPECT_GT(fifo.decisions(), 0u);
  for (const sim::ChoicePoint& cp : fifo.trace()) {
    EXPECT_EQ(cp.chosen, 0u);
    EXPECT_GE(cp.num_candidates, 2u);
  }
}

TEST(ScheduleDeterminismTest, NoOracleRunsAreRepeatable) {
  EXPECT_EQ(RunOnce(nullptr), RunOnce(nullptr));
}

TEST(ScheduleDeterminismTest, PctSameSeedSameSchedule) {
  sim::PctOracle a(/*seed=*/7, /*depth=*/3, /*expected_decisions=*/500);
  sim::PctOracle b(/*seed=*/7, /*depth=*/3, /*expected_decisions=*/500);
  const Digest da = RunOnce(&a);
  const Digest db = RunOnce(&b);
  EXPECT_EQ(da, db);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].chosen, b.trace()[i].chosen) << "decision " << i;
  }
}

TEST(ScheduleDeterminismTest, ReplayReproducesRandomWalkRun) {
  sim::RandomWalkOracle walk(/*seed=*/3);
  const Digest original = RunOnce(&walk);
  std::vector<uint32_t> choices;
  bool deviated = false;
  for (const sim::ChoicePoint& cp : walk.trace()) {
    choices.push_back(cp.chosen);
    deviated = deviated || cp.chosen != 0;
  }
  EXPECT_TRUE(deviated) << "random walk never left the FIFO path";
  sim::ReplayOracle replay(choices);
  EXPECT_EQ(original, RunOnce(&replay));
}

TEST(ScheduleDeterminismTest, RandomWalkActuallyReorders) {
  // Different interleavings are allowed to (and here, do) change observable
  // metrics relative to FIFO — otherwise the explorer would be a no-op.
  // Only the run *digest* may differ; conservation must hold either way,
  // which RunExploreCase's auditor asserts across the whole sweep.
  ExploreCase c;
  c.scheduler = SchedulerKind::kRandom;
  c.seed = 3;
  const ExploreRunResult r = RunExploreCase(c);
  EXPECT_FALSE(r.violated()) << r.failed_check;
  EXPECT_GT(r.trace.size(), 0u);
}

}  // namespace
}  // namespace samya::harness
