// Executable counterparts of the paper's Theorems 1 and 2:
//
//   Thm 1: no two distinct values are both chosen for a given instance of
//          Avantan[(n+1)/2].
//   Thm 2: no two distinct values are both chosen by the set of sites
//          participating in a given instance of Avantan[*].
//
// Strategy: drive bare Samya sites through randomized adversarial schedules
// (message loss, crash/recover churn, partitions forming and healing, and
// concurrent redistribution triggers), then compare every site's decided-
// outcome log: any instance decided by two sites must carry the same value.
// Token conservation is asserted as the corollary the paper cares about.

#include <gtest/gtest.h>

#include "core/site.h"
#include "sim/cluster.h"
#include "sim/fault_injector.h"

namespace samya::core {
namespace {

struct Adversary {
  uint64_t seed;
  double loss;
  int crashes_per_node;
  bool partition;
};

class AvantanTheoremTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, Protocol>> {};

void RunAdversarialSchedule(uint64_t seed, Protocol protocol) {
  Rng meta(seed);
  sim::Cluster cluster(seed);
  const int n = 5;
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(i);
  std::vector<Site*> sites;
  for (int i = 0; i < n; ++i) {
    SiteOptions opts;
    opts.sites = ids;
    opts.initial_tokens = 100;
    opts.enable_prediction = false;
    opts.protocol = protocol;
    auto* site = cluster.AddNode<Site>(
        sim::kPaperRegions[static_cast<size_t>(i) % 5], opts);
    site->set_storage(cluster.StorageFor(site->id()));
    sites.push_back(site);
  }
  cluster.StartAll();

  // Adversarial environment: loss + churn + (sometimes) a partition window.
  cluster.net().set_loss_rate(meta.Uniform(0.0, 0.15));
  sim::FaultInjector faults(&cluster.net());
  Rng churn_rng(seed * 31 + 7);
  faults.RandomChurn(ids, Seconds(12), /*crashes_per_node=*/1,
                     /*downtime=*/Millis(1200), churn_rng);
  if (meta.Bernoulli(0.5)) {
    const SimTime at = Seconds(meta.UniformInt(2, 8));
    faults.PartitionAt(at, {{0, 1}, {2, 3, 4}});
    faults.HealAt(at + Seconds(meta.UniformInt(2, 5)));
  }

  // Concurrent triggers from random sites throughout the turbulence.
  for (int k = 0; k < 10; ++k) {
    const int site = static_cast<int>(meta.NextUint64(n));
    const int64_t wanted = meta.UniformInt(50, 250);
    cluster.env().Schedule(Seconds(1 + k) + Millis(meta.UniformInt(0, 900)),
                           [&sites, site, wanted] {
                             auto* s = sites[static_cast<size_t>(site)];
                             if (s->alive() && !s->frozen()) {
                               s->TriggerRedistributionForTest(wanted);
                             }
                           });
  }

  cluster.env().RunFor(Seconds(25));
  // Quiesce: heal the world and let every straggling instance resolve.
  cluster.net().set_loss_rate(0.0);
  cluster.net().ClearPartition();
  for (auto* s : sites) {
    if (!s->alive()) cluster.net().Recover(s->id());
  }
  cluster.env().RunFor(Seconds(30));

  // --- Theorem check: per-instance agreement across all sites. -------------
  std::map<InstanceId, StateList> chosen;
  for (auto* s : sites) {
    for (const auto& [instance, value] : s->decided_outcomes()) {
      auto it = chosen.find(instance);
      if (it == chosen.end()) {
        chosen[instance] = value;
      } else {
        ASSERT_EQ(it->second, value)
            << "two sites decided different values for instance " << instance
            << " (protocol " << static_cast<int>(protocol) << ", seed "
            << seed << ")";
      }
    }
  }

  // --- Corollary: conservation and liveness after quiesce. -----------------
  int64_t total = 0;
  for (auto* s : sites) {
    EXPECT_FALSE(s->frozen()) << "site " << s->id() << " still frozen";
    total += s->tokens_left();
  }
  EXPECT_EQ(total, 500) << "tokens minted or destroyed (seed " << seed << ")";
}

TEST_P(AvantanTheoremTest, NoTwoDistinctValuesChosen) {
  const auto [seed, protocol] = GetParam();
  RunAdversarialSchedule(seed, protocol);
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialSweep, AvantanTheoremTest,
    ::testing::Combine(
        ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808, 909, 1010,
                          1111, 1212),
        ::testing::Values(Protocol::kAvantanMajority, Protocol::kAvantanAny)));

}  // namespace
}  // namespace samya::core
