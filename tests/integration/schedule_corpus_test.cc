// Replays every committed schedule case in
// tests/integration/schedule_corpus/.
//
// Each corpus file is a fully serialized ExploreCase: the scripted scenario,
// the scheduler (always replay once committed), the recorded oracle choice
// trace, and optionally a test-only mutation to arm. Cases with an empty
// `violation_check` are regression guards that must replay clean; cases with
// one named are known reproducers (today: mutation-armed conservation
// breaks) that must still produce exactly that violation. The deterministic
// simulator makes each replay bit-identical, which the determinism test
// below pins.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/explore.h"

namespace samya::harness {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SCHEDULE_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

ExploreCase LoadCase(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = JsonParse(text.str());
  EXPECT_TRUE(doc.ok()) << path << ": " << doc.status().ToString();
  auto c = ExploreCase::FromJson(doc.value());
  EXPECT_TRUE(c.ok()) << path << ": " << c.status().ToString();
  return c.value();
}

bool Reproduces(const ExploreRunResult& r, const std::string& check) {
  for (const AuditViolation& v : r.violations) {
    if (v.check == check) return true;
  }
  if (!r.check.ok &&
      (check == "linearizability" || check == "bounded_safety")) {
    return true;
  }
  return false;
}

TEST(ScheduleCorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 5u)
      << "schedule corpus went missing from " << SCHEDULE_CORPUS_DIR;
}

TEST(ScheduleCorpusTest, EveryCaseReplaysAsRecorded) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const ExploreCase c = LoadCase(path);
    const ExploreRunResult r = RunExploreCase(c);
    EXPECT_GT(r.ops_recorded, 0u);
    if (c.violation_check.empty()) {
      EXPECT_FALSE(r.violated())
          << r.failed_check << ": "
          << (r.violations.empty() ? r.check.violation
                                   : r.violations.front().detail);
    } else {
      EXPECT_TRUE(Reproduces(r, c.violation_check))
          << "expected a '" << c.violation_check << "' violation, got "
          << (r.violated() ? r.failed_check : std::string("a clean run"));
    }
  }
}

TEST(ScheduleCorpusTest, ReplayIsDeterministic) {
  // The corpus contract: a committed schedule reproduces bit-identically.
  // Two back-to-back replays of the same case must agree on the event
  // count, every scheduling decision, and every decision-context hash.
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const ExploreCase c = LoadCase(path);
    const ExploreRunResult a = RunExploreCase(c);
    const ExploreRunResult b = RunExploreCase(c);
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.ops_recorded, b.ops_recorded);
    EXPECT_EQ(a.choices, b.choices);
    EXPECT_EQ(a.failed_check, b.failed_check);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].state_hash, b.trace[i].state_hash) << "decision " << i;
      EXPECT_EQ(a.trace[i].num_candidates, b.trace[i].num_candidates);
    }
  }
}

TEST(ScheduleCorpusTest, CorpusFilesAreCanonicalJson) {
  // Committed files stay in JsonDump's canonical indent-2 form, so
  // regenerating a case produces a minimal diff.
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    auto doc = JsonParse(text.str());
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(text.str(), JsonDump(doc.value(), /*indent=*/2));
  }
}

TEST(ScheduleCorpusTest, CaseRoundTripsThroughJson) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const ExploreCase c = LoadCase(path);
    auto back = ExploreCase::FromJson(c.ToJson());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(JsonDump(c.ToJson()), JsonDump(back.value().ToJson()));
  }
}

}  // namespace
}  // namespace samya::harness
