#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace samya::harness {
namespace {

ExperimentOptions SmallOptions(SystemKind system, uint64_t seed = 42) {
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = Minutes(3);
  opts.seed = seed;
  opts.trace.days = 3;  // enough compressed trace for a few minutes
  return opts;
}

TEST(ExperimentTest, EverySystemCommitsTransactions) {
  for (SystemKind system :
       {SystemKind::kSamyaMajority, SystemKind::kSamyaAny,
        SystemKind::kMultiPaxSys, SystemKind::kCockroachLike,
        SystemKind::kDemarcation, SystemKind::kSiteEscrow,
        SystemKind::kSamyaNoConstraint,
        SystemKind::kSamyaNoRedistribution,
        SystemKind::kSamyaMajorityNoPredict, SystemKind::kSamyaAnyNoPredict}) {
    Experiment experiment(SmallOptions(system));
    experiment.Setup();
    auto result = experiment.Run();
    EXPECT_GT(result.aggregate.TotalCommitted(), 1000u)
        << SystemName(system);
  }
}

TEST(ExperimentTest, SamyaConservesTokensExactly) {
  for (SystemKind system :
       {SystemKind::kSamyaMajority, SystemKind::kSamyaAny}) {
    ExperimentOptions opts = SmallOptions(system);
    opts.max_tokens = 1200;  // tight pool: redistributions must happen
    Experiment experiment(opts);
    experiment.Setup();
    auto result = experiment.Run();
    // Eq. 1 audit: all of M_e is either in a site pool or held by clients.
    EXPECT_EQ(experiment.TotalSiteTokens() + experiment.NetCommittedAcquires(),
              1200)
        << SystemName(system);
    EXPECT_GT(result.instances_completed, 0u) << SystemName(system);
  }
}

TEST(ExperimentTest, SamyaVastlyOutperformsReplicatedBaselines) {
  // The headline result (Fig 3b): dis-aggregation commits an order of
  // magnitude more transactions than per-update replication.
  auto run = [](SystemKind system) {
    Experiment experiment(SmallOptions(system));
    experiment.Setup();
    return experiment.Run().aggregate.TotalCommitted();
  };
  const auto samya = run(SystemKind::kSamyaMajority);
  const auto multipax = run(SystemKind::kMultiPaxSys);
  EXPECT_GT(samya, 8 * multipax);
}

TEST(ExperimentTest, SamyaLatencyFarBelowBaseline) {
  // Burst-free workload: demand bursts above M_e legitimately push Samya's
  // tail into redistribution-wait territory (that is Table 2b's p99); the
  // p90 contrast with the baselines is about the common case.
  auto p90 = [](SystemKind system) {
    ExperimentOptions opts = SmallOptions(system);
    opts.trace.burst_probability = 0;
    Experiment experiment(opts);
    experiment.Setup();
    auto result = experiment.Run();
    return result.aggregate.latency.P90();
  };
  const double samya = p90(SystemKind::kSamyaMajority);
  const double multipax = p90(SystemKind::kMultiPaxSys);
  EXPECT_LT(samya, Millis(20));
  EXPECT_GT(multipax, Millis(60));
}

TEST(ExperimentTest, DeterministicBySeed) {
  auto run = [](uint64_t seed) {
    Experiment experiment(SmallOptions(SystemKind::kSamyaMajority, seed));
    experiment.Setup();
    auto result = experiment.Run();
    return result.aggregate.TotalCommitted();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ExperimentTest, ReadRatioProducesReads) {
  ExperimentOptions opts = SmallOptions(SystemKind::kSamyaMajority);
  opts.read_ratio = 0.5;
  opts.trace.burst_probability = 0;  // keep the committed write/read mix 50/50
  Experiment experiment(opts);
  experiment.Setup();
  auto result = experiment.Run();
  EXPECT_GT(result.aggregate.committed_reads, 1000u);
  const double frac =
      static_cast<double>(result.aggregate.committed_reads) /
      static_cast<double>(result.aggregate.TotalCommitted());
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(ExperimentTest, ScalesToTwentySites) {
  ExperimentOptions opts = SmallOptions(SystemKind::kSamyaAny);
  opts.num_sites = 20;
  opts.scale_load_with_sites = true;
  Experiment experiment(opts);
  experiment.Setup();
  EXPECT_EQ(experiment.samya_sites().size(), 20u);
  auto result = experiment.Run();
  EXPECT_GT(result.aggregate.TotalCommitted(), 1000u);
  EXPECT_EQ(experiment.TotalSiteTokens() + experiment.NetCommittedAcquires(),
            5000);
}

}  // namespace
}  // namespace samya::harness
