// Tracing must be a pure observer: a run with the full observability stack
// attached has to produce bit-identical simulation results to the same run
// with it off. Trace ids come from plain counters and context rides
// out-of-band (closure captures, never payload bytes), so RNG draw order and
// event ordering are unchanged — this test is the regression guard for that
// contract.

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"

namespace samya::harness {
namespace {

using Digest = std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                          uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                          uint64_t, int64_t, uint64_t, double>;

Digest RunOnce(SystemKind system, obs::ObsOptions obs_opts) {
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = Seconds(25);
  opts.max_tokens = 800;  // scarce enough to trigger redistributions
  opts.seed = 11;
  opts.obs = obs_opts;
  Experiment experiment(opts);
  experiment.Setup();
  // Loss and duplication exercise the traced drop / duplicate-record
  // branches, which must consume the exact same RNG draws as the untraced
  // ones.
  experiment.cluster().net().set_loss_rate(0.02);
  experiment.cluster().net().set_duplicate_rate(0.02);
  const ExperimentResult r = experiment.Run();
  return Digest(
      r.events_executed, r.aggregate.committed_acquires,
      r.aggregate.committed_releases, r.aggregate.committed_reads,
      r.aggregate.rejected, r.network.messages_sent,
      r.network.messages_delivered, r.network.messages_dropped_loss,
      r.network.messages_duplicated, r.network.bytes_sent,
      r.instances_completed, experiment.TotalSiteTokens(),
      r.aggregate.latency.count(), r.aggregate.latency.Percentile(99));
}

TEST(ObsDeterminismTest, TracingOnVsOffIsBitIdentical_Majority) {
  const Digest off = RunOnce(SystemKind::kSamyaMajority, obs::ObsOptions{});
  const Digest on = RunOnce(SystemKind::kSamyaMajority, obs::ObsOptions::All());
  EXPECT_EQ(off, on);
}

TEST(ObsDeterminismTest, TracingOnVsOffIsBitIdentical_Any) {
  const Digest off = RunOnce(SystemKind::kSamyaAny, obs::ObsOptions{});
  const Digest on = RunOnce(SystemKind::kSamyaAny, obs::ObsOptions::All());
  EXPECT_EQ(off, on);
}

TEST(ObsDeterminismTest, TracedRunsAreRepeatable) {
  const Digest a = RunOnce(SystemKind::kSamyaMajority, obs::ObsOptions::All());
  const Digest b = RunOnce(SystemKind::kSamyaMajority, obs::ObsOptions::All());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace samya::harness
