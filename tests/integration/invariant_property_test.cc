#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace samya::harness {
namespace {

/// Property sweep over seeds and protocols: the Eq. 1 conservation invariant
/// holds exactly after every failure-free run, and is never exceeded during
/// faulty runs.
class InvariantPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, SystemKind>> {};

TEST_P(InvariantPropertyTest, ConservationFailureFree) {
  const auto [seed, system] = GetParam();
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = Minutes(2);
  opts.seed = seed;
  opts.trace.days = 2;
  opts.trace.seed = seed * 13 + 1;
  Experiment e(opts);
  e.Setup();
  auto result = e.Run();
  EXPECT_GT(result.aggregate.TotalCommitted(), 100u);
  EXPECT_EQ(e.TotalSiteTokens() + e.NetCommittedAcquires(), 5000)
      << SystemName(system) << " seed " << seed;
  EXPECT_EQ(e.TotalSiteTokens() + e.ServerNetAcquires(), 5000);
  // No site may ever hold negative tokens under the constraint.
  for (auto* site : e.samya_sites()) {
    EXPECT_GE(site->tokens_left(), 0);
  }
}

TEST_P(InvariantPropertyTest, ConstraintNeverExceededWithFaults) {
  const auto [seed, system] = GetParam();
  ExperimentOptions opts;
  opts.system = system;
  opts.duration = Minutes(4);
  opts.seed = seed;
  opts.trace.days = 2;
  Experiment e(opts);
  e.Setup();
  // One crash/recover cycle on two different sites.
  Rng rng(seed);
  for (int k = 0; k < 2; ++k) {
    const auto site = e.server_ids()[static_cast<size_t>(
        rng.UniformInt(0, 4))];
    const SimTime at = Minutes(1) + Seconds(rng.UniformInt(0, 90));
    e.faults().CrashAt(at, site);
    e.faults().RecoverAt(at + Seconds(20), site);
  }
  e.Run();
  // Server-side ledger is exact even across crashes: every committed acquire
  // or release is accounted at the site that served it. (The client-side
  // ledger can drift when a queued release commits after its client gave
  // up — the physical tokens are still conserved.)
  EXPECT_EQ(e.TotalSiteTokens() + e.ServerNetAcquires(), 5000)
      << SystemName(system) << " seed " << seed;
  EXPECT_LE(e.NetCommittedAcquires(), 5000);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(SystemKind::kSamyaMajority,
                                         SystemKind::kSamyaAny)));

}  // namespace
}  // namespace samya::harness
