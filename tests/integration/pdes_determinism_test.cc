// Conservative-window PDES must be an *implementation detail*: the same
// experiment run on 1, 2, or 4 workers has to produce bit-identical results
// — full result digests, merged metrics JSON, profiler event counts — with
// and without faults in flight. These tests are the contract for
// DESIGN.md §11; if any of them fails, the parallel path has diverged from
// the serial loop and must not be trusted for paper numbers.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/json.h"
#include "harness/experiment.h"
#include "sim/nemesis.h"
#include "sim/schedule_oracle.h"

namespace samya::harness {
namespace {

using Digest =
    std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, int64_t,
               uint64_t, double>;

struct RunSpec {
  int workers = 1;
  sim::FaultSchedule faults;
  obs::ObsOptions obs;
  sim::ScheduleOracle* oracle = nullptr;
};

struct RunOut {
  Digest digest;
  bool active = false;
  std::string fallback;
  std::string metrics_json;       ///< "" when metrics are off
  uint64_t profiler_events = 0;   ///< 0 when the profiler is off
};

RunOut RunOnce(RunSpec spec) {
  ExperimentOptions opts;
  opts.system = SystemKind::kSamyaMajority;
  opts.duration = Seconds(20);
  opts.max_tokens = 300;  // scarce enough to trigger redistributions
  opts.seed = 11;
  opts.pdes_workers = spec.workers;
  opts.fault_schedule = std::move(spec.faults);
  opts.obs = spec.obs;
  opts.oracle = spec.oracle;
  Experiment experiment(opts);
  experiment.Setup();
  const ExperimentResult r = experiment.Run();
  RunOut out;
  out.digest = Digest(
      r.events_executed, r.aggregate.committed_acquires,
      r.aggregate.committed_releases, r.aggregate.rejected,
      r.network.messages_sent, r.network.messages_delivered,
      r.network.messages_dropped_loss, r.network.messages_duplicated,
      r.network.bytes_sent, r.instances_completed,
      r.proactive_redistributions + r.reactive_redistributions,
      experiment.TotalSiteTokens(), r.aggregate.latency.count(),
      r.aggregate.latency.Percentile(99));
  out.active = experiment.pdes_active();
  out.fallback = experiment.pdes_fallback_reason();
  if (r.obs != nullptr && r.obs->metrics() != nullptr) {
    out.metrics_json = JsonDump(r.obs->metrics()->ToJson());
  }
  if (r.obs != nullptr && r.obs->profiler() != nullptr) {
    out.profiler_events = r.obs->profiler()->events();
  }
  return out;
}

/// A generated chaos schedule over the five sites: crashes, partitions,
/// link cuts, loss/delay/duplication spikes. `GenerateSchedule` floors
/// delay-storm factors at 2.0, so the schedule never shrinks latency and
/// PDES stays eligible.
sim::FaultSchedule ChaosSchedule() {
  sim::NemesisOptions n;
  n.horizon = Seconds(16);
  n.intensity = 1.5;
  n.nodes = {0, 1, 2, 3, 4};
  return sim::GenerateSchedule(n, /*seed=*/7);
}

/// A hand-written storm that leans on the latency-scaling paths: global and
/// per-link delay factors (all >= 1, so lookahead stays valid) plus loss
/// and duplication so the per-sender RNG draw order is exercised hard.
sim::FaultSchedule DelayStormSchedule() {
  sim::FaultSchedule s;
  auto add = [&s](SimTime at, sim::FaultOp::Kind kind, double value,
                  sim::NodeId a = sim::kInvalidNode,
                  sim::NodeId b = sim::kInvalidNode) {
    sim::FaultOp op;
    op.at = at;
    op.kind = kind;
    op.value = value;
    op.a = a;
    op.b = b;
    s.ops.push_back(op);
  };
  add(Seconds(2), sim::FaultOp::Kind::kSetDelayFactor, 3.0);
  add(Seconds(3), sim::FaultOp::Kind::kSetLossRate, 0.05);
  add(Seconds(4), sim::FaultOp::Kind::kSetLinkDelayFactor, 2.5, 0, 1);
  add(Seconds(5), sim::FaultOp::Kind::kSetDuplicateRate, 0.05);
  add(Seconds(9), sim::FaultOp::Kind::kSetDelayFactor, 1.0);
  add(Seconds(10), sim::FaultOp::Kind::kSetLossRate, 0.0);
  add(Seconds(11), sim::FaultOp::Kind::kClearLinkFaults, 0.0);
  add(Seconds(12), sim::FaultOp::Kind::kSetDuplicateRate, 0.0);
  return s;
}

TEST(PdesDeterminismTest, ParallelMatchesSerial_NoFault) {
  const RunOut serial = RunOnce({.workers = 1});
  for (int workers : {2, 4}) {
    const RunOut par = RunOnce({.workers = workers});
    EXPECT_TRUE(par.active) << "workers=" << workers << ": " << par.fallback;
    EXPECT_EQ(par.digest, serial.digest) << "workers=" << workers;
  }
}

TEST(PdesDeterminismTest, ParallelMatchesSerial_ChaosNemesis) {
  const RunOut serial = RunOnce({.workers = 1, .faults = ChaosSchedule()});
  for (int workers : {2, 4}) {
    const RunOut par =
        RunOnce({.workers = workers, .faults = ChaosSchedule()});
    EXPECT_TRUE(par.active) << "workers=" << workers << ": " << par.fallback;
    EXPECT_EQ(par.digest, serial.digest) << "workers=" << workers;
  }
}

TEST(PdesDeterminismTest, ParallelMatchesSerial_DelayStorm) {
  const RunOut serial =
      RunOnce({.workers = 1, .faults = DelayStormSchedule()});
  for (int workers : {2, 4}) {
    const RunOut par =
        RunOnce({.workers = workers, .faults = DelayStormSchedule()});
    EXPECT_TRUE(par.active) << "workers=" << workers << ": " << par.fallback;
    EXPECT_EQ(par.digest, serial.digest) << "workers=" << workers;
  }
}

TEST(PdesDeterminismTest, ParallelRunsAreRepeatable) {
  const RunOut a = RunOnce({.workers = 4, .faults = ChaosSchedule()});
  const RunOut b = RunOnce({.workers = 4, .faults = ChaosSchedule()});
  EXPECT_EQ(a.digest, b.digest);
}

// Metrics + profiler attached (tracing stays off — it forces serial): the
// merged per-partition registries must serialize to exactly the serial
// run's JSON, and the profiler must account exactly the serial event count.
TEST(PdesDeterminismTest, ObsMergeMatchesSerial) {
  obs::ObsOptions obs;
  obs.metrics = true;
  obs.profiler = true;
  const RunOut serial = RunOnce({.workers = 1, .obs = obs});
  const RunOut par = RunOnce({.workers = 4, .obs = obs});
  EXPECT_TRUE(par.active) << par.fallback;
  EXPECT_EQ(par.digest, serial.digest);
  EXPECT_FALSE(serial.metrics_json.empty());
  EXPECT_EQ(par.metrics_json, serial.metrics_json);
  EXPECT_GT(serial.profiler_events, 0u);
  EXPECT_EQ(par.profiler_events, serial.profiler_events);
}

// Observability must stay a pure observer under parallel execution too.
TEST(PdesDeterminismTest, ObsOnVsOffIsBitIdenticalAtFourWorkers) {
  obs::ObsOptions obs;
  obs.metrics = true;
  obs.profiler = true;
  const RunOut off = RunOnce({.workers = 4});
  const RunOut on = RunOnce({.workers = 4, .obs = obs});
  EXPECT_TRUE(off.active) << off.fallback;
  EXPECT_TRUE(on.active) << on.fallback;
  EXPECT_EQ(on.digest, off.digest);
}

// Schedule exploration owns the serial loop: requesting workers alongside
// an oracle must quietly run serial — with the reason surfaced — and match
// the plain serial-with-oracle run exactly.
TEST(PdesDeterminismTest, ScheduleOracleForcesSerial) {
  sim::FifoOracle serial_fifo;
  const RunOut serial = RunOnce({.workers = 1, .oracle = &serial_fifo});
  sim::FifoOracle par_fifo;
  const RunOut par = RunOnce({.workers = 4, .oracle = &par_fifo});
  EXPECT_FALSE(par.active);
  EXPECT_NE(par.fallback.find("oracle"), std::string::npos) << par.fallback;
  EXPECT_EQ(par.digest, serial.digest);
  EXPECT_EQ(par_fifo.decisions(), serial_fifo.decisions());
}

// A fault schedule that *shrinks* latency breaks the lookahead bound; the
// prescan must refuse it (and say why) rather than risk a causality hole.
TEST(PdesDeterminismTest, LatencyShrinkingScheduleForcesSerial) {
  sim::FaultSchedule s;
  sim::FaultOp op;
  op.at = Seconds(2);
  op.kind = sim::FaultOp::Kind::kSetDelayFactor;
  op.value = 0.5;
  s.ops.push_back(op);
  const RunOut serial = RunOnce({.workers = 1, .faults = s});
  const RunOut par = RunOnce({.workers = 4, .faults = s});
  EXPECT_FALSE(par.active);
  EXPECT_NE(par.fallback.find("lookahead"), std::string::npos)
      << par.fallback;
  EXPECT_EQ(par.digest, serial.digest);
}

}  // namespace
}  // namespace samya::harness
