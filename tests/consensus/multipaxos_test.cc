#include "consensus/multipaxos.h"

#include <gtest/gtest.h>

#include "consensus/token_sm.h"
#include "harness/workload_client.h"
#include "sim/cluster.h"

namespace samya::consensus {
namespace {

using harness::WorkloadClient;
using harness::WorkloadClientOptions;
using workload::Request;

/// Builds a 5-replica group in the paper's MultiPaxSys placement: 3 US
/// regions plus Europe and Asia, leader in us-west1.
struct MpDeployment {
  std::vector<MultiPaxosNode*> replicas;
};

MpDeployment MakeGroup(sim::Cluster& cluster, int64_t limit,
                       size_t max_pending = 8) {
  static const sim::Region kPlacement[5] = {
      sim::Region::kUsWest1, sim::Region::kUsCentral1, sim::Region::kUsEast1,
      sim::Region::kEuropeWest2, sim::Region::kAsiaEast2};
  MpDeployment d;
  std::vector<sim::NodeId> ids = {0, 1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) {
    MultiPaxosOptions opts;
    opts.group = ids;
    opts.initial_leader = 0;
    opts.max_pending = max_pending;
    auto* node = cluster.AddNode<MultiPaxosNode>(
        kPlacement[i], opts, std::make_unique<TokenStateMachine>(limit));
    node->set_storage(cluster.StorageFor(node->id()));
    d.replicas.push_back(node);
  }
  return d;
}

std::vector<Request> Script(std::vector<std::pair<Request::Type, SimTime>> rs) {
  std::vector<Request> out;
  for (auto& [type, at] : rs) out.push_back({at, type, 1});
  return out;
}

TEST(MultiPaxosTest, CommitsAcquireThroughLeader) {
  sim::Cluster cluster(1);
  auto d = MakeGroup(cluster, 100);
  WorkloadClientOptions copts;
  copts.servers = {0};
  auto* client = cluster.AddNode<WorkloadClient>(
      sim::Region::kUsWest1, copts,
      Script({{Request::Type::kAcquire, Millis(10)},
              {Request::Type::kAcquire, Millis(20)},
              {Request::Type::kRelease, Millis(400)}}));
  cluster.StartAll();
  cluster.env().RunFor(Seconds(3));

  EXPECT_EQ(client->stats().committed_acquires, 2u);
  EXPECT_EQ(client->stats().committed_releases, 1u);
  // Every replica converges to acquired = 1.
  for (auto* r : d.replicas) {
    const auto& sm = static_cast<const TokenStateMachine&>(r->state_machine());
    EXPECT_EQ(sm.acquired(), 1) << "replica " << r->id();
  }
}

TEST(MultiPaxosTest, RejectsAcquireBeyondLimit) {
  sim::Cluster cluster(2);
  MakeGroup(cluster, 2);
  WorkloadClientOptions copts;
  copts.servers = {0};
  std::vector<Request> script;
  for (int i = 0; i < 5; ++i) {
    script.push_back({Millis(10 + 200 * i), Request::Type::kAcquire, 1});
  }
  auto* client =
      cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts, script);
  cluster.StartAll();
  cluster.env().RunFor(Seconds(5));
  EXPECT_EQ(client->stats().committed_acquires, 2u);
  EXPECT_EQ(client->stats().rejected, 3u);
}

TEST(MultiPaxosTest, NonLeaderRedirectsClient) {
  sim::Cluster cluster(3);
  MakeGroup(cluster, 100);
  WorkloadClientOptions copts;
  copts.servers = {3, 0};  // prefers the Europe replica (not leader)
  auto* client = cluster.AddNode<WorkloadClient>(
      sim::Region::kEuropeWest2, copts,
      Script({{Request::Type::kAcquire, Millis(10)}}));
  cluster.StartAll();
  cluster.env().RunFor(Seconds(3));
  EXPECT_EQ(client->stats().committed_acquires, 1u);
}

TEST(MultiPaxosTest, LeaderReadsServeLocally) {
  sim::Cluster cluster(4);
  MakeGroup(cluster, 100);
  WorkloadClientOptions copts;
  copts.servers = {0};
  auto* client = cluster.AddNode<WorkloadClient>(
      sim::Region::kUsWest1, copts,
      Script({{Request::Type::kAcquire, Millis(10)},
              {Request::Type::kRead, Millis(500)}}));
  cluster.StartAll();
  cluster.env().RunFor(Seconds(2));
  EXPECT_EQ(client->stats().committed_reads, 1u);
  // Reads bypass replication: latency well below a replication round.
  // (Acquire needs ~2x us-west<->us-east one-way = ~60ms+; the read is
  // sub-millisecond network-wise from the colocated client.)
  EXPECT_LT(client->stats().latency.min(), Millis(10));
}

TEST(MultiPaxosTest, FailsOverWhenLeaderCrashes) {
  sim::Cluster cluster(5);
  auto d = MakeGroup(cluster, 100);
  WorkloadClientOptions copts;
  copts.servers = {1, 2, 3};  // never contacts the dead node 0
  copts.max_attempts = 8;
  copts.request_timeout = Millis(400);
  auto* client = cluster.AddNode<WorkloadClient>(
      sim::Region::kUsCentral1, copts,
      Script({{Request::Type::kAcquire, Seconds(3)}}));
  cluster.StartAll();
  cluster.env().Schedule(Seconds(1), [&] { cluster.net().Crash(0); });
  cluster.env().RunFor(Seconds(12));

  EXPECT_EQ(client->stats().committed_acquires, 1u);
  int leaders = 0;
  for (auto* r : d.replicas) {
    if (r->id() != 0 && r->IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(MultiPaxosTest, StateSurvivesCrashRecover) {
  sim::Cluster cluster(6);
  auto d = MakeGroup(cluster, 100);
  WorkloadClientOptions copts;
  copts.servers = {0};
  auto* client = cluster.AddNode<WorkloadClient>(
      sim::Region::kUsWest1, copts,
      Script({{Request::Type::kAcquire, Millis(10)},
              {Request::Type::kAcquire, Millis(300)}}));
  cluster.StartAll();
  cluster.env().RunFor(Seconds(2));
  ASSERT_EQ(client->stats().committed_acquires, 2u);

  // Crash and recover a follower: it must rebuild acquired=2 from its log.
  cluster.net().Crash(1);
  cluster.env().RunFor(Seconds(1));
  cluster.net().Recover(1);
  cluster.env().RunFor(Seconds(2));
  const auto& sm =
      static_cast<const TokenStateMachine&>(d.replicas[1]->state_machine());
  EXPECT_EQ(sm.acquired(), 2);
}

TEST(MultiPaxosTest, AdmissionCapRejectsOverload) {
  sim::Cluster cluster(7);
  MakeGroup(cluster, 10000, /*max_pending=*/2);
  WorkloadClientOptions copts;
  copts.servers = {0};
  copts.max_attempts = 1;  // no retry: observe raw overload behaviour
  // 50 simultaneous arrivals versus a queue of 2 and ~60ms commits.
  std::vector<Request> script;
  for (int i = 0; i < 50; ++i) {
    script.push_back({Millis(10), Request::Type::kAcquire, 1});
  }
  auto* client =
      cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts, script);
  cluster.StartAll();
  cluster.env().RunFor(Seconds(5));
  EXPECT_GT(client->stats().dropped, 30u);
  EXPECT_LE(client->stats().committed_acquires, 10u);
  EXPECT_GE(client->stats().committed_acquires, 3u);
}

TEST(MultiPaxosTest, ReplicatedLogsAgreeOnCommittedPrefix) {
  sim::Cluster cluster(8);
  auto d = MakeGroup(cluster, 1000);
  WorkloadClientOptions copts;
  copts.servers = {0};
  std::vector<Request> script;
  for (int i = 0; i < 20; ++i) {
    script.push_back({Millis(50 * i), Request::Type::kAcquire, 1});
  }
  auto* client =
      cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts, script);
  cluster.StartAll();
  cluster.env().RunFor(Seconds(10));
  ASSERT_EQ(client->stats().committed_acquires, 20u);

  // Committed prefixes must carry identical commands.
  const auto& leader_log = d.replicas[0]->log();
  for (auto* r : d.replicas) {
    for (const auto& [index, entry] : r->log()) {
      if (index > r->committed_index()) continue;
      auto it = leader_log.find(index);
      ASSERT_NE(it, leader_log.end());
      EXPECT_EQ(entry.command, it->second.command)
          << "replica " << r->id() << " index " << index;
    }
  }
}

TEST(MultiPaxosTest, ThroughputIsReplicationBound) {
  // The §1 observation: a single hot record commits at ~1/(majority RTT).
  sim::Cluster cluster(9);
  MakeGroup(cluster, 1000000);
  WorkloadClientOptions copts;
  copts.servers = {0};
  copts.max_attempts = 1;
  std::vector<Request> script;
  // Offered load: 500 tps for 4 seconds, far beyond capacity.
  for (int i = 0; i < 2000; ++i) {
    script.push_back({Millis(2 * i), Request::Type::kAcquire, 1});
  }
  auto* client =
      cluster.AddNode<WorkloadClient>(sim::Region::kUsWest1, copts, script);
  cluster.StartAll();
  cluster.env().RunFor(Seconds(8));
  const double tps =
      static_cast<double>(client->stats().TotalCommitted()) / 4.0;
  // Majority = leader(us-west) + us-central(17ms) + us-east(30ms): ~60ms
  // round trip -> on the order of 15-40 commits/s, nowhere near 500.
  EXPECT_GT(tps, 8);
  EXPECT_LT(tps, 60);
}

}  // namespace
}  // namespace samya::consensus
