#include "consensus/token_sm.h"

#include <gtest/gtest.h>

#include "harness/lin_check.h"

namespace samya::consensus {
namespace {

uint64_t g_next_id = 1;

std::vector<uint8_t> Cmd(TokenOp op, int64_t amount, uint64_t id = 0) {
  TokenRequest req;
  req.request_id = id != 0 ? id : g_next_id++;
  req.op = op;
  req.amount = amount;
  BufferWriter w;
  req.EncodeTo(w);
  return w.Release();
}

TokenResponse Decode(const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  return TokenResponse::DecodeFrom(r).value();
}

TEST(TokenStateMachineTest, AcquireWithinLimit) {
  TokenStateMachine sm(10);
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kAcquire, 4)));
  EXPECT_TRUE(resp.committed());
  EXPECT_EQ(resp.value, 6);
  EXPECT_EQ(sm.acquired(), 4);
}

TEST(TokenStateMachineTest, RejectsBeyondLimit) {
  TokenStateMachine sm(10);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 10))).committed());
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kAcquire, 1)));
  EXPECT_EQ(resp.status, TokenStatus::kRejected);
  EXPECT_EQ(sm.acquired(), 10);
}

TEST(TokenStateMachineTest, ReleaseReturnsTokens) {
  TokenStateMachine sm(10);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 7))).committed());
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kRelease, 3))).committed());
  EXPECT_EQ(sm.acquired(), 4);
  EXPECT_EQ(sm.available(), 6);
}

TEST(TokenStateMachineTest, RejectsReleaseBelowZero) {
  TokenStateMachine sm(10);
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kRelease, 1)));
  EXPECT_EQ(resp.status, TokenStatus::kRejected);
  EXPECT_EQ(sm.acquired(), 0);
}

TEST(TokenStateMachineTest, RejectsNonPositiveAmounts) {
  TokenStateMachine sm(10);
  EXPECT_EQ(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 0))).status,
            TokenStatus::kRejected);
  EXPECT_EQ(Decode(sm.Apply(Cmd(TokenOp::kAcquire, -5))).status,
            TokenStatus::kRejected);
}

TEST(TokenStateMachineTest, ReadsDoNotMutate) {
  TokenStateMachine sm(10);
  sm.Apply(Cmd(TokenOp::kAcquire, 2));
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kRead, 0)));
  EXPECT_TRUE(resp.committed());
  EXPECT_EQ(resp.value, 8);
  EXPECT_EQ(sm.acquired(), 2);
  auto query = Decode(sm.Query(Cmd(TokenOp::kRead, 0, 42)));
  EXPECT_EQ(query.request_id, 42u);
  EXPECT_EQ(query.value, 8);
}

TEST(TokenStateMachineTest, ConstraintInvariantUnderRandomOps) {
  // Eq. 1 for the replicated baseline: 0 <= acquired <= limit always.
  TokenStateMachine sm(50);
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const bool acquire = (x & 1) != 0;
    const int64_t amount = static_cast<int64_t>((x >> 1) % 10) - 2;
    sm.Apply(Cmd(acquire ? TokenOp::kAcquire : TokenOp::kRelease, amount));
    ASSERT_GE(sm.acquired(), 0);
    ASSERT_LE(sm.acquired(), 50);
  }
}

TEST(TokenStateMachineTest, DuplicateRequestReturnsCachedResponse) {
  // At-most-once: a retried command (same request id) must not re-apply, and
  // must return byte-identical output even if the counter has moved since.
  TokenStateMachine sm(10);
  const auto acquire = Cmd(TokenOp::kAcquire, 4, /*id=*/100);
  const auto first = sm.Apply(acquire);
  EXPECT_TRUE(Decode(first).committed());
  EXPECT_EQ(sm.acquired(), 4);

  EXPECT_EQ(sm.Apply(acquire), first);
  EXPECT_EQ(sm.acquired(), 4) << "duplicate acquire was re-applied";

  // Interleave an unrelated op, then retry again: the cached response still
  // reports the *original* available value (6), not the current one.
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 3, 101))).committed());
  const auto retried = Decode(sm.Apply(acquire));
  EXPECT_TRUE(retried.committed());
  EXPECT_EQ(retried.value, 6);
  EXPECT_EQ(sm.acquired(), 7);
}

TEST(TokenStateMachineTest, DuplicateRejectionStaysRejected) {
  // A rejection is a decision, not a transient: retrying it after tokens
  // free up must replay the original rejection, never commit late.
  TokenStateMachine sm(10);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 10, 1))).committed());
  const auto overdraw = Cmd(TokenOp::kAcquire, 5, /*id=*/2);
  EXPECT_EQ(Decode(sm.Apply(overdraw)).status, TokenStatus::kRejected);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kRelease, 10, 3))).committed());
  EXPECT_EQ(Decode(sm.Apply(overdraw)).status, TokenStatus::kRejected);
  EXPECT_EQ(sm.acquired(), 0);
}

TEST(TokenStateMachineTest, OutOfOrderApplyIsDecidedByLogOrder) {
  // The log may commit requests in any order relative to client issue order.
  // A release sequenced before its matching acquire must be rejected (no
  // outstanding tokens yet); a fresh retry sequenced after the acquire
  // commits. Replicas applying the same permutation agree exactly.
  TokenStateMachine a(10), b(10);
  const std::vector<std::vector<uint8_t>> log = {
      Cmd(TokenOp::kRelease, 2, 10),  // client issued this *after* id 11
      Cmd(TokenOp::kAcquire, 5, 11),
      Cmd(TokenOp::kRelease, 2, 12),  // retry with a fresh id
  };
  std::vector<TokenStatus> statuses;
  for (const auto& cmd : log) {
    const auto ra = a.Apply(cmd);
    EXPECT_EQ(ra, b.Apply(cmd));
    statuses.push_back(Decode(ra).status);
  }
  EXPECT_EQ(statuses[0], TokenStatus::kRejected);
  EXPECT_EQ(statuses[1], TokenStatus::kCommitted);
  EXPECT_EQ(statuses[2], TokenStatus::kCommitted);
  EXPECT_EQ(a.acquired(), 3);
}

TEST(TokenStateMachineTest, AcquireExceedingWholePoolRejectedAtomically) {
  // An acquire larger than the remaining pool must reject without partially
  // granting, including one larger than M itself on a fresh machine.
  TokenStateMachine sm(10);
  EXPECT_EQ(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 11))).status,
            TokenStatus::kRejected);
  EXPECT_EQ(sm.acquired(), 0);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 8))).committed());
  const auto resp = Decode(sm.Apply(Cmd(TokenOp::kAcquire, 3)));
  EXPECT_EQ(resp.status, TokenStatus::kRejected);
  EXPECT_EQ(resp.value, 2) << "rejection must still report availability";
  EXPECT_EQ(sm.acquired(), 8);
}

TEST(TokenStateMachineTest, MatchesSequentialTokenSpec) {
  // The replicated state machine and the checker's sequential reference
  // model (harness::TokenSpec) implement the same Eq.-1 transitions; a long
  // random sequence (unique ids, so dedup never interferes) must produce
  // identical commit decisions and identical reported availability.
  constexpr int64_t kLimit = 25;
  TokenStateMachine sm(kLimit);
  harness::TokenSpec spec{kLimit, 0};
  uint64_t x = 2463534242ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const int64_t amount = static_cast<int64_t>(x % 12) - 1;  // -1..10
    const int pick = static_cast<int>((x >> 8) % 3);
    const TokenOp op = pick == 0   ? TokenOp::kRelease
                       : pick == 1 ? TokenOp::kRead
                                   : TokenOp::kAcquire;
    const auto resp =
        Decode(sm.Apply(Cmd(op, amount, static_cast<uint64_t>(i + 1))));
    bool spec_committed = true;
    switch (op) {
      case TokenOp::kAcquire: spec_committed = spec.Acquire(amount); break;
      case TokenOp::kRelease: spec_committed = spec.Release(amount); break;
      case TokenOp::kRead: break;
    }
    ASSERT_EQ(resp.committed(), spec_committed)
        << "op " << static_cast<int>(op) << " amount " << amount << " at " << i;
    ASSERT_EQ(resp.value, spec.Read()) << "at " << i;
    ASSERT_EQ(sm.acquired(), spec.acquired) << "at " << i;
  }
}

TEST(TokenStateMachineTest, DeterministicReplay) {
  // Two replicas applying the same command sequence agree exactly.
  TokenStateMachine a(30), b(30);
  std::vector<std::vector<uint8_t>> cmds;
  for (int i = 0; i < 200; ++i) {
    cmds.push_back(Cmd(i % 3 == 0 ? TokenOp::kRelease : TokenOp::kAcquire,
                       1 + i % 4, static_cast<uint64_t>(i)));
  }
  for (const auto& c : cmds) {
    EXPECT_EQ(a.Apply(c), b.Apply(c));
  }
  EXPECT_EQ(a.acquired(), b.acquired());
}

}  // namespace
}  // namespace samya::consensus
