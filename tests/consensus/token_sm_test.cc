#include "consensus/token_sm.h"

#include <gtest/gtest.h>

namespace samya::consensus {
namespace {

uint64_t g_next_id = 1;

std::vector<uint8_t> Cmd(TokenOp op, int64_t amount, uint64_t id = 0) {
  TokenRequest req;
  req.request_id = id != 0 ? id : g_next_id++;
  req.op = op;
  req.amount = amount;
  BufferWriter w;
  req.EncodeTo(w);
  return w.Release();
}

TokenResponse Decode(const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  return TokenResponse::DecodeFrom(r).value();
}

TEST(TokenStateMachineTest, AcquireWithinLimit) {
  TokenStateMachine sm(10);
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kAcquire, 4)));
  EXPECT_TRUE(resp.committed());
  EXPECT_EQ(resp.value, 6);
  EXPECT_EQ(sm.acquired(), 4);
}

TEST(TokenStateMachineTest, RejectsBeyondLimit) {
  TokenStateMachine sm(10);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 10))).committed());
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kAcquire, 1)));
  EXPECT_EQ(resp.status, TokenStatus::kRejected);
  EXPECT_EQ(sm.acquired(), 10);
}

TEST(TokenStateMachineTest, ReleaseReturnsTokens) {
  TokenStateMachine sm(10);
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 7))).committed());
  EXPECT_TRUE(Decode(sm.Apply(Cmd(TokenOp::kRelease, 3))).committed());
  EXPECT_EQ(sm.acquired(), 4);
  EXPECT_EQ(sm.available(), 6);
}

TEST(TokenStateMachineTest, RejectsReleaseBelowZero) {
  TokenStateMachine sm(10);
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kRelease, 1)));
  EXPECT_EQ(resp.status, TokenStatus::kRejected);
  EXPECT_EQ(sm.acquired(), 0);
}

TEST(TokenStateMachineTest, RejectsNonPositiveAmounts) {
  TokenStateMachine sm(10);
  EXPECT_EQ(Decode(sm.Apply(Cmd(TokenOp::kAcquire, 0))).status,
            TokenStatus::kRejected);
  EXPECT_EQ(Decode(sm.Apply(Cmd(TokenOp::kAcquire, -5))).status,
            TokenStatus::kRejected);
}

TEST(TokenStateMachineTest, ReadsDoNotMutate) {
  TokenStateMachine sm(10);
  sm.Apply(Cmd(TokenOp::kAcquire, 2));
  auto resp = Decode(sm.Apply(Cmd(TokenOp::kRead, 0)));
  EXPECT_TRUE(resp.committed());
  EXPECT_EQ(resp.value, 8);
  EXPECT_EQ(sm.acquired(), 2);
  auto query = Decode(sm.Query(Cmd(TokenOp::kRead, 0, 42)));
  EXPECT_EQ(query.request_id, 42u);
  EXPECT_EQ(query.value, 8);
}

TEST(TokenStateMachineTest, ConstraintInvariantUnderRandomOps) {
  // Eq. 1 for the replicated baseline: 0 <= acquired <= limit always.
  TokenStateMachine sm(50);
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const bool acquire = (x & 1) != 0;
    const int64_t amount = static_cast<int64_t>((x >> 1) % 10) - 2;
    sm.Apply(Cmd(acquire ? TokenOp::kAcquire : TokenOp::kRelease, amount));
    ASSERT_GE(sm.acquired(), 0);
    ASSERT_LE(sm.acquired(), 50);
  }
}

TEST(TokenStateMachineTest, DeterministicReplay) {
  // Two replicas applying the same command sequence agree exactly.
  TokenStateMachine a(30), b(30);
  std::vector<std::vector<uint8_t>> cmds;
  for (int i = 0; i < 200; ++i) {
    cmds.push_back(Cmd(i % 3 == 0 ? TokenOp::kRelease : TokenOp::kAcquire,
                       1 + i % 4, static_cast<uint64_t>(i)));
  }
  for (const auto& c : cmds) {
    EXPECT_EQ(a.Apply(c), b.Apply(c));
  }
  EXPECT_EQ(a.acquired(), b.acquired());
}

}  // namespace
}  // namespace samya::consensus
